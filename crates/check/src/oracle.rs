//! Differential oracles: run the scheme under test in lockstep with a
//! physically-addressed reference machine and compare the OS-visible
//! outcome of every access.
//!
//! The native oracle is [`TranslationScheme::Ideal`] — perfect physical
//! caching whose kernel is touched on *every* access, so demand
//! allocation and copy-on-write breaks happen at the same access index
//! as in the hybrid schemes (which enforce permissions through cached
//! tags or delayed translation). With both kernels built by the same
//! deterministic setup, physical frame numbers are directly comparable.
//!
//! The virtualized oracle is [`VirtScheme::NestedBaseline`] — the
//! conventional gVA→MA TLB + 2D-walker machine; guest and machine frame
//! assignment follow first-access order in both schemes, so guest page
//! tables are directly comparable as well.

use crate::invariants;
use crate::violation::Violation;
use hvc_core::{RunReport, SystemConfig, SystemSim, TranslationScheme, VirtScheme, VirtSystemSim};
use hvc_os::{AllocPolicy, Kernel};
use hvc_types::{CheckHooks, TraceItem, Vmid};
use hvc_virt::Hypervisor;
use hvc_workloads::WorkloadInstance;
use std::cell::RefCell;
use std::rc::Rc;

/// Knobs of a checking run.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Run a full invariant sweep every this many accesses (0 = only at
    /// [`DiffHarness::finish`]). Sweeps are O(machine state).
    pub sweep_every: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig { sweep_every: 1024 }
    }
}

/// Boundary-audit state shared between the simulator-installed hook and
/// the harness.
#[derive(Default)]
struct BoundaryAudit {
    /// Access boundaries observed with a non-empty flush queue.
    late_boundaries: u64,
    /// Worst queue depth seen at a boundary.
    worst_pending: usize,
}

struct QueueAudit(Rc<RefCell<BoundaryAudit>>);

impl CheckHooks for QueueAudit {
    fn access_boundary(&mut self, _refs: u64, pending: usize) {
        if pending > 0 {
            let mut a = self.0.borrow_mut();
            a.late_boundaries += 1;
            a.worst_pending = a.worst_pending.max(pending);
        }
    }
}

fn drain_audit(audit: &Rc<RefCell<BoundaryAudit>>, out: &mut Vec<Violation>) {
    let mut a = audit.borrow_mut();
    if a.late_boundaries > 0 {
        out.push(Violation::PendingFlushes {
            pending: a.worst_pending,
        });
        a.late_boundaries = 0;
        a.worst_pending = 0;
    }
}

/// Compares the synonym partition (the per-space sets of shared pages)
/// of two kernels.
fn compare_partitions(sut: &Kernel, oracle: &Kernel, out: &mut Vec<Violation>) {
    let shared_sets = |k: &Kernel| -> Vec<(u16, Vec<u64>)> {
        let mut v: Vec<(u16, Vec<u64>)> = k
            .spaces()
            .map(|(asid, space)| {
                let mut pages: Vec<u64> = space
                    .page_table()
                    .iter()
                    .filter(|(_, pte)| pte.shared)
                    .map(|(vp, _)| vp.base().as_u64())
                    .collect();
                pages.sort_unstable();
                (asid.as_u16(), pages)
            })
            .collect();
        v.sort_unstable();
        v
    };
    let s = shared_sets(sut);
    let o = shared_sets(oracle);
    if s != o {
        for ((sa, sp), (oa, op)) in s.iter().zip(o.iter()) {
            if sa != oa || sp != op {
                out.push(Violation::PartitionDivergence {
                    asid: *sa,
                    detail: format!(
                        "{} shared pages under test vs {} in the oracle",
                        sp.len(),
                        op.len()
                    ),
                });
                return;
            }
        }
        out.push(Violation::PartitionDivergence {
            asid: 0,
            detail: format!("{} spaces under test vs {} in the oracle", s.len(), o.len()),
        });
    }
}

/// Compares the accessed page's translation between two kernels.
fn compare_access(sut: &Kernel, oracle: &Kernel, item: TraceItem, out: &mut Vec<Violation>) {
    let asid = item.mref.asid;
    let vp = item.mref.vaddr.page_number();
    match (sut.walk(asid, vp), oracle.walk(asid, vp)) {
        (Some((s, _)), Some((o, _))) => {
            if s.frame != o.frame {
                out.push(Violation::OracleDivergence {
                    asid: asid.as_u16(),
                    vpn: vp.base().as_u64() >> hvc_types::PAGE_SHIFT,
                    detail: format!(
                        "frame {:#x} under test vs {:#x} in the oracle",
                        s.frame.base().as_u64(),
                        o.frame.base().as_u64()
                    ),
                });
            } else if s.shared != o.shared || s.perm != o.perm {
                out.push(Violation::OracleDivergence {
                    asid: asid.as_u16(),
                    vpn: vp.base().as_u64() >> hvc_types::PAGE_SHIFT,
                    detail: format!(
                        "perm/shared {:?}/{} under test vs {:?}/{} in the oracle",
                        s.perm, s.shared, o.perm, o.shared
                    ),
                });
            }
        }
        (None, None) => {}
        (s, o) => out.push(Violation::OracleDivergence {
            asid: asid.as_u16(),
            vpn: vp.base().as_u64() >> hvc_types::PAGE_SHIFT,
            detail: format!(
                "mapped under test: {}, in the oracle: {}",
                s.is_some(),
                o.is_some()
            ),
        }),
    }
}

/// A native differential harness: the scheme under test and an
/// [`TranslationScheme::Ideal`] reference machine over twin kernels.
pub struct DiffHarness {
    sut: SystemSim,
    oracle: SystemSim,
    cfg: CheckConfig,
    audit: Rc<RefCell<BoundaryAudit>>,
    violations: Vec<Violation>,
    steps: u64,
}

impl DiffHarness {
    /// Builds twin kernels with `setup` (which must be deterministic:
    /// both kernels see the exact same call sequence), the scheme under
    /// test over one and the ideal oracle over the other. Returns the
    /// harness plus the value `setup` produced for the kernel under
    /// test (typically the [`WorkloadInstance`]).
    ///
    /// # Errors
    ///
    /// Propagates `setup` errors.
    pub fn new<T>(
        config: SystemConfig,
        scheme: TranslationScheme,
        cfg: CheckConfig,
        mem_bytes: u64,
        policy: AllocPolicy,
        setup: impl Fn(&mut Kernel) -> hvc_types::Result<T>,
    ) -> hvc_types::Result<(Self, T)> {
        let mut sut_kernel = Kernel::new(mem_bytes, policy);
        let value = setup(&mut sut_kernel)?;
        let mut oracle_kernel = Kernel::new(mem_bytes, policy);
        let _ = setup(&mut oracle_kernel)?;
        let mut sut = SystemSim::new(sut_kernel, config.clone(), scheme);
        let oracle = SystemSim::new(oracle_kernel, config, TranslationScheme::Ideal);
        let audit = Rc::new(RefCell::new(BoundaryAudit::default()));
        sut.set_check_hooks(Box::new(QueueAudit(audit.clone())));
        Ok((
            DiffHarness {
                sut,
                oracle,
                cfg,
                audit,
                violations: Vec::new(),
                steps: 0,
            },
            value,
        ))
    }

    /// Steps both machines with one trace item and compares the
    /// OS-visible outcome.
    pub fn step(&mut self, item: TraceItem, mlp: u32) {
        self.sut.step(item, mlp);
        self.oracle.step(item, mlp);
        self.steps += 1;
        compare_access(
            self.sut.kernel(),
            self.oracle.kernel(),
            item,
            &mut self.violations,
        );
        drain_audit(&self.audit, &mut self.violations);
        if self.cfg.sweep_every > 0 && self.steps.is_multiple_of(self.cfg.sweep_every) {
            self.sweep();
        }
    }

    /// Runs `refs` warm-up references with checking on, then resets
    /// statistics on both machines (mirrors [`SystemSim::warm_up`]).
    pub fn warm_up(&mut self, workload: &mut WorkloadInstance, refs: usize) {
        let mlp = workload.mlp();
        for _ in 0..refs {
            let item = workload.next_item();
            self.step(item, mlp);
        }
        self.sut.reset_stats();
        self.oracle.reset_stats();
    }

    /// Runs `refs` checked references and returns the report of the
    /// machine under test (identical to an unchecked run's report).
    pub fn run(&mut self, workload: &mut WorkloadInstance, refs: usize) -> RunReport {
        let mlp = workload.mlp();
        for _ in 0..refs {
            let item = workload.next_item();
            self.step(item, mlp);
        }
        self.sut.report()
    }

    /// Applies a kernel operation to both machines (flushes drain
    /// immediately on each side) and returns the result from the
    /// machine under test.
    pub fn os<R>(&mut self, f: impl Fn(&mut Kernel) -> R) -> R {
        let r = self.sut.os(&f);
        let _ = self.oracle.os(&f);
        r
    }

    /// Runs a full invariant sweep plus the cross-machine synonym
    /// partition comparison now.
    pub fn sweep(&mut self) {
        self.violations.extend(invariants::check_system(&self.sut));
        compare_partitions(
            self.sut.kernel(),
            self.oracle.kernel(),
            &mut self.violations,
        );
    }

    /// Fault injection: apply a kernel operation to the machine under
    /// test only, making the twin kernels diverge (its own flushes are
    /// still drained). Self-test use only.
    #[doc(hidden)]
    pub fn inject_sut_only_os<R>(&mut self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        self.sut.os(f)
    }

    /// The machine under test (read-only).
    pub fn sut(&self) -> &SystemSim {
        &self.sut
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Final sweep, then returns every recorded violation.
    pub fn finish(mut self) -> Vec<Violation> {
        self.sweep();
        self.violations
    }
}

/// A virtualized differential harness: the guest scheme under test and
/// a [`VirtScheme::NestedBaseline`] reference machine over twin
/// hypervisors.
pub struct VirtDiffHarness {
    sut: VirtSystemSim,
    oracle: VirtSystemSim,
    cfg: CheckConfig,
    audit: Rc<RefCell<BoundaryAudit>>,
    violations: Vec<Violation>,
    steps: u64,
}

impl VirtDiffHarness {
    /// Builds twin hypervisors with `setup` (must be deterministic),
    /// the scheme under test over one and the nested-baseline oracle
    /// over the other. Returns the harness plus the value `setup`
    /// produced for the machine under test.
    ///
    /// # Errors
    ///
    /// Propagates `setup` and simulator-construction errors.
    pub fn new<T>(
        config: SystemConfig,
        scheme: VirtScheme,
        cfg: CheckConfig,
        setup: impl Fn() -> hvc_types::Result<(Hypervisor, Vmid, T)>,
    ) -> hvc_types::Result<(Self, T)> {
        let (hv, vmid, value) = setup()?;
        let (ohv, ovmid, _) = setup()?;
        let mut sut = VirtSystemSim::new(hv, vmid, config.clone(), scheme)?;
        let oracle = VirtSystemSim::new(ohv, ovmid, config, VirtScheme::NestedBaseline)?;
        let audit = Rc::new(RefCell::new(BoundaryAudit::default()));
        sut.set_check_hooks(Box::new(QueueAudit(audit.clone())));
        Ok((
            VirtDiffHarness {
                sut,
                oracle,
                cfg,
                audit,
                violations: Vec::new(),
                steps: 0,
            },
            value,
        ))
    }

    /// Fault injection: make the machine under test drop non-`Page`
    /// guest flush requests (the historical bug). Self-test use only.
    #[doc(hidden)]
    pub fn inject_drop_non_page_flushes(&mut self) {
        self.sut.inject_drop_non_page_flushes();
    }

    /// Steps both machines with one trace item and compares the
    /// guest-OS-visible outcome.
    pub fn step(&mut self, item: TraceItem, mlp: u32) {
        self.sut.step(item, mlp);
        self.oracle.step(item, mlp);
        self.steps += 1;
        let (sgk, ogk) = (
            self.sut.hypervisor().guest_kernel(self.sut.vmid()),
            self.oracle.hypervisor().guest_kernel(self.oracle.vmid()),
        );
        if let (Ok(s), Ok(o)) = (sgk, ogk) {
            compare_access(s, o, item, &mut self.violations);
        }
        drain_audit(&self.audit, &mut self.violations);
        if self.cfg.sweep_every > 0 && self.steps.is_multiple_of(self.cfg.sweep_every) {
            self.sweep();
        }
    }

    /// Runs `refs` warm-up references with checking on, then resets
    /// statistics on both machines.
    pub fn warm_up(&mut self, workload: &mut WorkloadInstance, refs: usize) {
        let mlp = workload.mlp();
        for _ in 0..refs {
            let item = workload.next_item();
            self.step(item, mlp);
        }
        self.sut.reset_stats();
        self.oracle.reset_stats();
    }

    /// Runs `refs` checked references and returns the report of the
    /// machine under test.
    pub fn run(&mut self, workload: &mut WorkloadInstance, refs: usize) -> RunReport {
        let mlp = workload.mlp();
        for _ in 0..refs {
            let item = workload.next_item();
            self.step(item, mlp);
        }
        self.sut.report()
    }

    /// Applies a guest-kernel operation to both machines (guest flushes
    /// drain immediately on each side) and returns the result from the
    /// machine under test.
    pub fn guest_os<R>(&mut self, f: impl Fn(&mut Kernel) -> R) -> R {
        let r = self.sut.guest_os(&f);
        let _ = self.oracle.guest_os(&f);
        r
    }

    /// Runs a full invariant sweep plus the cross-machine guest synonym
    /// partition comparison now.
    pub fn sweep(&mut self) {
        self.violations.extend(invariants::check_virt(&self.sut));
        if let (Ok(s), Ok(o)) = (
            self.sut.hypervisor().guest_kernel(self.sut.vmid()),
            self.oracle.hypervisor().guest_kernel(self.oracle.vmid()),
        ) {
            compare_partitions(s, o, &mut self.violations);
        }
    }

    /// The machine under test (read-only).
    pub fn sut(&self) -> &VirtSystemSim {
        &self.sut
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Final sweep, then returns every recorded violation.
    pub fn finish(mut self) -> Vec<Violation> {
        self.sweep();
        self.violations
    }
}
