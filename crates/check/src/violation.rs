//! Correctness violations reported by the checkers.

use std::fmt;

/// One detected violation of the paper's correctness model.
///
/// Each variant corresponds to an invariant the hybrid design must
/// preserve; any of them surfacing means a flush/downgrade request was
/// lost, applied late, or the synonym-tracking state went stale.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The scheme under test and the physically-addressed reference
    /// machine disagree about the accessed page's translation (frame,
    /// permissions or synonym status).
    OracleDivergence {
        /// Address space of the diverging page.
        asid: u16,
        /// Virtual page number of the diverging page.
        vpn: u64,
        /// What differed.
        detail: String,
    },
    /// One physical block is reachable under two names in the hierarchy
    /// (with at least one of them writable), breaking the single-name
    /// guarantee.
    SingleName {
        /// Machine line address reachable under both names.
        line: u64,
        /// First name.
        a: String,
        /// Second name.
        b: String,
    },
    /// A virtually tagged line survived the unmap / ASID destruction of
    /// its page — a flush request was dropped.
    StaleLine {
        /// The stale block name.
        name: String,
    },
    /// A TLB holds a translation that no longer matches the page tables
    /// (wrong frame, or writable where the OS downgraded to read-only).
    TlbStale {
        /// Which TLB ("dtlb", "synonym_tlb", "delayed_tlb", "gva_tlb").
        tlb: &'static str,
        /// Address space of the stale entry.
        asid: u16,
        /// Virtual page number of the stale entry.
        vpn: u64,
        /// What is stale about it.
        detail: String,
    },
    /// A page the OS marked as a synonym is not a candidate in its
    /// space's filter — a false negative, which the paper's design must
    /// never produce.
    FilterFalseNegative {
        /// Address space whose filter misses the page.
        asid: u16,
        /// Virtual page number of the missed synonym page.
        vpn: u64,
    },
    /// OS-requested flushes were still queued at an access boundary —
    /// a kernel operation's shootdowns were drained too late.
    PendingFlushes {
        /// Queued (undrained) requests observed.
        pending: usize,
    },
    /// The scheme under test and the reference machine disagree about a
    /// whole space's synonym partition (the set of shared pages).
    PartitionDivergence {
        /// Address space whose partition diverged.
        asid: u16,
        /// What differed.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OracleDivergence { asid, vpn, detail } => {
                write!(f, "oracle divergence: asid {asid} vpn {vpn:#x}: {detail}")
            }
            Violation::SingleName { line, a, b } => {
                write!(f, "single-name violation: machine line {line:#x} named by both {a} and {b}")
            }
            Violation::StaleLine { name } => {
                write!(f, "stale line: {name} survives with no mapping")
            }
            Violation::TlbStale {
                tlb,
                asid,
                vpn,
                detail,
            } => write!(f, "stale {tlb} entry: asid {asid} vpn {vpn:#x}: {detail}"),
            Violation::FilterFalseNegative { asid, vpn } => write!(
                f,
                "filter false negative: asid {asid} vpn {vpn:#x} is a synonym page but not a candidate"
            ),
            Violation::PendingFlushes { pending } => write!(
                f,
                "{pending} flush request(s) still queued at an access boundary"
            ),
            Violation::PartitionDivergence { asid, detail } => {
                write!(f, "synonym-partition divergence: asid {asid}: {detail}")
            }
        }
    }
}
