//! Whole-machine invariant sweeps.
//!
//! These walk every resident cache line, every TLB entry and every page
//! table, so they are O(machine state) — run them periodically (see
//! [`crate::CheckConfig::sweep_every`]), not per access.

use crate::violation::Violation;
use hvc_core::{SystemSim, VirtSystemSim};
use hvc_os::{Kernel, Pte};
use hvc_tlb::Tlb;
use hvc_types::{Asid, BlockName, GuestPhysAddr, VirtAddr, VirtPage, PAGE_SHIFT, PAGE_SIZE};
use std::collections::{HashMap, HashSet};

/// Reserved-bit marker of Enigma canonical intermediate names (the
/// shared-object address range, mirroring `system.rs`'s writeback
/// decode).
const ENIGMA_IA_BIT: u64 = 1 << 46;

enum Resolved {
    /// Machine (line-aligned) address the name currently maps to.
    Machine(u64),
    /// Cannot be resolved without being a violation (e.g. a canonical
    /// name whose shared object vanished, which `write_back` drops too).
    Skip,
}

fn describe(name: BlockName) -> String {
    format!("{name:?}")
}

fn decode_canonical(base: u64) -> (hvc_os::ShmId, u64) {
    let ia = base - ENIGMA_IA_BIT;
    (hvc_os::ShmId((ia >> 34) as u32), ia & ((1 << 34) - 1))
}

/// Resolves a native block name to the machine line it currently maps
/// to, or reports the stale-line violation.
fn resolve_native(kernel: &Kernel, name: BlockName) -> Result<Resolved, Violation> {
    match name {
        BlockName::Phys(line) => Ok(Resolved::Machine(line.base_raw())),
        BlockName::Virt(asid, line)
            if asid == Asid::KERNEL && line.base_raw() & ENIGMA_IA_BIT != 0 =>
        {
            let (id, offset) = decode_canonical(line.base_raw());
            match kernel.shm_phys_addr(id, offset) {
                Some(pa) => Ok(Resolved::Machine(pa.as_u64())),
                None => Ok(Resolved::Skip),
            }
        }
        BlockName::Virt(asid, line) => {
            let va = VirtAddr::new(line.base_raw());
            match kernel.walk(asid, va.page_number()) {
                Some((pte, _)) => Ok(Resolved::Machine(
                    pte.frame.base().as_u64() + (line.base_raw() & (PAGE_SIZE - 1)),
                )),
                None => Err(Violation::StaleLine {
                    name: describe(name),
                }),
            }
        }
    }
}

/// Checks the single-name guarantee over a set of resolved names:
/// at most one name per machine line, except when every involved name
/// is cached read-only (the paper's content-based sharing serves
/// deduplicated read-only pages virtually under multiple names).
fn audit_single_name<F>(resolved: &[(BlockName, u64)], writable: F, out: &mut Vec<Violation>)
where
    F: Fn(BlockName) -> bool,
{
    let mut owner: HashMap<u64, BlockName> = HashMap::new();
    for &(name, line) in resolved {
        match owner.get(&line) {
            Some(&other) if other != name => {
                if writable(name) || writable(other) {
                    out.push(Violation::SingleName {
                        line,
                        a: describe(name),
                        b: describe(other),
                    });
                }
            }
            Some(_) => {}
            None => {
                owner.insert(line, name);
            }
        }
    }
}

fn vpn_of(vp: VirtPage) -> u64 {
    vp.base().as_u64() >> PAGE_SHIFT
}

/// Checks one native TLB entry against the page tables.
fn check_native_tlb_entry(
    kernel: &Kernel,
    tlb: &'static str,
    asid: Asid,
    vp: VirtPage,
    pte: Pte,
    out: &mut Vec<Violation>,
) {
    if asid == Asid::KERNEL {
        // Enigma canonical entries index the intermediate address space;
        // audit them against the shared object they decode to.
        let base = vp.base().as_u64();
        if base & ENIGMA_IA_BIT != 0 {
            let (id, offset) = decode_canonical(base);
            if let Some(pa) = kernel.shm_phys_addr(id, offset) {
                let frame_base = pa.as_u64() & !(PAGE_SIZE - 1);
                if pte.frame.base().as_u64() != frame_base {
                    out.push(Violation::TlbStale {
                        tlb,
                        asid: asid.as_u16(),
                        vpn: vpn_of(vp),
                        detail: format!(
                            "canonical entry maps frame {:#x}, object lives at {frame_base:#x}",
                            pte.frame.base().as_u64()
                        ),
                    });
                }
            }
        }
        return;
    }
    match kernel.walk(asid, vp) {
        None => out.push(Violation::TlbStale {
            tlb,
            asid: asid.as_u16(),
            vpn: vpn_of(vp),
            detail: "entry maps an unmapped page".into(),
        }),
        Some((kpte, _)) => {
            if kpte.frame != pte.frame {
                out.push(Violation::TlbStale {
                    tlb,
                    asid: asid.as_u16(),
                    vpn: vpn_of(vp),
                    detail: format!(
                        "entry frame {:#x} != page-table frame {:#x}",
                        pte.frame.base().as_u64(),
                        kpte.frame.base().as_u64()
                    ),
                });
            } else if pte.perm.is_writable() && !kpte.perm.is_writable() {
                out.push(Violation::TlbStale {
                    tlb,
                    asid: asid.as_u16(),
                    vpn: vpn_of(vp),
                    detail: "entry is writable but the OS downgraded the page".into(),
                });
            }
        }
    }
}

/// Audits every space's filter for false negatives: a page the OS marked
/// shared must be a candidate in its space's synonym filter.
fn audit_filters(kernel: &Kernel, out: &mut Vec<Violation>) {
    for (asid, space) in kernel.spaces() {
        for (vp, pte) in space.page_table().iter() {
            if pte.shared && !space.filter.is_candidate(vp.base()) {
                out.push(Violation::FilterFalseNegative {
                    asid: asid.as_u16(),
                    vpn: vpn_of(vp),
                });
            }
        }
    }
}

/// Sweeps a native simulator's whole state: stale lines, single-name,
/// TLB soundness, filter false negatives, and the flush queue.
pub fn check_system(sim: &SystemSim) -> Vec<Violation> {
    let mut out = Vec::new();
    let kernel = sim.kernel();

    let names: HashSet<BlockName> = sim.hierarchy().resident_names().collect();
    let mut resolved = Vec::with_capacity(names.len());
    for &name in &names {
        match resolve_native(kernel, name) {
            Err(v) => out.push(v),
            Ok(Resolved::Skip) => {}
            Ok(Resolved::Machine(line)) => resolved.push((name, line)),
        }
    }
    resolved.sort_unstable();
    audit_single_name(
        &resolved,
        |n| {
            sim.hierarchy()
                .cached_permissions(0, n)
                .map(|p| p.is_writable())
                .unwrap_or(false)
        },
        &mut out,
    );

    for t in sim.data_tlbs() {
        for (asid, vp, pte) in t.entries() {
            check_native_tlb_entry(kernel, "dtlb", asid, vp, pte, &mut out);
        }
    }
    for t in sim.synonym_tlbs() {
        for (asid, vp, pte) in t.entries() {
            check_native_tlb_entry(kernel, "synonym_tlb", asid, vp, pte, &mut out);
        }
    }
    for (asid, vp, pte) in sim.delayed_tlb().entries() {
        check_native_tlb_entry(kernel, "delayed_tlb", asid, vp, pte, &mut out);
    }

    audit_filters(kernel, &mut out);

    let pending = kernel.pending_flush_requests();
    if pending > 0 {
        out.push(Violation::PendingFlushes { pending });
    }
    out
}

/// Checks one virtualized (gVA→MA) TLB entry against the guest page
/// tables and the EPT.
#[allow(clippy::too_many_arguments)] // flat context of one TLB entry
fn check_virt_tlb_entry(
    gk: &Kernel,
    hv: &hvc_virt::Hypervisor,
    vmid: hvc_types::Vmid,
    tlb: &'static str,
    asid: Asid,
    vp: VirtPage,
    pte: Pte,
    out: &mut Vec<Violation>,
) {
    match gk.walk(asid, vp) {
        None => out.push(Violation::TlbStale {
            tlb,
            asid: asid.as_u16(),
            vpn: vpn_of(vp),
            detail: "entry maps an unmapped guest page".into(),
        }),
        Some((gpte, _)) => {
            let gpa = GuestPhysAddr::new(gpte.frame.base().as_u64());
            match hv.ept_walk(vmid, gpa) {
                // Machine backing is established before every fill, so a
                // missing EPT entry means nothing cacheable exists yet.
                None => {}
                Some((mpte, _)) => {
                    if mpte.frame != pte.frame {
                        out.push(Violation::TlbStale {
                            tlb,
                            asid: asid.as_u16(),
                            vpn: vpn_of(vp),
                            detail: format!(
                                "entry machine frame {:#x} != EPT frame {:#x}",
                                pte.frame.base().as_u64(),
                                mpte.frame.base().as_u64()
                            ),
                        });
                    } else if pte.perm.is_writable() && !gpte.perm.is_writable() {
                        out.push(Violation::TlbStale {
                            tlb,
                            asid: asid.as_u16(),
                            vpn: vpn_of(vp),
                            detail: "entry is writable but the guest downgraded the page".into(),
                        });
                    }
                }
            }
        }
    }
}

/// Sweeps a virtualized simulator's whole state; names and TLB entries
/// are gVA-indexed and resolve through guest page tables plus the EPT.
pub fn check_virt(sim: &VirtSystemSim) -> Vec<Violation> {
    let mut out = Vec::new();
    let hv = sim.hypervisor();
    let vmid = sim.vmid();
    let Ok(gk) = hv.guest_kernel(vmid) else {
        return out;
    };

    let names: HashSet<BlockName> = sim.hierarchy().resident_names().collect();
    let mut resolved = Vec::with_capacity(names.len());
    for &name in &names {
        match name {
            BlockName::Phys(line) => resolved.push((name, line.base_raw())),
            BlockName::Virt(asid, line) => {
                let va = VirtAddr::new(line.base_raw());
                match gk.walk(asid, va.page_number()) {
                    None => out.push(Violation::StaleLine {
                        name: describe(name),
                    }),
                    Some((gpte, _)) => {
                        let gpa = gpte.frame.base().as_u64() + (line.base_raw() & (PAGE_SIZE - 1));
                        if let Some((mpte, _)) = hv.ept_walk(vmid, GuestPhysAddr::new(gpa)) {
                            resolved
                                .push((name, mpte.frame.base().as_u64() + (gpa & (PAGE_SIZE - 1))));
                        }
                    }
                }
            }
        }
    }
    resolved.sort_unstable();
    audit_single_name(
        &resolved,
        |n| {
            sim.hierarchy()
                .cached_permissions(0, n)
                .map(|p| p.is_writable())
                .unwrap_or(false)
        },
        &mut out,
    );

    let tlbs: [(&'static str, &Tlb); 3] = [
        ("gva_tlb", sim.gva_tlb()),
        ("synonym_tlb", sim.synonym_tlb()),
        ("delayed_tlb", sim.delayed_tlb()),
    ];
    for (which, tlb) in tlbs {
        for (asid, vp, pte) in tlb.entries() {
            check_virt_tlb_entry(gk, hv, vmid, which, asid, vp, pte, &mut out);
        }
    }

    audit_filters(gk, &mut out);

    let pending = gk.pending_flush_requests();
    if pending > 0 {
        out.push(Violation::PendingFlushes { pending });
    }
    out
}
