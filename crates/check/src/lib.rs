//! Differential-oracle and runtime invariant checking (**hvc-check**).
//!
//! The paper's whole design rests on one guarantee: every physical
//! block has exactly one name in the hierarchy, maintained by OS flush
//! requests on unmap, ASID destruction and sharing transitions. This
//! crate turns that guarantee (and its supporting invariants) into
//! executable checks:
//!
//! * [`DiffHarness`] / [`VirtDiffHarness`] run any workload through the
//!   scheme under test **and** a physically-addressed reference machine
//!   in lockstep, comparing the OS-visible outcome of every access
//!   (frame, permissions, synonym status) and the per-space synonym
//!   partition.
//! * [`check_system`] / [`check_virt`] sweep a simulator's entire state:
//!   no virtually tagged line without a mapping (stale line), at most
//!   one writable name per machine line (single-name), every TLB entry
//!   consistent with the page tables, no synonym page missing from its
//!   filter (false negative), and an empty flush queue.
//! * [`stress`] generates seeded scripts of OS churn interleaved with
//!   traffic and shrinks failures to minimal reproducers.
//!
//! Checking hooks into the simulators through
//! [`hvc_types::CheckHooks`]; with no hooks installed the cost is a
//! single branch per access, so production sweeps are unaffected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod invariants;
mod oracle;
pub mod stress;
mod violation;

pub use invariants::{check_system, check_virt};
pub use oracle::{CheckConfig, DiffHarness, VirtDiffHarness};
pub use violation::Violation;
