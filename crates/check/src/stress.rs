//! Seeded randomized stress driver.
//!
//! Generates scripts of OS operations (map/unmap, shared-memory attach
//! and detach, copy-on-write, content-sharing downgrades, process
//! churn, filter rebuilds) interleaved with memory traffic, runs them
//! through a [`DiffHarness`], and — when a script fails — shrinks it to
//! a minimal reproducer with a delta-debugging pass.
//!
//! Scripts are a pure function of the seed, so a failure report of the
//! form `(seed, shrunken ops)` reproduces anywhere.

use crate::oracle::{CheckConfig, DiffHarness};
use crate::violation::Violation;
use hvc_core::{SystemConfig, TranslationScheme};
use hvc_os::{AllocPolicy, Kernel, MapIntent, ShmId};
use hvc_types::{Asid, MemRef, Permissions, TraceItem, VirtAddr, PAGE_SIZE};
use std::fmt;

/// Processes a stress script runs over.
pub const NPROCS: usize = 3;
/// Pages in each process's private region.
pub const PRIV_PAGES: u8 = 16;
/// Pages in the shared-memory object.
pub const SHM_PAGES: u8 = 8;

fn priv_base(proc_: usize) -> u64 {
    0x1000_0000 + proc_ as u64 * 0x1_0000_0000
}

fn shm_base(proc_: usize) -> u64 {
    0x7000_0000_0000 + proc_ as u64 * 0x1000_0000
}

/// One operation of a stress script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Load from a page (`shared` selects the shm attach region).
    Read {
        /// Process index.
        proc: u8,
        /// Page index within the region.
        page: u8,
        /// Target the shm attach region instead of the private one.
        shared: bool,
    },
    /// Store to a page (downgraded private pages are read instead).
    Write {
        /// Process index.
        proc: u8,
        /// Page index within the region.
        page: u8,
        /// Target the shm attach region instead of the private one.
        shared: bool,
    },
    /// Attach the shared object (r/w synonym, or r/o copy-on-write).
    AttachShm {
        /// Process index.
        proc: u8,
        /// Attach read-only (content sharing + CoW on write).
        ro: bool,
    },
    /// Detach the shared object.
    DetachShm {
        /// Process index.
        proc: u8,
    },
    /// Transition a private page to synonym status.
    MarkShared {
        /// Process index.
        proc: u8,
        /// Page index within the private region.
        page: u8,
    },
    /// Content-sharing downgrade of a private page to read-only.
    Downgrade {
        /// Process index.
        proc: u8,
        /// Page index within the private region.
        page: u8,
    },
    /// Unmap and re-map the private region.
    Remap {
        /// Process index.
        proc: u8,
    },
    /// Destroy the process and recreate it (fresh ASID).
    Churn {
        /// Process index.
        proc: u8,
    },
    /// Rebuild the process's synonym filter from the page tables.
    RebuildFilter {
        /// Process index.
        proc: u8,
    },
    /// Fault injection for shrinker self-tests: apply `MarkShared` to
    /// the machine under test only, making the twin kernels diverge.
    #[doc(hidden)]
    Nemesis {
        /// Process index.
        proc: u8,
        /// Page index within the private region.
        page: u8,
    },
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Read { proc, page, shared } => {
                write!(
                    f,
                    "read p{proc} {}page {page}",
                    if shared { "shm-" } else { "" }
                )
            }
            Op::Write { proc, page, shared } => {
                write!(
                    f,
                    "write p{proc} {}page {page}",
                    if shared { "shm-" } else { "" }
                )
            }
            Op::AttachShm { proc, ro } => {
                write!(f, "attach-shm p{proc}{}", if ro { " ro" } else { "" })
            }
            Op::DetachShm { proc } => write!(f, "detach-shm p{proc}"),
            Op::MarkShared { proc, page } => write!(f, "mark-shared p{proc} page {page}"),
            Op::Downgrade { proc, page } => write!(f, "downgrade p{proc} page {page}"),
            Op::Remap { proc } => write!(f, "remap p{proc}"),
            Op::Churn { proc } => write!(f, "churn p{proc}"),
            Op::RebuildFilter { proc } => write!(f, "rebuild-filter p{proc}"),
            Op::Nemesis { proc, page } => write!(f, "nemesis p{proc} page {page}"),
        }
    }
}

/// Renders a script as a reproducer listing, one op per line.
pub fn script(ops: &[Op]) -> String {
    let mut s = String::new();
    for op in ops {
        s.push_str(&op.to_string());
        s.push('\n');
    }
    s
}

/// SplitMix64 — tiny, seedable, and good enough for op selection.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Generates a deterministic `n`-op script from `seed` — mostly memory
/// traffic, with OS churn mixed in.
pub fn generate(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = SplitMix64(seed ^ 0x5eed);
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let proc = (rng.next() % NPROCS as u64) as u8;
        let ppage = (rng.next() % PRIV_PAGES as u64) as u8;
        let spage = (rng.next() % SHM_PAGES as u64) as u8;
        let w = rng.next() & 1 == 0;
        ops.push(match rng.next() % 100 {
            0..=54 => access(w, proc, ppage, false),
            55..=69 => access(w, proc, spage, true),
            70..=75 => Op::AttachShm {
                proc,
                ro: rng.next() & 1 == 0,
            },
            76..=78 => Op::DetachShm { proc },
            79..=84 => Op::MarkShared { proc, page: ppage },
            85..=88 => Op::Downgrade { proc, page: ppage },
            89..=92 => Op::Remap { proc },
            93..=95 => Op::Churn { proc },
            _ => Op::RebuildFilter { proc },
        });
    }
    ops
}

/// Helper for the generator: read or write, by flag.
fn access(write: bool, proc: u8, page: u8, shared: bool) -> Op {
    if write {
        Op::Write { proc, page, shared }
    } else {
        Op::Read { proc, page, shared }
    }
}

/// Per-process interpreter model (tracks just enough state to keep the
/// generated ops legal — e.g. never writing a downgraded page).
struct ProcModel {
    asid: Asid,
    /// `Some(ro)` while the shared object is attached.
    attached: Option<bool>,
    downgraded: [bool; PRIV_PAGES as usize],
}

/// Two shared objects: one only ever mapped r/w (synonyms), one only
/// ever mapped r/o (content sharing). Mixing writable and read-only
/// mappings of one frame would break the dedup precondition the kernel
/// models (see `shared_ro_is_not_a_synonym_and_cow_breaks_on_write`).
fn setup(kernel: &mut Kernel) -> hvc_types::Result<(Vec<Asid>, ShmId, ShmId)> {
    let shm_rw = kernel.shm_create(SHM_PAGES as u64 * PAGE_SIZE)?;
    let shm_ro = kernel.shm_create(SHM_PAGES as u64 * PAGE_SIZE)?;
    let mut asids = Vec::with_capacity(NPROCS);
    for p in 0..NPROCS {
        let asid = kernel.create_process()?;
        kernel.mmap(
            asid,
            VirtAddr::new(priv_base(p)),
            PRIV_PAGES as u64 * PAGE_SIZE,
            Permissions::RW,
            MapIntent::Private,
        )?;
        asids.push(asid);
    }
    Ok((asids, shm_rw, shm_ro))
}

/// Runs a stress script through a fresh [`DiffHarness`] (hybrid scheme
/// under test vs the ideal oracle) and returns every violation.
///
/// # Errors
///
/// Propagates harness-construction errors.
pub fn run_script(ops: &[Op]) -> hvc_types::Result<Vec<Violation>> {
    let cfg = CheckConfig { sweep_every: 64 };
    let (mut h, (asids, shm_rw, shm_ro)) = DiffHarness::new(
        SystemConfig::isca2016(),
        TranslationScheme::HybridDelayedTlb(1024),
        cfg,
        4 << 30,
        AllocPolicy::DemandPaging,
        setup,
    )?;
    let mut procs: Vec<ProcModel> = asids
        .into_iter()
        .map(|asid| ProcModel {
            asid,
            attached: None,
            downgraded: [false; PRIV_PAGES as usize],
        })
        .collect();

    for &op in ops {
        match op {
            Op::Read { proc, page, shared } | Op::Write { proc, page, shared } => {
                let p = proc as usize % NPROCS;
                let m = &procs[p];
                if shared && m.attached.is_none() {
                    continue;
                }
                // Writes to a downgraded *private* page would fault for
                // real (no CoW backing) — the generator's write becomes
                // a read. Writes through a r/o attach break CoW.
                let write = matches!(op, Op::Write { .. })
                    && (shared || !m.downgraded[page as usize % PRIV_PAGES as usize]);
                let base = if shared {
                    shm_base(p) + (page as u64 % SHM_PAGES as u64) * PAGE_SIZE
                } else {
                    priv_base(p) + (page as u64 % PRIV_PAGES as u64) * PAGE_SIZE
                };
                let va = VirtAddr::new(base + 0x40);
                let mref = if write {
                    MemRef::write(m.asid, va)
                } else {
                    MemRef::read(m.asid, va)
                };
                h.step(TraceItem::new(1, mref), 1);
            }
            Op::AttachShm { proc, ro } => {
                let p = proc as usize % NPROCS;
                if procs[p].attached.is_some() {
                    continue;
                }
                let asid = procs[p].asid;
                let intent = if ro {
                    MapIntent::SharedRo(shm_ro)
                } else {
                    MapIntent::Shared(shm_rw)
                };
                let perm = if ro {
                    Permissions::READ
                } else {
                    Permissions::RW
                };
                let ok = h.os(|k| {
                    k.mmap(
                        asid,
                        VirtAddr::new(shm_base(p)),
                        SHM_PAGES as u64 * PAGE_SIZE,
                        perm,
                        intent,
                    )
                    .is_ok()
                });
                if ok {
                    procs[p].attached = Some(ro);
                }
            }
            Op::DetachShm { proc } => {
                let p = proc as usize % NPROCS;
                if procs[p].attached.is_none() {
                    continue;
                }
                let asid = procs[p].asid;
                h.os(|k| {
                    let _ = k.munmap(asid, VirtAddr::new(shm_base(p)));
                });
                procs[p].attached = None;
            }
            Op::MarkShared { proc, page } => {
                let p = proc as usize % NPROCS;
                let asid = procs[p].asid;
                let va =
                    VirtAddr::new(priv_base(p) + (page as u64 % PRIV_PAGES as u64) * PAGE_SIZE);
                h.os(|k| {
                    let _ = k.mark_page_shared(asid, va);
                });
            }
            Op::Downgrade { proc, page } => {
                let p = proc as usize % NPROCS;
                let asid = procs[p].asid;
                let idx = page as usize % PRIV_PAGES as usize;
                let va = VirtAddr::new(priv_base(p) + idx as u64 * PAGE_SIZE);
                let ok = h.os(|k| k.downgrade_page_read_only(asid, va).is_ok());
                if ok {
                    procs[p].downgraded[idx] = true;
                }
            }
            Op::Remap { proc } => {
                let p = proc as usize % NPROCS;
                let asid = procs[p].asid;
                h.os(|k| {
                    let _ = k.munmap(asid, VirtAddr::new(priv_base(p)));
                    let _ = k.mmap(
                        asid,
                        VirtAddr::new(priv_base(p)),
                        PRIV_PAGES as u64 * PAGE_SIZE,
                        Permissions::RW,
                        MapIntent::Private,
                    );
                });
                procs[p].downgraded = [false; PRIV_PAGES as usize];
            }
            Op::Churn { proc } => {
                let p = proc as usize % NPROCS;
                let old = procs[p].asid;
                let asid = h.os(|k| {
                    let _ = k.destroy_process(old);
                    let asid = k.create_process().expect("ASID space not exhausted");
                    let _ = k.mmap(
                        asid,
                        VirtAddr::new(priv_base(p)),
                        PRIV_PAGES as u64 * PAGE_SIZE,
                        Permissions::RW,
                        MapIntent::Private,
                    );
                    asid
                });
                procs[p] = ProcModel {
                    asid,
                    attached: None,
                    downgraded: [false; PRIV_PAGES as usize],
                };
            }
            Op::RebuildFilter { proc } => {
                let p = proc as usize % NPROCS;
                let asid = procs[p].asid;
                h.os(|k| {
                    let _ = k.rebuild_filter(asid);
                });
            }
            Op::Nemesis { proc, page } => {
                let p = proc as usize % NPROCS;
                let asid = procs[p].asid;
                let va =
                    VirtAddr::new(priv_base(p) + (page as u64 % PRIV_PAGES as u64) * PAGE_SIZE);
                h.inject_sut_only_os(|k| {
                    let _ = k.mark_page_shared(asid, va);
                });
            }
        }
    }
    Ok(h.finish())
}

/// Shrinks a failing script to a locally-minimal reproducer with a
/// delta-debugging pass (remove halving chunks while the script still
/// fails). Returns the input unchanged if it does not fail.
///
/// # Errors
///
/// Propagates harness-construction errors.
pub fn shrink(ops: &[Op]) -> hvc_types::Result<Vec<Op>> {
    let mut cur = ops.to_vec();
    if run_script(&cur)?.is_empty() {
        return Ok(cur);
    }
    let mut chunk = cur.len();
    while chunk > 0 {
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let mut cand = cur.clone();
            cand.drain(i..end);
            if !run_script(&cand)?.is_empty() {
                cur = cand;
            } else {
                i = end;
            }
        }
        chunk /= 2;
    }
    Ok(cur)
}
