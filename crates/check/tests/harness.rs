//! End-to-end checks of the differential harnesses: clean runs stay
//! clean, the checked report matches an unchecked run bit-for-bit, and
//! the injected historical flush bug is caught.

use hvc_check::Violation;
use hvc_check::{stress, CheckConfig, DiffHarness, VirtDiffHarness};
use hvc_core::{SystemConfig, SystemSim, TranslationScheme, VirtScheme};
use hvc_os::{AllocPolicy, Kernel};
use hvc_types::{Asid, BlockName, Vmid};
use hvc_virt::Hypervisor;
use hvc_workloads::{apps, WorkloadInstance};

const GIB: u64 = 1 << 30;

fn native_setup(kernel: &mut Kernel) -> hvc_types::Result<WorkloadInstance> {
    apps::gups(8 << 20).instantiate(kernel, 7)
}

#[test]
fn native_checked_run_is_clean_and_matches_unchecked_report() {
    let (mut h, mut wl) = DiffHarness::new(
        SystemConfig::isca2016(),
        TranslationScheme::HybridDelayedTlb(1024),
        CheckConfig::default(),
        4 * GIB,
        AllocPolicy::DemandPaging,
        native_setup,
    )
    .unwrap();
    h.warm_up(&mut wl, 1000);
    let checked = h.run(&mut wl, 4000);
    assert!(h.finish().is_empty(), "clean workload must stay clean");

    // The same run without any checking: reports must be identical,
    // demonstrating that checking observes without perturbing.
    let mut kernel = Kernel::new(4 * GIB, AllocPolicy::DemandPaging);
    let mut wl2 = native_setup(&mut kernel).unwrap();
    let mut sim = SystemSim::new(
        kernel,
        SystemConfig::isca2016(),
        TranslationScheme::HybridDelayedTlb(1024),
    );
    sim.warm_up(&mut wl2, 1000);
    let plain = sim.run(&mut wl2, 4000);
    assert_eq!(checked.instructions, plain.instructions);
    assert_eq!(checked.cycles, plain.cycles);
    assert_eq!(checked.translation, plain.translation);
    assert_eq!(checked.cache, plain.cache);
    assert_eq!(checked.dram, plain.dram);
}

#[test]
fn native_process_churn_stays_clean() {
    let (mut h, mut wl) = DiffHarness::new(
        SystemConfig::isca2016(),
        TranslationScheme::HybridDelayedTlb(1024),
        CheckConfig { sweep_every: 256 },
        4 * GIB,
        AllocPolicy::DemandPaging,
        native_setup,
    )
    .unwrap();
    h.run(&mut wl, 2000);
    let asid = wl.procs()[0].asid;
    h.os(|k| k.destroy_process(asid).unwrap());
    h.sweep();
    assert!(
        h.violations().is_empty(),
        "destroy_process through os() must leave no stale state: {:?}",
        h.violations()
    );
}

fn virt_setup() -> hvc_types::Result<(Hypervisor, Vmid, WorkloadInstance)> {
    let mut hv = Hypervisor::new(4 * GIB);
    let vm = hv.create_vm(GIB, AllocPolicy::DemandPaging, false)?;
    let gk = hv.guest_kernel_mut(vm)?;
    let wl = apps::gups(8 << 20).instantiate(gk, 7)?;
    Ok((hv, vm, wl))
}

#[test]
fn virt_checked_run_is_clean() {
    let (mut h, mut wl) = VirtDiffHarness::new(
        SystemConfig::isca2016(),
        VirtScheme::HybridDelayedNested(1024),
        CheckConfig::default(),
        virt_setup,
    )
    .unwrap();
    h.warm_up(&mut wl, 500);
    h.run(&mut wl, 2000);
    let v = h.finish();
    assert!(v.is_empty(), "clean guest workload must stay clean: {v:?}");
}

#[test]
fn virt_guest_destroy_is_clean_with_the_fix() {
    let (mut h, mut wl) = VirtDiffHarness::new(
        SystemConfig::isca2016(),
        VirtScheme::HybridDelayedNested(1024),
        CheckConfig::default(),
        virt_setup,
    )
    .unwrap();
    h.run(&mut wl, 2000);
    let asid = wl.procs()[0].asid;
    h.guest_os(|gk| {
        let _ = gk.destroy_process(asid);
    });
    let v = h.finish();
    assert!(v.is_empty(), "guest destroy must flush everything: {v:?}");
}

#[test]
fn virt_injected_flush_drop_is_caught() {
    // Reverting the virt_system.rs fix (Space/DowngradeRo requests
    // dropped) must surface under hvc-check as stale virtually tagged
    // lines and/or stale TLB entries after guest process destruction.
    let (mut h, mut wl) = VirtDiffHarness::new(
        SystemConfig::isca2016(),
        VirtScheme::HybridDelayedNested(1024),
        CheckConfig::default(),
        virt_setup,
    )
    .unwrap();
    h.inject_drop_non_page_flushes();
    h.run(&mut wl, 2000);
    let asid = wl.procs()[0].asid;
    h.guest_os(|gk| {
        let _ = gk.destroy_process(asid);
    });
    let sut_asid_lines = h
        .sut()
        .hierarchy()
        .resident_names()
        .filter(|n| matches!(n, BlockName::Virt(a, _) if *a == asid))
        .count();
    assert!(
        sut_asid_lines > 0,
        "injection must leave stale lines behind"
    );
    let v = h.finish();
    assert!(
        v.iter()
            .any(|v| matches!(v, Violation::StaleLine { .. } | Violation::TlbStale { .. })),
        "dropped Space flush must be flagged, got: {v:?}"
    );
}

#[test]
fn stress_scripts_run_clean_on_default_seeds() {
    for seed in [1u64, 2, 3] {
        let ops = stress::generate(seed, 300);
        let v = stress::run_script(&ops).unwrap();
        assert!(
            v.is_empty(),
            "seed {seed} must run clean, got: {}\nscript:\n{}",
            v.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; "),
            stress::script(&ops)
        );
    }
}

#[test]
fn shrinker_reduces_an_injected_failure_to_a_minimal_script() {
    let mut ops = stress::generate(11, 120);
    // A nemesis op mutates only the machine under test, so the twin
    // kernels diverge; everything else in the script is noise.
    ops.push(stress::Op::Nemesis { proc: 0, page: 2 });
    let v = stress::run_script(&ops).unwrap();
    assert!(!v.is_empty(), "nemesis script must fail");
    let min = stress::shrink(&ops).unwrap();
    assert!(!stress::run_script(&min).unwrap().is_empty());
    assert!(
        min.len() <= 3,
        "shrinker should reduce 121 ops to a tiny reproducer, got {} ops:\n{}",
        min.len(),
        stress::script(&min)
    );
    assert!(
        min.iter()
            .any(|op| matches!(op, stress::Op::Nemesis { .. })),
        "the nemesis must survive shrinking"
    );
    let _ = Asid::KERNEL; // silence unused-import lint paths on some cfgs
}
