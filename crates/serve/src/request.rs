//! Parsing and validation of `POST /sweep` request bodies.
//!
//! The body is a JSON object mirroring the sweep CLI: an optional
//! `preset` resolved first, then per-field overrides — the same
//! precedence as `hvcsim sweep --preset … --refs …`. Everything funnels
//! into the existing [`Experiment`] machinery, so a grid that validates
//! on the command line validates identically over HTTP.
//!
//! ```text
//! { "preset": "smoke",                  // optional, see GET /presets
//!   "workloads": ["gups", "mcf"],      // optional overrides …
//!   "schemes": ["baseline", "manyseg"],
//!   "seeds": [42], "llc_bytes": [2097152],
//!   "refs": 20000, "warm": 5000, "mem": 16777216,
//!   "cores": 1, "ifetch": false, "obs": false }
//! ```
//!
//! Unknown fields are rejected rather than ignored — a typo like
//! `"shcemes"` silently running the wrong grid is the failure mode a
//! shared service cannot afford. `replay` is rejected explicitly:
//! trace paths name files on the *server*, and the cell keys of replay
//! runs hash the path, not the trace bytes.

use hvc_runner::json::{self, Value};
use hvc_runner::{presets, Experiment};

/// Parses and validates a request body into a runnable [`Experiment`].
pub fn parse_sweep_request(body: &[u8]) -> Result<Experiment, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let Value::Object(fields) = &doc else {
        return Err("body must be a JSON object".into());
    };

    // Preset first, so later fields override it (CLI precedence).
    let mut exp = match doc.get("preset") {
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| "preset must be a string".to_string())?;
            presets::preset(name).ok_or_else(|| format!("unknown preset '{name}'"))?
        }
        None => Experiment::default(),
    };

    for (field, value) in fields {
        match field.as_str() {
            "preset" => {} // consumed above
            "workloads" => exp.workloads = string_list(field, value)?,
            "schemes" => exp.schemes = string_list(field, value)?,
            "seeds" => exp.seeds = u64_list(field, value)?,
            "llc_bytes" => exp.llc_bytes = u64_list(field, value)?,
            "refs" => exp.refs = usize_field(field, value)?,
            "warm" => exp.warm = usize_field(field, value)?,
            "mem" => exp.mem = u64_field(field, value)?,
            "cores" => exp.cores = usize_field(field, value)?,
            "ifetch" => exp.ifetch = bool_field(field, value)?,
            "obs" => exp.obs = bool_field(field, value)?,
            "replay" => {
                return Err(
                    "replay is not supported over the server API (trace paths are server-local)"
                        .into(),
                )
            }
            other => return Err(format!("unknown field '{other}'")),
        }
    }
    exp.name = match doc.get("preset").and_then(Value::as_str) {
        Some(name) => name.to_string(),
        None => "custom".to_string(),
    };
    exp.replay = None;
    exp.validate()?;
    Ok(exp)
}

fn string_list(field: &str, v: &Value) -> Result<Vec<String>, String> {
    v.as_array()
        .and_then(|items| {
            items
                .iter()
                .map(|i| i.as_str().map(String::from))
                .collect::<Option<Vec<_>>>()
        })
        .ok_or_else(|| format!("{field} must be an array of strings"))
}

fn u64_list(field: &str, v: &Value) -> Result<Vec<u64>, String> {
    v.as_array()
        .and_then(|items| items.iter().map(Value::as_u64).collect::<Option<Vec<_>>>())
        .ok_or_else(|| format!("{field} must be an array of non-negative integers"))
}

fn u64_field(field: &str, v: &Value) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("{field} must be a non-negative integer"))
}

fn usize_field(field: &str, v: &Value) -> Result<usize, String> {
    u64_field(field, v).map(|n| n as usize)
}

fn bool_field(field: &str, v: &Value) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("{field} must be a boolean")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_with_overrides_matches_cli_precedence() {
        let exp = parse_sweep_request(br#"{"preset": "smoke", "refs": 4000, "obs": true}"#)
            .expect("valid request");
        let base = presets::preset("smoke").unwrap();
        assert_eq!(exp.name, "smoke");
        assert_eq!(exp.refs, 4_000, "override applies");
        assert_eq!(exp.warm, base.warm, "unset fields keep the preset");
        assert_eq!(exp.workloads, base.workloads);
        assert!(exp.obs);
    }

    #[test]
    fn bare_grid_without_a_preset() {
        let exp = parse_sweep_request(
            br#"{"workloads": ["gups"], "schemes": ["baseline", "ideal"],
                 "seeds": [1, 2], "refs": 1000, "warm": 0, "mem": 16777216}"#,
        )
        .unwrap();
        assert_eq!(exp.name, "custom");
        assert_eq!(exp.cells().len(), 4);
    }

    #[test]
    fn rejects_malformed_bodies() {
        for (body, needle) in [
            (&b"not json"[..], "JSON"),
            (b"[1,2]", "object"),
            (br#"{"preset": "warp"}"#, "preset"),
            (br#"{"shcemes": ["baseline"]}"#, "unknown field"),
            (br#"{"refs": "many"}"#, "refs"),
            (br#"{"workloads": [1]}"#, "workloads"),
            (br#"{"ifetch": 1}"#, "ifetch"),
            (br#"{"replay": "/tmp/t.hvct"}"#, "replay"),
            (br#"{"schemes": ["bogus"]}"#, "scheme"),
            (br#"{"refs": 0}"#, "refs"),
        ] {
            let err = parse_sweep_request(body).expect_err(&format!("{body:?} accepted"));
            assert!(
                err.contains(needle),
                "error {err:?} does not mention {needle:?}"
            );
        }
    }

    #[test]
    fn field_order_does_not_matter_for_preset_overrides() {
        let a = parse_sweep_request(br#"{"refs": 777, "preset": "smoke"}"#).unwrap();
        let b = parse_sweep_request(br#"{"preset": "smoke", "refs": 777}"#).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.refs, 777);
    }
}
