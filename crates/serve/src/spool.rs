//! The on-disk result spool: crash-safe persistence for finished cells.
//!
//! Every completed cell is written to `<dir>/<cell key>.json` through
//! [`hvc_runner::write_atomic`], so a server killed mid-sweep leaves a
//! directory of complete, parseable files and nothing else. On restart
//! the server replays the spool into the in-memory cache; resubmitting
//! the interrupted sweep then reuses every finished cell and simulates
//! only the remainder — and because the spooled statistics are the
//! exact serialized form, the resumed report is byte-identical to an
//! uninterrupted run.
//!
//! File format (schema [`SPOOL_SCHEMA`]):
//!
//! ```text
//! { "schema": "hvc-spool-cell/1",
//!   "key": "<016x cell key>",       // must match the filename stem
//!   "workload": "...", "scheme": "...",   // provenance, for humans
//!   "stats": { ... full obs-wide stats object ... } }
//! ```
//!
//! Replay is defensive: files whose name, schema, or key field do not
//! line up are skipped (and counted), never trusted. Stale temp files
//! from a crashed writer have a non-`.json` suffix and are ignored.

use crate::cache::{CachedCell, Origin};
use hvc_runner::json::{self, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Schema tag of one spooled cell file.
pub const SPOOL_SCHEMA: &str = "hvc-spool-cell/1";

/// Writes one finished cell to the spool, atomically.
pub fn write_cell(
    dir: &Path,
    key: u64,
    workload: &str,
    scheme: &str,
    stats: &Value,
) -> std::io::Result<()> {
    let doc = Value::Object(vec![
        ("schema".into(), Value::Str(SPOOL_SCHEMA.into())),
        ("key".into(), Value::Str(format!("{key:016x}"))),
        ("workload".into(), Value::Str(workload.into())),
        ("scheme".into(), Value::Str(scheme.into())),
        ("stats".into(), stats.clone()),
    ]);
    hvc_runner::write_atomic(cell_path(dir, key), doc.to_pretty())
}

/// The spool filename of a cell key.
pub fn cell_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.json"))
}

/// What a spool replay found.
#[derive(Debug, Default)]
pub struct Replay {
    /// Valid cells, keyed and ready for the cache.
    pub cells: Vec<(u64, Arc<CachedCell>)>,
    /// Files that existed but failed validation and were skipped.
    pub skipped: u64,
}

/// Scans `dir` (creating it if missing) and parses every complete cell
/// file. Invalid or mismatched files are skipped, not fatal: the spool
/// is a cache of truth, and the worst case of dropping a file is one
/// re-simulation.
pub fn replay(dir: &Path) -> std::io::Result<Replay> {
    std::fs::create_dir_all(dir)?;
    let mut out = Replay::default();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    // Deterministic replay order (directory order is arbitrary).
    entries.sort();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue; // temp files, strangers
        }
        match read_cell(&path) {
            Some((key, cell)) => out.cells.push((key, Arc::new(cell))),
            None => out.skipped += 1,
        }
    }
    Ok(out)
}

/// Parses and validates one spool file; `None` means "skip it".
fn read_cell(path: &Path) -> Option<(u64, CachedCell)> {
    let stem = path.file_stem()?.to_str()?;
    let key = u64::from_str_radix(stem, 16).ok()?;
    let text = std::fs::read_to_string(path).ok()?;
    let doc = json::parse(&text).ok()?;
    if doc.get("schema")?.as_str()? != SPOOL_SCHEMA {
        return None;
    }
    if doc.get("key")?.as_str()? != format!("{key:016x}") {
        return None; // renamed or copied under the wrong name
    }
    let stats = doc.get("stats")?.clone();
    if !matches!(stats, Value::Object(_)) {
        return None;
    }
    Some((
        key,
        CachedCell {
            stats,
            origin: Origin::Spool,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hvc-spool-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn stats(n: u64) -> Value {
        Value::Object(vec![("cycles".into(), Value::UInt(n))])
    }

    #[test]
    fn write_then_replay_round_trips() {
        let dir = temp_dir("rt");
        std::fs::create_dir_all(&dir).unwrap();
        write_cell(&dir, 0xabc, "gups", "baseline", &stats(7)).unwrap();
        write_cell(&dir, 0xdef, "gups", "manyseg", &stats(9)).unwrap();
        let replay = replay(&dir).unwrap();
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.cells.len(), 2);
        let (key, cell) = &replay.cells[0];
        assert_eq!(*key, 0xabc);
        assert_eq!(cell.stats, stats(7));
        assert_eq!(cell.origin, Origin::Spool);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_creates_a_missing_directory() {
        let dir = temp_dir("mkdir");
        let replay = replay(&dir).unwrap();
        assert!(replay.cells.is_empty());
        assert!(dir.is_dir());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_and_mismatched_files_are_skipped() {
        let dir = temp_dir("bad");
        std::fs::create_dir_all(&dir).unwrap();
        write_cell(&dir, 1, "gups", "baseline", &stats(1)).unwrap();
        // Truncated JSON.
        std::fs::write(dir.join("0000000000000002.json"), "{\"sch").unwrap();
        // Valid JSON, wrong schema.
        std::fs::write(dir.join("0000000000000003.json"), "{\"schema\": \"x\"}").unwrap();
        // Key field disagrees with the filename (a copied file).
        let stolen = std::fs::read_to_string(cell_path(&dir, 1)).unwrap();
        std::fs::write(dir.join("0000000000000004.json"), stolen).unwrap();
        // Not a hex stem.
        std::fs::write(dir.join("notakey.json"), "{}").unwrap();
        // A leftover temp file is invisible.
        std::fs::write(dir.join("0000000000000005.json.tmp.99"), "junk").unwrap();

        let replay = replay(&dir).unwrap();
        assert_eq!(replay.cells.len(), 1);
        assert_eq!(replay.cells[0].0, 1);
        assert_eq!(replay.skipped, 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
