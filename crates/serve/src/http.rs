//! A deliberately small HTTP/1.1 layer over `std::net`.
//!
//! The server speaks exactly the subset the experiment API needs —
//! `GET`/`POST`, `Content-Length` bodies, one request per connection,
//! `Connection: close` — in the same hand-rolled, dependency-free style
//! as `hvc_runner::json`. Streaming responses (the NDJSON sweep
//! progress) send no `Content-Length`; with `Connection: close` the
//! body legitimately ends when the connection does, which HTTP/1.1
//! explicitly allows and every client understands.
//!
//! Limits are conservative: 64 KB of request head, 4 MB of body.
//! Anything larger — or not a complete, well-formed request — is an
//! error the caller turns into a 4xx.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum request line + headers the server will buffer.
const MAX_HEAD: usize = 64 << 10;
/// Maximum request body (experiment grids are a few KB of JSON).
const MAX_BODY: usize = 4 << 20;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the client, verbatim here).
    pub method: String,
    /// The request target, query string included (e.g. `/sweep`).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Reads one request from the stream. `Err` values are client-facing
/// messages; the caller wraps them in a 400.
pub fn read_request(stream: &mut BufReader<TcpStream>) -> Result<Request, String> {
    let head = read_head(stream)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(format!("malformed request line {request_line:?}"));
    }

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| format!("bad Content-Length {value:?}"))?;
        }
        if name.trim().eq_ignore_ascii_case("transfer-encoding") {
            return Err("chunked request bodies are not supported".into());
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds {MAX_BODY}"));
    }

    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| format!("short body: {e}"))?;
    Ok(Request { method, path, body })
}

/// Reads up to and including the `\r\n\r\n` head terminator, byte by
/// byte (the reader is buffered; a byte loop keeps us from consuming
/// body bytes past the terminator).
fn read_head(stream: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(format!("request head exceeds {MAX_HEAD} bytes"));
        }
        match stream.read(&mut byte) {
            Ok(0) => return Err("connection closed mid-request".into()),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    String::from_utf8(head).map_err(|_| "request head is not UTF-8".into())
}

/// Writes a complete response with a `Content-Length` and closes the
/// exchange (`Connection: close`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Starts a streaming NDJSON response: status line and headers only,
/// no `Content-Length` — the body ends when the connection closes.
pub fn write_stream_head(stream: &mut TcpStream, status: u16) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
        reason(status),
    )?;
    stream.flush()
}

/// The canonical reason phrases for the statuses the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Runs `read_request` against raw client bytes via a loopback pair.
    fn parse_bytes(bytes: &[u8]) -> Result<Request, String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bytes = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&bytes).unwrap();
        });
        let (server_side, _) = listener.accept().unwrap();
        let result = read_request(&mut BufReader::new(server_side));
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_a_get_without_a_body() {
        let req = parse_bytes(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_a_content_length_body() {
        let req = parse_bytes(
            b"POST /sweep HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn rejects_garbage_and_short_bodies() {
        assert!(parse_bytes(b"ELEPHANT\r\n\r\n").is_err());
        assert!(parse_bytes(b"GET /x SMTP/1.0\r\n\r\n").is_err());
        let short = parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nonly-a-bit");
        assert!(short.is_err(), "{short:?}");
        let bad_len = parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: lots\r\n\r\n");
        assert!(bad_len.is_err());
        assert!(parse_bytes(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").is_err());
    }

    #[test]
    fn response_writer_emits_well_formed_http() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            c.read_to_string(&mut text).unwrap();
            text
        });
        let (mut server_side, _) = listener.accept().unwrap();
        write_response(
            &mut server_side,
            404,
            "application/json",
            b"{\"error\":\"nope\"}",
        )
        .unwrap();
        drop(server_side);
        let text = client.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"), "{text}");
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.ends_with("{\"error\":\"nope\"}"));
    }
}
