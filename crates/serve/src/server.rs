//! The experiment server: listener, router, and the sweep pipeline.
//!
//! Request lifecycle for `POST /sweep`:
//!
//! 1. Parse + validate the grid with the `hvc-runner` machinery.
//! 2. Key every cell with [`hvc_runner::cell_key`] and probe the
//!    [`ResultCache`]; hits stream back immediately as `cell` events
//!    tagged `"cache"` (this process simulated them earlier) or
//!    `"spool"` (replayed from disk after a restart).
//! 3. Misses are enqueued on the shared [`WorkerPool`]; each completed
//!    cell is spooled to disk (atomic write-then-rename), inserted into
//!    the cache, and streamed back tagged `"simulated"` — so a kill at
//!    any instant loses at most in-flight cells, never finished ones.
//! 4. When every cell has arrived, the handler emits a `done` event
//!    whose embedded report is **deterministic** (no wall-clock fields):
//!    a resumed, cached, or re-run sweep of the same grid produces a
//!    byte-identical report.

use crate::cache::{CachedCell, Origin, ResultCache};
use crate::http;
use crate::pool::WorkerPool;
use crate::request::parse_sweep_request;
use crate::spool;
use hvc_runner::json::Value;
use hvc_runner::{cell_key, presets, run_cell, run_report_value, Cell, Experiment, KEY_SCHEMA};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Deterministic report schema embedded in the `done` event.
pub const REPORT_SCHEMA: &str = "hvc-serve-report/1";

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Simulation worker threads shared by all requests.
    pub jobs: usize,
    /// Result-cache capacity in cells.
    pub cache_capacity: usize,
    /// Spool directory for crash-safe persistence; `None` disables the
    /// spool (results then live only in memory).
    pub spool_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            jobs: 2,
            cache_capacity: 4096,
            spool_dir: None,
        }
    }
}

/// Shared state visible to every connection handler and worker job.
struct Shared {
    cache: ResultCache,
    pool: WorkerPool,
    spool_dir: Option<PathBuf>,
    spool_replayed: u64,
    spool_skipped: u64,
    spool_errors: AtomicU64,
    shutting_down: AtomicBool,
}

/// A running experiment server. Dropping it (or calling
/// [`Server::shutdown`]) stops the listener, drains the worker pool,
/// and joins every connection handler.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), replays the
    /// spool into the cache, and starts accepting connections.
    pub fn start(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let (mut replayed, mut skipped) = (0, 0);
        let cache = ResultCache::new(config.cache_capacity);
        if let Some(dir) = &config.spool_dir {
            let replay = spool::replay(dir)?;
            for (key, cell) in replay.cells {
                cache.insert(key, cell);
                replayed += 1;
            }
            skipped = replay.skipped;
        }
        let shared = Arc::new(Shared {
            cache,
            pool: WorkerPool::new(config.jobs),
            spool_dir: config.spool_dir,
            spool_replayed: replayed,
            spool_skipped: skipped,
            spool_errors: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        });

        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        return; // the shutdown wake-up connection lands here
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    let handle = std::thread::spawn(move || handle_connection(stream, &shared));
                    handlers.lock().unwrap().push(handle);
                }
            })
        };
        Ok(Server {
            addr: local,
            shared,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: the pool finishes in-flight cells (persisting
    /// them to the spool) and drops queued ones, interrupted request
    /// streams abort, and every thread is joined before this returns.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Finish running cells, drop queued ones; aborts any handler
        // blocked on simulation results.
        self.shared.pool.shutdown();
        // Wake the blocking accept() so the listener thread sees the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = self.handlers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn error_body(message: &str) -> Vec<u8> {
    object(vec![("error", Value::Str(message.into()))])
        .to_compact()
        .into_bytes()
}

/// One connection = one request = one response (`Connection: close`).
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // A stalled or hostile client cannot pin the handler forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(stream);
    let request = match http::read_request(&mut reader) {
        Ok(r) => r,
        Err(e) => {
            let mut stream = reader.into_inner();
            let _ = http::write_response(&mut stream, 400, "application/json", &error_body(&e));
            return;
        }
    };
    let mut stream = reader.into_inner();
    let path = request.path.split('?').next().unwrap_or("");
    let respond = |stream: &mut TcpStream, status, body: Value| {
        let _ = http::write_response(
            stream,
            status,
            "application/json",
            body.to_compact().as_bytes(),
        );
    };
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => respond(
            &mut stream,
            200,
            object(vec![
                ("ok", Value::Bool(true)),
                ("service", Value::Str("hvcsim-serve".into())),
                ("version", Value::Str(env!("CARGO_PKG_VERSION").into())),
            ]),
        ),
        ("GET", "/stats") => respond(&mut stream, 200, stats_body(shared)),
        ("GET", "/presets") => respond(
            &mut stream,
            200,
            Value::Array(
                presets::PRESET_NAMES
                    .iter()
                    .map(|(name, summary)| {
                        object(vec![
                            ("name", Value::Str((*name).into())),
                            ("summary", Value::Str((*summary).into())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("POST", "/sweep") => match parse_sweep_request(&request.body) {
            Ok(exp) => stream_sweep(&mut stream, shared, exp),
            Err(e) => {
                let _ = http::write_response(&mut stream, 400, "application/json", &error_body(&e));
            }
        },
        ("GET" | "POST", _) => {
            let _ = http::write_response(
                &mut stream,
                404,
                "application/json",
                &error_body(&format!("no endpoint {path}")),
            );
        }
        (method, _) => {
            let _ = http::write_response(
                &mut stream,
                405,
                "application/json",
                &error_body(&format!("method {method} not allowed")),
            );
        }
    }
}

fn stats_body(shared: &Shared) -> Value {
    let c = shared.cache.stats();
    object(vec![
        ("ok", Value::Bool(true)),
        ("jobs", Value::UInt(shared.pool.jobs() as u64)),
        ("cells_executed", Value::UInt(shared.pool.executed())),
        (
            "cache",
            object(vec![
                ("entries", Value::UInt(c.entries)),
                ("capacity", Value::UInt(c.capacity)),
                ("hits", Value::UInt(c.hits)),
                ("misses", Value::UInt(c.misses)),
                ("insertions", Value::UInt(c.insertions)),
                ("evictions", Value::UInt(c.evictions)),
            ]),
        ),
        (
            "spool",
            object(vec![
                ("enabled", Value::Bool(shared.spool_dir.is_some())),
                ("replayed", Value::UInt(shared.spool_replayed)),
                ("skipped", Value::UInt(shared.spool_skipped)),
                (
                    "write_errors",
                    Value::UInt(shared.spool_errors.load(Ordering::Relaxed)),
                ),
            ]),
        ),
    ])
}

/// Sends one NDJSON event; a failed write means the client hung up, and
/// the caller stops streaming.
fn emit(stream: &mut TcpStream, event: &Value) -> bool {
    let mut line = event.to_compact();
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.flush())
        .is_ok()
}

/// How a cell's result reached this response.
fn source_name(origin: Origin, fresh: bool) -> &'static str {
    if fresh {
        "simulated"
    } else {
        match origin {
            Origin::Simulated => "cache",
            Origin::Spool => "spool",
        }
    }
}

fn cell_event(cell: &Cell, key: u64, source: &'static str, stats: &Value) -> Value {
    object(vec![
        ("event", Value::Str("cell".into())),
        ("index", Value::UInt(cell.index as u64)),
        ("workload", Value::Str(cell.workload.clone())),
        ("scheme", Value::Str(cell.scheme.clone())),
        ("seed", Value::UInt(cell.seed)),
        ("llc_bytes", Value::UInt(cell.llc_bytes)),
        ("key", Value::Str(format!("{key:016x}"))),
        ("source", Value::Str(source.into())),
        // One headline number so progress is human-readable without
        // parsing the final report.
        (
            "cycles",
            stats.get("cycles").cloned().unwrap_or(Value::Null),
        ),
    ])
}

/// Runs one sweep request, streaming progress and the final report.
fn stream_sweep(stream: &mut TcpStream, shared: &Arc<Shared>, exp: Experiment) {
    let exp = Arc::new(exp);
    let cells = exp.cells();
    let keys: Vec<u64> = cells.iter().map(|c| cell_key(&exp, c)).collect();
    let start = Instant::now();

    if http::write_stream_head(stream, 200).is_err() {
        return;
    }
    if !emit(
        stream,
        &object(vec![
            ("event", Value::Str("start".into())),
            ("experiment", Value::Str(exp.name.clone())),
            ("cells", Value::UInt(cells.len() as u64)),
            ("key_schema", Value::Str(KEY_SCHEMA.into())),
        ]),
    ) {
        return;
    }

    // Pass 1: serve every warm cell straight from the cache, in grid
    // order, and remember which cells still need simulating.
    let mut results: Vec<Option<Arc<CachedCell>>> = vec![None; cells.len()];
    let mut counts = [0u64; 3]; // simulated / cache / spool
    let mut pending: Vec<usize> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        match shared.cache.get(keys[i]) {
            Some(hit) => {
                let source = source_name(hit.origin, false);
                counts[if hit.origin == Origin::Spool { 2 } else { 1 }] += 1;
                let ok = emit(stream, &cell_event(cell, keys[i], source, &hit.stats));
                results[i] = Some(hit);
                if !ok {
                    return;
                }
            }
            None => pending.push(i),
        }
    }

    // Pass 2: shard the cold cells across the worker pool. Workers
    // spool + cache each completion themselves, so finished work
    // survives even if this handler (or the whole server) dies first.
    let (tx, rx) = channel::<(usize, Result<Arc<CachedCell>, String>)>();
    let expected = pending.len();
    for i in pending {
        let exp = Arc::clone(&exp);
        let cell = cells[i].clone();
        let key = keys[i];
        let tx = tx.clone();
        let job_shared = Arc::clone(shared);
        let accepted = shared.pool.submit(move || {
            let outcome = run_cell(&exp, &cell, 1, None, false).map(|(report, filters)| {
                // Memoize the widest serialization; `obs: false`
                // responses strip the observability sections later.
                let stats = run_report_value(&report, &filters, &cell.scheme, true);
                if let Some(dir) = &job_shared.spool_dir {
                    if spool::write_cell(dir, key, &cell.workload, &cell.scheme, &stats).is_err() {
                        job_shared.spool_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let cached = Arc::new(CachedCell {
                    stats,
                    origin: Origin::Simulated,
                });
                job_shared.cache.insert(key, Arc::clone(&cached));
                cached
            });
            let _ = tx.send((cell.index, outcome));
        });
        if !accepted {
            // Server is draining; the abort event below reports it.
            break;
        }
    }
    drop(tx);

    // Pass 3: stream completions as they land (completion order; the
    // report reassembles grid order).
    let mut received = 0usize;
    let mut errors = 0u64;
    while let Ok((index, outcome)) = rx.recv() {
        received += 1;
        match outcome {
            Ok(cached) => {
                counts[0] += 1;
                let ok = emit(
                    stream,
                    &cell_event(&cells[index], keys[index], "simulated", &cached.stats),
                );
                results[index] = Some(cached);
                if !ok {
                    return;
                }
            }
            Err(e) => {
                errors += 1;
                if !emit(
                    stream,
                    &object(vec![
                        ("event", Value::Str("error".into())),
                        ("index", Value::UInt(index as u64)),
                        ("error", Value::Str(e)),
                    ]),
                ) {
                    return;
                }
            }
        }
    }

    let complete = results.iter().all(Option::is_some);
    if received < expected || !complete {
        // The pool was drained mid-sweep (server shutdown): everything
        // completed so far is already cached and spooled; tell the
        // client how far we got and stop.
        emit(
            stream,
            &object(vec![
                ("event", Value::Str("aborted".into())),
                (
                    "completed",
                    Value::UInt(results.iter().flatten().count() as u64),
                ),
                ("cells", Value::UInt(cells.len() as u64)),
                ("errors", Value::UInt(errors)),
            ]),
        );
        return;
    }
    if errors > 0 {
        emit(
            stream,
            &object(vec![
                ("event", Value::Str("failed".into())),
                ("errors", Value::UInt(errors)),
            ]),
        );
        return;
    }

    let report = report_value(&exp, &cells, &keys, &results);
    emit(
        stream,
        &object(vec![
            ("event", Value::Str("done".into())),
            ("cells", Value::UInt(cells.len() as u64)),
            ("simulated", Value::UInt(counts[0])),
            ("cached", Value::UInt(counts[1])),
            ("spooled", Value::UInt(counts[2])),
            ("wall_ms", Value::UInt(start.elapsed().as_millis() as u64)),
            ("report", report),
        ]),
    );
}

/// The deterministic final report: everything a `hvc-sweep-report/3`
/// cell carries, minus wall-clock fields, plus per-cell keys — so an
/// uninterrupted run, a fully cached re-run, and a crash-resumed run of
/// the same grid serialize byte-identically.
fn report_value(
    exp: &Experiment,
    cells: &[Cell],
    keys: &[u64],
    results: &[Option<Arc<CachedCell>>],
) -> Value {
    let strs = |v: &[String]| Value::Array(v.iter().map(|s| Value::Str(s.clone())).collect());
    let cell_values = cells
        .iter()
        .zip(results)
        .zip(keys)
        .map(|((cell, result), &key)| {
            let full = &result.as_ref().expect("complete").stats;
            let stats = if exp.obs {
                full.clone()
            } else {
                strip_obs(full)
            };
            object(vec![
                ("index", Value::UInt(cell.index as u64)),
                ("workload", Value::Str(cell.workload.clone())),
                ("scheme", Value::Str(cell.scheme.clone())),
                ("base_seed", Value::UInt(cell.base_seed)),
                ("seed", Value::UInt(cell.seed)),
                ("llc_bytes", Value::UInt(cell.llc_bytes)),
                ("key", Value::Str(format!("{key:016x}"))),
                ("stats", stats),
            ])
        })
        .collect();
    object(vec![
        ("schema", Value::Str(REPORT_SCHEMA.into())),
        (
            "simulator",
            object(vec![
                ("name", Value::Str("hvc".into())),
                ("version", Value::Str(env!("CARGO_PKG_VERSION").into())),
            ]),
        ),
        (
            "experiment",
            object(vec![
                ("name", Value::Str(exp.name.clone())),
                ("workloads", strs(&exp.workloads)),
                ("schemes", strs(&exp.schemes)),
                (
                    "seeds",
                    Value::Array(exp.seeds.iter().map(|&s| Value::UInt(s)).collect()),
                ),
                (
                    "llc_bytes",
                    Value::Array(exp.llc_bytes.iter().map(|&b| Value::UInt(b)).collect()),
                ),
                ("refs", Value::UInt(exp.refs as u64)),
                ("warm", Value::UInt(exp.warm as u64)),
                ("mem", Value::UInt(exp.mem)),
                ("cores", Value::UInt(exp.cores as u64)),
                ("ifetch", Value::Bool(exp.ifetch)),
                ("obs", Value::Bool(exp.obs)),
            ]),
        ),
        ("cells", Value::Array(cell_values)),
    ])
}

/// The cache memoizes the obs-wide stats; an `obs: false` request gets
/// the lean serialization by dropping the two observability sections —
/// exactly what `hvc-runner` would have omitted.
fn strip_obs(stats: &Value) -> Value {
    match stats {
        Value::Object(fields) => Value::Object(
            fields
                .iter()
                .filter(|(k, _)| k != "latency" && k != "attribution")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_obs_removes_only_the_observability_sections() {
        let stats = object(vec![
            ("cycles", Value::UInt(5)),
            ("latency", object(vec![("p50", Value::UInt(1))])),
            ("attribution", object(vec![("dram", Value::UInt(2))])),
            ("os", object(vec![])),
        ]);
        let lean = strip_obs(&stats);
        assert!(lean.get("cycles").is_some());
        assert!(lean.get("os").is_some());
        assert!(lean.get("latency").is_none());
        assert!(lean.get("attribution").is_none());
        assert_eq!(strip_obs(&Value::Null), Value::Null);
    }
}
