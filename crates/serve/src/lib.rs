//! `hvc-serve` — a concurrent experiment server for the simulator.
//!
//! `hvcsim serve` turns the sweep runner into a long-lived service: a
//! threaded HTTP/1.1 server (std-only, in the same dependency-free
//! spirit as the rest of the workspace) that accepts experiment-grid
//! requests, shards their cells across a bounded worker pool, streams
//! per-cell progress back as NDJSON, and **memoizes** every completed
//! cell twice over —
//!
//! * in memory, in a sharded LRU [`cache::ResultCache`] keyed by the
//!   stable [`hvc_runner::cell_key`], so re-submitting an overlapping
//!   grid re-simulates nothing it has already run, and
//! * on disk, in a crash-safe [`spool`] of atomically-written cell
//!   files, so a server killed mid-sweep resumes on restart and the
//!   finished report is byte-identical to an uninterrupted run.
//!
//! The modules compose bottom-up: [`http`] speaks the wire protocol,
//! [`request`] validates grids through the `hvc-runner` machinery,
//! [`pool`] bounds simulation concurrency, [`cache`] and [`spool`]
//! memoize, and [`server`] ties them together behind
//! [`server::Server::start`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod pool;
pub mod request;
pub mod server;
pub mod spool;

pub use cache::{CacheStats, CachedCell, Origin, ResultCache};
pub use pool::WorkerPool;
pub use server::{ServeConfig, Server, REPORT_SCHEMA};
pub use spool::SPOOL_SCHEMA;
