//! The sharded, memoizing result cache.
//!
//! Maps a stable [`hvc_runner::cell_key`] to the cell's fully
//! serialized statistics. The map is split into power-of-two shards,
//! each behind its own mutex, so concurrent sweep requests contend only
//! when they touch the same shard — the classic concurrent keyed-cache
//! shape (cf. mini-moka), hand-rolled because the workspace is offline.
//!
//! Eviction is LRU with a global capacity bound: every hit stamps the
//! entry with a monotonically increasing tick, and an insert into a
//! full shard evicts that shard's stalest entry. Scanning the shard for
//! the minimum stamp is O(shard size), which at the default capacity
//! (a few thousand entries across 16 shards) is far cheaper than the
//! multi-millisecond simulations the cache fronts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where a cached value originally came from — reported per cell in the
/// NDJSON stream so clients (and tests) can tell a warm-cache hit from
/// a crash-resume replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Origin {
    /// Simulated by this server process and inserted on completion.
    Simulated,
    /// Replayed from the on-disk spool when the server restarted.
    Spool,
}

/// One memoized cell: the serialized `stats` object (observability
/// sections included; they are stripped at response time for
/// `obs: false` requests) plus its provenance.
#[derive(Clone, Debug)]
pub struct CachedCell {
    /// The cell's `stats` JSON (always the full, obs-wide form).
    pub stats: hvc_runner::json::Value,
    /// How this entry entered the cache.
    pub origin: Origin,
}

struct Entry {
    value: Arc<CachedCell>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
}

/// Monotonic counters describing cache traffic, for `GET /stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (first-time completions and spool replays).
    pub insertions: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Total capacity across shards.
    pub capacity: u64,
}

/// A sharded `cell_key → CachedCell` LRU cache, safe to share across
/// request-handler and worker threads behind an `Arc`.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// Number of shards; a power of two so shard selection is a mask.
    const SHARDS: usize = 16;

    /// Creates a cache holding at most `capacity` entries (rounded up
    /// to a multiple of the shard count; a zero capacity still admits
    /// one entry per shard so the cache degrades rather than panics).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            per_shard_capacity: capacity.div_ceil(Self::SHARDS).max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The key is already an FNV-1a hash with well-mixed low bits, so
    /// shard selection is a plain mask.
    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key as usize) & (Self::SHARDS - 1)]
    }

    /// Looks up `key`, refreshing its LRU stamp on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<CachedCell>> {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().unwrap();
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the shard's
    /// least-recently-used entry if the shard is full.
    pub fn insert(&self, key: u64, value: Arc<CachedCell>) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().unwrap();
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            if let Some(&victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        if shard
            .map
            .insert(
                key,
                Entry {
                    value,
                    last_used: stamp,
                },
            )
            .is_none()
        {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A consistent-enough snapshot of the traffic counters (each
    /// counter is individually exact; the set is not read atomically).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap().map.len() as u64)
                .sum(),
            capacity: (self.per_shard_capacity * Self::SHARDS) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_runner::json::Value;

    fn cell(n: u64) -> Arc<CachedCell> {
        Arc::new(CachedCell {
            stats: Value::UInt(n),
            origin: Origin::Simulated,
        })
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ResultCache::new(64);
        assert!(cache.get(1).is_none());
        cache.insert(1, cell(10));
        let hit = cache.get(1).expect("hit");
        assert_eq!(hit.stats, Value::UInt(10));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        // Single-entry shards: keys in the same shard displace each
        // other, and the LRU (not the newest) entry is the victim.
        let cache = ResultCache::new(0);
        let (a, b) = (16, 32); // same shard (both ≡ 0 mod 16)
        cache.insert(a, cell(1));
        cache.insert(b, cell(2));
        assert!(cache.get(a).is_none(), "LRU entry should be evicted");
        assert!(cache.get(b).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn touching_an_entry_protects_it_from_eviction() {
        let cache = ResultCache::new(ResultCache::SHARDS * 2); // 2 per shard
        let (a, b, c) = (16, 32, 48); // one shard
        cache.insert(a, cell(1));
        cache.insert(b, cell(2));
        assert!(cache.get(a).is_some()); // refresh a; b is now LRU
        cache.insert(c, cell(3));
        assert!(cache.get(a).is_some(), "refreshed entry survived");
        assert!(cache.get(b).is_none(), "stale entry evicted");
        assert!(cache.get(c).is_some());
    }

    #[test]
    fn reinserting_a_key_replaces_without_counting_twice() {
        let cache = ResultCache::new(64);
        cache.insert(5, cell(1));
        cache.insert(5, cell(2));
        assert_eq!(cache.get(5).unwrap().stats, Value::UInt(2));
        let s = cache.stats();
        assert_eq!((s.insertions, s.entries, s.evictions), (1, 1, 0));
    }

    #[test]
    fn concurrent_readers_and_writers_are_safe() {
        let cache = Arc::new(ResultCache::new(256));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let key = (t * 1_000 + i) % 97;
                        cache.insert(key, cell(key));
                        if let Some(v) = cache.get(key) {
                            // A racing eviction may drop the key, but a
                            // present value is never torn.
                            assert_eq!(v.stats, Value::UInt(key));
                        }
                    }
                });
            }
        });
        assert!(cache.stats().entries <= 256 + ResultCache::SHARDS as u64);
    }
}
