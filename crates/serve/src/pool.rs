//! A bounded worker pool shared by every in-flight sweep request.
//!
//! Requests enqueue one job per uncached cell; a fixed set of worker
//! threads drains the queue, so the server's simulation concurrency is
//! bounded by `--jobs` no matter how many clients are connected — the
//! overload behavior of a shared service is queueing, not thread
//! explosion.
//!
//! Shutdown is deliberate about in-flight work: workers finish the job
//! they are executing (its result still reaches the cache and the
//! spool) and **drop** everything still queued. A request handler
//! observes the drop as its result channel closing and aborts the
//! stream — which is exactly the "server killed mid-sweep" state the
//! spool resume path is tested against.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool executing boxed jobs in submission order.
///
/// All methods take `&self` (state lives behind mutexes and atomics),
/// so the pool can be shared across request handlers in an `Arc` and
/// still be shut down from the server's control path.
pub struct WorkerPool {
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    job_count: usize,
    draining: Arc<AtomicBool>,
    executed: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `jobs` worker threads (at least one).
    pub fn new(jobs: usize) -> WorkerPool {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let draining = Arc::new(AtomicBool::new(false));
        let executed = Arc::new(AtomicU64::new(0));
        let workers = (0..jobs.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let draining = Arc::clone(&draining);
                let executed = Arc::clone(&executed);
                std::thread::spawn(move || worker_loop(&rx, &draining, &executed))
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            job_count: jobs.max(1),
            draining,
            executed,
        }
    }

    /// Enqueues a job. Returns `false` (and drops the job) if the pool
    /// is already shutting down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        if self.draining.load(Ordering::SeqCst) {
            return false;
        }
        match self.tx.lock().unwrap().as_ref() {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// Jobs executed to completion over the pool's lifetime.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::SeqCst)
    }

    /// Worker thread count.
    pub fn jobs(&self) -> usize {
        self.job_count
    }

    /// Stops the pool: in-flight jobs finish, queued jobs are dropped,
    /// and all workers are joined before this returns. Idempotent.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.tx.lock().unwrap().take(); // close the channel: idle workers wake
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, draining: &AtomicBool, executed: &AtomicU64) {
    loop {
        // The lock is held only while waiting for a job, never while
        // running one, so workers drain the queue concurrently.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed: shutdown
        };
        if draining.load(Ordering::SeqCst) {
            // Queued-but-unstarted work is dropped on shutdown; the
            // closure's result channel closes and its request aborts.
            drop(job);
            continue;
        }
        job();
        executed.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs_on_many_threads() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..32u64 {
            let tx = tx.clone();
            assert!(pool.submit(move || tx.send(i * i).unwrap()));
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(pool.executed(), 32);
    }

    #[test]
    fn shutdown_finishes_running_jobs_and_drops_queued_ones() {
        let pool = WorkerPool::new(1);
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel();

        // First job blocks the single worker until released.
        let done = done_tx.clone();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
            done.send("ran").unwrap();
        });
        // Second job sits in the queue and must be dropped.
        pool.submit(move || done_tx.send("should not run").unwrap());

        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("first job started");
        // Release the worker from another thread, then drain.
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            release_tx.send(()).unwrap();
        });
        pool.shutdown();
        releaser.join().unwrap();

        let outcomes: Vec<&str> = done_rx.iter().collect();
        assert_eq!(outcomes, vec!["ran"], "queued job leaked through");
        assert_eq!(pool.executed(), 1);
        assert!(!pool.submit(|| ()), "pool accepts work after shutdown");
    }

    #[test]
    fn zero_jobs_still_yields_one_worker() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.jobs(), 1);
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(1).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(1));
    }
}
