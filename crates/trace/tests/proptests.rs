//! Property tests: trace serialization round-trips exactly.

use hvc_trace::{read_trace, write_trace};
use hvc_types::{AccessKind, Asid, MemRef, TraceItem, VirtAddr};
use proptest::prelude::*;

fn item_strategy() -> impl Strategy<Value = TraceItem> {
    (
        any::<u32>(),
        any::<u16>(),
        0u64..(1 << 48),
        prop_oneof![
            Just(AccessKind::Read),
            Just(AccessKind::Write),
            Just(AccessKind::Fetch)
        ],
    )
        .prop_map(|(gap, asid, va, kind)| {
            TraceItem::new(
                gap,
                MemRef {
                    asid: Asid::new(asid),
                    vaddr: VirtAddr::new(va),
                    kind,
                },
            )
        })
}

proptest! {
    #[test]
    fn roundtrip(items in prop::collection::vec(item_strategy(), 0..500)) {
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, items.iter().copied()).unwrap();
        prop_assert_eq!(n as usize, items.len());
        let back: Vec<TraceItem> = read_trace(&buf[..])
            .unwrap()
            .collect::<std::io::Result<_>>()
            .unwrap();
        prop_assert_eq!(back, items);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Reading garbage must error gracefully, never panic.
        if let Ok(reader) = read_trace(&bytes[..]) {
            for item in reader.take(1000) {
                let _ = item;
            }
        }
    }
}
