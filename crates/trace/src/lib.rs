//! Compact binary serialization of memory-reference traces.
//!
//! The simulator is trace-driven; this crate defines the `HVCT` on-disk
//! format so traces can be captured once (from the synthetic generators,
//! or converted from external tools like Pin) and replayed exactly:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "HVCT"
//! 4       4     version (little-endian u32, currently 1)
//! 8       8     item count (little-endian u64)
//! 16      16×N  items: gap u32 | asid u16 | kind u8 | reserved u8 | vaddr u64
//! ```
//!
//! All integers are little-endian. `kind` encodes 0 = read, 1 = write,
//! 2 = fetch. The reserved byte must be zero.
//!
//! # Examples
//!
//! ```
//! use hvc_trace::{read_trace, write_trace};
//! use hvc_types::{Asid, MemRef, TraceItem, VirtAddr};
//!
//! # fn main() -> std::io::Result<()> {
//! let items = vec![
//!     TraceItem::new(3, MemRef::read(Asid::new(1), VirtAddr::new(0x1000))),
//!     TraceItem::new(0, MemRef::write(Asid::new(1), VirtAddr::new(0x1040))),
//! ];
//! let mut buf = Vec::new();
//! write_trace(&mut buf, items.iter().copied())?;
//! let back: Vec<_> = read_trace(&buf[..])?.collect::<Result<_, _>>()?;
//! assert_eq!(back, items);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hvc_types::{AccessKind, Asid, MemRef, TraceItem, VirtAddr};
use std::io::{self, Read, Write};

/// File magic.
const MAGIC: [u8; 4] = *b"HVCT";
/// Current format version.
const VERSION: u32 = 1;
/// Bytes per serialized item.
const ITEM_BYTES: usize = 16;

/// Writes `items` to `writer` in the `HVCT` format. A `&mut` reference to
/// any writer can be passed.
///
/// The header carries the item count, so the items are buffered once to
/// count them (O(n) memory; for very large captures write in multiple
/// files or chunks).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W, I>(mut writer: W, items: I) -> io::Result<u64>
where
    W: Write,
    I: IntoIterator<Item = TraceItem>,
{
    let items: Vec<TraceItem> = items.into_iter().collect();
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(items.len() as u64).to_le_bytes())?;
    let mut buf = [0u8; ITEM_BYTES];
    for item in &items {
        encode_item(item, &mut buf);
        writer.write_all(&buf)?;
    }
    writer.flush()?;
    Ok(items.len() as u64)
}

/// Opens a trace for reading; returns an iterator over items. A `&mut`
/// reference to any reader can be passed.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a bad magic, version, or
/// malformed item, and propagates underlying I/O errors.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<TraceReader<R>> {
    let mut header = [0u8; 16];
    reader.read_exact(&mut header)?;
    if header[0..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an HVCT trace (bad magic)",
        ));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported HVCT version {version}"),
        ));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    // A count whose byte size overflows u64 cannot describe any real
    // file; reject it at open instead of failing item by item.
    if count > u64::MAX / ITEM_BYTES as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("HVCT item count {count} overflows the addressable file size"),
        ));
    }
    Ok(TraceReader {
        reader,
        remaining: count,
    })
}

/// Cap on the `size_hint` lower bound, so a corrupt header claiming
/// billions of items cannot make `collect` pre-allocate unbounded
/// memory before the first read fails.
const SIZE_HINT_CAP: usize = 1 << 20;

/// Iterator over the items of a serialized trace.
#[derive(Debug)]
pub struct TraceReader<R> {
    reader: R,
    remaining: u64,
}

impl<R> TraceReader<R> {
    /// Items left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<TraceItem>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut buf = [0u8; ITEM_BYTES];
        if let Err(e) = self.reader.read_exact(&mut buf) {
            let missing = self.remaining + 1;
            self.remaining = 0;
            return Some(Err(if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("truncated HVCT trace: {missing} item(s) missing from the tail"),
                )
            } else {
                e
            }));
        }
        Some(decode_item(&buf))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n.min(SIZE_HINT_CAP), Some(n))
    }
}

fn encode_item(item: &TraceItem, buf: &mut [u8; ITEM_BYTES]) {
    buf[0..4].copy_from_slice(&item.gap.to_le_bytes());
    buf[4..6].copy_from_slice(&item.mref.asid.as_u16().to_le_bytes());
    buf[6] = match item.mref.kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::Fetch => 2,
    };
    buf[7] = 0;
    buf[8..16].copy_from_slice(&item.mref.vaddr.as_u64().to_le_bytes());
}

fn decode_item(buf: &[u8; ITEM_BYTES]) -> io::Result<TraceItem> {
    let gap = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    let asid = Asid::new(u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes")));
    let kind = match buf[6] {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        2 => AccessKind::Fetch,
        k => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad access kind {k}"),
            ))
        }
    };
    if buf[7] != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "non-zero reserved byte",
        ));
    }
    let vaddr = VirtAddr::new(u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")));
    Ok(TraceItem::new(gap, MemRef { asid, vaddr, kind }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(gap: u32, asid: u16, va: u64, kind: AccessKind) -> TraceItem {
        TraceItem::new(
            gap,
            MemRef {
                asid: Asid::new(asid),
                vaddr: VirtAddr::new(va),
                kind,
            },
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let items = vec![
            item(0, 1, 0, AccessKind::Read),
            item(u32::MAX, u16::MAX, (1 << 48) - 1, AccessKind::Write),
            item(7, 42, 0xdead_beef, AccessKind::Fetch),
        ];
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, items.iter().copied()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(buf.len(), 16 + 3 * ITEM_BYTES);
        let back: Vec<TraceItem> = read_trace(&buf[..])
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(back, items);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        let mut r = read_trace(&buf[..]).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.next().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0".to_vec();
        let err = read_trace(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        buf[4] = 99;
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn truncated_items_surface_as_errors() {
        let mut buf = Vec::new();
        write_trace(&mut buf, [item(1, 1, 0x40, AccessKind::Read)]).unwrap();
        buf.truncate(buf.len() - 4);
        let mut r = read_trace(&buf[..]).unwrap();
        let err = r.next().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        assert!(r.next().is_none(), "iterator fuses after an error");
    }

    #[test]
    fn nonzero_reserved_byte_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, [item(1, 1, 0x40, AccessKind::Read)]).unwrap();
        buf[16 + 7] = 1;
        let mut r = read_trace(&buf[..]).unwrap();
        let err = r.next().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("reserved"), "{err}");
    }

    #[test]
    fn overflowing_item_count_rejected_at_open() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        buf[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_trace(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("overflows"), "{err}");
    }

    #[test]
    fn count_exceeding_data_errors_without_items_invented() {
        // Header claims 5 items; only one is present.
        let mut buf = Vec::new();
        write_trace(&mut buf, [item(1, 1, 0x40, AccessKind::Read)]).unwrap();
        buf[8..16].copy_from_slice(&5u64.to_le_bytes());
        let r = read_trace(&buf[..]).unwrap();
        let got: Vec<io::Result<TraceItem>> = r.collect();
        assert_eq!(got.len(), 2, "one good item, then the truncation error");
        assert!(got[0].is_ok());
        assert!(got[1]
            .as_ref()
            .unwrap_err()
            .to_string()
            .contains("4 item(s) missing"));
    }

    #[test]
    fn huge_claimed_count_cannot_force_preallocation() {
        // A (valid-bound) count in the trillions with no data behind it:
        // collect must fail fast instead of reserving memory for it.
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        buf[8..16].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let r = read_trace(&buf[..]).unwrap();
        assert!(r.size_hint().0 <= SIZE_HINT_CAP);
        let out: io::Result<Vec<TraceItem>> = r.collect();
        assert!(out.is_err());
    }

    #[test]
    fn bad_kind_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, [item(1, 1, 0x40, AccessKind::Read)]).unwrap();
        buf[16 + 6] = 9;
        let mut r = read_trace(&buf[..]).unwrap();
        assert!(r.next().unwrap().is_err());
    }

    #[test]
    fn size_hint_is_exact() {
        let mut buf = Vec::new();
        write_trace(
            &mut buf,
            (0..10).map(|i| item(i, 1, u64::from(i) * 64, AccessKind::Read)),
        )
        .unwrap();
        let r = read_trace(&buf[..]).unwrap();
        assert_eq!(r.size_hint(), (10, Some(10)));
    }
}
