//! Compact binary serialization of memory-reference traces.
//!
//! The simulator is trace-driven; this crate defines the `HVCT` on-disk
//! format so traces can be captured once (from the synthetic generators,
//! or converted from external tools like Pin) and replayed exactly:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "HVCT"
//! 4       4     version (little-endian u32, currently 1)
//! 8       8     item count (little-endian u64)
//! 16      16×N  items: gap u32 | asid u16 | kind u8 | reserved u8 | vaddr u64
//! ```
//!
//! All integers are little-endian. `kind` encodes 0 = read, 1 = write,
//! 2 = fetch. The reserved byte must be zero.
//!
//! # Examples
//!
//! ```
//! use hvc_trace::{read_trace, write_trace};
//! use hvc_types::{Asid, MemRef, TraceItem, VirtAddr};
//!
//! # fn main() -> std::io::Result<()> {
//! let items = vec![
//!     TraceItem::new(3, MemRef::read(Asid::new(1), VirtAddr::new(0x1000))),
//!     TraceItem::new(0, MemRef::write(Asid::new(1), VirtAddr::new(0x1040))),
//! ];
//! let mut buf = Vec::new();
//! write_trace(&mut buf, items.iter().copied())?;
//! let back: Vec<_> = read_trace(&buf[..])?.collect::<Result<_, _>>()?;
//! assert_eq!(back, items);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hvc_types::{AccessKind, Asid, MemRef, TraceItem, VirtAddr};
use std::io::{self, Read, Write};

/// File magic.
const MAGIC: [u8; 4] = *b"HVCT";
/// Current format version.
const VERSION: u32 = 1;
/// Bytes per serialized item.
const ITEM_BYTES: usize = 16;

/// Writes `items` to `writer` in the `HVCT` format. A `&mut` reference to
/// any writer can be passed.
///
/// The header carries the item count, so the items are buffered once to
/// count them (O(n) memory; for very large captures write in multiple
/// files or chunks).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W, I>(mut writer: W, items: I) -> io::Result<u64>
where
    W: Write,
    I: IntoIterator<Item = TraceItem>,
{
    let items: Vec<TraceItem> = items.into_iter().collect();
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(items.len() as u64).to_le_bytes())?;
    let mut buf = [0u8; ITEM_BYTES];
    for item in &items {
        encode_item(item, &mut buf);
        writer.write_all(&buf)?;
    }
    writer.flush()?;
    Ok(items.len() as u64)
}

/// Opens a trace for reading; returns an iterator over items. A `&mut`
/// reference to any reader can be passed.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a bad magic, version, or
/// malformed item, and propagates underlying I/O errors.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<TraceReader<R>> {
    let mut header = [0u8; 16];
    reader.read_exact(&mut header)?;
    if header[0..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an HVCT trace (bad magic)"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported HVCT version {version}"),
        ));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    Ok(TraceReader { reader, remaining: count })
}

/// Iterator over the items of a serialized trace.
#[derive(Debug)]
pub struct TraceReader<R> {
    reader: R,
    remaining: u64,
}

impl<R> TraceReader<R> {
    /// Items left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<TraceItem>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut buf = [0u8; ITEM_BYTES];
        if let Err(e) = self.reader.read_exact(&mut buf) {
            self.remaining = 0;
            return Some(Err(e));
        }
        Some(decode_item(&buf))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

fn encode_item(item: &TraceItem, buf: &mut [u8; ITEM_BYTES]) {
    buf[0..4].copy_from_slice(&item.gap.to_le_bytes());
    buf[4..6].copy_from_slice(&item.mref.asid.as_u16().to_le_bytes());
    buf[6] = match item.mref.kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::Fetch => 2,
    };
    buf[7] = 0;
    buf[8..16].copy_from_slice(&item.mref.vaddr.as_u64().to_le_bytes());
}

fn decode_item(buf: &[u8; ITEM_BYTES]) -> io::Result<TraceItem> {
    let gap = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    let asid = Asid::new(u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes")));
    let kind = match buf[6] {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        2 => AccessKind::Fetch,
        k => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad access kind {k}"),
            ))
        }
    };
    if buf[7] != 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "non-zero reserved byte"));
    }
    let vaddr = VirtAddr::new(u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")));
    Ok(TraceItem::new(gap, MemRef { asid, vaddr, kind }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(gap: u32, asid: u16, va: u64, kind: AccessKind) -> TraceItem {
        TraceItem::new(gap, MemRef { asid: Asid::new(asid), vaddr: VirtAddr::new(va), kind })
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let items = vec![
            item(0, 1, 0, AccessKind::Read),
            item(u32::MAX, u16::MAX, (1 << 48) - 1, AccessKind::Write),
            item(7, 42, 0xdead_beef, AccessKind::Fetch),
        ];
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, items.iter().copied()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(buf.len(), 16 + 3 * ITEM_BYTES);
        let back: Vec<TraceItem> =
            read_trace(&buf[..]).unwrap().collect::<io::Result<_>>().unwrap();
        assert_eq!(back, items);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        let mut r = read_trace(&buf[..]).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.next().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0".to_vec();
        let err = read_trace(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        buf[4] = 99;
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn truncated_items_surface_as_errors() {
        let mut buf = Vec::new();
        write_trace(&mut buf, [item(1, 1, 0x40, AccessKind::Read)]).unwrap();
        buf.truncate(buf.len() - 4);
        let mut r = read_trace(&buf[..]).unwrap();
        assert!(r.next().unwrap().is_err());
        assert!(r.next().is_none(), "iterator fuses after an error");
    }

    #[test]
    fn bad_kind_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, [item(1, 1, 0x40, AccessKind::Read)]).unwrap();
        buf[16 + 6] = 9;
        let mut r = read_trace(&buf[..]).unwrap();
        assert!(r.next().unwrap().is_err());
    }

    #[test]
    fn size_hint_is_exact() {
        let mut buf = Vec::new();
        write_trace(&mut buf, (0..10).map(|i| item(i, 1, u64::from(i) * 64, AccessKind::Read)))
            .unwrap();
        let r = read_trace(&buf[..]).unwrap();
        assert_eq!(r.size_hint(), (10, Some(10)));
    }
}
