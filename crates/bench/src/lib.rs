//! Shared harness utilities for the experiment benches.
//!
//! Every table and figure of the paper has a dedicated bench target in
//! `benches/` (plain `main`s, `harness = false`); this library holds the
//! pieces they share: run helpers, table formatting, and scaling knobs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hotpath;

use hvc_core::{RunReport, SystemConfig, SystemSim, TranslationScheme};
use hvc_os::{AllocPolicy, Kernel};
use hvc_workloads::WorkloadSpec;

/// Default physical memory for experiment kernels.
pub const PHYS_BYTES: u64 = 16 << 30;

/// Returns the number of memory references to simulate per configuration,
/// honouring the `HVC_REFS` environment variable (e.g. `HVC_REFS=200000`
/// for a quick pass).
pub fn refs_per_run(default: usize) -> usize {
    std::env::var("HVC_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Instantiates `spec` on a fresh kernel and runs it under `scheme`.
///
/// # Panics
///
/// Panics if workload instantiation fails (experiment misconfiguration).
pub fn run_native(
    spec: &WorkloadSpec,
    scheme: TranslationScheme,
    policy: AllocPolicy,
    config: SystemConfig,
    refs: usize,
    seed: u64,
) -> (RunReport, SystemSim) {
    run_native_warm(spec, scheme, policy, config, 0, refs, seed)
}

/// Like [`run_native`], but runs `warm` unmeasured references first so
/// the report excludes cold-start effects.
///
/// # Panics
///
/// Panics if workload instantiation fails.
pub fn run_native_warm(
    spec: &WorkloadSpec,
    scheme: TranslationScheme,
    policy: AllocPolicy,
    config: SystemConfig,
    warm: usize,
    refs: usize,
    seed: u64,
) -> (RunReport, SystemSim) {
    let mut kernel = Kernel::new(PHYS_BYTES, policy);
    let mut wl = spec
        .instantiate(&mut kernel, seed)
        .unwrap_or_else(|e| panic!("instantiating {}: {e}", spec.name));
    let mut sim = SystemSim::new(kernel, config, scheme);
    if warm > 0 {
        sim.warm_up(&mut wl, warm);
    }
    let report = sim.run(&mut wl, refs);
    (report, sim)
}

/// Prints a fixed-width table with a title, header row, and data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a ratio with three decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_workloads::apps;

    #[test]
    fn run_native_produces_report() {
        let (r, sim) = run_native(
            &apps::gups(4 << 20),
            TranslationScheme::Baseline,
            AllocPolicy::DemandPaging,
            SystemConfig::isca2016(),
            2000,
            1,
        );
        assert_eq!(r.refs, 2000);
        assert!(sim.kernel().space(hvc_types::Asid::new(1)).is_some());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(ratio(1.23456), "1.235");
        print_table("t", &["a", "bb"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn refs_env_override() {
        std::env::remove_var("HVC_REFS");
        assert_eq!(refs_per_run(123), 123);
    }
}
