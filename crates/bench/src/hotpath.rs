//! The simulator-throughput benchmark behind `hvcsim bench`.
//!
//! Unlike the figure/table benches (which reproduce the *paper's*
//! numbers), this harness measures the *simulator itself*: simulated
//! references per wall-clock second over a fixed workload × scheme
//! matrix, written as a `hvc-bench/1` JSON document so the perf
//! trajectory of the hot path can be tracked across commits.
//!
//! # Schema `hvc-bench/1`
//!
//! ```text
//! {
//!   "schema": "hvc-bench/1",
//!   "simulator": { "name": "hvc", "version": "<crate version>" },
//!   "refs": <measured references per case>,
//!   "warm": <unmeasured warm-up references per case>,
//!   "mem": <workload memory bytes>,
//!   "seed": <workload RNG seed>,
//!   "cases": [
//!     { "workload", "scheme", "refs", "wall_ms" (float),
//!       "refs_per_sec" (float) }, ...
//!   ]
//! }
//! ```
//!
//! Keys are stable; `wall_ms` and `refs_per_sec` are the only fields
//! that vary between invocations (they measure the host, not the
//! simulation). Every case runs on a fresh kernel with the same seed,
//! and only the measured slice is timed — workload setup and warm-up
//! stay outside the clock.

use hvc_core::SystemSim;
use hvc_os::Kernel;
use hvc_runner::json::Value;
use hvc_runner::params;
use std::time::Instant;

/// The schema identifier written into every bench report.
pub const SCHEMA: &str = "hvc-bench/1";

/// The fixed workload × scheme matrix: the private-page hot loop under
/// every translation scheme, plus a synonym-heavy workload on the
/// hybrid path (filter candidates + synonym TLB traffic).
pub const MATRIX: &[(&str, &str)] = &[
    ("gups", "baseline"),
    ("gups", "ideal"),
    ("gups", "dtlb:1024"),
    ("gups", "manyseg"),
    ("gups", "enigma:1024"),
    ("postgres", "dtlb:1024"),
];

/// One measured matrix point.
#[derive(Clone, Debug)]
pub struct BenchCase {
    /// Workload profile name.
    pub workload: String,
    /// Scheme string (as accepted by `params::parse_scheme`).
    pub scheme: String,
    /// Measured references.
    pub refs: u64,
    /// Wall-clock of the measured slice, in milliseconds.
    pub wall_ms: f64,
    /// Simulated references per wall-clock second.
    pub refs_per_sec: f64,
}

/// Knobs of a bench run (fixed matrix, adjustable sizes).
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Measured references per case.
    pub refs: usize,
    /// Unmeasured warm-up references per case.
    pub warm: usize,
    /// Workload memory (gups table size).
    pub mem: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            refs: crate::refs_per_run(1_000_000),
            warm: 250_000,
            mem: 512 << 20,
            seed: 42,
        }
    }
}

/// Runs the whole [`MATRIX`] and returns one result per case, in matrix
/// order.
///
/// # Panics
///
/// Panics if a matrix entry names an unknown workload or scheme (the
/// matrix is fixed, so this is a programming error).
pub fn run_matrix(config: &BenchConfig) -> Vec<BenchCase> {
    MATRIX
        .iter()
        .map(|&(workload, scheme)| run_case(workload, scheme, config))
        .collect()
}

/// Runs one `(workload, scheme)` case: fresh kernel, warm-up outside
/// the clock, measured slice timed.
fn run_case(workload: &str, scheme: &str, config: &BenchConfig) -> BenchCase {
    let spec = params::workload_by_name(workload, config.mem)
        .unwrap_or_else(|| panic!("unknown workload '{workload}'"));
    let (ts, policy) =
        params::parse_scheme(scheme).unwrap_or_else(|| panic!("unknown scheme '{scheme}'"));
    let mut kernel = Kernel::new(crate::PHYS_BYTES, policy);
    let mut wl = spec
        .instantiate(&mut kernel, config.seed)
        .unwrap_or_else(|e| panic!("instantiating {workload}: {e}"));
    let mut sim = SystemSim::new(kernel, hvc_core::SystemConfig::isca2016(), ts);
    if config.warm > 0 {
        sim.warm_up(&mut wl, config.warm);
    }
    let start = Instant::now();
    let report = sim.run(&mut wl, config.refs);
    let wall = start.elapsed();
    let secs = wall.as_secs_f64();
    BenchCase {
        workload: workload.to_string(),
        scheme: scheme.to_string(),
        refs: report.refs,
        wall_ms: secs * 1e3,
        refs_per_sec: if secs > 0.0 {
            report.refs as f64 / secs
        } else {
            0.0
        },
    }
}

/// Builds the `hvc-bench/1` JSON document for a finished run.
pub fn bench_report(config: &BenchConfig, cases: &[BenchCase]) -> Value {
    let object = |fields: Vec<(&str, Value)>| {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    object(vec![
        ("schema", Value::Str(SCHEMA.into())),
        (
            "simulator",
            object(vec![
                ("name", Value::Str("hvc".into())),
                ("version", Value::Str(env!("CARGO_PKG_VERSION").into())),
            ]),
        ),
        ("refs", Value::UInt(config.refs as u64)),
        ("warm", Value::UInt(config.warm as u64)),
        ("mem", Value::UInt(config.mem)),
        ("seed", Value::UInt(config.seed)),
        (
            "cases",
            Value::Array(
                cases
                    .iter()
                    .map(|c| {
                        object(vec![
                            ("workload", Value::Str(c.workload.clone())),
                            ("scheme", Value::Str(c.scheme.clone())),
                            ("refs", Value::UInt(c.refs)),
                            ("wall_ms", Value::Float(c.wall_ms)),
                            ("refs_per_sec", Value::Float(c.refs_per_sec)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            refs: 2_000,
            warm: 500,
            mem: 8 << 20,
            seed: 42,
        }
    }

    #[test]
    fn matrix_runs_and_reports() {
        let config = tiny();
        let cases = run_matrix(&config);
        assert_eq!(cases.len(), MATRIX.len());
        for (c, &(w, s)) in cases.iter().zip(MATRIX) {
            assert_eq!(c.workload, w);
            assert_eq!(c.scheme, s);
            assert_eq!(c.refs, 2_000);
            assert!(c.refs_per_sec > 0.0);
        }
    }

    #[test]
    fn report_matches_schema_and_round_trips() {
        let config = tiny();
        let cases = vec![BenchCase {
            workload: "gups".into(),
            scheme: "dtlb:1024".into(),
            refs: 2_000,
            wall_ms: 1.5,
            refs_per_sec: 1_333_333.0,
        }];
        let doc = bench_report(&config, &cases);
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        let cases_json = doc.get("cases").unwrap().as_array().unwrap();
        assert_eq!(cases_json.len(), 1);
        for key in ["workload", "scheme", "refs", "wall_ms", "refs_per_sec"] {
            assert!(cases_json[0].get(key).is_some(), "missing key {key}");
        }
        let text = doc.to_pretty();
        assert_eq!(hvc_runner::json::parse(&text).unwrap(), doc);
    }
}
