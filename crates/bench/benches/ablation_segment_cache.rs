//! **Ablation** — segment-cache (SC) size sweep.
//!
//! The paper picks a 128-entry, 2 MB-granularity SC to hide the
//! index-tree traversal (Section IV-C). This ablation sweeps SC capacity
//! and reports SC hit rate and mean delayed-translation latency.

use hvc_bench::{pct, print_table, refs_per_run, PHYS_BYTES};
use hvc_os::{AllocPolicy, Kernel};
use hvc_segment::{HwSegmentTable, IndexCache, ManySegmentTranslator, SegmentCache};
use hvc_types::Cycles;
use hvc_workloads::apps;

fn main() {
    let refs = refs_per_run(300_000);
    let mut rows = Vec::new();

    for &entries in &[0usize, 16, 64, 128, 256, 512] {
        let mut kernel = Kernel::new(PHYS_BYTES, AllocPolicy::EagerSegments { split: 4 });
        let mut wl = apps::memcached()
            .instantiate(&mut kernel, 5)
            .expect("instantiate");
        let mut tr = ManySegmentTranslator::new(
            SegmentCache::new(entries, Cycles::new(2)),
            IndexCache::isca2016(),
            HwSegmentTable::mirror(kernel.segments(), Cycles::new(7)),
            kernel.segments(),
            hvc_types::PhysAddr::new(1 << 40),
        );
        let mut total_lat = 0u64;
        let mut translations = 0u64;
        for _ in 0..refs {
            let item = wl.next_item();
            if let Some((_, lat)) =
                tr.translate(item.mref.asid, item.mref.vaddr, |_| Cycles::new(160))
            {
                total_lat += lat.get();
                translations += 1;
            }
        }
        let (h, m) = tr.sc_stats();
        let hit_rate = if h + m > 0 {
            h as f64 / (h + m) as f64
        } else {
            0.0
        };
        rows.push(vec![
            entries.to_string(),
            pct(hit_rate),
            format!("{:.1}", total_lat as f64 / translations.max(1) as f64),
        ]);
    }

    print_table(
        "Ablation: segment-cache size vs hit rate and mean delayed-translation latency",
        &["SC entries", "SC hit rate", "mean latency (cy)"],
        &rows,
    );
    println!("\nExpected shape: latency collapses from ≈20 cycles toward the 2-cycle SC");
    println!("as capacity covers the hot 2 MB regions; 128 entries suffices (the paper's pick).");
}
