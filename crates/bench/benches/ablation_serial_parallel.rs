//! **Ablation** — serial vs parallel delayed translation (Section IV-C).
//!
//! Serial translation (the paper's pick) starts after an LLC miss is
//! known: minimal energy, up to ~20 cycles of added miss latency.
//! Parallel translation overlaps the LLC lookup: it hides that latency
//! but performs a (mostly wasted) translation for every LLC access.

use hvc_bench::{print_table, refs_per_run};
use hvc_core::{EnergyModel, SystemConfig, SystemSim, TranslationScheme};
use hvc_os::{AllocPolicy, Kernel};
use hvc_workloads::apps;

fn main() {
    let refs = refs_per_run(300_000);
    let model = EnergyModel::cacti_32nm();
    let mut rows = Vec::new();

    for spec in [apps::gups(256 << 20), apps::omnetpp(), apps::npb_cg()] {
        let mut results = Vec::new();
        for parallel in [false, true] {
            let mut kernel = Kernel::new(16 << 30, AllocPolicy::EagerSegments { split: 1 });
            let mut wl = spec.instantiate(&mut kernel, 13).expect("instantiate");
            let mut config = SystemConfig::isca2016();
            config.parallel_delayed = parallel;
            let mut sim = SystemSim::new(
                kernel,
                config,
                TranslationScheme::HybridManySegment {
                    segment_cache: true,
                },
            );
            sim.warm_up(&mut wl, refs / 2);
            let r = sim.run(&mut wl, refs);
            let energy = model.breakdown(&r.translation, 1024).total() / 1e6;
            results.push((r.ipc(), energy));
        }
        let (ipc_s, e_s) = results[0];
        let (ipc_p, e_p) = results[1];
        rows.push(vec![
            spec.name.clone(),
            format!("{ipc_s:.3}"),
            format!("{ipc_p:.3}"),
            format!("{:+.2}%", (ipc_p / ipc_s - 1.0) * 100.0),
            format!("{e_s:.2}"),
            format!("{e_p:.2}"),
            format!("{:+.0}%", (e_p / e_s - 1.0) * 100.0),
        ]);
    }

    print_table(
        "Ablation: serial vs parallel delayed translation (many-segment + SC)",
        &[
            "workload",
            "IPC serial",
            "IPC parallel",
            "Δperf",
            "µJ serial",
            "µJ parallel",
            "Δenergy",
        ],
        &rows,
    );
    println!("\nExpected shape: parallel buys a small latency win at a large translation-");
    println!("energy premium — the reason the paper defaults to serial access.");
    println!("({refs} references per point; set HVC_REFS to change)");
}
