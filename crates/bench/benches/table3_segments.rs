//! **Table III** — maximum segments in use per application, RMM
//! (32-segment range-TLB) MPKI, and eager-allocation memory utilization.
//!
//! Paper shape: most apps use few segments and fully utilize memory;
//! tigr / xalancbmk / memcached use many segments (thrashing RMM's 32
//! registers into measurable MPKI) and several apps strand 17–75% of
//! their eagerly allocated memory.

use hvc_bench::{pct, print_table, refs_per_run, PHYS_BYTES};
use hvc_os::{AllocPolicy, Kernel};
use hvc_segment::Rmm;
use hvc_workloads::apps;

fn main() {
    let refs = refs_per_run(1_000_000);
    let mut rows = Vec::new();

    for spec in apps::table3_set() {
        let mut kernel = Kernel::new(PHYS_BYTES, AllocPolicy::EagerSegments { split: 1 });
        let mut wl = spec.instantiate(&mut kernel, 47).expect("instantiate");
        let asid = wl.procs()[0].asid;
        let segments = kernel.segments().count_asid(asid);

        // RMM: drive the access stream through the 32-entry range TLB on
        // the core-to-L1 path (every reference looks it up).
        let mut rmm = Rmm::rmm32();
        let mut instructions = 0u64;
        for _ in 0..refs {
            let item = wl.next_item();
            instructions += item.instructions();
            let asid = item.mref.asid;
            let va = item.mref.vaddr;
            if rmm.translate(asid, va).is_none() {
                // Segment walk + fill (counted as one RMM miss).
                let _ = rmm.fill_from(kernel.segments(), asid, va);
            }
        }
        let mpki = rmm.stats().mpki(instructions);

        // Utilization: touched bytes over eagerly allocated bytes. The
        // generator's page domain is exact, so report its planned
        // fraction (the run-measured value converges to it).
        let planned: f64 = {
            let total: u64 = spec.regions.iter().map(|r| r.len).sum();
            let touched: f64 = spec
                .regions
                .iter()
                .map(|r| r.len as f64 * r.touch_frac)
                .sum();
            touched / total as f64
        };

        rows.push(vec![
            spec.name.clone(),
            segments.to_string(),
            format!("{mpki:.3}"),
            pct(planned),
        ]);
    }

    print_table(
        "Table III: segments in use, RMM(32) MPKI, memory utilization",
        &["workload", "segments", "RMM MPKI", "utilization"],
        &rows,
    );
    println!("\nExpected shape: stream/gups ≈ 1 segment, MPKI ≈ 0, full utilization;");
    println!("tigr/xalancbmk/memcached tens of segments with non-zero RMM MPKI;");
    println!("cactus/memcached leave a large fraction of eager memory untouched.");
    println!("({refs} references per workload; set HVC_REFS to change)");
}
