//! **Figure 7** — index-cache size sensitivity.
//!
//! (a) Real workloads, single-threaded and 4-way multiprogrammed, with
//!     each segment artificially broken into 10 pieces (external
//!     fragmentation), LLC-filtered: hit rate vs index-cache size.
//! (b) Synthetic worst case: 1024 / 2048 segments spread evenly over a
//!     40-bit physical space, one million uniform random accesses.
//!
//! Paper shape: real workloads exceed ~99% hit rate by 8 KB; the worst
//! case needs 32 KB for 1024 segments and reaches ≈75% for 2048.

use hvc_bench::{pct, print_table, refs_per_run, PHYS_BYTES};
use hvc_cache::{Cache, CacheConfig};
use hvc_os::{AllocPolicy, Kernel, SegmentTable};
use hvc_segment::{IndexCache, IndexTree};
use hvc_types::{Asid, BlockName, Cycles, PhysAddr, VirtAddr};
use hvc_workloads::{apps, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SIZES: &[u64] = &[128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536];

/// Runs the LLC-filtered index-cache study for one set of workloads
/// sharing a kernel; returns the hit rate per index-cache size.
fn run_apps(specs: &[WorkloadSpec], refs: usize) -> Vec<f64> {
    // Fragment each allocation into 10 segments, as the paper does.
    let mut kernel =
        Kernel::with_segment_capacity(PHYS_BYTES, AllocPolicy::EagerSegments { split: 10 }, 8192);
    let mut insts: Vec<_> = specs
        .iter()
        .map(|s| s.instantiate(&mut kernel, 53).expect("instantiate"))
        .collect();
    let tree = IndexTree::build(kernel.segments(), PhysAddr::new(1 << 40));

    // One 2 MB LLC filters translation requests (as in the paper).
    let mut llc = Cache::new(CacheConfig::l3_2m());
    let mut caches: Vec<IndexCache> = SIZES
        .iter()
        .map(|&s| IndexCache::new(s, Cycles::new(3)))
        .collect();
    let mut touched = Vec::with_capacity(8);

    for i in 0..refs {
        let n_insts = insts.len();
        let inst = &mut insts[i % n_insts];
        let item = inst.next_item();
        let asid = item.mref.asid;
        let va = item.mref.vaddr;
        let name = BlockName::Virt(asid, va.line());
        if llc.access(name, item.mref.kind.is_write()) {
            continue;
        }
        llc.fill(name, false, hvc_types::Permissions::RW);
        // LLC miss: traverse the index tree through every candidate
        // index-cache size in parallel.
        touched.clear();
        let _ = tree.lookup(asid, va, &mut touched);
        for c in caches.iter_mut() {
            for &node in &touched {
                c.access(node);
            }
        }
    }
    caches
        .iter()
        .map(|c| c.stats().hit_rate().unwrap_or(0.0))
        .collect()
}

/// Synthetic worst case: `n` segments spread evenly over 40-bit space,
/// uniform random probes.
fn run_worst_case(n: usize, probes: usize) -> Vec<f64> {
    let mut table = SegmentTable::new(n);
    let span = 1u64 << 40;
    let step = span / n as u64;
    for i in 0..n as u64 {
        table
            .insert(
                Asid::new(1),
                VirtAddr::new(i * step),
                step,
                PhysAddr::new(i * step),
            )
            .expect("capacity");
    }
    let tree = IndexTree::build(&table, PhysAddr::new(1 << 41));
    let mut caches: Vec<IndexCache> = SIZES
        .iter()
        .map(|&s| IndexCache::new(s, Cycles::new(3)))
        .collect();
    let mut rng = StdRng::seed_from_u64(99);
    let mut touched = Vec::with_capacity(8);
    for _ in 0..probes {
        let va = VirtAddr::new(rng.gen_range(0..span));
        touched.clear();
        let _ = tree.lookup(Asid::new(1), va, &mut touched);
        for c in caches.iter_mut() {
            for &node in &touched {
                c.access(node);
            }
        }
    }
    caches
        .iter()
        .map(|c| c.stats().hit_rate().unwrap_or(0.0))
        .collect()
}

fn main() {
    let refs = refs_per_run(500_000);
    let headers: Vec<String> = std::iter::once("config".to_string())
        .chain(SIZES.iter().map(|s| {
            if *s >= 1024 {
                format!("{}KB", s / 1024)
            } else {
                format!("{s}B")
            }
        }))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();

    // (a) single-threaded applications.
    let singles = [
        apps::xalancbmk(),
        apps::omnetpp(),
        apps::astar(),
        apps::memcached(),
    ];
    let mut single_avg = vec![0.0; SIZES.len()];
    for s in &singles {
        let rates = run_apps(std::slice::from_ref(s), refs);
        for (a, r) in single_avg.iter_mut().zip(&rates) {
            *a += r / singles.len() as f64;
        }
        rows.push(
            std::iter::once(format!("single:{}", s.name))
                .chain(rates.iter().map(|r| pct(*r)))
                .collect(),
        );
    }
    rows.push(
        std::iter::once("single-avg".to_string())
            .chain(single_avg.iter().map(|r| pct(*r)))
            .collect(),
    );

    // (b) 4-way multiprogrammed mixes.
    let mixes: Vec<Vec<WorkloadSpec>> = vec![
        vec![
            apps::xalancbmk(),
            apps::omnetpp(),
            apps::astar(),
            apps::memcached(),
        ],
        vec![
            apps::tigr(),
            apps::mummer(),
            apps::xalancbmk(),
            apps::canneal(),
        ],
        vec![
            apps::memcached(),
            apps::tigr(),
            apps::omnetpp(),
            apps::npb_cg(),
        ],
    ];
    let mut multi_avg = vec![0.0; SIZES.len()];
    for (i, mix) in mixes.iter().enumerate() {
        let rates = run_apps(mix, refs);
        for (a, r) in multi_avg.iter_mut().zip(&rates) {
            *a += r / mixes.len() as f64;
        }
        rows.push(
            std::iter::once(format!("multi:mix{}", i + 1))
                .chain(rates.iter().map(|r| pct(*r)))
                .collect(),
        );
    }
    rows.push(
        std::iter::once("multi-avg".to_string())
            .chain(multi_avg.iter().map(|r| pct(*r)))
            .collect(),
    );

    // (c) worst case.
    for n in [1024usize, 2048] {
        let rates = run_worst_case(n, refs.max(1_000_000));
        rows.push(
            std::iter::once(format!("worst-case {n} seg"))
                .chain(rates.iter().map(|r| pct(*r)))
                .collect(),
        );
    }

    print_table(
        "Figure 7: index-cache hit rate vs size (10× fragmented segments, 2MB LLC filter)",
        &headers_ref,
        &rows,
    );
    println!("\nExpected shape: real workloads ≥99% by 8KB; worst case needs 32KB (1024 seg)");
    println!("and reaches ≈75% for 2048 segments at 32KB.");
    println!("({refs} references per study; set HVC_REFS to change)");
}
