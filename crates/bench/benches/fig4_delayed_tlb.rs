//! **Figure 4** — normalized delayed-TLB miss rates (MPKI) as the
//! delayed TLB grows from 1K to 64K entries, with a 2 MB LLC filtering
//! the translation requests.
//!
//! Paper shape: GUPS, milc and mcf barely improve with size (page
//! working sets exceed even 32K entries); xalancbmk / omnetpp / soplex
//! improve steeply; tigr sits in between.

use hvc_bench::{print_table, ratio, refs_per_run, run_native_warm};
use hvc_core::{SystemConfig, TranslationScheme};
use hvc_os::AllocPolicy;
use hvc_workloads::apps;

fn main() {
    let refs = refs_per_run(1_000_000);
    let sizes = [1024usize, 2048, 4096, 8192, 16384, 32768, 65536];
    let mut rows = Vec::new();

    for spec in apps::fig4_set() {
        let mut mpkis = Vec::new();
        for &n in &sizes {
            let (r, _) = run_native_warm(
                &spec,
                TranslationScheme::HybridDelayedTlb(n),
                AllocPolicy::DemandPaging,
                SystemConfig::isca2016(),
                refs / 2,
                refs,
                31,
            );
            mpkis.push(r.mpki(r.translation.delayed_tlb_misses));
        }
        let base = mpkis[0].max(1e-9);
        let mut row = vec![spec.name.clone(), format!("{:.2}", base)];
        row.extend(mpkis.iter().map(|m| ratio(m / base)));
        rows.push(row);
    }

    print_table(
        "Figure 4: delayed-TLB MPKI normalized to the 1K-entry configuration",
        &[
            "workload", "MPKI@1k", "1k", "2k", "4k", "8k", "16k", "32k", "64k",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: gups/milc/mcf stay ≈1.0 across sizes; zipfian workloads drop steeply."
    );
    println!("({refs} references per point; set HVC_REFS to change)");
}
