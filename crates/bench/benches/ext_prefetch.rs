//! **Extension** — next-line prefetching under physical vs hybrid
//! virtual caching.
//!
//! A classic side benefit of virtually-addressed hierarchies: a next-line
//! prefetcher can follow *virtual* contiguity across page boundaries,
//! while a physically-addressed prefetcher must stop at each page edge
//! (the next physical line is unknown without a translation). Streaming
//! workloads cross a page boundary every 64 lines, so ~1.6% of physical
//! prefetch opportunities vanish — and, more importantly, every page
//! transition re-exposes a demand miss.

use hvc_bench::{print_table, ratio, refs_per_run, PHYS_BYTES};
use hvc_core::{SystemConfig, SystemSim, TranslationScheme};
use hvc_os::{AllocPolicy, Kernel};
use hvc_workloads::apps;

fn main() {
    let refs = refs_per_run(400_000);
    let mut rows = Vec::new();

    for spec in [
        apps::milc(),
        apps::stream(),
        apps::npb_cg(),
        apps::gups(256 << 20),
    ] {
        let mut cells = vec![spec.name.clone()];
        let mut base_ipc = 0.0;
        for (scheme, policy, prefetch) in [
            (
                TranslationScheme::Baseline,
                AllocPolicy::DemandPaging,
                false,
            ),
            (TranslationScheme::Baseline, AllocPolicy::DemandPaging, true),
            (
                TranslationScheme::HybridManySegment {
                    segment_cache: true,
                },
                AllocPolicy::EagerSegments { split: 1 },
                true,
            ),
        ] {
            let mut kernel = Kernel::new(PHYS_BYTES, policy);
            let mut wl = spec.instantiate(&mut kernel, 29).expect("instantiate");
            let mut config = SystemConfig::isca2016();
            config.prefetch_next_line = prefetch;
            let mut sim = SystemSim::new(kernel, config, scheme);
            sim.warm_up(&mut wl, refs / 2);
            let r = sim.run(&mut wl, refs);
            if base_ipc == 0.0 {
                base_ipc = r.ipc();
                cells.push(format!("{base_ipc:.3}"));
            } else {
                cells.push(ratio(r.ipc() / base_ipc));
            }
            if prefetch {
                cells.push(r.translation.prefetches_blocked.to_string());
            }
        }
        rows.push(cells);
    }

    print_table(
        "Extension: next-line prefetching (IPC normalized to no-prefetch baseline)",
        &[
            "workload",
            "base IPC",
            "phys+pf",
            "blocked@page",
            "hybrid+pf",
            "blocked@page",
        ],
        &rows,
    );
    println!("\nExpected shape: prefetching helps the streaming workloads under both");
    println!("schemes; the physical prefetcher reports blocked page-boundary");
    println!("prefetches while the virtual one reports none.");
    println!("({refs} references per point; set HVC_REFS to change)");
}
