//! **Virtualized performance** (Section V / VI; abstract headline:
//! +31.7% over a system with a state-of-the-art translation cache for
//! two-dimensional translation).
//!
//! Configurations: nested baseline (gVA→MA TLB + nested-TLB-accelerated
//! 2D walker); hybrid with a delayed TLB backed by the 2D walker; hybrid
//! with 2D (guest + host) segment translation.

use hvc_bench::{print_table, ratio, refs_per_run};
use hvc_core::{SystemConfig, VirtScheme, VirtSystemSim};
use hvc_os::AllocPolicy;
use hvc_workloads::{apps, WorkloadSpec};

const GIB: u64 = 1 << 30;

fn run_virt(spec: &WorkloadSpec, scheme: VirtScheme, refs: usize) -> f64 {
    let (policy, eager) = match scheme {
        VirtScheme::HybridNestedSegments => (AllocPolicy::EagerSegments { split: 1 }, true),
        _ => (AllocPolicy::DemandPaging, false),
    };
    let mut hv = hvc_virt::Hypervisor::new(8 * GIB);
    let vm = hv.create_vm(2 * GIB, policy, eager).expect("vm");
    let gk = hv.guest_kernel_mut(vm).expect("guest kernel");
    let mut wl = spec.instantiate(gk, 71).expect("instantiate");
    let mut sim = VirtSystemSim::new(hv, vm, SystemConfig::isca2016(), scheme).expect("sim");
    sim.warm_up(&mut wl, refs / 2);
    sim.run(&mut wl, refs).ipc()
}

fn main() {
    let refs = refs_per_run(500_000);
    let schemes = [
        ("nested-base", VirtScheme::NestedBaseline),
        ("hyb+dTLB-4k", VirtScheme::HybridDelayedNested(4096)),
        ("hyb+2Dseg", VirtScheme::HybridNestedSegments),
    ];

    let workloads = vec![
        apps::gups(256 << 20),
        apps::mcf(),
        apps::omnetpp(),
        apps::xalancbmk(),
        apps::astar(),
        apps::npb_cg(),
    ];

    let mut rows = Vec::new();
    let mut geo = vec![0.0f64; schemes.len()];
    for spec in &workloads {
        let ipcs: Vec<f64> = schemes
            .iter()
            .map(|(_, s)| run_virt(spec, *s, refs))
            .collect();
        let base = ipcs[0].max(1e-12);
        let norm: Vec<f64> = ipcs.iter().map(|i| i / base).collect();
        for (g, n) in geo.iter_mut().zip(&norm) {
            *g += n.ln();
        }
        let mut row = vec![spec.name.clone()];
        row.extend(norm.iter().map(|n| ratio(*n)));
        rows.push(row);
    }
    let mut geo_row = vec!["geomean".to_string()];
    geo_row.extend(
        geo.iter()
            .map(|g| ratio((g / workloads.len() as f64).exp())),
    );
    rows.push(geo_row);

    let headers: Vec<&str> = std::iter::once("workload")
        .chain(schemes.iter().map(|(n, _)| *n))
        .collect();
    print_table(
        "Virtualized performance normalized to the nested (2D translation-cache) baseline",
        &headers,
        &rows,
    );
    println!("\nExpected shape: removing the 2D walk from the core-to-L1 path and filtering");
    println!("it by the LLC gives large gains; the paper reports +31.7% on average.");
    println!("({refs} references per point; set HVC_REFS to change)");
}
