//! **Table I** — ratio of r/w shared memory area and accesses to the
//! r/w shared regions.
//!
//! Paper values: ferret ≈ 0.3% area / 0.2% accesses; postgres ≈ 66% /
//! 16%; SpecJBB, firefox, apache small; SPEC CPU and the rest of PARSEC
//! exactly 0.

use hvc_bench::{pct, print_table, refs_per_run, run_native};
use hvc_core::{SystemConfig, TranslationScheme};
use hvc_os::AllocPolicy;
use hvc_workloads::apps;

fn main() {
    let refs = refs_per_run(300_000);
    let mut rows = Vec::new();
    let paper: &[(&str, &str, &str)] = &[
        ("ferret", "0.3%", "0.2%"),
        ("postgres", "66%", "16%"),
        ("SpecJBB", "~0.5%", "~0.1%"),
        ("firefox", "~2%", "~0.6%"),
        ("apache", "~3%", "~0.5%"),
        ("SPECCPU", "0%", "0%"),
        ("Remaining Parsec", "0%", "0%"),
    ];

    let mut specs = apps::synonym_set();
    // SPEC representative (no sharing).
    specs.push(apps::mcf());

    for spec in &specs {
        let (report, sim) = run_native(
            spec,
            TranslationScheme::Baseline,
            AllocPolicy::DemandPaging,
            SystemConfig::isca2016(),
            refs,
            17,
        );
        // Average the per-process shared-area ratio, like the paper's
        // per-second sampling average.
        let kernel = sim.kernel();
        let mut area = 0.0;
        let mut nproc = 0.0;
        for asid in 1..=16u16 {
            if let Some(space) = kernel.space(hvc_types::Asid::new(asid)) {
                let total = space.total_vma_pages();
                if total > 0 {
                    area += space.rw_shared_pages() as f64 / total as f64;
                    nproc += 1.0;
                }
            }
        }
        let area = if nproc > 0.0 { area / nproc } else { 0.0 };
        let access = report.translation.shared_accesses as f64 / report.refs as f64;
        let (pa, pb) = paper
            .iter()
            .find(|(n, _, _)| spec.name.starts_with(n) || n.starts_with(&spec.name))
            .map(|(_, a, b)| (*a, *b))
            .unwrap_or(("0%", "0%"));
        rows.push(vec![
            spec.name.clone(),
            pct(area),
            pa.to_string(),
            pct(access),
            pb.to_string(),
        ]);
    }

    print_table(
        "Table I: r/w shared memory area and accesses to shared regions",
        &[
            "workload",
            "shared area",
            "(paper)",
            "shared access",
            "(paper)",
        ],
        &rows,
    );
    println!(
        "\n({} references per workload; set HVC_REFS to change)",
        refs
    );
}
