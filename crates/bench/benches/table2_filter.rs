//! **Table II** — synonym-filter false-positive rates, TLB access
//! reduction, and total TLB miss reduction for the synonym applications.
//!
//! Methodology follows Section III-C: baseline = 64-entry L1 + 1024-entry
//! L2 TLB; proposed = 64-entry synonym TLB + 1024-entry delayed TLB
//! behind an 8 MB shared LLC. Paper values: false positives < 0.5%; TLB
//! access reduction 83.7% (postgres) – 99.9% (SpecJBB); total TLB miss
//! reduction −6.1% (postgres) … 69.7% (apache).

use hvc_bench::{pct, print_table, refs_per_run, run_native_warm};
use hvc_core::{SystemConfig, TranslationScheme};
use hvc_os::AllocPolicy;
use hvc_workloads::apps;

fn main() {
    let refs = refs_per_run(500_000);
    let paper: &[(&str, &str, &str, &str)] = &[
        ("ferret", "0.061%", "99.1%", "20.4%"),
        ("postgres", "0.029%", "83.7%", "-6.1%"),
        ("SpecJBB", "0.008%", "99.9%", "42.6%"),
        ("firefox", "0.030%", "99.4%", "63.2%"),
        ("apache", "0.143%", "99.5%", "69.7%"),
    ];
    let mut rows = Vec::new();

    for spec in apps::synonym_set() {
        // Same workload and seed under both architectures.
        let (base, _) = run_native_warm(
            &spec,
            TranslationScheme::Baseline,
            AllocPolicy::DemandPaging,
            SystemConfig::isca2016_8mb_llc(),
            refs / 2,
            refs,
            23,
        );
        let (hyb, _) = run_native_warm(
            &spec,
            TranslationScheme::HybridDelayedTlb(1024),
            AllocPolicy::DemandPaging,
            SystemConfig::isca2016_8mb_llc(),
            refs / 2,
            refs,
            23,
        );

        let fp_rate =
            hyb.translation.false_positives as f64 / hyb.translation.filter_lookups as f64;
        let access_reduction = 1.0
            - hyb.translation.synonym_tlb_lookups as f64 / base.translation.l1_tlb_lookups as f64;
        let base_misses = base.baseline_tlb_misses.max(1);
        let miss_reduction = 1.0 - hyb.translation.total_tlb_misses() as f64 / base_misses as f64;

        let (p_fp, p_ar, p_mr) = paper
            .iter()
            .find(|(n, ..)| *n == spec.name)
            .map(|(_, a, b, c)| (*a, *b, *c))
            .unwrap_or(("-", "-", "-"));
        rows.push(vec![
            spec.name.clone(),
            format!("{:.3}%", fp_rate * 100.0),
            p_fp.to_string(),
            pct(access_reduction),
            p_ar.to_string(),
            pct(miss_reduction),
            p_mr.to_string(),
        ]);
    }

    print_table(
        "Table II: synonym filter effectiveness (proposed vs baseline TLBs)",
        &[
            "workload",
            "FP rate",
            "(paper)",
            "TLB access red.",
            "(paper)",
            "TLB miss red.",
            "(paper)",
        ],
        &rows,
    );
    println!(
        "\n({} references per workload per scheme; set HVC_REFS to change)",
        refs
    );
}
