//! **Ablation** — why the synonym filter uses *two* granularities.
//!
//! The paper's filter ANDs a 16 MB-granule filter with a 32 KB-granule
//! filter (Figure 3). This ablation measures false-positive rates for
//! coarse-only, fine-only, and the combined design across sharing
//! intensities.

use hvc_bench::{pct, print_table, refs_per_run};
use hvc_filter::{BloomFilter, SynonymFilter, COARSE_SHIFT, FINE_SHIFT};
use hvc_types::VirtAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let probes = refs_per_run(200_000);
    let mut rows = Vec::new();

    for &shared_regions in &[8usize, 32, 128, 512] {
        let mut coarse = BloomFilter::new(COARSE_SHIFT);
        let mut fine = BloomFilter::new(FINE_SHIFT);
        let mut combined = SynonymFilter::new();
        let mut rng = StdRng::seed_from_u64(7);

        // Shared regions clustered the way shm segments are: groups of 8
        // consecutive 4 KB pages.
        let mut shared = Vec::new();
        for _ in 0..shared_regions {
            let base = (rng.gen_range(0u64..1 << 32)) << 15;
            shared.push(base);
            for page in 0..8u64 {
                let va = VirtAddr::new(base + page * 4096);
                coarse.insert(va);
                fine.insert(va);
                combined.insert_page(va);
            }
        }

        // Probe disjoint private addresses.
        let (mut fp_c, mut fp_f, mut fp_b) = (0u64, 0u64, 0u64);
        for _ in 0..probes {
            let va = VirtAddr::new(rng.gen_range(0u64..1 << 47) | (1 << 46));
            if coarse.contains(va) {
                fp_c += 1;
            }
            if fine.contains(va) {
                fp_f += 1;
            }
            if combined.is_candidate(va) {
                fp_b += 1;
            }
        }
        let n = probes as f64;
        rows.push(vec![
            shared_regions.to_string(),
            pct(fp_c as f64 / n),
            pct(fp_f as f64 / n),
            pct(fp_b as f64 / n),
        ]);
    }

    print_table(
        "Ablation: filter false-positive rate by granularity design",
        &[
            "shared regions",
            "coarse-only (16MB)",
            "fine-only (32KB)",
            "both (paper)",
        ],
        &rows,
    );
    println!("\nExpected shape: the conjunction stays well under either filter alone,");
    println!("keeping false positives <0.5% even at heavy sharing.");
}
