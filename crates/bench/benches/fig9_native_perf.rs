//! **Figure 9** — native-system performance normalized to the
//! physically-addressed baseline.
//!
//! Configurations: baseline; hybrid with delayed TLBs of 1K / 4K / 32K
//! entries; hybrid with many-segment translation (without and with the
//! segment cache); ideal TLB. Paper headline: memory-intensive
//! applications improve by ≈10.7% with scalable delayed translation,
//! with many-segment ≈ ideal.

use hvc_bench::{print_table, ratio, refs_per_run, run_native_warm};
use hvc_core::{SystemConfig, TranslationScheme};
use hvc_os::AllocPolicy;
use hvc_workloads::apps;

fn main() {
    let refs = refs_per_run(1_000_000);
    let schemes: Vec<(&str, TranslationScheme, AllocPolicy)> = vec![
        (
            "baseline",
            TranslationScheme::Baseline,
            AllocPolicy::DemandPaging,
        ),
        (
            "dTLB-1k",
            TranslationScheme::HybridDelayedTlb(1024),
            AllocPolicy::DemandPaging,
        ),
        (
            "dTLB-4k",
            TranslationScheme::HybridDelayedTlb(4096),
            AllocPolicy::DemandPaging,
        ),
        (
            "dTLB-32k",
            TranslationScheme::HybridDelayedTlb(32768),
            AllocPolicy::DemandPaging,
        ),
        (
            "enigma-4k",
            TranslationScheme::EnigmaDelayedTlb(4096),
            AllocPolicy::DemandPaging,
        ),
        (
            "manyseg",
            TranslationScheme::HybridManySegment {
                segment_cache: false,
            },
            AllocPolicy::EagerSegments { split: 1 },
        ),
        (
            "manyseg+SC",
            TranslationScheme::HybridManySegment {
                segment_cache: true,
            },
            AllocPolicy::EagerSegments { split: 1 },
        ),
        ("ideal", TranslationScheme::Ideal, AllocPolicy::DemandPaging),
    ];

    let mut rows = Vec::new();
    let mut geo: Vec<f64> = vec![0.0; schemes.len()];
    let mut counted = 0usize;

    for spec in apps::fig9_set() {
        let mut ipcs = Vec::new();
        for (_, scheme, policy) in &schemes {
            let (r, _) = run_native_warm(
                &spec,
                *scheme,
                *policy,
                SystemConfig::isca2016(),
                refs / 2,
                refs,
                61,
            );
            ipcs.push(r.ipc());
        }
        let base = ipcs[0].max(1e-12);
        let normalized: Vec<f64> = ipcs.iter().map(|i| i / base).collect();
        for (g, n) in geo.iter_mut().zip(&normalized) {
            *g += n.ln();
        }
        counted += 1;
        let mut row = vec![spec.name.clone()];
        row.extend(normalized.iter().map(|n| ratio(*n)));
        rows.push(row);
    }

    let mut geo_row = vec!["geomean".to_string()];
    geo_row.extend(geo.iter().map(|g| ratio((g / counted as f64).exp())));
    rows.push(geo_row);

    let headers: Vec<&str> = std::iter::once("workload")
        .chain(schemes.iter().map(|(n, _, _)| *n))
        .collect();
    print_table(
        "Figure 9: speedup over the physically-addressed baseline (Table IV config)",
        &headers,
        &rows,
    );
    println!("\nExpected shape: delayed TLBs help until the page working set outgrows them");
    println!("(gups/mcf saturate); many-segment tracks ideal; paper reports ≈+10.7% for");
    println!("memory-intensive applications.");
    println!("({refs} references per point; set HVC_REFS to change)");
}
