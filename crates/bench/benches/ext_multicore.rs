//! **Extension** — quad-core multiprogrammed mixes under hybrid virtual
//! caching.
//!
//! The paper evaluates multiprogrammed quad-core mixes for the
//! index-cache study (Figure 7); this extension runs full-system
//! simulations of such mixes: four single-process workloads pinned to
//! four cores sharing one inclusive LLC, the delayed translation
//! structures, and DRAM. It also demonstrates the instruction-fetch
//! stream model (every fetch consults the translation front-end).

use hvc_bench::{print_table, ratio, refs_per_run, PHYS_BYTES};
use hvc_cache::HierarchyConfig;
use hvc_core::{SystemConfig, SystemSim, TranslationScheme};
use hvc_os::{AllocPolicy, Kernel};
use hvc_workloads::{apps, WorkloadSpec};

/// Interleaves four single-process workloads round-robin through one
/// 4-core simulator and returns the aggregate IPC.
fn run_mix(
    mix: &[WorkloadSpec],
    scheme: TranslationScheme,
    policy: AllocPolicy,
    refs: usize,
    ifetch: bool,
) -> f64 {
    let mut kernel = Kernel::new(PHYS_BYTES, policy);
    let mut insts: Vec<_> = mix
        .iter()
        .map(|s| s.instantiate(&mut kernel, 77).expect("instantiate"))
        .collect();
    let mut config = SystemConfig::isca2016();
    config.hierarchy = HierarchyConfig::isca2016(4);
    config.model_ifetch = ifetch;
    let mut sim = SystemSim::new(kernel, config, scheme);
    let n = insts.len();
    for i in 0..refs {
        let inst = &mut insts[i % n];
        let mlp = inst.mlp();
        let item = inst.next_item();
        sim.step(item, mlp);
    }
    sim.report().ipc()
}

fn main() {
    let refs = refs_per_run(400_000);
    let mixes: Vec<(&str, Vec<WorkloadSpec>)> = vec![
        (
            "zipf-heavy",
            vec![
                apps::xalancbmk(),
                apps::omnetpp(),
                apps::astar(),
                apps::memcached(),
            ],
        ),
        (
            "mixed",
            vec![
                apps::gups(256 << 20),
                apps::omnetpp(),
                apps::stream(),
                apps::npb_cg(),
            ],
        ),
        (
            "index-walkers",
            vec![
                apps::tigr(),
                apps::mummer(),
                apps::xalancbmk(),
                apps::canneal(),
            ],
        ),
    ];

    let mut rows = Vec::new();
    for (name, mix) in &mixes {
        let base = run_mix(
            mix,
            TranslationScheme::Baseline,
            AllocPolicy::DemandPaging,
            refs,
            false,
        );
        let hyb = run_mix(
            mix,
            TranslationScheme::HybridManySegment {
                segment_cache: true,
            },
            AllocPolicy::EagerSegments { split: 1 },
            refs,
            false,
        );
        let hyb_if = run_mix(
            mix,
            TranslationScheme::HybridManySegment {
                segment_cache: true,
            },
            AllocPolicy::EagerSegments { split: 1 },
            refs,
            true,
        );
        rows.push(vec![
            name.to_string(),
            format!("{base:.3}"),
            ratio(hyb / base),
            ratio(hyb_if / base),
        ]);
    }

    print_table(
        "Extension: 4-core multiprogrammed mixes (aggregate IPC, normalized)",
        &[
            "mix",
            "baseline IPC",
            "hyb+manyseg",
            "hyb+manyseg (+ifetch)",
        ],
        &rows,
    );
    println!("\nFour cores share one LLC and the delayed translation structures. The");
    println!("memory-intensive mixes keep their hybrid gains; a mix of Zipfian");
    println!("workloads whose combined hot sets thrash the shared LLC shifts the");
    println!("balance back toward the baseline (serial delayed translation is paid");
    println!("on every LLC miss) — the multiprogrammed analogue of Figure 9's");
    println!("per-application crossovers.");
    println!("({refs} references per point; set HVC_REFS to change)");
}
