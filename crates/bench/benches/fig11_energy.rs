//! **Translation energy** (Section VI; abstract headline: the power
//! consumption of the translation components drops by ≈60%).
//!
//! For each workload, the dynamic translation energy (CACTI-flavoured
//! per-access energies × event counts) is compared between the baseline
//! two-level TLB and the hybrid schemes.

use hvc_bench::{pct, print_table, refs_per_run, run_native_warm};
use hvc_core::{EnergyModel, SystemConfig, TranslationScheme};
use hvc_os::AllocPolicy;
use hvc_workloads::apps;

fn main() {
    let refs = refs_per_run(500_000);
    let model = EnergyModel::cacti_32nm();
    let mut rows = Vec::new();
    let mut sum_base = 0.0;
    let mut sum_tlb = 0.0;
    let mut sum_seg = 0.0;

    let mut workloads = apps::synonym_set();
    workloads.extend([
        apps::mcf(),
        apps::omnetpp(),
        apps::astar(),
        apps::gups(256 << 20),
    ]);

    for spec in &workloads {
        let warm = refs / 2;
        let (base, _) = run_native_warm(
            spec,
            TranslationScheme::Baseline,
            AllocPolicy::DemandPaging,
            SystemConfig::isca2016(),
            warm,
            refs,
            83,
        );
        let (hyb, _) = run_native_warm(
            spec,
            TranslationScheme::HybridDelayedTlb(1024),
            AllocPolicy::DemandPaging,
            SystemConfig::isca2016(),
            warm,
            refs,
            83,
        );
        let (seg, _) = run_native_warm(
            spec,
            TranslationScheme::HybridManySegment {
                segment_cache: true,
            },
            AllocPolicy::EagerSegments { split: 1 },
            SystemConfig::isca2016(),
            warm,
            refs,
            83,
        );

        let e_base = model.breakdown(&base.translation, 1024).total();
        let e_hyb = model.breakdown(&hyb.translation, 1024).total();
        let e_seg = model.breakdown(&seg.translation, 1024).total();
        sum_base += e_base;
        sum_tlb += e_hyb;
        sum_seg += e_seg;

        rows.push(vec![
            spec.name.clone(),
            format!("{:.1}", e_base / 1e6),
            format!("{:.1}", e_hyb / 1e6),
            pct(1.0 - e_hyb / e_base),
            format!("{:.1}", e_seg / 1e6),
            pct(1.0 - e_seg / e_base),
        ]);
    }

    rows.push(vec![
        "TOTAL".into(),
        format!("{:.1}", sum_base / 1e6),
        format!("{:.1}", sum_tlb / 1e6),
        pct(1.0 - sum_tlb / sum_base),
        format!("{:.1}", sum_seg / 1e6),
        pct(1.0 - sum_seg / sum_base),
    ]);

    print_table(
        "Translation dynamic energy (µJ) — baseline vs hybrid schemes",
        &[
            "workload",
            "baseline",
            "hyb+dTLB",
            "saving",
            "hyb+manyseg",
            "saving",
        ],
        &rows,
    );
    println!("\nExpected shape: per-access TLB lookups are replaced by cheap filter probes;");
    println!("the paper reports ≈60% lower translation power.");
    println!("({refs} references per point; set HVC_REFS to change)");
}
