//! Criterion microbenchmarks of the hot simulator components.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hvc_cache::{Hierarchy, HierarchyConfig};
use hvc_filter::SynonymFilter;
use hvc_mem::{Dram, DramConfig};
use hvc_os::SegmentTable;
use hvc_segment::IndexTree;
use hvc_tlb::{Tlb, TlbConfig};
use hvc_types::{AccessKind, Asid, BlockName, Cycles, LineAddr, PhysAddr, VirtAddr, VirtPage};

fn bench_filter(c: &mut Criterion) {
    let mut f = SynonymFilter::new();
    for i in 0..64u64 {
        f.insert_page(VirtAddr::new(i << 15));
    }
    c.bench_function("synonym_filter_probe", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            black_box(f.is_candidate(VirtAddr::new(x)))
        })
    });
}

fn bench_tlb(c: &mut Criterion) {
    let mut t = Tlb::new(TlbConfig::l2_1024());
    let pte = hvc_os::Pte {
        frame: hvc_types::PhysFrame::new(1),
        perm: hvc_types::Permissions::RW,
        shared: false,
    };
    for i in 0..1024u64 {
        t.insert(Asid::new(1), VirtPage::new(i), pte);
    }
    c.bench_function("tlb_lookup_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(t.lookup(Asid::new(1), VirtPage::new(i)))
        })
    });
}

fn bench_index_tree(c: &mut Criterion) {
    let mut table = SegmentTable::new(2048);
    for i in 0..2048u64 {
        table
            .insert(
                Asid::new(1),
                VirtAddr::new(i * 0x100_0000),
                0x80_0000,
                PhysAddr::new(i * 0x80_0000),
            )
            .unwrap();
    }
    let tree = IndexTree::build(&table, PhysAddr::new(0));
    c.bench_function("index_tree_lookup_2048", |b| {
        let mut i = 0u64;
        let mut touched = Vec::with_capacity(8);
        b.iter(|| {
            i = (i * 6364136223846793005).wrapping_add(1442695040888963407);
            touched.clear();
            black_box(tree.lookup(
                Asid::new(1),
                VirtAddr::new(i % (2048 * 0x100_0000)),
                &mut touched,
            ))
        })
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut h = Hierarchy::new(HierarchyConfig::isca2016(1));
    for i in 0..512u64 {
        h.access(
            0,
            BlockName::Virt(Asid::new(1), LineAddr::new(i)),
            AccessKind::Read,
        );
    }
    c.bench_function("hierarchy_l1_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(h.access(
                0,
                BlockName::Virt(Asid::new(1), LineAddr::new(i)),
                AccessKind::Read,
            ))
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    let mut d = Dram::new(DramConfig::ddr3_1600());
    c.bench_function("dram_access", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x40);
            black_box(d.access(Cycles::new(i), PhysAddr::new(i % (1 << 30)), false))
        })
    });
}

criterion_group!(
    benches,
    bench_filter,
    bench_tlb,
    bench_index_tree,
    bench_hierarchy,
    bench_dram
);
criterion_main!(benches);
