//! **Ablation** — reservation-based allocation (Section IV-B).
//!
//! Pure eager allocation strands memory for partially-touched arenas
//! (Table III's utilization column); reservation-based allocation
//! commits sub-segments on first touch and merges neighbours, recovering
//! utilization at the cost of more segments and commit-time work.

use hvc_bench::{pct, print_table, refs_per_run, PHYS_BYTES};
use hvc_core::{SystemConfig, SystemSim, TranslationScheme};
use hvc_os::{AllocPolicy, Kernel};
use hvc_workloads::apps;

fn main() {
    let refs = refs_per_run(300_000);
    let mut rows = Vec::new();

    for spec in [apps::cactus(), apps::memcached(), apps::gems()] {
        for (label, policy) in [
            ("eager", AllocPolicy::EagerSegments { split: 1 }),
            (
                "reserved-2MB",
                AllocPolicy::ReservedSegments { sub_pages: 512 },
            ),
            (
                "reserved-8MB",
                AllocPolicy::ReservedSegments { sub_pages: 2048 },
            ),
        ] {
            let mut kernel = Kernel::new(PHYS_BYTES, policy);
            let mut wl = spec.instantiate(&mut kernel, 91).expect("instantiate");
            let asid = wl.procs()[0].asid;
            let mut sim = SystemSim::new(
                kernel,
                SystemConfig::isca2016(),
                TranslationScheme::HybridManySegment {
                    segment_cache: true,
                },
            );
            let r = sim.run(&mut wl, refs);
            let kernel = sim.kernel();
            let space = kernel.space(asid).expect("space");
            // Committed physical memory vs what the workload will ever
            // touch: eager commits everything up front; reservation
            // commits only what was touched (so utilization ≈ 100%).
            let committed = space.eager_allocated_bytes();
            let planned_touched: f64 = spec
                .regions
                .iter()
                .map(|rg| rg.len as f64 * rg.touch_frac)
                .sum();
            let util = if committed == 0 {
                0.0
            } else {
                (planned_touched / committed as f64).min(1.0)
            };
            rows.push(vec![
                format!("{}:{}", spec.name, label),
                kernel.segments().count_asid(asid).to_string(),
                format!("{}MB", committed >> 20),
                pct(util),
                format!("{:.3}", r.ipc()),
                r.translation.segment_table_rebuilds.to_string(),
            ]);
        }
    }

    print_table(
        "Ablation: eager vs reservation-based segment allocation",
        &[
            "workload:policy",
            "segments",
            "committed",
            "utilization",
            "IPC",
            "rebuilds",
        ],
        &rows,
    );
    println!("\nExpected shape: reservation recovers the stranded memory of");
    println!("partially-touched arenas (utilization → ~100% of committed) while");
    println!("using more segments and paying commit-time structure rebuilds.");
    println!("({refs} references per point; set HVC_REFS to change)");
}
