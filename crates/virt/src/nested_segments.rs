//! Delayed two-dimensional segment translation (Section V-B).
//!
//! Guest segments map `gVA → gPA` (maintained by the guest OS); host
//! segments map `gPA → MA` (maintained by the hypervisor, which backs
//! each VM with large contiguous machine regions). After an LLC miss the
//! two lookups happen serially, with a 128-entry segment cache storing
//! direct `gVA → MA` translations for 2 MB regions to skip both steps.

use crate::Hypervisor;
use hvc_os::SegmentId;
use hvc_segment::{HwSegmentTable, IndexCache, IndexTree, SegmentCache};
use hvc_types::{Asid, Cycles, GuestPhysAddr, PhysAddr, VirtAddr, Vmid};

/// Counters for 2D segment translation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NestedSegmentStats {
    /// Translations served directly by the gVA→MA segment cache.
    pub sc_hits: u64,
    /// Full two-step translations.
    pub two_step: u64,
    /// Addresses not covered by guest or host segments.
    pub uncovered: u64,
}

/// Two-dimensional many-segment translation with a gVA→MA segment cache.
#[derive(Debug)]
pub struct NestedSegments {
    /// Guest-side structures (gVA → gPA).
    guest_tree: IndexTree,
    guest_table: HwSegmentTable,
    guest_cache: IndexCache,
    /// Host-side structures (gPA → MA).
    host_tree: IndexTree,
    host_table: HwSegmentTable,
    host_cache: IndexCache,
    /// Direct gVA→MA cache (2 MB granularity).
    sc: SegmentCache,
    stats: NestedSegmentStats,
}

impl NestedSegments {
    /// Builds the 2D translator from the guest kernel of `vmid` and the
    /// hypervisor's host segment table.
    ///
    /// # Errors
    ///
    /// [`hvc_types::HvcError::BadId`] for an unknown VM.
    pub fn build(hv: &Hypervisor, vmid: Vmid) -> hvc_types::Result<Self> {
        let guest_segments = hv.guest_kernel(vmid)?.segments();
        let host_segments = hv.host_segments();
        Ok(NestedSegments {
            guest_tree: IndexTree::build(guest_segments, PhysAddr::new(1 << 41)),
            guest_table: HwSegmentTable::mirror(guest_segments, Cycles::new(7)),
            guest_cache: IndexCache::isca2016(),
            host_tree: IndexTree::build(host_segments, PhysAddr::new(1 << 42)),
            host_table: HwSegmentTable::mirror(host_segments, Cycles::new(7)),
            host_cache: IndexCache::isca2016(),
            sc: SegmentCache::isca2016(),
            stats: NestedSegmentStats::default(),
        })
    }

    /// Translates `(asid, gva)` to a machine address after an LLC miss.
    /// `host_key` is the VM's host-segment ASID
    /// ([`Hypervisor::host_segment_key`]); `fetch` charges index-tree
    /// node reads that miss the index caches.
    ///
    /// Returns `None` (with `uncovered` counted) if either dimension has
    /// no covering segment.
    pub fn translate(
        &mut self,
        asid: Asid,
        host_key: Asid,
        gva: VirtAddr,
        mut fetch: impl FnMut(PhysAddr) -> Cycles,
    ) -> Option<(PhysAddr, Cycles)> {
        let mut latency = self.sc.latency();
        if let Some(ma) = self.sc.translate(asid, gva) {
            self.stats.sc_hits += 1;
            return Some((ma, latency));
        }

        // Step 1: guest segments, gVA → gPA.
        let (gpa, guest_seg) = {
            let mut touched = Vec::new();
            let id = self.guest_tree.lookup(asid, gva, &mut touched)?;
            for &n in &touched {
                latency += self.guest_cache.latency();
                if !self.guest_cache.access(n) {
                    latency += fetch(n);
                }
            }
            latency += self.guest_table.latency();
            let Some(gpa) = self.guest_table.translate(id, asid, gva) else {
                self.stats.uncovered += 1;
                return None;
            };
            (GuestPhysAddr::new(gpa.as_u64()), id)
        };

        // Step 2: host segments, gPA → MA (gPA plays the VA role).
        let gpa_as_va = VirtAddr::new(gpa.as_u64());
        let mut touched = Vec::new();
        let Some(host_id) = self.host_tree.lookup(host_key, gpa_as_va, &mut touched) else {
            self.stats.uncovered += 1;
            return None;
        };
        for &n in &touched {
            latency += self.host_cache.latency();
            if !self.host_cache.access(n) {
                latency += fetch(n);
            }
        }
        latency += self.host_table.latency();
        let Some(ma) = self.host_table.translate(host_id, host_key, gpa_as_va) else {
            self.stats.uncovered += 1;
            return None;
        };
        self.stats.two_step += 1;

        // Fill the direct gVA→MA segment cache with the *intersection*
        // of the guest and host segments around `gva`, so SC hits stay
        // within both segments' bounds.
        if let (Some(gseg), Some(hseg)) = (
            self.guest_table.get(guest_seg),
            self.host_table.get(host_id),
        ) {
            // Effective direct segment: from the later of the two bases
            // (mapped back to gVA) to the earlier of the two limits.
            let g_delta = gseg.phys_base.as_u64() as i128 - gseg.base.as_u64() as i128;
            let h_delta = hseg.phys_base.as_u64() as i128 - hseg.base.as_u64() as i128;
            // Host segment bounds mapped back into gVA space (signed: the
            // guest offset can exceed the host base).
            let h_start_gva = hseg.base.as_u64() as i128 - g_delta;
            let h_end_gva = h_start_gva + hseg.len as i128;
            let start = (gseg.base.as_u64() as i128).max(h_start_gva);
            let end = ((gseg.base.as_u64() + gseg.len) as i128).min(h_end_gva);
            if end > start {
                let direct = hvc_os::Segment {
                    id: SegmentId(u32::MAX),
                    asid,
                    base: VirtAddr::new(start as u64),
                    len: (end - start) as u64,
                    phys_base: PhysAddr::new((start + g_delta + h_delta) as u64),
                };
                self.sc.fill(asid, gva, &direct);
            }
        }
        Some((ma, latency))
    }

    /// Counters.
    pub fn stats(&self) -> &NestedSegmentStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_os::{AllocPolicy, MapIntent};
    use hvc_types::Permissions;

    const GIB: u64 = 1 << 30;

    fn setup() -> (Hypervisor, Vmid, Asid, VirtAddr) {
        let mut hv = Hypervisor::new(2 * GIB);
        let vm = hv
            .create_vm(256 << 20, AllocPolicy::EagerSegments { split: 1 }, true)
            .unwrap();
        let asid = hv.create_guest_process(vm).unwrap();
        let va = VirtAddr::new(0x40_0000);
        let gk = hv.guest_kernel_mut(vm).unwrap();
        gk.mmap(asid, va, 1 << 20, Permissions::RW, MapIntent::Private)
            .unwrap();
        (hv, vm, asid, va)
    }

    #[test]
    fn two_step_translation_matches_ept_path() {
        let (mut hv, vm, asid, va) = setup();
        let mut ns = NestedSegments::build(&hv, vm).unwrap();
        let host_key = hv.host_segment_key(vm).unwrap();
        let probe = va + 0x1234;
        let (ma, _lat) = ns
            .translate(asid, host_key, probe, |_| Cycles::new(160))
            .expect("covered");
        // Cross-check with guest PT + EPT.
        let gpte = hv
            .guest_kernel(vm)
            .unwrap()
            .walk(asid, probe.page_number())
            .unwrap()
            .0;
        let gpa = GuestPhysAddr::new(gpte.frame.base().as_u64() + probe.page_offset());
        let ma_ref = hv.machine_addr(vm, gpa).unwrap();
        assert_eq!(ma, ma_ref);
        assert_eq!(ns.stats().two_step, 1);
    }

    #[test]
    fn sc_caches_direct_gva_to_ma() {
        let (hv, vm, asid, va) = setup();
        let mut ns = NestedSegments::build(&hv, vm).unwrap();
        let host_key = hv.host_segment_key(vm).unwrap();
        let (ma1, lat1) = ns
            .translate(asid, host_key, va, |_| Cycles::new(160))
            .unwrap();
        let (ma2, lat2) = ns
            .translate(asid, host_key, va + 0x40, |_| Cycles::new(160))
            .unwrap();
        assert_eq!(ma2 - ma1, 0x40);
        assert!(lat2 < lat1, "SC hit must be cheaper: {lat2:?} vs {lat1:?}");
        assert_eq!(ns.stats().sc_hits, 1);
    }

    #[test]
    fn uncovered_gva_is_none() {
        let (hv, vm, asid, _) = setup();
        let mut ns = NestedSegments::build(&hv, vm).unwrap();
        let host_key = hv.host_segment_key(vm).unwrap();
        assert!(ns
            .translate(asid, host_key, VirtAddr::new(0xdead_0000), |_| Cycles::new(
                160
            ))
            .is_none());
    }
}
