//! Virtualization substrate: hypervisor memory management and
//! two-dimensional (nested) address translation (the paper's Section V).
//!
//! A [`Hypervisor`] hosts virtual machines, each with its own guest
//! [`hvc_os::Kernel`] managing *guest-physical* memory; a per-VM extended
//! page table (EPT) maps guest-physical frames to machine frames. Guest
//! ASIDs embed the VMID ([`hvc_types::Asid::for_vm`]) so virtually-tagged
//! cachelines never cross VMs.
//!
//! Synonym detection composes two filters looked up with the *guest
//! virtual* address ([`hvc_filter::GuestHostFilters`]): the guest OS
//! maintains the guest filter; the hypervisor maintains the host filter
//! for hypervisor-induced r/w sharing. Content deduplication
//! ([`Hypervisor::dedup_ro`]) uses the read-only optimization and stays
//! out of the filters entirely.
//!
//! [`NestedWalker`] implements the full two-dimensional radix walk (up to
//! 24 memory references) with a nested TLB that short-circuits
//! guest-physical→machine translations, matching the "state-of-the-art
//! translation cache" baseline; [`NestedSegments`] implements delayed 2D
//! segment translation (guest + host segments with a gVA→MA segment
//! cache).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hypervisor;
mod nested;
mod nested_segments;

pub use hypervisor::{Hypervisor, VirtStats};
pub use nested::{NestedPte, NestedWalker, NestedWalkerStats};
pub use nested_segments::{NestedSegmentStats, NestedSegments};
