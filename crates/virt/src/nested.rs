//! Two-dimensional (guest + host) hardware page walking.

use crate::Hypervisor;
use hvc_types::{Asid, Cycles, GuestPhysAddr, Permissions, PhysAddr, PhysFrame, VirtPage, Vmid};

/// The result of a nested translation: everything the TLB caches about a
/// guest virtual page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NestedPte {
    /// Backing machine frame.
    pub machine_frame: PhysFrame,
    /// Effective permissions (guest ∩ host).
    pub perm: Permissions,
    /// Guest-OS-induced synonym status (the guest PTE's shared bit).
    pub guest_shared: bool,
}

/// Counters for the nested walker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NestedWalkerStats {
    /// Nested walks completed.
    pub walks: u64,
    /// Memory references issued (guest PT entries + EPT entries).
    pub memory_reads: u64,
    /// gPA→MA translations served by the nested TLB.
    pub nested_tlb_hits: u64,
    /// gPA→MA translations requiring an EPT walk.
    pub nested_tlb_misses: u64,
}

#[derive(Clone, Copy, Debug)]
struct NestedTlbEntry {
    vmid: Vmid,
    gpa_page: u64,
    machine_frame: PhysFrame,
    lru: u64,
}

/// A hardware two-dimensional page walker with a nested TLB (gPA→MA) —
/// the translation-cache-equipped 2D walker of recent x86 parts, which
/// the paper's virtualized baseline models.
///
/// Worst case (cold nested TLB) a walk issues the classic
/// `4 guest reads + 5 EPT walks × 4 reads = 24` memory references; a warm
/// nested TLB reduces it to the four guest reads.
#[derive(Clone, Debug)]
pub struct NestedWalker {
    nested_tlb: Vec<NestedTlbEntry>,
    capacity: usize,
    tick: u64,
    stats: NestedWalkerStats,
}

impl NestedWalker {
    /// Creates a walker with a nested TLB of `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        NestedWalker {
            nested_tlb: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: NestedWalkerStats::default(),
        }
    }

    /// A representative configuration: 64-entry nested TLB.
    pub fn isca2016() -> Self {
        NestedWalker::new(64)
    }

    /// Walks guest and host tables for `(vmid, asid, vpage)`.
    ///
    /// Both the guest page and all page-table pages must already have
    /// machine backing (the system simulator services EPT violations via
    /// [`Hypervisor::machine_addr`] before walking). Every memory read is
    /// charged through `access`.
    ///
    /// Returns `None` on a guest page fault or missing machine backing.
    pub fn walk(
        &mut self,
        hv: &Hypervisor,
        vmid: Vmid,
        asid: Asid,
        vpage: VirtPage,
        mut access: impl FnMut(PhysAddr) -> Cycles,
    ) -> Option<(NestedPte, Cycles)> {
        let kernel = hv.guest_kernel(vmid).ok()?;
        let (gpte, gpath) = kernel.walk(asid, vpage)?;
        let mut latency = Cycles::ZERO;
        // Read each guest page-table entry; its address is guest-physical
        // and must itself be translated through the EPT first.
        for &gpa_entry in &gpath {
            let gpa = GuestPhysAddr::new(gpa_entry.as_u64());
            let ma = self.translate_gpa(hv, vmid, gpa, &mut access, &mut latency)?;
            latency += access(ma);
            self.stats.memory_reads += 1;
        }
        // Translate the leaf guest frame to its machine frame (the fifth
        // EPT walk of the classic 24-reference picture).
        let data_gpa = GuestPhysAddr::new(gpte.frame.base().as_u64());
        let data_ma = self.translate_gpa(hv, vmid, data_gpa, &mut access, &mut latency)?;
        let (ept_pte, _) = hv.ept_walk(vmid, data_gpa)?;
        self.stats.walks += 1;
        let perm = intersect(gpte.perm, ept_pte.perm);
        Some((
            NestedPte {
                machine_frame: data_ma.frame_number(),
                perm,
                guest_shared: gpte.shared,
            },
            latency,
        ))
    }

    /// Translates a guest-physical address via the nested TLB or a full
    /// EPT walk (charging its reads).
    fn translate_gpa(
        &mut self,
        hv: &Hypervisor,
        vmid: Vmid,
        gpa: GuestPhysAddr,
        access: &mut impl FnMut(PhysAddr) -> Cycles,
        latency: &mut Cycles,
    ) -> Option<PhysAddr> {
        self.tick += 1;
        let tick = self.tick;
        let gpa_page = gpa.as_u64() >> hvc_types::PAGE_SHIFT;
        if let Some(e) = self
            .nested_tlb
            .iter_mut()
            .find(|e| e.vmid == vmid && e.gpa_page == gpa_page)
        {
            e.lru = tick;
            self.stats.nested_tlb_hits += 1;
            *latency += Cycles::new(1);
            return Some(PhysAddr::new(
                e.machine_frame.base().as_u64() + gpa.page_offset(),
            ));
        }
        self.stats.nested_tlb_misses += 1;
        let (pte, path) = hv.ept_walk(vmid, gpa)?;
        for &addr in &path {
            *latency += access(addr);
            self.stats.memory_reads += 1;
        }
        if self.capacity > 0 {
            if self.nested_tlb.len() == self.capacity {
                let (slot, _) = self
                    .nested_tlb
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.lru)
                    .expect("non-empty");
                self.nested_tlb.swap_remove(slot);
            }
            self.nested_tlb.push(NestedTlbEntry {
                vmid,
                gpa_page,
                machine_frame: pte.frame,
                lru: tick,
            });
        }
        Some(PhysAddr::new(pte.frame.base().as_u64() + gpa.page_offset()))
    }

    /// Invalidates the nested TLB (EPT changes).
    pub fn flush(&mut self) {
        self.nested_tlb.clear();
    }

    /// Counters.
    pub fn stats(&self) -> &NestedWalkerStats {
        &self.stats
    }

    /// Resets counters.
    pub fn reset_stats(&mut self) {
        self.stats = NestedWalkerStats::default();
    }
}

impl Default for NestedWalker {
    fn default() -> Self {
        NestedWalker::isca2016()
    }
}

fn intersect(a: Permissions, b: Permissions) -> Permissions {
    let mut p = Permissions::NONE;
    for bit in [Permissions::READ, Permissions::WRITE, Permissions::EXEC] {
        if a.allows(bit) && b.allows(bit) {
            p |= bit;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_os::{AllocPolicy, MapIntent};
    use hvc_types::VirtAddr;

    const GIB: u64 = 1 << 30;

    /// Sets up a VM with one mapped+touched guest page whose guest PT
    /// pages and data page all have machine backing.
    fn setup() -> (Hypervisor, Vmid, Asid, VirtAddr) {
        let mut hv = Hypervisor::new(2 * GIB);
        let vm = hv
            .create_vm(GIB / 2, AllocPolicy::DemandPaging, false)
            .unwrap();
        let asid = hv.create_guest_process(vm).unwrap();
        let va = VirtAddr::new(0x40_0000);
        let gk = hv.guest_kernel_mut(vm).unwrap();
        gk.mmap(
            asid,
            va,
            0x10000,
            hvc_types::Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        gk.translate_touch(asid, va).unwrap();
        gk.translate_touch(asid, va + 0x1000).unwrap();
        // Establish machine backing for PT pages and data pages.
        let (gpte, gpath) = hv
            .guest_kernel(vm)
            .unwrap()
            .walk(asid, va.page_number())
            .unwrap();
        for e in gpath {
            hv.machine_addr(vm, GuestPhysAddr::new(e.as_u64())).unwrap();
        }
        hv.machine_addr(vm, GuestPhysAddr::new(gpte.frame.base().as_u64()))
            .unwrap();
        let (gpte2, _) = hv
            .guest_kernel(vm)
            .unwrap()
            .walk(asid, (va + 0x1000).page_number())
            .unwrap();
        hv.machine_addr(vm, GuestPhysAddr::new(gpte2.frame.base().as_u64()))
            .unwrap();
        (hv, vm, asid, va)
    }

    #[test]
    fn cold_walk_issues_24_reads() {
        let (hv, vm, asid, va) = setup();
        let mut w = NestedWalker::new(0); // no nested TLB
        let mut reads = 0u32;
        let (pte, _lat) = w
            .walk(&hv, vm, asid, va.page_number(), |_| {
                reads += 1;
                Cycles::new(10)
            })
            .unwrap();
        assert_eq!(reads, 24, "4 guest + 5 EPT walks × 4");
        assert!(pte.perm.allows(Permissions::READ));
        assert!(!pte.guest_shared);
    }

    #[test]
    fn nested_tlb_cuts_reads_to_guest_levels() {
        let (hv, vm, asid, va) = setup();
        let mut w = NestedWalker::isca2016();
        w.walk(&hv, vm, asid, va.page_number(), |_| Cycles::new(10))
            .unwrap();
        let mut reads = 0u32;
        // Second page: same PT pages (nested TLB warm for them); only its
        // own data-frame EPT translation may miss.
        w.walk(&hv, vm, asid, (va + 0x1000).page_number(), |_| {
            reads += 1;
            Cycles::new(10)
        })
        .unwrap();
        assert!(
            reads <= 8,
            "nested TLB should absorb EPT walks, got {reads}"
        );
        assert!(w.stats().nested_tlb_hits >= 4);
    }

    #[test]
    fn machine_frame_matches_hypervisor_view() {
        let (mut hv, vm, asid, va) = setup();
        let mut w = NestedWalker::isca2016();
        let (pte, _) = w
            .walk(&hv, vm, asid, va.page_number(), |_| Cycles::new(1))
            .unwrap();
        let gpte = hv
            .guest_kernel(vm)
            .unwrap()
            .walk(asid, va.page_number())
            .unwrap()
            .0;
        let ma = hv
            .machine_addr(vm, GuestPhysAddr::new(gpte.frame.base().as_u64()))
            .unwrap();
        assert_eq!(pte.machine_frame, ma.frame_number());
    }

    #[test]
    fn unmapped_guest_page_is_none() {
        let (hv, vm, asid, _) = setup();
        let mut w = NestedWalker::isca2016();
        assert!(w
            .walk(
                &hv,
                vm,
                asid,
                VirtAddr::new(0xdead_0000).page_number(),
                |_| Cycles::new(1)
            )
            .is_none());
    }

    #[test]
    fn flush_forces_ept_rewalk() {
        let (hv, vm, asid, va) = setup();
        let mut w = NestedWalker::isca2016();
        w.walk(&hv, vm, asid, va.page_number(), |_| Cycles::new(1))
            .unwrap();
        w.flush();
        let before = w.stats().nested_tlb_misses;
        w.walk(&hv, vm, asid, va.page_number(), |_| Cycles::new(1))
            .unwrap();
        assert!(w.stats().nested_tlb_misses > before);
    }

    #[test]
    fn permission_intersection() {
        assert_eq!(
            intersect(Permissions::RW, Permissions::READ),
            Permissions::READ
        );
        assert_eq!(intersect(Permissions::RW, Permissions::RW), Permissions::RW);
        assert_eq!(
            intersect(Permissions::RX, Permissions::READ | Permissions::WRITE),
            Permissions::READ
        );
    }
}
