//! The hypervisor: VM lifecycle, EPT management, hypervisor-induced
//! sharing.

use hvc_filter::SynonymFilter;
use hvc_os::{AllocPolicy, BuddyAllocator, Kernel, PageTable, Pte, SegmentTable, WalkPath};
use hvc_types::{
    Asid, GuestPhysAddr, HvcError, Permissions, PhysAddr, PhysFrame, Result, VirtAddr, Vmid,
    PAGE_SHIFT,
};
use std::collections::HashMap;

/// Hypervisor event counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VirtStats {
    /// EPT violations serviced by demand allocation.
    pub ept_faults: u64,
    /// Copy-on-write breaks of deduplicated machine pages.
    pub cow_breaks: u64,
    /// Machine pages reclaimed by deduplication.
    pub pages_deduped: u64,
    /// Host-filter insertions (hypervisor-induced r/w sharing).
    pub host_filter_insertions: u64,
}

struct VmState {
    kernel: Kernel,
    /// EPT: guest-physical page → machine frame ("VirtPage" here carries a
    /// guest-physical page number).
    ept: PageTable,
    host_filter: SynonymFilter,
    next_local_asid: u16,
    /// Host segments: contiguous machine regions backing guest-physical
    /// ranges, for 2D segment translation (keyed in the host segment
    /// table by the VM's base ASID and gPA-as-VA).
    host_segment_key: Asid,
}

/// The hypervisor: owns machine memory and all VMs.
pub struct Hypervisor {
    machine: BuddyAllocator,
    machine_meta: BuddyAllocator,
    vms: HashMap<u8, VmState>,
    next_vmid: u8,
    host_segments: SegmentTable,
    stats: VirtStats,
}

impl Hypervisor {
    /// Bytes reserved for EPT nodes and hypervisor metadata.
    const META_BYTES: u64 = 64 << 20;

    /// Boots a hypervisor managing `machine_bytes` of machine memory.
    ///
    /// # Panics
    ///
    /// Panics if `machine_bytes` is not larger than the 64 MiB metadata
    /// reservation.
    pub fn new(machine_bytes: u64) -> Self {
        assert!(machine_bytes > Self::META_BYTES, "machine memory too small");
        let user_base = PhysFrame::new(Self::META_BYTES >> PAGE_SHIFT);
        Hypervisor {
            machine: BuddyAllocator::with_base(user_base, machine_bytes - Self::META_BYTES),
            machine_meta: BuddyAllocator::new(Self::META_BYTES),
            vms: HashMap::new(),
            next_vmid: 1,
            host_segments: SegmentTable::new(2048),
            stats: VirtStats::default(),
        }
    }

    /// Creates a VM with `guest_bytes` of guest-physical memory, whose
    /// guest kernel runs `guest_policy`. Machine backing is established
    /// on demand (EPT faults) — or eagerly as one host segment per
    /// contiguous machine run when `eager_backing` is set (required for
    /// 2D segment translation).
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] when VMIDs run out, [`HvcError::OutOfMemory`] /
    /// [`HvcError::SegmentTableFull`] when eager backing fails.
    pub fn create_vm(
        &mut self,
        guest_bytes: u64,
        guest_policy: AllocPolicy,
        eager_backing: bool,
    ) -> Result<Vmid> {
        if self.next_vmid >= 64 {
            return Err(HvcError::BadId("VMID space exhausted"));
        }
        let vmid = Vmid::new(self.next_vmid);
        self.next_vmid += 1;
        let ept = PageTable::new(&mut self.machine_meta)?;
        let host_segment_key = Asid::for_vm(vmid, 0);
        let mut state = VmState {
            kernel: Kernel::new(guest_bytes, guest_policy),
            ept,
            host_filter: SynonymFilter::new(),
            next_local_asid: 1,
            host_segment_key,
        };
        if eager_backing {
            // Back the whole guest-physical space with large machine
            // segments (hypervisors allocate VM memory in big chunks; one
            // host segment per 1 GiB buddy block at most).
            let total = guest_bytes >> PAGE_SHIFT;
            let mut done = 0u64;
            while done < total {
                let chunk = (total - done).min(hvc_os::MAX_BLOCK_FRAMES);
                let base = self.machine.alloc_exact(chunk)?;
                self.host_segments.insert(
                    host_segment_key,
                    VirtAddr::new(done << PAGE_SHIFT), // gPA
                    chunk << PAGE_SHIFT,
                    base.base(),
                )?;
                for i in 0..chunk {
                    let gpa_page = hvc_types::VirtPage::new(done + i);
                    let pte = Pte {
                        frame: base.offset(i),
                        perm: Permissions::RW,
                        shared: false,
                    };
                    state.ept.map(&mut self.machine_meta, gpa_page, pte)?;
                }
                done += chunk;
            }
        }
        self.vms.insert(vmid.as_u8(), state);
        Ok(vmid)
    }

    /// Creates a guest process inside `vmid`; the returned ASID embeds
    /// the VMID.
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] for unknown VMs or exhausted guest ASIDs.
    pub fn create_guest_process(&mut self, vmid: Vmid) -> Result<Asid> {
        let vm = self
            .vms
            .get_mut(&vmid.as_u8())
            .ok_or(HvcError::BadId("unknown VMID"))?;
        if vm.next_local_asid >= 1 << 10 {
            return Err(HvcError::BadId("guest ASID space exhausted"));
        }
        let asid = Asid::for_vm(vmid, vm.next_local_asid);
        vm.next_local_asid += 1;
        vm.kernel.create_process_with_asid(asid)?;
        Ok(asid)
    }

    /// Mutable access to a VM's guest kernel (guest OS operations:
    /// mmap, shm, touch, …).
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] for unknown VMs.
    pub fn guest_kernel_mut(&mut self, vmid: Vmid) -> Result<&mut Kernel> {
        Ok(&mut self
            .vms
            .get_mut(&vmid.as_u8())
            .ok_or(HvcError::BadId("unknown VMID"))?
            .kernel)
    }

    /// Shared access to a VM's guest kernel.
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] for unknown VMs.
    pub fn guest_kernel(&self, vmid: Vmid) -> Result<&Kernel> {
        Ok(&self
            .vms
            .get(&vmid.as_u8())
            .ok_or(HvcError::BadId("unknown VMID"))?
            .kernel)
    }

    /// The host synonym filter of `vmid` (looked up with guest virtual
    /// addresses alongside the guest filter).
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] for unknown VMs.
    pub fn host_filter(&self, vmid: Vmid) -> Result<&SynonymFilter> {
        Ok(&self
            .vms
            .get(&vmid.as_u8())
            .ok_or(HvcError::BadId("unknown VMID"))?
            .host_filter)
    }

    /// Translates a guest-physical address to a machine address,
    /// establishing backing on demand (an EPT violation + fill).
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] / [`HvcError::OutOfMemory`].
    pub fn machine_addr(&mut self, vmid: Vmid, gpa: GuestPhysAddr) -> Result<PhysAddr> {
        let vm = self
            .vms
            .get_mut(&vmid.as_u8())
            .ok_or(HvcError::BadId("unknown VMID"))?;
        let gpa_page = hvc_types::VirtPage::new(gpa.as_u64() >> PAGE_SHIFT);
        if let Some(pte) = vm.ept.lookup(gpa_page) {
            return Ok(PhysAddr::new(pte.frame.base().as_u64() + gpa.page_offset()));
        }
        let frame = self.machine.alloc_frame()?;
        let pte = Pte {
            frame,
            perm: Permissions::RW,
            shared: false,
        };
        vm.ept.map(&mut self.machine_meta, gpa_page, pte)?;
        self.stats.ept_faults += 1;
        Ok(PhysAddr::new(frame.base().as_u64() + gpa.page_offset()))
    }

    /// Read-only EPT walk: the machine PTE plus the four machine
    /// addresses a hardware EPT walk touches. `None` if the guest page
    /// has no machine backing yet.
    pub fn ept_walk(&self, vmid: Vmid, gpa: GuestPhysAddr) -> Option<(Pte, WalkPath)> {
        let vm = self.vms.get(&vmid.as_u8())?;
        let gpa_page = hvc_types::VirtPage::new(gpa.as_u64() >> PAGE_SHIFT);
        vm.ept.walk(gpa_page)
    }

    /// Deduplicates two guest pages (possibly in different VMs) onto one
    /// machine frame, read-only — the paper's content-based sharing with
    /// the r/o optimization: **no** filter update, permission downgraded
    /// in the EPT and (by the caller) in cached copies.
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] / [`HvcError::Unmapped`] for unknown targets.
    pub fn dedup_ro(&mut self, a: (Vmid, GuestPhysAddr), b: (Vmid, GuestPhysAddr)) -> Result<()> {
        // Resolve (and if needed create) machine backing for `a`.
        let ma = self.machine_addr(a.0, a.1)?;
        let keep_frame = ma.frame_number();
        // Downgrade a's EPT entry.
        let vm_a = self
            .vms
            .get_mut(&a.0.as_u8())
            .ok_or(HvcError::BadId("unknown VMID"))?;
        let gpa_page_a = hvc_types::VirtPage::new(a.1.as_u64() >> PAGE_SHIFT);
        if let Some(pte) = vm_a.ept.lookup_mut(gpa_page_a) {
            pte.perm = pte.perm.downgraded_read_only();
        }
        // Point b's EPT entry at the kept frame, r/o; free b's old frame.
        let vm_b = self
            .vms
            .get_mut(&b.0.as_u8())
            .ok_or(HvcError::BadId("unknown VMID"))?;
        let gpa_page_b = hvc_types::VirtPage::new(b.1.as_u64() >> PAGE_SHIFT);
        let old = vm_b.ept.lookup(gpa_page_b);
        let pte = Pte {
            frame: keep_frame,
            perm: Permissions::READ | Permissions::EXEC,
            shared: false,
        };
        vm_b.ept.map(&mut self.machine_meta, gpa_page_b, pte)?;
        if let Some(old) = old {
            if old.frame != keep_frame {
                self.machine.free_exact(old.frame, 1);
                self.stats.pages_deduped += 1;
            }
        }
        Ok(())
    }

    /// Breaks deduplication on a guest write: allocates a fresh machine
    /// frame and remaps the EPT entry read-write.
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] / [`HvcError::OutOfMemory`].
    pub fn break_dedup(&mut self, vmid: Vmid, gpa: GuestPhysAddr) -> Result<PhysAddr> {
        let frame = self.machine.alloc_frame()?;
        let vm = self
            .vms
            .get_mut(&vmid.as_u8())
            .ok_or(HvcError::BadId("unknown VMID"))?;
        let gpa_page = hvc_types::VirtPage::new(gpa.as_u64() >> PAGE_SHIFT);
        let pte = Pte {
            frame,
            perm: Permissions::RW,
            shared: false,
        };
        vm.ept.map(&mut self.machine_meta, gpa_page, pte)?;
        self.stats.cow_breaks += 1;
        Ok(PhysAddr::new(frame.base().as_u64() + gpa.page_offset()))
    }

    /// Registers hypervisor-induced **r/w** sharing of a guest page
    /// (e.g. a virtio ring shared with the host): inserts the page's
    /// guest-*virtual* address into the VM's host filter, making it a
    /// synonym candidate (Section V-A).
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] for unknown VMs.
    pub fn share_rw_with_host(&mut self, vmid: Vmid, gva: VirtAddr) -> Result<()> {
        let vm = self
            .vms
            .get_mut(&vmid.as_u8())
            .ok_or(HvcError::BadId("unknown VMID"))?;
        vm.host_filter.insert_page(gva);
        self.stats.host_filter_insertions += 1;
        Ok(())
    }

    /// Host (machine) segment table for 2D segment translation.
    pub fn host_segments(&self) -> &SegmentTable {
        &self.host_segments
    }

    /// The host-segment key (base ASID) of `vmid` — host segments are
    /// registered under this ASID with gPA-as-VA.
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] for unknown VMs.
    pub fn host_segment_key(&self, vmid: Vmid) -> Result<Asid> {
        Ok(self
            .vms
            .get(&vmid.as_u8())
            .ok_or(HvcError::BadId("unknown VMID"))?
            .host_segment_key)
    }

    /// Counters.
    pub fn stats(&self) -> &VirtStats {
        &self.stats
    }

    /// Free machine frames remaining.
    pub fn free_machine_frames(&self) -> u64 {
        self.machine.free_frames()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_os::MapIntent;

    const GIB: u64 = 1 << 30;

    fn hv_with_vm() -> (Hypervisor, Vmid, Asid) {
        let mut hv = Hypervisor::new(2 * GIB);
        let vm = hv
            .create_vm(GIB / 2, AllocPolicy::DemandPaging, false)
            .unwrap();
        let asid = hv.create_guest_process(vm).unwrap();
        (hv, vm, asid)
    }

    #[test]
    fn guest_asids_embed_vmid() {
        let (_, vm, asid) = hv_with_vm();
        assert_eq!(asid.vmid(), vm);
        assert_ne!(asid, Asid::new(asid.local()));
    }

    #[test]
    fn two_vms_get_disjoint_machine_frames() {
        let mut hv = Hypervisor::new(2 * GIB);
        let vm1 = hv
            .create_vm(GIB / 4, AllocPolicy::DemandPaging, false)
            .unwrap();
        let vm2 = hv
            .create_vm(GIB / 4, AllocPolicy::DemandPaging, false)
            .unwrap();
        let m1 = hv.machine_addr(vm1, GuestPhysAddr::new(0x1000)).unwrap();
        let m2 = hv.machine_addr(vm2, GuestPhysAddr::new(0x1000)).unwrap();
        assert_ne!(m1.frame_number(), m2.frame_number());
        assert_eq!(hv.stats().ept_faults, 2);
        // Repeat translation faults no more.
        hv.machine_addr(vm1, GuestPhysAddr::new(0x1040)).unwrap();
        assert_eq!(hv.stats().ept_faults, 2);
    }

    #[test]
    fn guest_process_memory_reaches_machine_memory() {
        let (mut hv, vm, asid) = hv_with_vm();
        let gk = hv.guest_kernel_mut(vm).unwrap();
        gk.mmap(
            asid,
            VirtAddr::new(0x10000),
            0x1000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        let pte = gk.translate_touch(asid, VirtAddr::new(0x10000)).unwrap();
        let gpa = GuestPhysAddr::new(pte.frame.base().as_u64());
        let ma = hv.machine_addr(vm, gpa).unwrap();
        assert!(ma.as_u64() >= Hypervisor::META_BYTES);
    }

    #[test]
    fn eager_backing_creates_host_segment_and_full_ept() {
        let mut hv = Hypervisor::new(2 * GIB);
        let vm = hv
            .create_vm(128 << 20, AllocPolicy::DemandPaging, true)
            .unwrap();
        assert_eq!(hv.host_segments().len(), 1);
        let key = hv.host_segment_key(vm).unwrap();
        let seg = hv
            .host_segments()
            .find(key, VirtAddr::new(0x12345))
            .unwrap();
        // Segment translation agrees with the EPT.
        let ma_seg = seg.translate(VirtAddr::new(0x12345));
        let ma_ept = hv.machine_addr(vm, GuestPhysAddr::new(0x12345)).unwrap();
        assert_eq!(ma_seg, ma_ept);
        assert_eq!(hv.stats().ept_faults, 0, "no faults with eager backing");
    }

    #[test]
    fn dedup_shares_one_frame_read_only() {
        let mut hv = Hypervisor::new(2 * GIB);
        let vm1 = hv
            .create_vm(GIB / 4, AllocPolicy::DemandPaging, false)
            .unwrap();
        let vm2 = hv
            .create_vm(GIB / 4, AllocPolicy::DemandPaging, false)
            .unwrap();
        let g1 = GuestPhysAddr::new(0x5000);
        let g2 = GuestPhysAddr::new(0x9000);
        hv.machine_addr(vm1, g1).unwrap();
        hv.machine_addr(vm2, g2).unwrap();
        let free_before = hv.free_machine_frames();
        hv.dedup_ro((vm1, g1), (vm2, g2)).unwrap();
        assert_eq!(hv.free_machine_frames(), free_before + 1);
        assert_eq!(hv.stats().pages_deduped, 1);
        let (p1, _) = hv.ept_walk(vm1, g1).unwrap();
        let (p2, _) = hv.ept_walk(vm2, g2).unwrap();
        assert_eq!(p1.frame, p2.frame);
        assert!(!p1.perm.is_writable());
        assert!(!p2.perm.is_writable());
        // Host filters untouched: r/o sharing is not a synonym.
        assert_eq!(hv.stats().host_filter_insertions, 0);

        // A write breaks the sharing.
        let ma = hv.break_dedup(vm2, g2).unwrap();
        let (p2b, _) = hv.ept_walk(vm2, g2).unwrap();
        assert_eq!(p2b.frame, ma.frame_number());
        assert_ne!(p2b.frame, p1.frame);
        assert!(p2b.perm.is_writable());
        assert_eq!(hv.stats().cow_breaks, 1);
    }

    #[test]
    fn rw_host_sharing_updates_host_filter() {
        let (mut hv, vm, _asid) = hv_with_vm();
        let gva = VirtAddr::new(0x7fff_0000);
        assert!(!hv.host_filter(vm).unwrap().is_candidate(gva));
        hv.share_rw_with_host(vm, gva).unwrap();
        assert!(hv.host_filter(vm).unwrap().is_candidate(gva));
        assert_eq!(hv.stats().host_filter_insertions, 1);
    }

    #[test]
    fn unknown_vm_errors() {
        let mut hv = Hypervisor::new(2 * GIB);
        let bogus = Vmid::new(9);
        assert!(hv.guest_kernel(bogus).is_err());
        assert!(hv.create_guest_process(bogus).is_err());
        assert!(hv.machine_addr(bogus, GuestPhysAddr::new(0)).is_err());
        assert!(hv.host_filter(bogus).is_err());
    }
}
