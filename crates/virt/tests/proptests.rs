//! Property tests for the virtualization substrate.

use hvc_os::{AllocPolicy, MapIntent};
use hvc_types::{Cycles, GuestPhysAddr, Permissions, VirtAddr, PAGE_SIZE};
use hvc_virt::{Hypervisor, NestedWalker};
use proptest::prelude::*;

const GIB: u64 = 1 << 30;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// gPA→MA translation is stable (same gPA always reaches the same
    /// machine address) and injective across distinct gPAs of one VM.
    #[test]
    fn ept_mapping_is_stable_and_injective(
        gpas in prop::collection::btree_set(0u64..(1u64 << 16), 1..40),
    ) {
        let mut hv = Hypervisor::new(2 * GIB);
        let vm = hv.create_vm(GIB / 2, AllocPolicy::DemandPaging, false).unwrap();
        let mut seen = std::collections::HashMap::new();
        for &g in &gpas {
            let gpa = GuestPhysAddr::new(g * PAGE_SIZE);
            let ma1 = hv.machine_addr(vm, gpa).unwrap();
            let ma2 = hv.machine_addr(vm, gpa).unwrap();
            prop_assert_eq!(ma1, ma2, "translation must be stable");
            if let Some(prev) = seen.insert(ma1.frame_number(), g) {
                prop_assert_eq!(prev, g, "two gPAs mapped to one machine frame");
            }
        }
    }

    /// The nested walker agrees with the guest-PT + EPT reference for
    /// arbitrary touched guest pages.
    #[test]
    fn nested_walker_agrees_with_reference(pages in prop::collection::btree_set(0u64..128, 1..20)) {
        let mut hv = Hypervisor::new(2 * GIB);
        let vm = hv.create_vm(GIB / 2, AllocPolicy::DemandPaging, false).unwrap();
        let asid = hv.create_guest_process(vm).unwrap();
        let base = 0x40_0000u64;
        let gk = hv.guest_kernel_mut(vm).unwrap();
        gk.mmap(asid, VirtAddr::new(base), 128 * PAGE_SIZE, Permissions::RW, MapIntent::Private)
            .unwrap();
        // Touch + back everything the walks will need.
        for &p in &pages {
            let va = VirtAddr::new(base + p * PAGE_SIZE);
            let gk = hv.guest_kernel_mut(vm).unwrap();
            let gpte = gk.translate_touch(asid, va).unwrap();
            let (_, path) = hv.guest_kernel(vm).unwrap().walk(asid, va.page_number()).unwrap();
            for e in path {
                hv.machine_addr(vm, GuestPhysAddr::new(e.as_u64())).unwrap();
            }
            hv.machine_addr(vm, GuestPhysAddr::new(gpte.frame.base().as_u64())).unwrap();
        }
        let mut w = NestedWalker::isca2016();
        for &p in &pages {
            let va = VirtAddr::new(base + p * PAGE_SIZE);
            let (npte, _) = w.walk(&hv, vm, asid, va.page_number(), |_| Cycles::new(1)).unwrap();
            let gpte = hv.guest_kernel(vm).unwrap().walk(asid, va.page_number()).unwrap().0;
            let ma = hv
                .ept_walk(vm, GuestPhysAddr::new(gpte.frame.base().as_u64()))
                .unwrap()
                .0;
            prop_assert_eq!(npte.machine_frame, ma.frame);
        }
    }

    /// Dedup always reclaims exactly one frame per deduplicated pair and
    /// never crosses wires: after dedup both gPAs read the same frame;
    /// after a break they differ again.
    #[test]
    fn dedup_break_roundtrip(pairs in prop::collection::vec((0u64..64, 64u64..128), 1..10)) {
        let mut hv = Hypervisor::new(2 * GIB);
        let vm1 = hv.create_vm(GIB / 4, AllocPolicy::DemandPaging, false).unwrap();
        let vm2 = hv.create_vm(GIB / 4, AllocPolicy::DemandPaging, false).unwrap();
        for &(p1, p2) in &pairs {
            let g1 = GuestPhysAddr::new(p1 * PAGE_SIZE);
            let g2 = GuestPhysAddr::new(p2 * PAGE_SIZE);
            hv.machine_addr(vm1, g1).unwrap();
            hv.machine_addr(vm2, g2).unwrap();
            let before = hv.free_machine_frames();
            hv.dedup_ro((vm1, g1), (vm2, g2)).unwrap();
            prop_assert!(hv.free_machine_frames() >= before);
            let f1 = hv.ept_walk(vm1, g1).unwrap().0.frame;
            let f2 = hv.ept_walk(vm2, g2).unwrap().0.frame;
            prop_assert_eq!(f1, f2);
            hv.break_dedup(vm2, g2).unwrap();
            let f2b = hv.ept_walk(vm2, g2).unwrap().0.frame;
            prop_assert_ne!(f1, f2b);
        }
    }
}
