//! Named workload profiles standing in for the paper's applications.
//!
//! Sizes are scaled so that the relevant capacity relationships of the
//! paper hold in simulation: the 2 MB-per-core LLC and the 1K–32K-entry
//! delayed TLBs (4 MB–128 MB reach) sit well below the big workloads'
//! working sets, while the Zipfian object-graph workloads have hot sets
//! that progressively fit as structures grow — reproducing who improves
//! and who saturates in Figures 4 and 9.

use crate::{AccessPattern, RegionSpec, SharingSpec, WorkloadSpec};

fn spec(
    name: &str,
    regions: Vec<RegionSpec>,
    contiguous: bool,
    pattern: AccessPattern,
    write_frac: f64,
    mean_gap: u32,
    mlp: u32,
) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_owned(),
        regions,
        contiguous,
        pattern,
        write_frac,
        mean_gap,
        mlp,
        burst: 8,
        stack_frac: 0.3,
        sharing: None,
    }
}

/// Overrides the spatial-locality burst of a profile.
fn with_burst(mut s: WorkloadSpec, burst: u32) -> WorkloadSpec {
    s.burst = burst;
    s
}

const MIB: u64 = 1 << 20;

// --- big-memory / SPEC-like private workloads ---

/// GUPS random-access (the paper runs size 30): uniform updates over a
/// huge table; thrashes every translation structure.
pub fn gups(mem_bytes: u64) -> WorkloadSpec {
    with_burst(
        spec(
            "gups",
            vec![RegionSpec::full(mem_bytes)],
            true,
            AccessPattern::Uniform,
            0.5,
            2,
            8,
        ),
        1, // true random single-word updates
    )
}

/// milc-like streaming over large lattices (SPEC CPU2006 433.milc).
pub fn milc() -> WorkloadSpec {
    spec(
        "milc",
        vec![RegionSpec::full(384 * MIB)],
        true,
        AccessPattern::Stream,
        0.3,
        6,
        4,
    )
}

/// mcf-like dependent pointer chasing (SPEC CPU2006 429.mcf).
pub fn mcf() -> WorkloadSpec {
    spec(
        "mcf",
        vec![RegionSpec::full(384 * MIB)],
        true,
        AccessPattern::Chase,
        0.1,
        3,
        1,
    )
}

/// xalancbmk-like Zipfian object graph with mmap-heavy allocation
/// (SPEC CPU2006 483.xalancbmk; 40 scattered arenas give it the large
/// segment count of Table III).
pub fn xalancbmk() -> WorkloadSpec {
    spec(
        "xalancbmk",
        (0..40).map(|_| RegionSpec::full(2 * MIB)).collect(),
        false,
        AccessPattern::Zipfian(0.8),
        0.2,
        8,
        4,
    )
}

/// tigr-like branchy suffix-tree walks (BioBench; very low IPC, large
/// scattered index).
pub fn tigr() -> WorkloadSpec {
    spec(
        "tigr",
        (0..48).map(|_| RegionSpec::full(5 * MIB)).collect(),
        false,
        AccessPattern::Branchy(0.4),
        0.05,
        2,
        2,
    )
}

/// omnetpp-like event-graph traffic (SPEC CPU2006 471.omnetpp).
pub fn omnetpp() -> WorkloadSpec {
    spec(
        "omnetpp",
        vec![RegionSpec::full(96 * MIB)],
        true,
        AccessPattern::Zipfian(0.85),
        0.3,
        6,
        4,
    )
}

/// soplex-like sparse LP solving: streaming rows with scattered gathers.
pub fn soplex() -> WorkloadSpec {
    spec(
        "soplex",
        vec![RegionSpec::full(128 * MIB)],
        true,
        AccessPattern::SparseGather(0.3),
        0.25,
        6,
        4,
    )
}

/// astar-like path search over a medium heap (SPEC CPU2006 473.astar).
pub fn astar() -> WorkloadSpec {
    spec(
        "astar",
        vec![RegionSpec::full(64 * MIB)],
        true,
        AccessPattern::Zipfian(0.9),
        0.25,
        8,
        4,
    )
}

/// cactusADM-like structured-grid sweeps with over-provisioned arrays
/// (low utilization under eager allocation).
pub fn cactus() -> WorkloadSpec {
    spec(
        "cactus",
        vec![RegionSpec {
            len: 256 * MIB,
            touch_frac: 0.55,
        }],
        true,
        AccessPattern::Stream,
        0.35,
        8,
        4,
    )
}

/// GemsFDTD-like field solver (large streaming, partly-touched arenas).
pub fn gems() -> WorkloadSpec {
    spec(
        "GemsFDTD",
        vec![RegionSpec {
            len: 320 * MIB,
            touch_frac: 0.8,
        }],
        true,
        AccessPattern::Stream,
        0.35,
        7,
        4,
    )
}

/// canneal-like random netlist swaps (PARSEC; chase with poor locality).
pub fn canneal() -> WorkloadSpec {
    spec(
        "canneal",
        vec![RegionSpec::full(256 * MIB)],
        true,
        AccessPattern::Chase,
        0.2,
        4,
        1,
    )
}

/// STREAM-like pure bandwidth kernel.
pub fn stream() -> WorkloadSpec {
    spec(
        "stream",
        vec![RegionSpec::full(512 * MIB)],
        true,
        AccessPattern::Stream,
        0.33,
        4,
        8,
    )
}

/// mummer-like genome index walks (BioBench).
pub fn mummer() -> WorkloadSpec {
    spec(
        "mummer",
        (0..12).map(|_| RegionSpec::full(20 * MIB)).collect(),
        false,
        AccessPattern::Branchy(0.3),
        0.05,
        3,
        2,
    )
}

/// memcached-like slab server: grows on demand in 64 MB chunks at
/// scattered addresses (the paper notes its many segments), Zipfian key
/// popularity, half the provisioned memory ever touched.
pub fn memcached() -> WorkloadSpec {
    spec(
        "memcached",
        (0..40)
            .map(|_| RegionSpec {
                len: 64 * MIB,
                touch_frac: 0.5,
            })
            .collect(),
        false,
        AccessPattern::Zipfian(0.75),
        0.15,
        6,
        4,
    )
}

/// NPB CG-like sparse mat-vec (class C).
pub fn npb_cg() -> WorkloadSpec {
    spec(
        "NPB:CG",
        vec![RegionSpec::full(256 * MIB)],
        true,
        AccessPattern::SparseGather(0.35),
        0.2,
        5,
        4,
    )
}

/// graph500-like BFS over a scale-22 graph: Zipfian vertex popularity
/// over a large working set with scattered edge-list accesses.
pub fn graph500() -> WorkloadSpec {
    spec(
        "graph500",
        vec![RegionSpec::full(320 * MIB)],
        true,
        AccessPattern::Zipfian(0.6),
        0.15,
        4,
        4,
    )
}

// --- synonym (r/w sharing) applications, Table I / Table II ---

fn shared_app(
    name: &str,
    processes: usize,
    private_bytes: u64,
    shared_bytes: u64,
    shared_access_frac: f64,
    pattern: AccessPattern,
) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_owned(),
        // Several scattered arenas (heap, libraries, caches) — the VA
        // diversity real processes have, which is what exposes the
        // synonym filter to false positives.
        regions: (0..6)
            .map(|_| RegionSpec::full(private_bytes / 6))
            .collect(),
        contiguous: false,
        pattern,
        write_frac: 0.3,
        mean_gap: 5,
        mlp: 4,
        burst: 8,
        stack_frac: 0.3,
        sharing: Some(SharingSpec {
            processes,
            shared_bytes,
            shared_access_frac,
        }),
    }
}

/// ferret-like PARSEC pipeline: the only PARSEC app with r/w sharing —
/// a small shared queue region (Table I: ≈0.3% of area, ≈0.2–0.9% of
/// accesses).
pub fn ferret() -> WorkloadSpec {
    shared_app(
        "ferret",
        4,
        96 * MIB,
        MIB,
        0.009,
        AccessPattern::Phased {
            window: 4096,
            p_in: 0.45,
            slide_every: 40_000,
        },
    )
}

/// postgres-like multi-process database: a large shared buffer pool
/// (Table I: ≈66% of area, ≈16% of accesses).
pub fn postgres() -> WorkloadSpec {
    shared_app(
        "postgres",
        4,
        64 * MIB,
        128 * MIB,
        0.163,
        AccessPattern::Phased {
            window: 4096,
            p_in: 0.6,
            slide_every: 40_000,
        },
    )
}

/// SpecJBB-like Java middleware: negligible r/w sharing.
pub fn specjbb() -> WorkloadSpec {
    shared_app(
        "SpecJBB",
        2,
        96 * MIB,
        MIB,
        0.001,
        AccessPattern::Phased {
            window: 4096,
            p_in: 0.55,
            slide_every: 40_000,
        },
    )
}

/// firefox-like browser: small shared compositor/IPC buffers.
pub fn firefox() -> WorkloadSpec {
    shared_app(
        "firefox",
        3,
        96 * MIB,
        6 * MIB,
        0.006,
        AccessPattern::Phased {
            window: 4096,
            p_in: 0.85,
            slide_every: 40_000,
        },
    )
}

/// apache-like prefork server: small shared scoreboard.
pub fn apache() -> WorkloadSpec {
    shared_app(
        "apache",
        8,
        32 * MIB,
        2 * MIB,
        0.005,
        AccessPattern::Phased {
            window: 2048,
            p_in: 0.94,
            slide_every: 40_000,
        },
    )
}

// --- experiment groupings ---

/// The Figure 4 sweep set (delayed-TLB size sensitivity).
pub fn fig4_set() -> Vec<WorkloadSpec> {
    vec![
        gups(1024 * MIB),
        milc(),
        mcf(),
        xalancbmk(),
        tigr(),
        omnetpp(),
        soplex(),
    ]
}

/// The Table III set (segment counts, RMM MPKI, utilization).
pub fn table3_set() -> Vec<WorkloadSpec> {
    vec![
        astar(),
        mcf(),
        omnetpp(),
        cactus(),
        gems(),
        xalancbmk(),
        canneal(),
        stream(),
        mummer(),
        tigr(),
        memcached(),
        npb_cg(),
        gups(512 * MIB),
    ]
}

/// The synonym-application set (Tables I and II).
pub fn synonym_set() -> Vec<WorkloadSpec> {
    vec![ferret(), postgres(), specjbb(), firefox(), apache()]
}

/// The Figure 9 native-performance set: memory-intensive applications
/// plus representative moderate ones.
pub fn fig9_set() -> Vec<WorkloadSpec> {
    vec![
        gups(1024 * MIB),
        mcf(),
        milc(),
        tigr(),
        xalancbmk(),
        omnetpp(),
        soplex(),
        canneal(),
        memcached(),
        npb_cg(),
        graph500(),
        astar(),
        stream(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_os::{AllocPolicy, Kernel};

    #[test]
    fn all_profiles_instantiate_under_demand_paging() {
        let mut k = Kernel::new(16 << 30, AllocPolicy::DemandPaging);
        for s in fig4_set()
            .into_iter()
            .chain(table3_set())
            .chain(synonym_set())
            .chain([graph500()])
        {
            let mut inst = s.instantiate(&mut k, 1).unwrap();
            let item = inst.next_item();
            assert!(item.mref.vaddr.as_u64() > 0, "{}", inst.name());
        }
    }

    #[test]
    fn synonym_apps_have_expected_sharing_shape() {
        let mut k = Kernel::new(8 << 30, AllocPolicy::DemandPaging);
        let inst = postgres().instantiate(&mut k, 1).unwrap();
        let space = k.space(inst.procs()[0].asid).unwrap();
        let shared = space.rw_shared_pages() as f64;
        let total = space.total_vma_pages() as f64;
        let frac = shared / total;
        assert!((0.6..0.75).contains(&frac), "postgres shared area {frac}");

        let inst = ferret().instantiate(&mut k, 2).unwrap();
        let space = k.space(inst.procs()[0].asid).unwrap();
        let frac = space.rw_shared_pages() as f64 / space.total_vma_pages() as f64;
        assert!(frac < 0.02, "ferret shared area {frac}");
    }

    #[test]
    fn mmap_heavy_apps_make_many_segments() {
        let mut k = Kernel::new(16 << 30, AllocPolicy::EagerSegments { split: 1 });
        let inst = memcached().instantiate(&mut k, 1).unwrap();
        assert!(k.segments().count_asid(inst.procs()[0].asid) >= 40);
        let inst = stream().instantiate(&mut k, 2).unwrap();
        assert!(k.segments().count_asid(inst.procs()[0].asid) <= 2);
    }
}
