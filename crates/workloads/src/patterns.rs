//! Access-pattern primitives.

use rand::rngs::StdRng;
use rand::Rng;

/// How a workload walks its touched pages.
#[derive(Clone, Debug, PartialEq)]
pub enum AccessPattern {
    /// Uniform random pages (GUPS-like; worst case for any translation
    /// structure).
    Uniform,
    /// Zipfian page popularity with the given skew `theta` in `(0, 1)`
    /// (object-graph workloads: xalancbmk / omnetpp / SpecJBB-like).
    Zipfian(f64),
    /// Sequential streaming over all pages (stream / milc-like).
    Stream,
    /// Dependent pointer chasing over a fixed random permutation of pages
    /// (mcf / canneal-like; no memory-level parallelism).
    Chase,
    /// Mostly-sequential walk that jumps to a random page with the given
    /// probability (tigr / mummer-like branchy index walks).
    Branchy(f64),
    /// Alternating sequential rows and random gathers (NPB:CG-like
    /// sparse mat-vec); the value is the fraction of gather accesses.
    SparseGather(f64),
    /// Phase-local working set: a sliding window of `window` pages
    /// captures `p_in` of the accesses (the rest are uniform over all
    /// pages); the window slides by a quarter of its size every
    /// `slide_every` references. Models the strong phase locality of
    /// server/desktop applications whose hot set exceeds the TLB but
    /// fits the LLC — the regime behind the paper's Table II.
    Phased {
        /// Hot-window size in pages.
        window: usize,
        /// Probability an access lands in the window.
        p_in: f64,
        /// References between window slides.
        slide_every: u32,
    },
}

/// A Zipfian sampler over `0..n` using Gray et al.'s method with a
/// precomputed harmonic normalizer.
#[derive(Clone, Debug, PartialEq)]
pub struct Zipf {
    n: u64,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` (0 < theta < 1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            zetan,
            alpha,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; integral approximation for large n to
        // keep construction O(1)-ish for multi-GB regions.
        const EXACT_LIMIT: u64 = 1 << 20;
        if n <= EXACT_LIMIT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=EXACT_LIMIT)
                .map(|i| 1.0 / (i as f64).powf(theta))
                .sum();
            // ∫ x^-θ dx from EXACT_LIMIT to n.
            let a = EXACT_LIMIT as f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Draws a rank in `0..n` (0 is the most popular).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Reference to the precomputed ζ(2, θ) (exposed for tests).
    #[cfg(test)]
    pub(crate) fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_samples_stay_in_range() {
        let z = Zipf::new(1000, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(10_000, 0.9);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0u64;
        let total = 50_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta 0.9, the top 1% of pages should draw a large share.
        let frac = head as f64 / total as f64;
        assert!(frac > 0.4, "head fraction {frac}");
    }

    #[test]
    fn zipf_large_population_constructs_quickly_and_samples() {
        let z = Zipf::new(1 << 24, 0.8); // 16M pages ≈ 64 GB region
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < (1 << 24));
        }
        assert!(z.zeta2() > 1.0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_rejected() {
        let _ = Zipf::new(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_rejected() {
        let _ = Zipf::new(0, 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(1000, 0.7);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
