//! Workload specification and trace-generating instances.

use crate::patterns::{AccessPattern, Zipf};
use hvc_os::{Kernel, MapIntent};
use hvc_types::{
    AccessKind, Asid, MemRef, Permissions, Result, TraceItem, VirtAddr, VirtPage, LINE_SIZE,
    PAGE_SHIFT, PAGE_SIZE,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One private memory region of a workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegionSpec {
    /// Region length in bytes (page aligned up at instantiation).
    pub len: u64,
    /// Fraction of the region's pages the workload ever touches —
    /// drives Table III's utilization column under eager allocation.
    pub touch_frac: f64,
}

impl RegionSpec {
    /// A fully-touched region of `len` bytes.
    pub fn full(len: u64) -> Self {
        RegionSpec {
            len,
            touch_frac: 1.0,
        }
    }
}

/// Multi-process r/w sharing (synonym) configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SharingSpec {
    /// Number of processes attaching the shared object.
    pub processes: usize,
    /// Size of the r/w shared region.
    pub shared_bytes: u64,
    /// Fraction of memory accesses directed at the shared region
    /// (postgres ≈ 0.16 in Table I).
    pub shared_access_frac: f64,
}

/// A complete, instantiable workload description.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Display name (matches the paper workload it stands in for).
    pub name: String,
    /// Private regions mapped per process.
    pub regions: Vec<RegionSpec>,
    /// Lay regions out back-to-back in virtual memory (heap-like growth
    /// that eager allocation can merge into few segments) instead of
    /// scattering them (mmap-heavy apps producing many segments).
    pub contiguous: bool,
    /// How touched pages are visited.
    pub pattern: AccessPattern,
    /// Fraction of accesses that are stores.
    pub write_frac: f64,
    /// Mean non-memory instructions between memory references.
    pub mean_gap: u32,
    /// Memory-level parallelism hint for the core model (1 = fully
    /// dependent chasing, larger = independent misses overlap).
    pub mlp: u32,
    /// Spatial-locality burst: after sampling a page, the next
    /// `burst - 1` references walk consecutive lines of the same page
    /// (object-sized accesses). `1` disables bursting (pure random lines,
    /// GUPS-style). Applies to the uniform / Zipfian / branchy / gather
    /// patterns; streaming and chasing have their own structure.
    pub burst: u32,
    /// Fraction of references going to a tiny per-process stack/locals
    /// region (first four pages of the domain, always cache-hot) —
    /// real programs spend 20–40% of their accesses there, which is what
    /// keeps L1 hit rates high.
    pub stack_frac: f64,
    /// Optional multi-process r/w sharing (creates synonym pages).
    pub sharing: Option<SharingSpec>,
}

impl WorkloadSpec {
    /// Creates all processes and memory regions in `kernel` and returns
    /// a trace-generating instance.
    ///
    /// # Errors
    ///
    /// Propagates kernel allocation errors.
    pub fn instantiate(&self, kernel: &mut Kernel, seed: u64) -> Result<WorkloadInstance> {
        let nproc = self.sharing.map_or(1, |s| s.processes.max(1));
        let shm = match self.sharing {
            Some(s) if s.shared_bytes > 0 => Some(kernel.shm_create(s.shared_bytes)?),
            _ => None,
        };
        let mut procs = Vec::with_capacity(nproc);
        for p in 0..nproc {
            let asid = kernel.create_process()?;
            let mut pages: Vec<VirtPage> = Vec::new();
            // Private regions: contiguous (heap-like) or scattered (mmap-
            // heavy), starting at a per-process base.
            let mut next_va = 0x1000_0000u64 + (p as u64) * 0x100_0000_0000;
            for r in &self.regions {
                let len = r.len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
                let va = VirtAddr::new(next_va);
                kernel.mmap(asid, va, len, Permissions::RW, MapIntent::Private)?;
                let touched_pages = (((len >> PAGE_SHIFT) as f64) * r.touch_frac)
                    .ceil()
                    .max(1.0) as u64;
                let first = va.page_number();
                pages.extend((0..touched_pages.min(len >> PAGE_SHIFT)).map(|i| first.offset(i)));
                next_va += if self.contiguous {
                    len
                } else {
                    // Scatter: leave a large hole so eager allocation
                    // cannot merge across regions.
                    (len + (64 << 20)).next_power_of_two()
                };
            }
            // Shared region at a per-process virtual address (a synonym).
            let mut shared_pages = Vec::new();
            if let (Some(shm), Some(s)) = (shm, self.sharing) {
                let sva = VirtAddr::new(0x7000_0000_0000 + (p as u64) * 0x10_0000_0000);
                kernel.mmap(
                    asid,
                    sva,
                    s.shared_bytes,
                    Permissions::RW,
                    MapIntent::Shared(shm),
                )?;
                let first = sva.page_number();
                shared_pages.extend((0..s.shared_bytes >> PAGE_SHIFT).map(|i| first.offset(i)));
            }
            procs.push(ProcMem {
                asid,
                pages,
                shared_pages,
            });
        }

        let max_pages = procs.iter().map(|p| p.pages.len()).max().unwrap_or(1);
        let zipf = match self.pattern {
            AccessPattern::Zipfian(theta) => Some(Zipf::new(max_pages as u64, theta)),
            _ => None,
        };

        let mut rng = StdRng::seed_from_u64(seed);
        let states = procs
            .iter()
            .map(|p| ProcState::new(p.pages.len(), &self.pattern, &mut rng))
            .collect();
        Ok(WorkloadInstance {
            name: self.name.clone(),
            mlp: self.mlp,
            pattern: self.pattern.clone(),
            write_frac: self.write_frac,
            mean_gap: self.mean_gap,
            shared_access_frac: self.sharing.map_or(0.0, |s| s.shared_access_frac),
            burst: self.burst.max(1),
            stack_frac: self.stack_frac,
            procs,
            states,
            zipf,
            rng,
            next_proc: 0,
        })
    }
}

/// Memory owned by one process of a workload.
#[derive(Clone, Debug)]
pub struct ProcMem {
    /// The process's address space.
    pub asid: Asid,
    /// Private pages the process touches (pattern domain).
    pub pages: Vec<VirtPage>,
    /// R/w shared (synonym) pages, if any.
    pub shared_pages: Vec<VirtPage>,
}

/// Per-process pattern cursor state.
#[derive(Clone, Debug)]
struct ProcState {
    cursor: usize,
    line: u64,
    /// Phased pattern: window start page index and refs since last slide.
    phase_start: usize,
    phase_refs: u32,
    /// Chase permutation (page index → next page index), or the Zipf
    /// rank→page shuffle (hot pages are scattered across regions in real
    /// heaps, not clustered at low addresses).
    perm: Vec<u32>,
    /// Remaining references of the current spatial burst.
    burst_left: u32,
    /// Page index and line of the in-progress burst.
    burst_page: usize,
    burst_line: u64,
}

impl ProcState {
    fn new(npages: usize, pattern: &AccessPattern, rng: &mut StdRng) -> Self {
        let perm = match pattern {
            AccessPattern::Chase => {
                // A single random cycle over all pages (Sattolo's
                // algorithm) so the chase visits the full working set.
                let n = npages.max(1);
                let mut items: Vec<u32> = (0..n as u32).collect();
                let mut next = vec![0u32; n];
                for i in (1..n).rev() {
                    items.swap(i, rng.gen_range(0..i));
                }
                for w in 0..n {
                    next[items[w] as usize] = items[(w + 1) % n];
                }
                next
            }
            AccessPattern::Zipfian(_) => {
                // Fisher–Yates shuffle: rank → page.
                let n = npages.max(1);
                let mut map: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    map.swap(i, rng.gen_range(0..=i));
                }
                map
            }
            _ => Vec::new(),
        };
        ProcState {
            cursor: 0,
            line: 0,
            phase_start: 0,
            phase_refs: 0,
            perm,
            burst_left: 0,
            burst_page: 0,
            burst_line: 0,
        }
    }
}

/// An instantiated workload: address spaces plus a deterministic stream
/// of [`TraceItem`]s.
#[derive(Clone, Debug)]
pub struct WorkloadInstance {
    name: String,
    mlp: u32,
    pattern: AccessPattern,
    write_frac: f64,
    mean_gap: u32,
    shared_access_frac: f64,
    burst: u32,
    stack_frac: f64,
    procs: Vec<ProcMem>,
    states: Vec<ProcState>,
    zipf: Option<Zipf>,
    rng: StdRng,
    next_proc: usize,
}

impl WorkloadInstance {
    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Memory-level-parallelism hint for the core model.
    pub fn mlp(&self) -> u32 {
        self.mlp
    }

    /// The processes (address spaces) of the workload.
    pub fn procs(&self) -> &[ProcMem] {
        &self.procs
    }

    /// Produces the next trace item (infinite stream; processes are
    /// interleaved round-robin as a multiprogrammed/multithreaded mix).
    pub fn next_item(&mut self) -> TraceItem {
        let p = self.next_proc;
        self.next_proc = (self.next_proc + 1) % self.procs.len();
        let gap = if self.mean_gap == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.mean_gap * 2)
        };
        let vaddr = self.sample_addr(p);
        let kind = if self.rng.gen::<f64>() < self.write_frac {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let asid = self.procs[p].asid;
        TraceItem::new(gap, MemRef { asid, vaddr, kind })
    }

    /// Iterator view over the infinite trace stream.
    pub fn iter(&mut self) -> Iter<'_> {
        Iter { inst: self }
    }

    fn sample_addr(&mut self, p: usize) -> VirtAddr {
        // Shared-region access?
        if self.shared_access_frac > 0.0
            && !self.procs[p].shared_pages.is_empty()
            && self.rng.gen::<f64>() < self.shared_access_frac
        {
            // Shared pools have a hot head (database buffer pools, shared
            // queues): 90% of shared accesses hit the first 512 pages —
            // small enough for the baseline TLB to retain, large enough to
            // thrash the 64-entry synonym TLB (the paper's postgres
            // anomaly).
            let pages = &self.procs[p].shared_pages;
            let hot = pages.len().min(512);
            let idx = if self.rng.gen::<f64>() < 0.9 {
                self.rng.gen_range(0..hot)
            } else {
                self.rng.gen_range(0..pages.len())
            };
            let page = pages[idx];
            let line = self.rng.gen_range(0..PAGE_SIZE / LINE_SIZE);
            return page.base() + line * LINE_SIZE;
        }
        let npages = self.procs[p].pages.len();
        // Stack / locals traffic: a tiny always-hot region.
        if self.stack_frac > 0.0 && self.rng.gen::<f64>() < self.stack_frac {
            let pages = &self.procs[p].pages;
            let page = pages[self.rng.gen_range(0..pages.len().min(4))];
            let line = self.rng.gen_range(0..64);
            return page.base() + line * LINE_SIZE;
        }
        // Continue an in-progress spatial burst (consecutive lines of the
        // last sampled page).
        if self.burst > 1 && self.states[p].burst_left > 0 {
            let st = &mut self.states[p];
            st.burst_left -= 1;
            // Object-style access: revisit the same line, stepping to the
            // next line every other reference (field reuse + short spatial
            // walks, without assuming a hardware prefetcher).
            if st.burst_left.is_multiple_of(3) {
                st.burst_line = (st.burst_line + 1) % 64;
            }
            let page = self.procs[p].pages[st.burst_page];
            return page.base() + st.burst_line * LINE_SIZE;
        }
        let (idx, line) = {
            let st = &mut self.states[p];
            // Bursty (object-style) patterns anchor accesses at a fixed
            // per-page object slot, keeping each page's line footprint to
            // a couple of lines (hot objects are line-sized, so the LLC
            // can retain far more pages than the TLB — the paper's key
            // observation); non-bursty patterns touch any line.
            let burst = self.burst;
            let new_line = move |rng: &mut StdRng, idx: usize| -> u64 {
                if burst > 1 {
                    (idx as u64).wrapping_mul(0x9e37_79b1) >> 16 & 0x3f & !7
                } else {
                    rng.gen_range(0..64)
                }
            };
            match &self.pattern {
                AccessPattern::Uniform => {
                    let idx = self.rng.gen_range(0..npages);
                    (idx, new_line(&mut self.rng, idx))
                }
                AccessPattern::Zipfian(_) => {
                    let z = self.zipf.as_ref().expect("zipf built at instantiation");
                    let rank = z.sample(&mut self.rng) as usize % npages;
                    let idx = st.perm[rank] as usize;
                    (idx, new_line(&mut self.rng, idx))
                }
                AccessPattern::Stream => {
                    // Visit every line of a page before advancing.
                    st.line += 1;
                    if st.line >= 64 {
                        st.line = 0;
                        st.cursor = (st.cursor + 1) % npages;
                    }
                    (st.cursor, st.line)
                }
                AccessPattern::Chase => {
                    st.cursor = st.perm[st.cursor] as usize;
                    // A data-dependent line within the page.
                    let line = (st.cursor as u64).wrapping_mul(0x9e3779b9) % 64;
                    (st.cursor, line)
                }
                AccessPattern::Branchy(p_jump) => {
                    if self.rng.gen::<f64>() < *p_jump {
                        st.cursor = self.rng.gen_range(0..npages);
                    } else {
                        st.cursor = (st.cursor + 1) % npages;
                    }
                    let cur = st.cursor;
                    (cur, new_line(&mut self.rng, cur))
                }
                AccessPattern::SparseGather(frac) => {
                    if self.rng.gen::<f64>() < *frac {
                        let idx = self.rng.gen_range(0..npages);
                        (idx, new_line(&mut self.rng, idx))
                    } else {
                        st.line += 1;
                        if st.line >= 64 {
                            st.line = 0;
                            st.cursor = (st.cursor + 1) % npages;
                        }
                        (st.cursor, st.line)
                    }
                }
                AccessPattern::Phased {
                    window,
                    p_in,
                    slide_every,
                } => {
                    st.phase_refs += 1;
                    if st.phase_refs >= *slide_every {
                        st.phase_refs = 0;
                        st.phase_start = (st.phase_start + window / 4) % npages;
                    }
                    let idx = if self.rng.gen::<f64>() < *p_in {
                        (st.phase_start + self.rng.gen_range(0..*window)) % npages
                    } else {
                        self.rng.gen_range(0..npages)
                    };
                    (idx, new_line(&mut self.rng, idx))
                }
            }
        };
        if self.burst > 1
            && matches!(
                self.pattern,
                AccessPattern::Uniform
                    | AccessPattern::Zipfian(_)
                    | AccessPattern::Branchy(_)
                    | AccessPattern::SparseGather(_)
                    | AccessPattern::Phased { .. }
            )
        {
            let st = &mut self.states[p];
            st.burst_left = self.burst - 1;
            st.burst_page = idx;
            st.burst_line = line % 64;
        }
        let page = self.procs[p].pages[idx];
        page.base() + (line % 64) * LINE_SIZE
    }
}

/// Borrowing iterator over a workload's infinite trace stream.
pub struct Iter<'a> {
    inst: &'a mut WorkloadInstance,
}

impl Iterator for Iter<'_> {
    type Item = TraceItem;

    fn next(&mut self) -> Option<TraceItem> {
        Some(self.inst.next_item())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_os::AllocPolicy;

    fn kernel() -> Kernel {
        Kernel::new(4 << 30, AllocPolicy::DemandPaging)
    }

    fn basic_spec(pattern: AccessPattern) -> WorkloadSpec {
        WorkloadSpec {
            name: "test".into(),
            regions: vec![RegionSpec::full(8 << 20)],
            contiguous: true,
            pattern,
            write_frac: 0.3,
            mean_gap: 4,
            mlp: 4,
            burst: 1,
            stack_frac: 0.0,
            sharing: None,
        }
    }

    #[test]
    fn deterministic_across_identical_seeds() {
        let spec = basic_spec(AccessPattern::Uniform);
        let mut k1 = kernel();
        let mut k2 = kernel();
        let mut a = spec.instantiate(&mut k1, 9).unwrap();
        let mut b = spec.instantiate(&mut k2, 9).unwrap();
        for _ in 0..1000 {
            assert_eq!(a.next_item(), b.next_item());
        }
    }

    #[test]
    fn addresses_stay_within_mapped_regions() {
        let spec = basic_spec(AccessPattern::Uniform);
        let mut k = kernel();
        let mut inst = spec.instantiate(&mut k, 1).unwrap();
        for item in inst.iter().take(5000) {
            let va = item.mref.vaddr.as_u64();
            assert!(
                (0x1000_0000..0x1000_0000 + (8 << 20)).contains(&va),
                "va {va:#x}"
            );
        }
    }

    #[test]
    fn stream_pattern_is_sequential_lines() {
        let spec = basic_spec(AccessPattern::Stream);
        let mut k = kernel();
        let mut inst = spec.instantiate(&mut k, 1).unwrap();
        let a = inst.next_item().mref.vaddr;
        let b = inst.next_item().mref.vaddr;
        assert_eq!(b - a, LINE_SIZE);
    }

    #[test]
    fn chase_visits_every_page_before_repeating() {
        let mut spec = basic_spec(AccessPattern::Chase);
        spec.regions = vec![RegionSpec::full(64 * PAGE_SIZE)];
        let mut k = kernel();
        let mut inst = spec.instantiate(&mut k, 1).unwrap();
        let mut seen = std::collections::HashSet::new();
        for item in inst.iter().take(64) {
            seen.insert(item.mref.vaddr.page_number());
        }
        assert_eq!(seen.len(), 64, "single cycle covers all pages");
    }

    #[test]
    fn touch_frac_limits_page_domain() {
        let mut spec = basic_spec(AccessPattern::Uniform);
        spec.regions = vec![RegionSpec {
            len: 100 * PAGE_SIZE,
            touch_frac: 0.25,
        }];
        let mut k = kernel();
        let mut inst = spec.instantiate(&mut k, 1).unwrap();
        let limit = 0x1000_0000 + 25 * PAGE_SIZE;
        for item in inst.iter().take(2000) {
            assert!(item.mref.vaddr.as_u64() < limit);
        }
    }

    #[test]
    fn sharing_creates_synonym_traffic_at_expected_rate() {
        let spec = WorkloadSpec {
            name: "pg".into(),
            regions: vec![RegionSpec::full(4 << 20)],
            contiguous: true,
            pattern: AccessPattern::Uniform,
            write_frac: 0.3,
            mean_gap: 4,
            mlp: 4,
            burst: 1,
            stack_frac: 0.0,
            sharing: Some(SharingSpec {
                processes: 4,
                shared_bytes: 8 << 20,
                shared_access_frac: 0.16,
            }),
        };
        let mut k = kernel();
        let mut inst = spec.instantiate(&mut k, 5).unwrap();
        assert_eq!(inst.procs().len(), 4);
        let total = 20_000;
        let mut shared = 0;
        for item in inst.iter().take(total) {
            if item.mref.vaddr.as_u64() >= 0x7000_0000_0000 {
                shared += 1;
            }
        }
        let frac = shared as f64 / total as f64;
        assert!((frac - 0.16).abs() < 0.02, "shared access fraction {frac}");
        // The shared pages are genuine synonyms: same frame, different VAs.
        let p0 = inst.procs()[0].shared_pages[0];
        let p1 = inst.procs()[1].shared_pages[0];
        assert_ne!(p0, p1);
        let f0 = k
            .translate_touch(inst.procs()[0].asid, p0.base())
            .unwrap()
            .frame;
        let f1 = k
            .translate_touch(inst.procs()[1].asid, p1.base())
            .unwrap()
            .frame;
        assert_eq!(f0, f1);
    }

    #[test]
    fn gaps_average_near_mean() {
        let spec = basic_spec(AccessPattern::Uniform);
        let mut k = kernel();
        let mut inst = spec.instantiate(&mut k, 3).unwrap();
        let n = 20_000;
        let total: u64 = inst.iter().take(n).map(|i| u64::from(i.gap)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean gap {mean}");
    }

    #[test]
    fn write_fraction_is_respected() {
        let spec = basic_spec(AccessPattern::Uniform);
        let mut k = kernel();
        let mut inst = spec.instantiate(&mut k, 4).unwrap();
        let n = 20_000;
        let writes = inst
            .iter()
            .take(n)
            .filter(|i| i.mref.kind.is_write())
            .count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn scattered_regions_make_multiple_segments_under_eager() {
        let spec = WorkloadSpec {
            name: "mmapheavy".into(),
            regions: (0..8).map(|_| RegionSpec::full(1 << 20)).collect(),
            contiguous: false,
            pattern: AccessPattern::Uniform,
            write_frac: 0.2,
            mean_gap: 4,
            mlp: 4,
            burst: 1,
            stack_frac: 0.0,
            sharing: None,
        };
        let mut k = Kernel::new(4 << 30, AllocPolicy::EagerSegments { split: 1 });
        let inst = spec.instantiate(&mut k, 1).unwrap();
        assert_eq!(k.segments().count_asid(inst.procs()[0].asid), 8);
    }

    #[test]
    fn contiguous_regions_merge_under_eager() {
        let spec = WorkloadSpec {
            name: "heap".into(),
            regions: (0..8).map(|_| RegionSpec::full(1 << 20)).collect(),
            contiguous: true,
            pattern: AccessPattern::Uniform,
            write_frac: 0.2,
            mean_gap: 4,
            mlp: 4,
            burst: 1,
            stack_frac: 0.0,
            sharing: None,
        };
        let mut k = Kernel::new(4 << 30, AllocPolicy::EagerSegments { split: 1 });
        let inst = spec.instantiate(&mut k, 1).unwrap();
        assert_eq!(k.segments().count_asid(inst.procs()[0].asid), 1);
    }
}
