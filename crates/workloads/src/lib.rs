//! Synthetic workload generators for the HVC simulator.
//!
//! The paper evaluates on Pin traces of real applications (SPEC CPU2006,
//! PARSEC, GUPS, Graph500, NPB, BioBench, postgres, apache, firefox,
//! SpecJBB, memcached). Those traces are not reproducible here, so this
//! crate generates synthetic traces whose *access skeletons* land in the
//! same regimes that drive every figure:
//!
//! * page/segment working-set size vs. translation reach (GUPS and
//!   mcf-like chase traffic thrash any delayed TLB; streaming barely
//!   misses),
//! * cache-resident fraction of TLB-missing lines (Zipfian object graphs
//!   hit the LLC but miss small TLBs),
//! * fraction of accesses to r/w-shared synonym pages (postgres-like
//!   multi-process shm vs. SPEC-like private-only),
//! * allocation patterns that determine eager-segment counts and memory
//!   utilization (one big malloc vs. 64 MB on-demand chunks vs. scattered
//!   arena growth).
//!
//! Each named profile in [`apps`] documents which paper workload it
//! stands in for. All generators are deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use hvc_os::{AllocPolicy, Kernel};
//! use hvc_workloads::apps;
//!
//! # fn main() -> Result<(), hvc_types::HvcError> {
//! let mut kernel = Kernel::new(4 << 30, AllocPolicy::DemandPaging);
//! let mut inst = apps::gups(64 << 20).instantiate(&mut kernel, 42)?;
//! let refs: Vec<_> = inst.iter().take(1000).collect();
//! assert_eq!(refs.len(), 1000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
mod patterns;
mod spec;

pub use patterns::{AccessPattern, Zipf};
pub use spec::{RegionSpec, SharingSpec, WorkloadInstance, WorkloadSpec};
