//! Property tests for the workload generators.

use hvc_os::{AllocPolicy, Kernel};
use hvc_types::PAGE_SIZE;
use hvc_workloads::{AccessPattern, RegionSpec, SharingSpec, WorkloadSpec};
use proptest::prelude::*;

fn pattern_strategy() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        Just(AccessPattern::Uniform),
        (0.5f64..0.95).prop_map(AccessPattern::Zipfian),
        Just(AccessPattern::Stream),
        Just(AccessPattern::Chase),
        (0.05f64..0.9).prop_map(AccessPattern::Branchy),
        (0.05f64..0.9).prop_map(AccessPattern::SparseGather),
        (16usize..64, 0.3f64..0.95, 100u32..10_000).prop_map(|(w, p, s)| {
            AccessPattern::Phased {
                window: w,
                p_in: p,
                slide_every: s,
            }
        }),
    ]
}

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        prop::collection::vec((1u64..32, 0.1f64..=1.0), 1..4),
        any::<bool>(),
        pattern_strategy(),
        0.0f64..=1.0,
        0u32..8,
        1u32..8,
        1u32..12,
        0.0f64..0.5,
        prop::option::of((2usize..4, 1u64..16, 0.0f64..0.5)),
    )
        .prop_map(
            |(regions, contiguous, pattern, write_frac, mean_gap, mlp, burst, stack, sharing)| {
                WorkloadSpec {
                    name: "prop".into(),
                    regions: regions
                        .into_iter()
                        .map(|(pages, frac)| RegionSpec {
                            len: pages * PAGE_SIZE,
                            touch_frac: frac,
                        })
                        .collect(),
                    contiguous,
                    pattern,
                    write_frac,
                    mean_gap,
                    mlp,
                    burst,
                    stack_frac: stack,
                    sharing: sharing.map(|(processes, pages, frac)| SharingSpec {
                        processes,
                        shared_bytes: pages * PAGE_SIZE,
                        shared_access_frac: frac,
                    }),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated reference is inside a region the spec mapped, for
    /// every pattern / sharing / burst combination.
    #[test]
    fn all_references_are_mapped(spec in spec_strategy(), seed in 0u64..1000) {
        let mut k = Kernel::new(1 << 30, AllocPolicy::DemandPaging);
        let mut inst = spec.instantiate(&mut k, seed).unwrap();
        for item in inst.iter().take(2000).collect::<Vec<_>>() {
            // translate_touch errors iff the address is unmapped.
            prop_assert!(
                k.touch(item.mref.asid, item.mref.vaddr, hvc_types::AccessKind::Read).is_ok(),
                "unmapped reference {}",
                item.mref
            );
        }
    }

    /// Two instantiations with the same seed produce identical traces;
    /// different seeds (almost always) diverge.
    #[test]
    fn determinism_per_seed(spec in spec_strategy(), seed in 0u64..1000) {
        let mut k1 = Kernel::new(1 << 30, AllocPolicy::DemandPaging);
        let mut k2 = Kernel::new(1 << 30, AllocPolicy::DemandPaging);
        let mut a = spec.instantiate(&mut k1, seed).unwrap();
        let mut b = spec.instantiate(&mut k2, seed).unwrap();
        for _ in 0..500 {
            prop_assert_eq!(a.next_item(), b.next_item());
        }
    }

    /// The write fraction converges to the configured value.
    #[test]
    fn write_fraction_converges(frac in 0.0f64..=1.0, seed in 0u64..100) {
        let spec = WorkloadSpec {
            name: "wf".into(),
            regions: vec![RegionSpec::full(64 * PAGE_SIZE)],
            contiguous: true,
            pattern: AccessPattern::Uniform,
            write_frac: frac,
            mean_gap: 2,
            mlp: 1,
            burst: 1,
            stack_frac: 0.0,
            sharing: None,
        };
        let mut k = Kernel::new(1 << 30, AllocPolicy::DemandPaging);
        let mut inst = spec.instantiate(&mut k, seed).unwrap();
        let n = 20_000;
        let writes = inst.iter().take(n).filter(|i| i.mref.kind.is_write()).count();
        let measured = writes as f64 / n as f64;
        prop_assert!((measured - frac).abs() < 0.02, "measured {measured} vs {frac}");
    }
}
