//! Bloom-filter based synonym detection (the paper's Section III-B).
//!
//! Each address space owns a [`SynonymFilter`]: a pair of 1K-bit Bloom
//! filters, one at 16 MB granularity and one at 32 KB granularity, each
//! indexed by two XOR-folding hash functions. An address is reported as a
//! *synonym candidate* only when all four addressed bits are set, which
//! keeps false positives low; false negatives are impossible by
//! construction, which is the property correctness rests on.
//!
//! The operating system owns filter contents: it inserts a page when its
//! status changes to shared (synonym), never removes individual pages
//! (bits may be shared), and rebuilds the filter from the page tables when
//! too many stale bits accumulate ([`SynonymFilter::clear`] +
//! re-insertion).
//!
//! For virtualized systems, [`GuestHostFilters`] pairs a guest-OS filter
//! with a hypervisor (host) filter; both are indexed with the *guest
//! virtual* address and a hit in either reports a candidate (Section V-A).
//!
//! # Examples
//!
//! ```
//! use hvc_filter::SynonymFilter;
//! use hvc_types::VirtAddr;
//!
//! let mut f = SynonymFilter::new();
//! f.insert_page(VirtAddr::new(0x7000_0000));
//! assert!(f.is_candidate(VirtAddr::new(0x7000_0123)));
//! // Never a false negative:
//! assert!(f.is_candidate(VirtAddr::new(0x7000_0fff)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bloom;
mod synonym;

pub use bloom::BloomFilter;
pub use synonym::{GuestHostFilters, SynonymFilter, COARSE_SHIFT, FILTER_BITS, FINE_SHIFT};
