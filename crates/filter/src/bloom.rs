//! A single 1K-bit Bloom filter with the paper's two XOR-folding hash
//! functions.

use hvc_types::{VirtAddr, VIRT_ADDR_BITS};

/// Number of bits in one Bloom filter (the paper uses 1K-bit filters).
const BLOOM_BITS: usize = 1024;
/// Bits of index produced by each hash function (log2 of [`BLOOM_BITS`]).
const INDEX_BITS: u32 = 10;
/// Each hash function concatenates two 5-bit XOR folds.
const HALF_BITS: u32 = INDEX_BITS / 2;

/// A 1K-bit Bloom filter over virtual addresses at a fixed granularity.
///
/// The hash scheme follows the paper exactly: the virtual address is
/// trimmed by `granularity_shift` bits; the remaining bits are split into
/// two partitions (one hash splits 1:1, the other 1:2); each partition is
/// XOR-folded down to 5 bits; and the two 5-bit results concatenate into a
/// 10-bit filter index. The filter reports membership only when **both**
/// hash positions are set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    words: [u64; BLOOM_BITS / 64],
    granularity_shift: u32,
}

impl BloomFilter {
    /// Creates an empty filter tracking regions of `1 << granularity_shift`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if the granularity leaves fewer than ten address
    /// bits to hash.
    pub fn new(granularity_shift: u32) -> Self {
        assert!(
            granularity_shift + INDEX_BITS <= VIRT_ADDR_BITS,
            "granularity leaves too few bits to hash"
        );
        BloomFilter {
            words: [0; BLOOM_BITS / 64],
            granularity_shift,
        }
    }

    /// Returns the granularity shift.
    pub fn granularity_shift(&self) -> u32 {
        self.granularity_shift
    }

    /// Number of bits in the filter.
    pub fn len_bits(&self) -> usize {
        BLOOM_BITS
    }

    /// Inserts the region containing `va`.
    pub fn insert(&mut self, va: VirtAddr) {
        for idx in self.indices(va) {
            self.words[(idx / 64) as usize] |= 1u64 << (idx % 64);
        }
    }

    /// Returns `true` if both hash positions for `va` are set.
    #[inline]
    pub fn contains(&self, va: VirtAddr) -> bool {
        self.indices(va)
            .into_iter()
            .all(|idx| self.words[(idx / 64) as usize] & (1u64 << (idx % 64)) != 0)
    }

    /// Clears all bits (filter reconstruction).
    pub fn clear(&mut self) {
        self.words = [0; BLOOM_BITS / 64];
    }

    /// Fraction of set bits in `[0, 1]` — a saturation measure the OS can
    /// use to decide when to rebuild the filter.
    pub fn saturation(&self) -> f64 {
        let set: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        f64::from(set) / BLOOM_BITS as f64
    }

    /// The two 10-bit filter indices for `va`.
    #[inline]
    fn indices(&self, va: VirtAddr) -> [u16; 2] {
        let key = va.as_u64() >> self.granularity_shift;
        let width = VIRT_ADDR_BITS - self.granularity_shift;
        // Hash 1 partitions the key bits 1:1, hash 2 partitions 1:2.
        let split_even = width / 2;
        let split_third = width / 3;
        [
            Self::fold_pair(key, width, split_even),
            Self::fold_pair(key, width, split_third),
        ]
    }

    /// Splits the low `width` bits of `key` at `split`, XOR-folds each
    /// side to 5 bits, and concatenates into a 10-bit index.
    #[inline]
    fn fold_pair(key: u64, width: u32, split: u32) -> u16 {
        let low = key & ((1u64 << split) - 1);
        let high = (key >> split) & ((1u64 << (width - split)) - 1);
        let lo5 = Self::xor_fold5(low);
        let hi5 = Self::xor_fold5(high);
        ((hi5 << HALF_BITS) | lo5) as u16
    }

    /// XOR-folds a value into 5 bits.
    #[inline]
    fn xor_fold5(mut v: u64) -> u64 {
        let mut acc = 0u64;
        while v != 0 {
            acc ^= v & 0x1f;
            v >>= 5;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(15);
        assert!(!f.contains(VirtAddr::new(0)));
        assert!(!f.contains(VirtAddr::new(0x7fff_ffff_f000)));
        assert_eq!(f.saturation(), 0.0);
    }

    #[test]
    fn inserted_regions_are_found() {
        let mut f = BloomFilter::new(15);
        let va = VirtAddr::new(0x1234_5678_8000); // 32 KB aligned
        f.insert(va);
        assert!(f.contains(va));
        // Any address within the same 32 KB region hits.
        assert!(f.contains(VirtAddr::new(0x1234_5678_8000 + 0x7fff)));
    }

    #[test]
    fn granularity_bounds_region() {
        let mut f = BloomFilter::new(15);
        f.insert(VirtAddr::new(0));
        // The next 32 KB region hashes independently (may or may not
        // collide, but for these specific values it does not).
        assert!(!f.contains(VirtAddr::new(0x8000)));
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(24);
        f.insert(VirtAddr::new(0xdead_b000));
        assert!(f.saturation() > 0.0);
        f.clear();
        assert_eq!(f.saturation(), 0.0);
        assert!(!f.contains(VirtAddr::new(0xdead_b000)));
    }

    #[test]
    fn xor_fold_stays_in_5_bits() {
        for v in [0u64, 1, 0x1f, 0x20, u64::MAX, 0x1234_5678_9abc_def0] {
            assert!(BloomFilter::xor_fold5(v) < 32);
        }
    }

    #[test]
    fn indices_stay_in_range_and_differ_between_hashes() {
        let f = BloomFilter::new(15);
        let mut differing = 0;
        let mut x = 0x9e37_79b9_7f4a_7c15u64; // LCG over the full VA space
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let va = VirtAddr::new(x);
            let [a, b] = f.indices(va);
            assert!((a as usize) < BLOOM_BITS);
            assert!((b as usize) < BLOOM_BITS);
            if a != b {
                differing += 1;
            }
        }
        assert!(differing > 900, "hashes should usually differ: {differing}");
    }

    #[test]
    fn coarsest_legal_granularity_still_hashes() {
        // At exactly VIRT_ADDR_BITS - INDEX_BITS the key is down to the
        // ten index bits — the coarsest filter the constructor accepts.
        let shift = VIRT_ADDR_BITS - INDEX_BITS;
        let mut f = BloomFilter::new(shift);
        assert_eq!(f.granularity_shift(), shift);
        let base = VirtAddr::new(7u64 << shift);
        f.insert(base);
        // The whole 1 << shift region aliases to the same key, up to the
        // very last byte of the region.
        assert!(f.contains(base));
        assert!(f.contains(VirtAddr::new((7u64 << shift) + (1u64 << shift) - 1)));
        // Index computation stays in range even for the topmost region
        // of the 48-bit space.
        let top = VirtAddr::new((1u64 << VIRT_ADDR_BITS) - 1);
        f.insert(top);
        assert!(f.contains(top));
    }

    #[test]
    #[should_panic(expected = "too few bits")]
    fn one_past_the_granularity_boundary_is_rejected() {
        let _ = BloomFilter::new(VIRT_ADDR_BITS - INDEX_BITS + 1);
    }

    #[test]
    #[should_panic(expected = "too few bits")]
    fn absurd_granularity_rejected() {
        let _ = BloomFilter::new(40);
    }

    #[test]
    fn saturation_counts_bits() {
        let mut f = BloomFilter::new(15);
        f.insert(VirtAddr::new(0));
        let sat = f.saturation();
        // One insert sets one or two bits.
        assert!((1.0 / 1024.0..=2.0 / 1024.0).contains(&sat));
    }
}
