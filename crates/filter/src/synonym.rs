//! The two-granularity synonym filter and its virtualized (guest + host)
//! composition.

use crate::BloomFilter;
use hvc_types::VirtAddr;

/// Granularity shift of the coarse filter (16 MB regions).
pub const COARSE_SHIFT: u32 = 24;
/// Granularity shift of the fine filter (32 KB regions — "shared pages
/// are commonly allocated in 8 consecutive 4 KB pages").
pub const FINE_SHIFT: u32 = 15;
/// Bits per component Bloom filter.
pub const FILTER_BITS: usize = 1024;

/// A per-address-space synonym filter: a coarse (16 MB) and a fine
/// (32 KB) Bloom filter that must **both** hit for an address to be
/// reported as a synonym candidate (the paper's Figure 3).
///
/// Guarantees: [`SynonymFilter::is_candidate`] never returns `false` for a
/// region previously passed to [`SynonymFilter::insert_page`] (no false
/// negatives). False positives are possible and are corrected downstream
/// by the TLB's false-positive entries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynonymFilter {
    coarse: BloomFilter,
    fine: BloomFilter,
    insertions: u64,
}

impl SynonymFilter {
    /// Creates an empty filter pair (done at address-space creation).
    pub fn new() -> Self {
        SynonymFilter {
            coarse: BloomFilter::new(COARSE_SHIFT),
            fine: BloomFilter::new(FINE_SHIFT),
            insertions: 0,
        }
    }

    /// Marks the page containing `va` as a synonym (shared) page. Called
    /// by the OS when a page's status changes to shared; the update is
    /// propagated to other cores via the TLB-shootdown mechanism, which
    /// the OS substrate accounts for separately.
    pub fn insert_page(&mut self, va: VirtAddr) {
        self.coarse.insert(va);
        self.fine.insert(va);
        self.insertions += 1;
    }

    /// Returns `true` if `va` may be a synonym (all four filter bits set).
    #[inline]
    pub fn is_candidate(&self, va: VirtAddr) -> bool {
        self.coarse.contains(va) && self.fine.contains(va)
    }

    /// Clears both filters (OS-driven reconstruction when stale bits have
    /// accumulated after synonym→non-synonym transitions).
    pub fn clear(&mut self) {
        self.coarse.clear();
        self.fine.clear();
        self.insertions = 0;
    }

    /// Number of pages inserted since creation / last clear.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Saturation of the (coarse, fine) filters, each in `[0, 1]`.
    pub fn saturation(&self) -> (f64, f64) {
        (self.coarse.saturation(), self.fine.saturation())
    }
}

impl Default for SynonymFilter {
    fn default() -> Self {
        SynonymFilter::new()
    }
}

/// Guest + host filter pair for virtualized systems (Section V-A).
///
/// Both filters are indexed with the guest virtual address: the guest OS
/// maintains the guest filter for OS-induced synonyms, and the hypervisor
/// maintains the host filter for hypervisor-induced sharing (tracing gPA
/// back to gVA through its inverse map). A hit in **either** filter makes
/// the address a synonym candidate.
#[derive(Clone, Debug, Default)]
pub struct GuestHostFilters {
    /// Filter maintained by the guest OS, switched on guest context
    /// switches.
    pub guest: SynonymFilter,
    /// Filter maintained by the hypervisor, switched on VM switches.
    pub host: SynonymFilter,
}

impl GuestHostFilters {
    /// Creates an empty pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if either filter reports a candidate.
    pub fn is_candidate(&self, gva: VirtAddr) -> bool {
        self.guest.is_candidate(gva) || self.host.is_candidate(gva)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_over_many_inserts() {
        let mut f = SynonymFilter::new();
        let pages: Vec<VirtAddr> = (0..500)
            .map(|i| VirtAddr::new(i * 0x1000 + 0x5555_0000_0000))
            .collect();
        for &p in &pages {
            f.insert_page(p);
        }
        for &p in &pages {
            assert!(f.is_candidate(p), "false negative at {p}");
        }
        assert_eq!(f.insertions(), 500);
    }

    #[test]
    fn both_granularities_must_hit() {
        let mut f = SynonymFilter::new();
        f.insert_page(VirtAddr::new(0x1000_0000));
        // Same 16 MB region, different 32 KB region: coarse hits, fine
        // need not — verify the conjunction suppresses it (for this value
        // the fine filter does not collide).
        assert!(!f.is_candidate(VirtAddr::new(0x1080_0000 - 0x8000)));
    }

    #[test]
    fn false_positive_rate_is_low_for_sparse_sharing() {
        // Insert 32 shared regions (typical workload per Table I), then
        // probe 100k distinct non-shared addresses.
        let mut f = SynonymFilter::new();
        for i in 0..32u64 {
            f.insert_page(VirtAddr::new(0x7f00_0000_0000 + i * 0x8000));
        }
        let mut fp = 0u64;
        let probes = 100_000u64;
        for i in 0..probes {
            // Far away from the shared range.
            let va = VirtAddr::new(0x1000_0000_0000 + i * 0x1000);
            if f.is_candidate(va) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.005, "false positive rate too high: {rate}");
    }

    #[test]
    fn clear_resets_everything() {
        let mut f = SynonymFilter::new();
        f.insert_page(VirtAddr::new(0x1234_5000));
        f.clear();
        assert!(!f.is_candidate(VirtAddr::new(0x1234_5000)));
        assert_eq!(f.insertions(), 0);
        assert_eq!(f.saturation(), (0.0, 0.0));
    }

    #[test]
    fn guest_host_composition_is_a_union() {
        let mut gh = GuestHostFilters::new();
        let guest_page = VirtAddr::new(0x4000_0000);
        let host_page = VirtAddr::new(0x5000_0000);
        gh.guest.insert_page(guest_page);
        gh.host.insert_page(host_page);
        assert!(gh.is_candidate(guest_page));
        assert!(gh.is_candidate(host_page));
        assert!(!gh.is_candidate(VirtAddr::new(0x6000_0000)));
    }

    #[test]
    fn default_is_empty() {
        let f = SynonymFilter::default();
        assert!(!f.is_candidate(VirtAddr::new(0)));
    }
}
