//! Property tests for the synonym filter: the no-false-negative guarantee
//! is the correctness foundation of the entire hybrid design.

use hvc_filter::{GuestHostFilters, SynonymFilter};
use hvc_types::VirtAddr;
use proptest::prelude::*;

proptest! {
    /// Any inserted page is a candidate forever after, at every offset of
    /// its 4 KiB page, regardless of interleaved unrelated insertions.
    #[test]
    fn inserted_pages_are_always_candidates(
        pages in prop::collection::vec(0u64..(1u64 << 36), 1..300),
        offsets in prop::collection::vec(0u64..0x1000, 1..20),
    ) {
        let mut f = SynonymFilter::new();
        for (i, &p) in pages.iter().enumerate() {
            f.insert_page(VirtAddr::new(p << 12));
            // Everything inserted so far remains detected.
            for &q in &pages[..=i] {
                for &off in &offsets {
                    prop_assert!(f.is_candidate(VirtAddr::new((q << 12) + off)));
                }
            }
        }
    }

    /// Clearing resets to the empty state: nothing previously inserted
    /// remains a candidate purely from stale state (a fresh filter and a
    /// cleared filter agree on every probe).
    #[test]
    fn clear_equals_fresh(
        pages in prop::collection::vec(0u64..(1u64 << 36), 1..100),
        probes in prop::collection::vec(0u64..(1u64 << 48), 1..100),
    ) {
        let mut f = SynonymFilter::new();
        for &p in &pages {
            f.insert_page(VirtAddr::new(p << 12));
        }
        f.clear();
        let fresh = SynonymFilter::new();
        for &q in &probes {
            prop_assert_eq!(
                f.is_candidate(VirtAddr::new(q)),
                fresh.is_candidate(VirtAddr::new(q))
            );
        }
    }

    /// Insertion order does not matter (the filter is a set of bits).
    #[test]
    fn insertion_is_commutative(mut pages in prop::collection::vec(0u64..(1u64 << 36), 2..50)) {
        let mut a = SynonymFilter::new();
        for &p in &pages {
            a.insert_page(VirtAddr::new(p << 12));
        }
        pages.reverse();
        let mut b = SynonymFilter::new();
        for &p in &pages {
            b.insert_page(VirtAddr::new(p << 12));
        }
        prop_assert_eq!(a.saturation(), b.saturation());
        for &p in &pages {
            prop_assert_eq!(
                a.is_candidate(VirtAddr::new(p << 12)),
                b.is_candidate(VirtAddr::new(p << 12))
            );
        }
    }

    /// The guest/host union reports exactly the union of its parts
    /// whenever either part reports a hit (no false negatives compose).
    #[test]
    fn guest_host_union_is_sound(
        guest_pages in prop::collection::vec(0u64..(1u64 << 36), 0..50),
        host_pages in prop::collection::vec(0u64..(1u64 << 36), 0..50),
    ) {
        let mut gh = GuestHostFilters::new();
        for &p in &guest_pages {
            gh.guest.insert_page(VirtAddr::new(p << 12));
        }
        for &p in &host_pages {
            gh.host.insert_page(VirtAddr::new(p << 12));
        }
        for &p in guest_pages.iter().chain(&host_pages) {
            prop_assert!(gh.is_candidate(VirtAddr::new(p << 12)));
        }
    }

    /// Saturation is monotone in insertions and bounded by 1.
    #[test]
    fn saturation_monotone(pages in prop::collection::vec(0u64..(1u64 << 36), 1..200)) {
        let mut f = SynonymFilter::new();
        let mut last = (0.0, 0.0);
        for &p in &pages {
            f.insert_page(VirtAddr::new(p << 12));
            let s = f.saturation();
            prop_assert!(s.0 >= last.0 && s.1 >= last.1);
            prop_assert!(s.0 <= 1.0 && s.1 <= 1.0);
            last = s;
        }
    }
}
