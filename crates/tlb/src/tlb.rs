//! A generic set-associative TLB.

use hvc_os::Pte;
use hvc_types::{Asid, Cycles, MergeStats, VirtPage};

/// Geometry and latency of a TLB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Lookup latency.
    pub latency: Cycles,
}

impl TlbConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible into a power-of-two number of
    /// sets of `ways` entries.
    pub fn new(entries: usize, ways: usize, latency: Cycles) -> Self {
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "entries must divide into ways"
        );
        let sets = entries / ways;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        TlbConfig {
            entries,
            ways,
            latency,
        }
    }

    /// The paper's baseline L1 TLB: 64 entries, 4-way, 1 cycle.
    pub fn l1_64() -> Self {
        TlbConfig::new(64, 4, Cycles::new(1))
    }

    /// The paper's baseline L2 TLB: 1024 entries, 8-way, 7 cycles.
    pub fn l2_1024() -> Self {
        TlbConfig::new(1024, 8, Cycles::new(7))
    }

    /// The hybrid scheme's synonym TLB: 64 entries, 4-way, single level.
    pub fn synonym_64() -> Self {
        TlbConfig::new(64, 4, Cycles::new(1))
    }

    /// A delayed TLB of the given size (8-way, 7 cycles; sizes of 1K-32K
    /// are swept in Figure 4 / Figure 9).
    pub fn delayed(entries: usize) -> Self {
        TlbConfig::new(entries, 8, Cycles::new(7))
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.entries / self.ways
    }
}

/// Hit/miss counters for a TLB.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl TlbStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio; `None` with no lookups.
    pub fn miss_rate(&self) -> Option<f64> {
        let n = self.accesses();
        (n > 0).then(|| self.misses as f64 / n as f64)
    }
}

impl MergeStats for TlbStats {
    fn merge_from(&mut self, other: &Self) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    asid: Asid,
    vpn: u64,
    pte: Pte,
    lru: u64,
}

/// A set-associative TLB keyed by `(ASID, virtual page number)` with LRU
/// replacement.
///
/// ASID tagging means context switches need no flush (homonyms cannot
/// hit), matching the paper's ASID-based design.
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    sets: Vec<Vec<Entry>>,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        let sets = config.sets();
        Tlb {
            sets: vec![Vec::with_capacity(config.ways); sets],
            config,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Returns hit/miss counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets counters (contents kept).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    fn set_index(&self, vpn: u64) -> usize {
        (vpn as usize) & (self.sets.len() - 1)
    }

    /// Looks up a translation, updating LRU and counters.
    pub fn lookup(&mut self, asid: Asid, vpage: VirtPage) -> Option<Pte> {
        self.tick += 1;
        let tick = self.tick;
        let vpn = vpage.as_u64();
        let idx = self.set_index(vpn);
        let found = self.sets[idx]
            .iter_mut()
            .find(|e| e.asid == asid && e.vpn == vpn);
        match found {
            Some(e) => {
                e.lru = tick;
                self.stats.hits += 1;
                Some(e.pte)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Probes without updating LRU or counters.
    pub fn contains(&self, asid: Asid, vpage: VirtPage) -> bool {
        let vpn = vpage.as_u64();
        self.sets[self.set_index(vpn)]
            .iter()
            .any(|e| e.asid == asid && e.vpn == vpn)
    }

    /// Inserts (or refreshes) a translation after a miss/page walk.
    pub fn insert(&mut self, asid: Asid, vpage: VirtPage, pte: Pte) {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.config.ways;
        let vpn = vpage.as_u64();
        let idx = self.set_index(vpn);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.asid == asid && e.vpn == vpn) {
            e.pte = pte;
            e.lru = tick;
            return;
        }
        if set.len() == ways {
            let (slot, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .expect("non-empty set");
            set.swap_remove(slot);
        }
        set.push(Entry {
            asid,
            vpn,
            pte,
            lru: tick,
        });
    }

    /// Invalidates one page's entry (TLB shootdown).
    pub fn flush_page(&mut self, asid: Asid, vpage: VirtPage) {
        let vpn = vpage.as_u64();
        let idx = self.set_index(vpn);
        self.sets[idx].retain(|e| !(e.asid == asid && e.vpn == vpn));
    }

    /// Invalidates every entry of an address space.
    pub fn flush_asid(&mut self, asid: Asid) {
        for set in &mut self.sets {
            set.retain(|e| e.asid != asid);
        }
    }

    /// Invalidates everything.
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Iterates over all valid entries as `(asid, vpage, pte)`. Used by
    /// the `hvc-check` invariant sweeps to audit cached translations
    /// against the page tables; not on any simulation fast path.
    pub fn entries(&self) -> impl Iterator<Item = (Asid, VirtPage, Pte)> + '_ {
        self.sets
            .iter()
            .flatten()
            .map(|e| (e.asid, VirtPage::new(e.vpn), e.pte))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_types::{Permissions, PhysFrame};

    fn pte(frame: u64) -> Pte {
        Pte {
            frame: PhysFrame::new(frame),
            perm: Permissions::RW,
            shared: false,
        }
    }

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig::new(4, 2, Cycles::new(1)))
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tiny();
        let a = Asid::new(1);
        assert_eq!(t.lookup(a, VirtPage::new(5)), None);
        t.insert(a, VirtPage::new(5), pte(9));
        assert_eq!(t.lookup(a, VirtPage::new(5)), Some(pte(9)));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
        assert!((t.stats().miss_rate().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn asid_tagged_entries_do_not_cross() {
        let mut t = tiny();
        t.insert(Asid::new(1), VirtPage::new(5), pte(9));
        assert_eq!(t.lookup(Asid::new(2), VirtPage::new(5)), None);
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut t = tiny();
        let a = Asid::new(1);
        // 2 sets: pages 0, 2, 4 map to set 0.
        t.insert(a, VirtPage::new(0), pte(0));
        t.insert(a, VirtPage::new(2), pte(2));
        t.lookup(a, VirtPage::new(0));
        t.insert(a, VirtPage::new(4), pte(4));
        assert!(t.contains(a, VirtPage::new(0)));
        assert!(!t.contains(a, VirtPage::new(2)));
    }

    #[test]
    fn insert_refreshes_existing_entry() {
        let mut t = tiny();
        let a = Asid::new(1);
        t.insert(a, VirtPage::new(0), pte(1));
        t.insert(a, VirtPage::new(0), pte(2));
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.lookup(a, VirtPage::new(0)), Some(pte(2)));
    }

    #[test]
    fn flushes() {
        let mut t = tiny();
        let a = Asid::new(1);
        let b = Asid::new(2);
        t.insert(a, VirtPage::new(0), pte(1));
        t.insert(a, VirtPage::new(1), pte(2));
        t.insert(b, VirtPage::new(1), pte(3));
        t.flush_page(a, VirtPage::new(0));
        assert!(!t.contains(a, VirtPage::new(0)));
        assert!(t.contains(a, VirtPage::new(1)));
        t.flush_asid(a);
        assert!(!t.contains(a, VirtPage::new(1)));
        assert!(t.contains(b, VirtPage::new(1)));
        t.flush_all();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn presets_match_table_iv() {
        assert_eq!(TlbConfig::l1_64().sets(), 16);
        assert_eq!(TlbConfig::l2_1024().sets(), 128);
        assert_eq!(TlbConfig::delayed(32 * 1024).entries, 32768);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = TlbConfig::new(24, 4, Cycles::new(1));
    }
}
