//! A generic set-associative TLB.

use hvc_os::Pte;
use hvc_types::{Asid, Cycles, MergeStats, VirtPage};

/// Geometry and latency of a TLB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Lookup latency.
    pub latency: Cycles,
}

impl TlbConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible into a power-of-two number of
    /// sets of `ways` entries.
    pub fn new(entries: usize, ways: usize, latency: Cycles) -> Self {
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "entries must divide into ways"
        );
        let sets = entries / ways;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        TlbConfig {
            entries,
            ways,
            latency,
        }
    }

    /// The paper's baseline L1 TLB: 64 entries, 4-way, 1 cycle.
    pub fn l1_64() -> Self {
        TlbConfig::new(64, 4, Cycles::new(1))
    }

    /// The paper's baseline L2 TLB: 1024 entries, 8-way, 7 cycles.
    pub fn l2_1024() -> Self {
        TlbConfig::new(1024, 8, Cycles::new(7))
    }

    /// The hybrid scheme's synonym TLB: 64 entries, 4-way, single level.
    pub fn synonym_64() -> Self {
        TlbConfig::new(64, 4, Cycles::new(1))
    }

    /// A delayed TLB of the given size (8-way, 7 cycles; sizes of 1K-32K
    /// are swept in Figure 4 / Figure 9).
    pub fn delayed(entries: usize) -> Self {
        TlbConfig::new(entries, 8, Cycles::new(7))
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.entries / self.ways
    }
}

/// Hit/miss counters for a TLB.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl TlbStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio; `None` with no lookups.
    pub fn miss_rate(&self) -> Option<f64> {
        let n = self.accesses();
        (n > 0).then(|| self.misses as f64 / n as f64)
    }
}

impl MergeStats for TlbStats {
    fn merge_from(&mut self, other: &Self) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    asid: Asid,
    vpn: u64,
    pte: Pte,
    lru: u64,
    /// The ASID generation captured at insert; the entry is live only
    /// while it matches the current generation of its ASID.
    gen: u64,
}

impl Entry {
    /// Filler for slots whose valid bit is clear; never observed.
    const EMPTY: Entry = Entry {
        asid: Asid::KERNEL,
        vpn: 0,
        pte: Pte {
            frame: hvc_types::PhysFrame::new(0),
            perm: hvc_types::Permissions::NONE,
            shared: false,
        },
        lru: 0,
        gen: 0,
    };
}

/// A set-associative TLB keyed by `(ASID, virtual page number)` with LRU
/// replacement.
///
/// ASID tagging means context switches need no flush (homonyms cannot
/// hit), matching the paper's ASID-based design.
///
/// Storage is a single contiguous slab (set `s` =
/// `entries[s * ways .. (s + 1) * ways]`, live ways selected by a per-set
/// occupancy bitmask). Address-space shootdowns are O(1): every entry is
/// tagged with its ASID's generation at insert, [`Tlb::flush_asid`] just
/// bumps the generation, and generation-mismatched entries never hit —
/// they are reclaimed lazily as preferred free slots on insert.
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    /// `sets * ways` slots; slots whose `valid` bit is clear hold
    /// [`Entry::EMPTY`] filler.
    entries: Box<[Entry]>,
    /// One occupancy bitmask per set (bit `w` = way `w` in use; an in-use
    /// way may still be stale if its generation lags its ASID's).
    valid: Box<[u64]>,
    ways: usize,
    set_mask: usize,
    /// Current generation per ASID, grown lazily; absent ASIDs are at
    /// generation 0.
    asid_gen: Vec<u64>,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has more than 64 ways (the per-set
    /// occupancy bitmask is a `u64`).
    pub fn new(config: TlbConfig) -> Self {
        let sets = config.sets();
        assert!(config.ways <= 64, "at most 64 ways per set");
        Tlb {
            entries: vec![Entry::EMPTY; sets * config.ways].into_boxed_slice(),
            valid: vec![0u64; sets].into_boxed_slice(),
            ways: config.ways,
            set_mask: sets - 1,
            asid_gen: Vec::new(),
            config,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Returns hit/miss counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets counters (contents kept).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    #[inline]
    fn set_index(&self, vpn: u64) -> usize {
        (vpn as usize) & self.set_mask
    }

    /// Current generation of `asid` (0 if never flushed).
    #[inline]
    fn gen_of(&self, asid: Asid) -> u64 {
        self.asid_gen
            .get(asid.as_u16() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Whether the in-use entry at `slot` is live (generation current).
    #[inline]
    fn is_live(&self, slot: usize) -> bool {
        let e = &self.entries[slot];
        e.gen == self.gen_of(e.asid)
    }

    /// Looks up a translation, updating LRU and counters.
    pub fn lookup(&mut self, asid: Asid, vpage: VirtPage) -> Option<Pte> {
        self.tick += 1;
        let vpn = vpage.as_u64();
        let set = self.set_index(vpn);
        let gen = self.gen_of(asid);
        let base = set * self.ways;
        let mut used = self.valid[set];
        while used != 0 {
            let w = used.trailing_zeros() as usize;
            let e = &mut self.entries[base + w];
            if e.asid == asid && e.vpn == vpn {
                if e.gen == gen {
                    e.lru = self.tick;
                    self.stats.hits += 1;
                    return Some(e.pte);
                }
                // Stale survivor of a generation flush: reclaim the slot.
                *e = Entry::EMPTY;
                self.valid[set] &= !(1 << w);
            }
            used &= used - 1;
        }
        self.stats.misses += 1;
        None
    }

    /// Probes without updating LRU or counters.
    pub fn contains(&self, asid: Asid, vpage: VirtPage) -> bool {
        let vpn = vpage.as_u64();
        let set = self.set_index(vpn);
        let gen = self.gen_of(asid);
        let base = set * self.ways;
        let mut used = self.valid[set];
        while used != 0 {
            let w = used.trailing_zeros() as usize;
            let e = &self.entries[base + w];
            if e.asid == asid && e.vpn == vpn && e.gen == gen {
                return true;
            }
            used &= used - 1;
        }
        false
    }

    /// Inserts (or refreshes) a translation after a miss/page walk.
    ///
    /// Stale (generation-flushed) entries are preferred reclamation
    /// targets, so a set never evicts a live entry while it holds dead
    /// ones — exactly the occupancy an eager flush would have left.
    pub fn insert(&mut self, asid: Asid, vpage: VirtPage, pte: Pte) {
        self.tick += 1;
        let vpn = vpage.as_u64();
        let set = self.set_index(vpn);
        let gen = self.gen_of(asid);
        let base = set * self.ways;
        let mut used = self.valid[set];
        while used != 0 {
            let w = used.trailing_zeros() as usize;
            if !self.is_live(base + w) {
                // Lazily reclaim any stale entry encountered on the way.
                self.entries[base + w] = Entry::EMPTY;
                self.valid[set] &= !(1 << w);
            } else {
                let e = &mut self.entries[base + w];
                if e.asid == asid && e.vpn == vpn {
                    e.pte = pte;
                    e.lru = self.tick;
                    return;
                }
            }
            used &= used - 1;
        }
        let mask = self.valid[set];
        let way = if mask.count_ones() as usize == self.ways {
            // All ways live: evict the unique LRU minimum (ticks are
            // unique among live entries, so slot order cannot matter).
            let mut live = mask;
            let mut best = 0usize;
            let mut best_lru = u64::MAX;
            while live != 0 {
                let w = live.trailing_zeros() as usize;
                let lru = self.entries[base + w].lru;
                if lru < best_lru {
                    best_lru = lru;
                    best = w;
                }
                live &= live - 1;
            }
            best
        } else {
            (!mask).trailing_zeros() as usize
        };
        self.entries[base + way] = Entry {
            asid,
            vpn,
            pte,
            lru: self.tick,
            gen,
        };
        self.valid[set] |= 1 << way;
    }

    /// Invalidates one page's entry (TLB shootdown).
    pub fn flush_page(&mut self, asid: Asid, vpage: VirtPage) {
        let vpn = vpage.as_u64();
        let set = self.set_index(vpn);
        let base = set * self.ways;
        let mut used = self.valid[set];
        while used != 0 {
            let w = used.trailing_zeros() as usize;
            let e = &self.entries[base + w];
            if e.asid == asid && e.vpn == vpn {
                self.entries[base + w] = Entry::EMPTY;
                self.valid[set] &= !(1 << w);
            }
            used &= used - 1;
        }
    }

    /// Invalidates every entry of an address space — O(1): the ASID's
    /// generation is bumped and surviving entries can never hit again.
    pub fn flush_asid(&mut self, asid: Asid) {
        let idx = asid.as_u16() as usize;
        if idx >= self.asid_gen.len() {
            self.asid_gen.resize(idx + 1, 0);
        }
        self.asid_gen[idx] += 1;
    }

    /// Invalidates everything.
    pub fn flush_all(&mut self) {
        self.valid.iter_mut().for_each(|m| *m = 0);
        self.entries.iter_mut().for_each(|e| *e = Entry::EMPTY);
    }

    /// Number of valid (live) entries.
    pub fn occupancy(&self) -> usize {
        self.live_slots().count()
    }

    /// Iterates over all live entries as `(asid, vpage, pte)`. Used by
    /// the `hvc-check` invariant sweeps to audit cached translations
    /// against the page tables; not on any simulation fast path.
    pub fn entries(&self) -> impl Iterator<Item = (Asid, VirtPage, Pte)> + '_ {
        self.live_slots().map(|slot| {
            let e = &self.entries[slot];
            (e.asid, VirtPage::new(e.vpn), e.pte)
        })
    }

    /// Slab indices of all live (in-use and generation-current) entries.
    fn live_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.valid.iter().enumerate().flat_map(move |(set, &mask)| {
            let base = set * self.ways;
            BitIter(mask)
                .map(move |w| base + w)
                .filter(|&slot| self.is_live(slot))
        })
    }
}

/// Iterator over the set bit positions of a `u64` mask, low to high.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let w = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_types::{Permissions, PhysFrame};

    fn pte(frame: u64) -> Pte {
        Pte {
            frame: PhysFrame::new(frame),
            perm: Permissions::RW,
            shared: false,
        }
    }

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig::new(4, 2, Cycles::new(1)))
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tiny();
        let a = Asid::new(1);
        assert_eq!(t.lookup(a, VirtPage::new(5)), None);
        t.insert(a, VirtPage::new(5), pte(9));
        assert_eq!(t.lookup(a, VirtPage::new(5)), Some(pte(9)));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
        assert!((t.stats().miss_rate().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn asid_tagged_entries_do_not_cross() {
        let mut t = tiny();
        t.insert(Asid::new(1), VirtPage::new(5), pte(9));
        assert_eq!(t.lookup(Asid::new(2), VirtPage::new(5)), None);
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut t = tiny();
        let a = Asid::new(1);
        // 2 sets: pages 0, 2, 4 map to set 0.
        t.insert(a, VirtPage::new(0), pte(0));
        t.insert(a, VirtPage::new(2), pte(2));
        t.lookup(a, VirtPage::new(0));
        t.insert(a, VirtPage::new(4), pte(4));
        assert!(t.contains(a, VirtPage::new(0)));
        assert!(!t.contains(a, VirtPage::new(2)));
    }

    #[test]
    fn insert_refreshes_existing_entry() {
        let mut t = tiny();
        let a = Asid::new(1);
        t.insert(a, VirtPage::new(0), pte(1));
        t.insert(a, VirtPage::new(0), pte(2));
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.lookup(a, VirtPage::new(0)), Some(pte(2)));
    }

    #[test]
    fn flushes() {
        let mut t = tiny();
        let a = Asid::new(1);
        let b = Asid::new(2);
        t.insert(a, VirtPage::new(0), pte(1));
        t.insert(a, VirtPage::new(1), pte(2));
        t.insert(b, VirtPage::new(1), pte(3));
        t.flush_page(a, VirtPage::new(0));
        assert!(!t.contains(a, VirtPage::new(0)));
        assert!(t.contains(a, VirtPage::new(1)));
        t.flush_asid(a);
        assert!(!t.contains(a, VirtPage::new(1)));
        assert!(t.contains(b, VirtPage::new(1)));
        t.flush_all();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn generation_flush_hides_entries_immediately() {
        let mut t = tiny();
        let a = Asid::new(1);
        t.insert(a, VirtPage::new(0), pte(1));
        t.flush_asid(a);
        // The stale entry never hits, never shows in occupancy/entries.
        assert_eq!(t.lookup(a, VirtPage::new(0)), None);
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.entries().count(), 0);
    }

    #[test]
    fn stale_slots_are_reclaimed_before_evicting_live_entries() {
        let mut t = tiny();
        let a = Asid::new(1);
        let b = Asid::new(2);
        // Fill set 0 with both ways, then kill ASID 1.
        t.insert(a, VirtPage::new(0), pte(1));
        t.insert(b, VirtPage::new(2), pte(2));
        t.flush_asid(a);
        // Inserting into the full-looking set must reuse the stale slot,
        // keeping ASID 2's live entry resident.
        t.insert(b, VirtPage::new(4), pte(4));
        assert!(t.contains(b, VirtPage::new(2)));
        assert!(t.contains(b, VirtPage::new(4)));
    }

    #[test]
    fn reinsert_after_generation_flush_is_fresh() {
        let mut t = tiny();
        let a = Asid::new(1);
        t.insert(a, VirtPage::new(0), pte(1));
        t.flush_asid(a);
        t.insert(a, VirtPage::new(0), pte(7));
        assert_eq!(t.lookup(a, VirtPage::new(0)), Some(pte(7)));
        assert_eq!(t.occupancy(), 1, "stale duplicate must not linger");
    }

    #[test]
    fn presets_match_table_iv() {
        assert_eq!(TlbConfig::l1_64().sets(), 16);
        assert_eq!(TlbConfig::l2_1024().sets(), 128);
        assert_eq!(TlbConfig::delayed(32 * 1024).entries, 32768);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = TlbConfig::new(24, 4, Cycles::new(1));
    }
}
