//! The hardware page walker.

use crate::WalkCache;
use hvc_obs::LatencyHistogram;
use hvc_os::{Kernel, Pte, PT_LEVELS};
use hvc_types::{Asid, Cycles, MergeStats, PhysAddr, VirtPage};

/// Walker event counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalkerStats {
    /// Walks performed.
    pub walks: u64,
    /// Page-table entry reads issued to the memory system.
    pub pte_reads: u64,
    /// Upper-level reads skipped thanks to the walk caches.
    pub skipped_reads: u64,
    /// Total cycles spent walking.
    pub walk_cycles: Cycles,
    /// Distribution of per-walk latencies.
    pub walk_latency: LatencyHistogram,
}

impl MergeStats for WalkerStats {
    fn merge_from(&mut self, other: &Self) {
        self.walks += other.walks;
        self.pte_reads += other.pte_reads;
        self.skipped_reads += other.skipped_reads;
        self.walk_cycles += other.walk_cycles;
        self.walk_latency.merge_from(&other.walk_latency);
    }
}

/// A hardware radix page walker with paging-structure caches.
///
/// The walker does not own a memory hierarchy; every page-table entry
/// read is charged through the `access` callback the caller passes, which
/// routes it through caches + DRAM (baseline) or wherever the modelled
/// microarchitecture sends walker traffic.
#[derive(Clone, Debug, Default)]
pub struct PageWalker {
    walk_cache: WalkCache,
    stats: WalkerStats,
}

impl PageWalker {
    /// Creates a walker with cold walk caches.
    pub fn new() -> Self {
        PageWalker::default()
    }

    /// Walks the page table of `asid` for `vpage`. Returns the leaf PTE
    /// and the walk latency, or `None` on a true page fault (unmapped
    /// page — the caller invokes the OS and retries).
    ///
    /// `access` is called once per page-table entry read with the entry's
    /// physical address and must return the access latency.
    pub fn walk(
        &mut self,
        kernel: &Kernel,
        asid: Asid,
        vpage: VirtPage,
        mut access: impl FnMut(PhysAddr) -> Cycles,
    ) -> Option<(Pte, Cycles)> {
        let (pte, path) = kernel.walk(asid, vpage)?;
        let skip = self.walk_cache.skip_levels(asid, vpage).min(PT_LEVELS - 1);
        let mut latency = Cycles::ZERO;
        for addr in &path[skip..] {
            latency += access(*addr);
            self.stats.pte_reads += 1;
        }
        self.stats.skipped_reads += skip as u64;
        self.stats.walks += 1;
        self.stats.walk_cycles += latency;
        self.stats.walk_latency.record(latency);
        self.walk_cache.fill(asid, vpage);
        Some((pte, latency))
    }

    /// Invalidate cached upper-level nodes of `asid` (shootdown).
    pub fn flush_asid(&mut self, asid: Asid) {
        self.walk_cache.flush_asid(asid);
    }

    /// Walker counters.
    pub fn stats(&self) -> &WalkerStats {
        &self.stats
    }

    /// Resets counters (walk caches kept).
    pub fn reset_stats(&mut self) {
        self.stats = WalkerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_os::{AllocPolicy, MapIntent};
    use hvc_types::{Permissions, VirtAddr};

    fn kernel_with_page() -> (Kernel, Asid) {
        let mut k = Kernel::new(1 << 30, AllocPolicy::DemandPaging);
        let a = k.create_process().unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x10000),
            0x10000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        k.translate_touch(a, VirtAddr::new(0x10000)).unwrap();
        k.translate_touch(a, VirtAddr::new(0x11000)).unwrap();
        (k, a)
    }

    #[test]
    fn cold_walk_reads_four_levels() {
        let (k, a) = kernel_with_page();
        let mut w = PageWalker::new();
        let mut reads = 0;
        let (pte, lat) = w
            .walk(&k, a, VirtAddr::new(0x10000).page_number(), |_| {
                reads += 1;
                Cycles::new(10)
            })
            .unwrap();
        assert_eq!(reads, 4);
        assert_eq!(lat, Cycles::new(40));
        assert!(pte.perm.allows(Permissions::READ));
        assert_eq!(w.stats().pte_reads, 4);
    }

    #[test]
    fn warm_walk_skips_upper_levels() {
        let (k, a) = kernel_with_page();
        let mut w = PageWalker::new();
        w.walk(&k, a, VirtAddr::new(0x10000).page_number(), |_| {
            Cycles::new(10)
        })
        .unwrap();
        let mut reads = 0;
        let (_, lat) = w
            .walk(&k, a, VirtAddr::new(0x11000).page_number(), |_| {
                reads += 1;
                Cycles::new(10)
            })
            .unwrap();
        assert_eq!(reads, 1, "only the leaf PT entry");
        assert_eq!(lat, Cycles::new(10));
        assert_eq!(w.stats().skipped_reads, 3);
    }

    #[test]
    fn unmapped_page_faults() {
        let (k, a) = kernel_with_page();
        let mut w = PageWalker::new();
        assert!(w
            .walk(&k, a, VirtAddr::new(0xdead_0000).page_number(), |_| {
                Cycles::new(1)
            })
            .is_none());
    }

    #[test]
    fn flush_asid_forces_full_walk() {
        let (k, a) = kernel_with_page();
        let mut w = PageWalker::new();
        w.walk(&k, a, VirtAddr::new(0x10000).page_number(), |_| {
            Cycles::new(1)
        })
        .unwrap();
        w.flush_asid(a);
        let mut reads = 0;
        w.walk(&k, a, VirtAddr::new(0x10000).page_number(), |_| {
            reads += 1;
            Cycles::new(1)
        })
        .unwrap();
        assert_eq!(reads, 4);
    }
}
