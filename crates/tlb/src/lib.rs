//! TLB structures and hardware page walking.
//!
//! Three translation structures from the paper live here:
//!
//! * [`Tlb`] — a generic set-associative TLB keyed by `(ASID, virtual
//!   page)`, used for the baseline's L1/L2 TLBs ([`TwoLevelTlb`]), the
//!   hybrid scheme's small *synonym TLB* (64-entry, accessed only for
//!   synonym-filter candidates), and the large post-LLC *delayed TLB*,
//! * [`PageWalker`] — the hardware radix walker, with paging-structure
//!   caches ([`WalkCache`]) that skip upper levels; the walker charges
//!   every page-table entry read through a caller-provided memory
//!   callback, so walks interact with the cache hierarchy faithfully,
//! * configuration presets matching the paper's Table IV (64-entry 4-way
//!   1-cycle L1, 1024-entry 8-way 7-cycle L2).
//!
//! TLB entries store the full [`hvc_os::Pte`], whose `shared` bit doubles
//! as the synonym-filter *false-positive corrector*: a candidate that hits
//! a TLB entry with `shared == false` is recognized as a false positive
//! and served virtually.
//!
//! # Examples
//!
//! ```
//! use hvc_tlb::{Tlb, TlbConfig};
//! use hvc_os::Pte;
//! use hvc_types::{Asid, Permissions, PhysFrame, VirtPage};
//!
//! let mut tlb = Tlb::new(TlbConfig::l1_64());
//! let pte = Pte { frame: PhysFrame::new(7), perm: Permissions::RW, shared: false };
//! tlb.insert(Asid::new(1), VirtPage::new(0x10), pte);
//! assert_eq!(tlb.lookup(Asid::new(1), VirtPage::new(0x10)), Some(pte));
//! assert_eq!(tlb.lookup(Asid::new(2), VirtPage::new(0x10)), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tlb;
mod two_level;
mod walkcache;
mod walker;

pub use tlb::{Tlb, TlbConfig, TlbStats};
pub use two_level::{TlbHit, TwoLevelTlb};
pub use walkcache::WalkCache;
pub use walker::{PageWalker, WalkerStats};
