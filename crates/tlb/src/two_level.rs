//! The baseline two-level TLB (Haswell-like, Table IV).

use crate::{Tlb, TlbConfig};
use hvc_os::Pte;
use hvc_types::{Asid, Cycles, VirtPage};

/// Which level served a two-level TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbHit {
    /// Served by the L1 TLB.
    L1,
    /// Served by the L2 TLB (entry promoted into L1).
    L2,
    /// Missed both levels (page walk required).
    Miss,
}

/// A two-level TLB: small fast L1 backed by a larger L2, both
/// ASID-tagged. Matches the paper's baseline (64-entry L1, 1024-entry
/// 8-way L2).
#[derive(Clone, Debug)]
pub struct TwoLevelTlb {
    l1: Tlb,
    l2: Tlb,
}

impl TwoLevelTlb {
    /// Creates the paper's baseline configuration.
    pub fn isca2016_baseline() -> Self {
        TwoLevelTlb::new(TlbConfig::l1_64(), TlbConfig::l2_1024())
    }

    /// Creates a two-level TLB from explicit configurations.
    pub fn new(l1: TlbConfig, l2: TlbConfig) -> Self {
        TwoLevelTlb {
            l1: Tlb::new(l1),
            l2: Tlb::new(l2),
        }
    }

    /// Looks up a translation; L2 hits are promoted into L1. Returns the
    /// serving level and the lookup latency.
    pub fn lookup(&mut self, asid: Asid, vpage: VirtPage) -> (Option<Pte>, TlbHit, Cycles) {
        let l1_lat = self.l1.config().latency;
        if let Some(pte) = self.l1.lookup(asid, vpage) {
            return (Some(pte), TlbHit::L1, l1_lat);
        }
        let lat = l1_lat + self.l2.config().latency;
        if let Some(pte) = self.l2.lookup(asid, vpage) {
            self.l1.insert(asid, vpage, pte);
            return (Some(pte), TlbHit::L2, lat);
        }
        (None, TlbHit::Miss, lat)
    }

    /// Inserts a walked translation into both levels.
    pub fn insert(&mut self, asid: Asid, vpage: VirtPage, pte: Pte) {
        self.l2.insert(asid, vpage, pte);
        self.l1.insert(asid, vpage, pte);
    }

    /// Shootdown of a single page.
    pub fn flush_page(&mut self, asid: Asid, vpage: VirtPage) {
        self.l1.flush_page(asid, vpage);
        self.l2.flush_page(asid, vpage);
    }

    /// Shootdown of a whole address space.
    pub fn flush_asid(&mut self, asid: Asid) {
        self.l1.flush_asid(asid);
        self.l2.flush_asid(asid);
    }

    /// The L1 level (for statistics).
    pub fn l1(&self) -> &Tlb {
        &self.l1
    }

    /// The L2 level (for statistics).
    pub fn l2(&self) -> &Tlb {
        &self.l2
    }

    /// Total lookups that missed both levels.
    pub fn full_misses(&self) -> u64 {
        self.l2.stats().misses
    }

    /// Iterates over all valid entries in both levels (see
    /// [`Tlb::entries`]); entries resident in both L1 and L2 appear
    /// twice.
    pub fn entries(&self) -> impl Iterator<Item = (Asid, VirtPage, Pte)> + '_ {
        self.l1.entries().chain(self.l2.entries())
    }

    /// Resets statistics on both levels.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
    }
}

impl Default for TwoLevelTlb {
    fn default() -> Self {
        TwoLevelTlb::isca2016_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_types::{Permissions, PhysFrame};

    fn pte(frame: u64) -> Pte {
        Pte {
            frame: PhysFrame::new(frame),
            perm: Permissions::RW,
            shared: false,
        }
    }

    #[test]
    fn miss_insert_hit_l1() {
        let mut t = TwoLevelTlb::isca2016_baseline();
        let a = Asid::new(1);
        let (p, hit, lat) = t.lookup(a, VirtPage::new(3));
        assert_eq!((p, hit), (None, TlbHit::Miss));
        assert_eq!(lat, Cycles::new(8));
        t.insert(a, VirtPage::new(3), pte(5));
        let (p, hit, lat) = t.lookup(a, VirtPage::new(3));
        assert_eq!((p, hit), (Some(pte(5)), TlbHit::L1));
        assert_eq!(lat, Cycles::new(1));
    }

    #[test]
    fn l2_hit_promotes() {
        let mut small_l1 = TwoLevelTlb::new(
            TlbConfig::new(2, 2, Cycles::new(1)),
            TlbConfig::new(64, 8, Cycles::new(7)),
        );
        let a = Asid::new(1);
        // Fill L1 set with conflicting pages; the victim stays in L2.
        for i in 0..3 {
            small_l1.insert(a, VirtPage::new(i), pte(i));
        }
        // Page 0 was evicted from the 2-entry L1 but remains in L2.
        let (p, hit, _) = small_l1.lookup(a, VirtPage::new(0));
        assert_eq!((p, hit), (Some(pte(0)), TlbHit::L2));
        let (_, hit, _) = small_l1.lookup(a, VirtPage::new(0));
        assert_eq!(hit, TlbHit::L1, "promotion into L1");
    }

    #[test]
    fn flush_hits_both_levels() {
        let mut t = TwoLevelTlb::isca2016_baseline();
        let a = Asid::new(1);
        t.insert(a, VirtPage::new(1), pte(1));
        t.flush_page(a, VirtPage::new(1));
        let (p, _, _) = t.lookup(a, VirtPage::new(1));
        assert_eq!(p, None);
        t.insert(a, VirtPage::new(2), pte(2));
        t.flush_asid(a);
        let (p, _, _) = t.lookup(a, VirtPage::new(2));
        assert_eq!(p, None);
        assert_eq!(t.full_misses(), 2);
    }
}
