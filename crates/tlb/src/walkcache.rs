//! Paging-structure (walk) caches.
//!
//! Real walkers (and the paper's Haswell-like baseline) cache upper-level
//! page-table entries so most walks touch only the leaf level. We model
//! one fully-associative cache per skippable level, keyed by `(ASID,
//! region)`.

use hvc_types::{Asid, VirtPage};

/// Entries per skip level (PML4-skip, PDPT-skip, PD-skip).
const WAYS: usize = 32;

#[derive(Clone, Copy, Debug)]
struct Entry {
    asid: Asid,
    region: u64,
    lru: u64,
}

/// A paging-structure cache: for a virtual page, reports how many
/// upper levels of the radix walk can be skipped (0–3).
#[derive(Clone, Debug, Default)]
pub struct WalkCache {
    /// `caches[k]` caches the node reached after `k + 1` levels; a hit
    /// means the walk skips those `k + 1` top accesses.
    caches: [Vec<Entry>; 3],
    tick: u64,
}

impl WalkCache {
    /// Creates an empty walk cache.
    pub fn new() -> Self {
        WalkCache::default()
    }

    /// Returns the number of upper-level accesses (0–3) the walk of
    /// `vpage` may skip, preferring the deepest cached node.
    pub fn skip_levels(&mut self, asid: Asid, vpage: VirtPage) -> usize {
        self.tick += 1;
        let tick = self.tick;
        for k in (0..3).rev() {
            let region = Self::region(vpage, k);
            if let Some(e) = self.caches[k]
                .iter_mut()
                .find(|e| e.asid == asid && e.region == region)
            {
                e.lru = tick;
                return k + 1;
            }
        }
        0
    }

    /// Records the nodes visited by a completed walk of `vpage`.
    pub fn fill(&mut self, asid: Asid, vpage: VirtPage) {
        self.tick += 1;
        let tick = self.tick;
        for k in 0..3 {
            let region = Self::region(vpage, k);
            let cache = &mut self.caches[k];
            if let Some(e) = cache
                .iter_mut()
                .find(|e| e.asid == asid && e.region == region)
            {
                e.lru = tick;
                continue;
            }
            if cache.len() == WAYS {
                let (slot, _) = cache
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.lru)
                    .expect("non-empty");
                cache.swap_remove(slot);
            }
            cache.push(Entry {
                asid,
                region,
                lru: tick,
            });
        }
    }

    /// Invalidates everything for `asid` (shootdowns that change upper
    /// levels are rare; we flush conservatively).
    pub fn flush_asid(&mut self, asid: Asid) {
        for c in &mut self.caches {
            c.retain(|e| e.asid != asid);
        }
    }

    /// Region key after skipping `k + 1` levels: drop 9 bits per
    /// remaining level.
    fn region(vpage: VirtPage, k: usize) -> u64 {
        vpage.as_u64() >> (9 * (3 - k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_cache_skips_nothing() {
        let mut wc = WalkCache::new();
        assert_eq!(wc.skip_levels(Asid::new(1), VirtPage::new(0)), 0);
    }

    #[test]
    fn fill_enables_deep_skip_for_neighbours() {
        let mut wc = WalkCache::new();
        let a = Asid::new(1);
        wc.fill(a, VirtPage::new(0x1000));
        // Same 2 MB region (same PD entry): skip all three upper levels.
        assert_eq!(wc.skip_levels(a, VirtPage::new(0x1001)), 3);
        // Same 1 GB region only: skip two.
        assert_eq!(wc.skip_levels(a, VirtPage::new(0x1000 + (1 << 9))), 2);
        // Same 512 GB region only: skip one.
        assert_eq!(wc.skip_levels(a, VirtPage::new(0x1000 + (1 << 18))), 1);
        // Different top-level region: no skip.
        assert_eq!(wc.skip_levels(a, VirtPage::new(0x1000 + (1 << 27))), 0);
    }

    #[test]
    fn asid_isolation_and_flush() {
        let mut wc = WalkCache::new();
        wc.fill(Asid::new(1), VirtPage::new(7));
        assert_eq!(wc.skip_levels(Asid::new(2), VirtPage::new(7)), 0);
        wc.flush_asid(Asid::new(1));
        assert_eq!(wc.skip_levels(Asid::new(1), VirtPage::new(7)), 0);
    }

    #[test]
    fn capacity_is_bounded_with_lru() {
        let mut wc = WalkCache::new();
        let a = Asid::new(1);
        for i in 0..(WAYS as u64 + 4) {
            wc.fill(a, VirtPage::new(i << 9)); // distinct 2 MB regions
        }
        // The oldest region was evicted from the deepest cache.
        assert!(wc.skip_levels(a, VirtPage::new(0)) < 3);
        // The newest is still cached.
        assert_eq!(wc.skip_levels(a, VirtPage::new((WAYS as u64 + 3) << 9)), 3);
    }
}
