//! Property tests for TLBs and the hardware page walker.

use hvc_os::{AllocPolicy, Kernel, MapIntent, Pte};
use hvc_tlb::{PageWalker, Tlb, TlbConfig, TwoLevelTlb};
use hvc_types::{Asid, Cycles, Permissions, PhysFrame, VirtAddr, VirtPage, PAGE_SIZE};
use proptest::prelude::*;

fn pte(frame: u64) -> Pte {
    Pte {
        frame: PhysFrame::new(frame),
        perm: Permissions::RW,
        shared: false,
    }
}

proptest! {
    /// A TLB behaves like a bounded map: after inserting (k, v), looking
    /// k up either returns exactly v or misses (evicted) — never a stale
    /// or foreign value.
    #[test]
    fn tlb_returns_exact_values_or_misses(
        inserts in prop::collection::vec((1u16..4, 0u64..512), 1..300),
    ) {
        let mut t = Tlb::new(TlbConfig::new(64, 4, Cycles::new(1)));
        let mut model = std::collections::HashMap::new();
        for (i, &(asid, vpn)) in inserts.iter().enumerate() {
            t.insert(Asid::new(asid), VirtPage::new(vpn), pte(i as u64));
            model.insert((asid, vpn), i as u64);
            prop_assert!(t.occupancy() <= 64);
        }
        for (&(asid, vpn), &frame) in &model {
            if let Some(got) = t.lookup(Asid::new(asid), VirtPage::new(vpn)) {
                prop_assert_eq!(got.frame.as_u64(), frame, "stale entry");
            }
        }
    }

    /// Two-level TLB: an entry inserted is found until both levels have
    /// evicted it; L2 hits promote without changing the translation.
    #[test]
    fn two_level_promotion_preserves_translation(
        pages in prop::collection::btree_set(0u64..2048, 2..100),
    ) {
        let mut t = TwoLevelTlb::isca2016_baseline();
        for (i, &p) in pages.iter().enumerate() {
            t.insert(Asid::new(1), VirtPage::new(p), pte(i as u64 + 7));
        }
        for (i, &p) in pages.iter().enumerate() {
            let (got, _, _) = t.lookup(Asid::new(1), VirtPage::new(p));
            if let Some(g) = got {
                prop_assert_eq!(g.frame.as_u64(), i as u64 + 7);
                // Second lookup must also agree (promotion intact).
                let (again, _, _) = t.lookup(Asid::new(1), VirtPage::new(p));
                prop_assert_eq!(again.unwrap().frame.as_u64(), i as u64 + 7);
            }
        }
    }

    /// The walker returns the same PTE as the kernel's own walk, for any
    /// touched page, with any interleaving of walk-cache state.
    #[test]
    fn walker_agrees_with_kernel(pages in prop::collection::btree_set(0u64..256, 1..40)) {
        let mut k = Kernel::new(1 << 30, AllocPolicy::DemandPaging);
        let a = k.create_process().unwrap();
        k.mmap(a, VirtAddr::new(0x100000), 256 * PAGE_SIZE, Permissions::RW, MapIntent::Private)
            .unwrap();
        for &p in &pages {
            k.translate_touch(a, VirtAddr::new(0x100000 + p * PAGE_SIZE)).unwrap();
        }
        let mut w = PageWalker::new();
        for &p in &pages {
            let vp = VirtAddr::new(0x100000 + p * PAGE_SIZE).page_number();
            let (got, lat) = w.walk(&k, a, vp, |_| Cycles::new(5)).unwrap();
            let expected = k.walk(a, vp).unwrap().0;
            prop_assert_eq!(got, expected);
            // A walk reads between 1 and 4 levels.
            prop_assert!(lat.get() >= 5 && lat.get() <= 20);
        }
    }

    /// ASID flushes never disturb other address spaces.
    #[test]
    fn asid_flush_is_isolated(
        a_pages in prop::collection::btree_set(0u64..256, 1..30),
        b_pages in prop::collection::btree_set(0u64..256, 1..30),
    ) {
        let mut t = Tlb::new(TlbConfig::new(1024, 8, Cycles::new(1)));
        for &p in &a_pages {
            t.insert(Asid::new(1), VirtPage::new(p), pte(p));
        }
        for &p in &b_pages {
            t.insert(Asid::new(2), VirtPage::new(p), pte(p + 1000));
        }
        t.flush_asid(Asid::new(1));
        for &p in &a_pages {
            prop_assert!(!t.contains(Asid::new(1), VirtPage::new(p)));
        }
        for &p in &b_pages {
            prop_assert!(t.contains(Asid::new(2), VirtPage::new(p)));
        }
    }
}

// --- Differential model: flat generation-tagged Tlb vs. naive eager model ---

/// One entry of the reference TLB, mirroring the real per-entry state.
#[derive(Clone, Debug)]
struct RefEntry {
    asid: u16,
    vpn: u64,
    pte: Pte,
    lru: u64,
}

/// The naive seed-era storage the flat generation-tagged slab replaced:
/// one `Vec` per set, linear probes, LRU victim by minimum tick, and
/// **eager** ASID shootdown (walk every set, remove matching entries).
/// The flat TLB instead bumps a per-ASID generation in O(1) and reclaims
/// lazily — this test proves the two are observationally identical, in
/// particular that generation-invalidated entries never hit and never
/// displace a live entry.
struct RefTlb {
    sets: Vec<Vec<RefEntry>>,
    ways: usize,
    set_mask: u64,
    tick: u64,
}

impl RefTlb {
    fn new(sets: usize, ways: usize) -> Self {
        RefTlb {
            sets: vec![Vec::new(); sets],
            ways,
            set_mask: sets as u64 - 1,
            tick: 0,
        }
    }

    fn set_of(&self, vpn: u64) -> usize {
        (vpn & self.set_mask) as usize
    }

    fn lookup(&mut self, asid: u16, vpn: u64) -> Option<Pte> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        let entry = self.sets[set]
            .iter_mut()
            .find(|e| e.asid == asid && e.vpn == vpn)?;
        entry.lru = tick;
        Some(entry.pte)
    }

    fn insert(&mut self, asid: u16, vpn: u64, pte: Pte) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        let ways = self.ways;
        let entries = &mut self.sets[set];
        if let Some(e) = entries.iter_mut().find(|e| e.asid == asid && e.vpn == vpn) {
            e.pte = pte;
            e.lru = tick;
            return;
        }
        if entries.len() == ways {
            let at = (0..entries.len())
                .min_by_key(|&i| entries[i].lru)
                .expect("full set");
            entries.remove(at);
        }
        entries.push(RefEntry {
            asid,
            vpn,
            pte,
            lru: tick,
        });
    }

    fn flush_page(&mut self, asid: u16, vpn: u64) {
        let set = self.set_of(vpn);
        self.sets[set].retain(|e| !(e.asid == asid && e.vpn == vpn));
    }

    fn flush_asid(&mut self, asid: u16) {
        for entries in &mut self.sets {
            entries.retain(|e| e.asid != asid);
        }
    }

    fn flush_all(&mut self) {
        self.sets.iter_mut().for_each(Vec::clear);
    }

    fn entries(&self) -> Vec<(u16, u64, u64)> {
        let mut all: Vec<_> = self
            .sets
            .iter()
            .flatten()
            .map(|e| (e.asid, e.vpn, e.pte.frame.as_u64()))
            .collect();
        all.sort_unstable();
        all
    }
}

/// The operation alphabet of the TLB differential test.
#[derive(Clone, Debug)]
enum TlbOp {
    Lookup(u16, u64),
    Insert(u16, u64, u64),
    FlushPage(u16, u64),
    FlushAsid(u16),
    FlushAll,
}

fn tlb_op() -> impl Strategy<Value = TlbOp> {
    prop_oneof![
        (1u16..4, 0u64..64).prop_map(|(a, p)| TlbOp::Lookup(a, p)),
        (1u16..4, 0u64..64, 0u64..1024).prop_map(|(a, p, f)| TlbOp::Insert(a, p, f)),
        (1u16..4, 0u64..64).prop_map(|(a, p)| TlbOp::FlushPage(a, p)),
        (1u16..4).prop_map(TlbOp::FlushAsid),
        Just(TlbOp::FlushAll),
    ]
}

proptest! {
    /// The flat generation-tagged `Tlb` is observationally equal to the
    /// naive eager-flush model under arbitrary interleavings of lookups,
    /// inserts and shootdowns: identical lookup results (stale entries
    /// never hit), identical LRU victim choice (stale slots are
    /// reclaimed before any live entry is displaced), identical hit/miss
    /// counters, occupancy, and live-entry sets.
    #[test]
    fn flat_tlb_matches_naive_model(
        ops in prop::collection::vec(tlb_op(), 1..300),
    ) {
        // 8 sets × 2 ways over 64 pages × 3 ASIDs: dense conflicts and
        // frequent cross-generation slot reuse.
        let mut flat = Tlb::new(TlbConfig::new(16, 2, Cycles::new(1)));
        let mut model = RefTlb::new(8, 2);
        let mut hits = 0u64;
        let mut misses = 0u64;
        for op in ops {
            match op {
                TlbOp::Lookup(a, p) => {
                    let want = model.lookup(a, p);
                    match want {
                        Some(_) => hits += 1,
                        None => misses += 1,
                    }
                    prop_assert_eq!(
                        flat.lookup(Asid::new(a), VirtPage::new(p)),
                        want,
                        "lookup {}/{}", a, p
                    );
                }
                TlbOp::Insert(a, p, f) => {
                    flat.insert(Asid::new(a), VirtPage::new(p), pte(f));
                    model.insert(a, p, pte(f));
                }
                TlbOp::FlushPage(a, p) => {
                    flat.flush_page(Asid::new(a), VirtPage::new(p));
                    model.flush_page(a, p);
                }
                TlbOp::FlushAsid(a) => {
                    flat.flush_asid(Asid::new(a));
                    model.flush_asid(a);
                }
                TlbOp::FlushAll => {
                    flat.flush_all();
                    model.flush_all();
                }
            }
            prop_assert_eq!(flat.occupancy(), model.entries().len());
        }
        prop_assert_eq!(flat.stats().hits, hits);
        prop_assert_eq!(flat.stats().misses, misses);
        let mut flat_entries: Vec<_> = flat
            .entries()
            .map(|(a, p, pte)| (a.as_u16(), p.as_u64(), pte.frame.as_u64()))
            .collect();
        flat_entries.sort_unstable();
        prop_assert_eq!(flat_entries, model.entries(), "live entry sets differ");
    }
}
