//! Property tests for TLBs and the hardware page walker.

use hvc_os::{AllocPolicy, Kernel, MapIntent, Pte};
use hvc_tlb::{PageWalker, Tlb, TlbConfig, TwoLevelTlb};
use hvc_types::{Asid, Cycles, Permissions, PhysFrame, VirtAddr, VirtPage, PAGE_SIZE};
use proptest::prelude::*;

fn pte(frame: u64) -> Pte {
    Pte {
        frame: PhysFrame::new(frame),
        perm: Permissions::RW,
        shared: false,
    }
}

proptest! {
    /// A TLB behaves like a bounded map: after inserting (k, v), looking
    /// k up either returns exactly v or misses (evicted) — never a stale
    /// or foreign value.
    #[test]
    fn tlb_returns_exact_values_or_misses(
        inserts in prop::collection::vec((1u16..4, 0u64..512), 1..300),
    ) {
        let mut t = Tlb::new(TlbConfig::new(64, 4, Cycles::new(1)));
        let mut model = std::collections::HashMap::new();
        for (i, &(asid, vpn)) in inserts.iter().enumerate() {
            t.insert(Asid::new(asid), VirtPage::new(vpn), pte(i as u64));
            model.insert((asid, vpn), i as u64);
            prop_assert!(t.occupancy() <= 64);
        }
        for (&(asid, vpn), &frame) in &model {
            if let Some(got) = t.lookup(Asid::new(asid), VirtPage::new(vpn)) {
                prop_assert_eq!(got.frame.as_u64(), frame, "stale entry");
            }
        }
    }

    /// Two-level TLB: an entry inserted is found until both levels have
    /// evicted it; L2 hits promote without changing the translation.
    #[test]
    fn two_level_promotion_preserves_translation(
        pages in prop::collection::btree_set(0u64..2048, 2..100),
    ) {
        let mut t = TwoLevelTlb::isca2016_baseline();
        for (i, &p) in pages.iter().enumerate() {
            t.insert(Asid::new(1), VirtPage::new(p), pte(i as u64 + 7));
        }
        for (i, &p) in pages.iter().enumerate() {
            let (got, _, _) = t.lookup(Asid::new(1), VirtPage::new(p));
            if let Some(g) = got {
                prop_assert_eq!(g.frame.as_u64(), i as u64 + 7);
                // Second lookup must also agree (promotion intact).
                let (again, _, _) = t.lookup(Asid::new(1), VirtPage::new(p));
                prop_assert_eq!(again.unwrap().frame.as_u64(), i as u64 + 7);
            }
        }
    }

    /// The walker returns the same PTE as the kernel's own walk, for any
    /// touched page, with any interleaving of walk-cache state.
    #[test]
    fn walker_agrees_with_kernel(pages in prop::collection::btree_set(0u64..256, 1..40)) {
        let mut k = Kernel::new(1 << 30, AllocPolicy::DemandPaging);
        let a = k.create_process().unwrap();
        k.mmap(a, VirtAddr::new(0x100000), 256 * PAGE_SIZE, Permissions::RW, MapIntent::Private)
            .unwrap();
        for &p in &pages {
            k.translate_touch(a, VirtAddr::new(0x100000 + p * PAGE_SIZE)).unwrap();
        }
        let mut w = PageWalker::new();
        for &p in &pages {
            let vp = VirtAddr::new(0x100000 + p * PAGE_SIZE).page_number();
            let (got, lat) = w.walk(&k, a, vp, |_| Cycles::new(5)).unwrap();
            let expected = k.walk(a, vp).unwrap().0;
            prop_assert_eq!(got, expected);
            // A walk reads between 1 and 4 levels.
            prop_assert!(lat.get() >= 5 && lat.get() <= 20);
        }
    }

    /// ASID flushes never disturb other address spaces.
    #[test]
    fn asid_flush_is_isolated(
        a_pages in prop::collection::btree_set(0u64..256, 1..30),
        b_pages in prop::collection::btree_set(0u64..256, 1..30),
    ) {
        let mut t = Tlb::new(TlbConfig::new(1024, 8, Cycles::new(1)));
        for &p in &a_pages {
            t.insert(Asid::new(1), VirtPage::new(p), pte(p));
        }
        for &p in &b_pages {
            t.insert(Asid::new(2), VirtPage::new(p), pte(p + 1000));
        }
        t.flush_asid(Asid::new(1));
        for &p in &a_pages {
            prop_assert!(!t.contains(Asid::new(1), VirtPage::new(p)));
        }
        for &p in &b_pages {
            prop_assert!(t.contains(Asid::new(2), VirtPage::new(p)));
        }
    }
}
