//! Property tests for the OS substrate.

use hvc_os::{AllocPolicy, BuddyAllocator, Kernel, MapIntent, SegmentTable};
use hvc_types::{Asid, HvcError, Permissions, PhysAddr, VirtAddr, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    /// Interleaved alloc/free sequences keep the buddy allocator
    /// consistent (no double handouts, exact free-frame accounting).
    #[test]
    fn buddy_interleaved_alloc_free(script in prop::collection::vec((1u64..300, any::<bool>()), 1..60)) {
        let mut b = BuddyAllocator::new(1 << 30);
        let total = b.free_frames();
        let mut live: Vec<(hvc_types::PhysFrame, u64)> = Vec::new();
        for (n, free_one) in script {
            if free_one && !live.is_empty() {
                let (base, m) = live.swap_remove(0);
                b.free_exact(base, m);
            } else if let Ok(base) = b.alloc_exact(n) {
                for &(other, m) in &live {
                    let (a0, a1) = (base.as_u64(), base.as_u64() + n);
                    let (b0, b1) = (other.as_u64(), other.as_u64() + m);
                    prop_assert!(a1 <= b0 || b1 <= a0, "overlapping handout");
                }
                live.push((base, n));
            }
            let used: u64 = live.iter().map(|&(_, m)| m).sum();
            prop_assert_eq!(b.free_frames(), total - used);
        }
    }

    /// Page tables: mapping then walking always agrees, for arbitrary
    /// page numbers spread across the 48-bit space.
    #[test]
    fn page_table_walk_agrees_with_map(vpns in prop::collection::btree_set(0u64..(1u64 << 36), 1..80)) {
        let mut b = BuddyAllocator::new(1 << 30);
        let mut pt = hvc_os::PageTable::new(&mut b).unwrap();
        for (i, &vpn) in vpns.iter().enumerate() {
            let pte = hvc_os::Pte {
                frame: hvc_types::PhysFrame::new(i as u64 + 100),
                perm: Permissions::RW,
                shared: i % 3 == 0,
            };
            pt.map(&mut b, hvc_types::VirtPage::new(vpn), pte).unwrap();
        }
        for (i, &vpn) in vpns.iter().enumerate() {
            let (pte, path) = pt.walk(hvc_types::VirtPage::new(vpn)).unwrap();
            prop_assert_eq!(pte.frame.as_u64(), i as u64 + 100);
            prop_assert_eq!(pte.shared, i % 3 == 0);
            prop_assert_eq!(path.len(), hvc_os::PT_LEVELS);
        }
        prop_assert_eq!(pt.mapped_pages(), vpns.len());
    }

    /// Segment table find() equals a brute-force scan for arbitrary
    /// disjoint segments and probes.
    #[test]
    fn segment_find_matches_scan(
        starts in prop::collection::btree_set(0u64..500, 1..40),
        probes in prop::collection::vec(0u64..(600 * 0x2000), 1..60),
    ) {
        let mut t = SegmentTable::new(2048);
        let mut segs = Vec::new();
        for &s in &starts {
            let base = s * 0x2000;
            let id = t.insert(Asid::new(1), VirtAddr::new(base), 0x1000, PhysAddr::new(base)).unwrap();
            segs.push((id, base));
        }
        for &p in &probes {
            let va = VirtAddr::new(p);
            let scan = segs
                .iter()
                .find(|&&(_, base)| p >= base && p < base + 0x1000)
                .map(|&(id, _)| id);
            prop_assert_eq!(t.find(Asid::new(1), va).map(|s| s.id), scan);
        }
    }

    /// mmap / munmap round-trips leave no leaked frames and no stale
    /// mappings, under both policies.
    #[test]
    fn mmap_munmap_conserves_memory(
        lens in prop::collection::vec(1u64..64, 1..10),
        policy_pick in 0u8..4,
        touches in prop::collection::vec(0u64..64, 0..20),
    ) {
        let policy = match policy_pick {
            0 => AllocPolicy::DemandPaging,
            1 => AllocPolicy::EagerSegments { split: 1 },
            2 => AllocPolicy::EagerSegments { split: 3 },
            _ => AllocPolicy::ReservedSegments { sub_pages: 4 },
        };
        let mut k = Kernel::new(1 << 30, policy);
        let a = k.create_process().unwrap();
        let before = k.free_frames();
        let mut vas = Vec::new();
        let mut next = 0x1000_0000u64;
        for &pages in &lens {
            let va = VirtAddr::new(next);
            k.mmap(a, va, pages * PAGE_SIZE, Permissions::RW, MapIntent::Private).unwrap();
            k.translate_touch(a, va).unwrap();
            for &t in &touches {
                let _ = k.translate_touch(a, VirtAddr::new(va.as_u64() + (t % pages) * PAGE_SIZE));
            }
            vas.push(va);
            next += pages * PAGE_SIZE + (4 << 20); // scattered
        }
        for va in vas {
            k.munmap(a, va).unwrap();
            let unmapped = matches!(k.translate_touch(a, va), Err(HvcError::Unmapped { .. }));
            prop_assert!(unmapped);
        }
        prop_assert_eq!(k.free_frames(), before);
        prop_assert_eq!(k.segments().count_asid(a), 0);
    }

    /// Under the reservation policy, segment translation always agrees
    /// with the page table for every touched page.
    #[test]
    fn reserved_commits_agree_with_page_table(
        touches in prop::collection::vec(0u64..64, 1..40),
        sub_pages in prop::sample::select(vec![2u64, 4, 8, 16]),
    ) {
        let mut k = Kernel::new(1 << 30, AllocPolicy::ReservedSegments { sub_pages });
        let a = k.create_process().unwrap();
        k.mmap(a, VirtAddr::new(0x100000), 64 * PAGE_SIZE, Permissions::RW, MapIntent::Private)
            .unwrap();
        for &page in &touches {
            let va = VirtAddr::new(0x100000 + page * PAGE_SIZE);
            let pte = k.translate_touch(a, va).unwrap();
            let seg = k.segments().find(a, va).expect("committed segment covers touch");
            prop_assert_eq!(seg.translate(va).frame_number(), pte.frame);
        }
    }
}
