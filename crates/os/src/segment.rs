//! The OS-side, system-wide segment table.
//!
//! For many-segment delayed translation the OS eagerly allocates
//! variable-length contiguous physical regions and records each as a
//! [`Segment`]. The hardware structures in `hvc-segment` (segment table,
//! index tree, index cache) mirror this table; the paper sizes it at 2048
//! entries system-wide.

use hvc_types::{Asid, HvcError, PhysAddr, Result, VirtAddr};
use std::collections::BTreeMap;

/// Default capacity of the system-wide segment table (the paper's 2K).
pub const DEFAULT_SEGMENT_CAPACITY: usize = 2048;

/// Identifier of a segment: its index in the segment table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

/// A variable-length mapping from a contiguous `ASID ++ VA` range to a
/// contiguous physical range: `(base, limit, offset)` in the paper's
/// terms (we store `phys_base` and derive the offset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Identifier (index in the segment table).
    pub id: SegmentId,
    /// Owning address space.
    pub asid: Asid,
    /// First virtual address covered.
    pub base: VirtAddr,
    /// Length in bytes.
    pub len: u64,
    /// First physical address of the backing region.
    pub phys_base: PhysAddr,
}

impl Segment {
    /// Returns `true` if `(asid, va)` falls inside this segment.
    pub fn contains(&self, asid: Asid, va: VirtAddr) -> bool {
        self.asid == asid && va >= self.base && (va - self.base) < self.len
    }

    /// Translates `va` (which must be inside the segment) to a physical
    /// address by applying the segment offset.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `va` is outside the segment.
    pub fn translate(&self, va: VirtAddr) -> PhysAddr {
        debug_assert!(va >= self.base && (va - self.base) < self.len);
        PhysAddr::new(self.phys_base.as_u64() + (va - self.base))
    }

    /// Exclusive end of the virtual range.
    pub fn end(&self) -> VirtAddr {
        self.base + self.len
    }
}

/// The system-wide in-memory segment table, sorted by `(ASID, base VA)` so
/// the hardware index tree can be built over it directly.
#[derive(Clone, Debug)]
pub struct SegmentTable {
    by_key: BTreeMap<(u16, u64), Segment>,
    by_id: Vec<Option<(u16, u64)>>,
    free_ids: Vec<u32>,
    /// Bumped on every mutation — hardware mirrors use it to detect
    /// staleness cheaply.
    version: u64,
}

impl SegmentTable {
    /// Creates an empty table with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        SegmentTable {
            by_key: BTreeMap::new(),
            by_id: vec![None; capacity],
            free_ids: (0..capacity as u32).rev().collect(),
            version: 0,
        }
    }

    /// Monotonic mutation counter (insert / remove / grow / extend).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.by_id.len()
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Returns `true` if no segments are registered.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Registers a new segment and returns its id.
    ///
    /// # Errors
    ///
    /// [`HvcError::SegmentTableFull`] if the table is at capacity;
    /// [`HvcError::RegionOverlap`] if the virtual range overlaps an
    /// existing segment of the same address space.
    pub fn insert(
        &mut self,
        asid: Asid,
        base: VirtAddr,
        len: u64,
        phys_base: PhysAddr,
    ) -> Result<SegmentId> {
        if self.overlaps(asid, base, len) {
            return Err(HvcError::RegionOverlap {
                asid,
                vaddr: base,
                len,
            });
        }
        let raw = self.free_ids.pop().ok_or(HvcError::SegmentTableFull)?;
        let id = SegmentId(raw);
        let seg = Segment {
            id,
            asid,
            base,
            len,
            phys_base,
        };
        let key = (asid.as_u16(), base.as_u64());
        self.by_key.insert(key, seg);
        self.by_id[raw as usize] = Some(key);
        self.version += 1;
        Ok(id)
    }

    /// Removes a segment by id, returning it.
    pub fn remove(&mut self, id: SegmentId) -> Option<Segment> {
        let key = self.by_id.get_mut(id.0 as usize)?.take()?;
        self.free_ids.push(id.0);
        self.version += 1;
        self.by_key.remove(&key)
    }

    /// Looks up a segment by id.
    pub fn get(&self, id: SegmentId) -> Option<&Segment> {
        let key = self.by_id.get(id.0 as usize)?.as_ref()?;
        self.by_key.get(key)
    }

    /// Finds the segment covering `(asid, va)`, if any — the predecessor
    /// query the hardware index tree accelerates.
    pub fn find(&self, asid: Asid, va: VirtAddr) -> Option<&Segment> {
        let key = (asid.as_u16(), va.as_u64());
        let (_, seg) = self.by_key.range(..=key).next_back()?;
        seg.contains(asid, va).then_some(seg)
    }

    /// Grows segment `id` in place to `new_len` bytes (physical backing
    /// must have been extended by the caller).
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] for an unknown id; [`HvcError::RegionOverlap`]
    /// if growth would collide with the next segment of the same space.
    pub fn grow(&mut self, id: SegmentId, new_len: u64) -> Result<()> {
        let key = self
            .by_id
            .get(id.0 as usize)
            .and_then(|k| *k)
            .ok_or(HvcError::BadId("unknown segment id"))?;
        let seg = self.by_key[&key];
        if new_len > seg.len {
            // Check the next segment in the same space does not begin
            // before the new end.
            let next = self
                .by_key
                .range((key.0, key.1 + 1)..)
                .next()
                .filter(|((a, _), _)| *a == key.0);
            if let Some((_, n)) = next {
                if n.base.as_u64() < seg.base.as_u64() + new_len {
                    return Err(HvcError::RegionOverlap {
                        asid: seg.asid,
                        vaddr: seg.base,
                        len: new_len,
                    });
                }
            }
        }
        self.by_key.get_mut(&key).expect("checked").len = new_len;
        self.version += 1;
        Ok(())
    }

    /// Extends segment `id` downwards: its base moves to `new_base` and
    /// its physical base to `new_phys_base` (the added range must be
    /// physically contiguous with the old base, which the caller
    /// guarantees for reservation commits).
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] for an unknown id; [`HvcError::RegionOverlap`]
    /// if the previous segment of the space reaches past `new_base`.
    pub fn extend_down(
        &mut self,
        id: SegmentId,
        new_base: VirtAddr,
        new_phys_base: PhysAddr,
    ) -> Result<()> {
        let key = self
            .by_id
            .get(id.0 as usize)
            .and_then(|k| *k)
            .ok_or(HvcError::BadId("unknown segment id"))?;
        let seg = self.by_key[&key];
        assert!(new_base < seg.base, "extend_down must move the base down");
        let grow = seg.base - new_base;
        // Check the predecessor in the same space.
        if let Some((_, prev)) = self.by_key.range(..key).next_back() {
            if prev.asid == seg.asid && prev.end() > new_base {
                return Err(HvcError::RegionOverlap {
                    asid: seg.asid,
                    vaddr: new_base,
                    len: seg.len + grow,
                });
            }
        }
        self.by_key.remove(&key);
        let new_key = (seg.asid.as_u16(), new_base.as_u64());
        self.by_key.insert(
            new_key,
            Segment {
                id,
                asid: seg.asid,
                base: new_base,
                len: seg.len + grow,
                phys_base: new_phys_base,
            },
        );
        self.by_id[id.0 as usize] = Some(new_key);
        self.version += 1;
        Ok(())
    }

    /// Iterates segments in `(ASID, base)` order — the order the index
    /// tree is built in.
    pub fn iter(&self) -> impl Iterator<Item = &Segment> {
        self.by_key.values()
    }

    /// Iterates the segments of one address space in base order.
    pub fn iter_asid(&self, asid: Asid) -> impl Iterator<Item = &Segment> {
        let a = asid.as_u16();
        self.by_key.range((a, 0)..=(a, u64::MAX)).map(|(_, s)| s)
    }

    /// Number of segments owned by `asid`.
    pub fn count_asid(&self, asid: Asid) -> usize {
        self.iter_asid(asid).count()
    }

    fn overlaps(&self, asid: Asid, base: VirtAddr, len: u64) -> bool {
        let a = asid.as_u16();
        // Predecessor may extend over `base`.
        if let Some((_, prev)) = self.by_key.range(..=(a, base.as_u64())).next_back() {
            if prev.asid == asid && prev.end() > base && prev.base <= base {
                return true;
            }
        }
        // Successor may begin before `base + len`.
        if let Some((_, next)) = self.by_key.range((a, base.as_u64() + 1)..).next() {
            if next.asid == asid && next.base.as_u64() < base.as_u64() + len {
                return true;
            }
        }
        false
    }
}

impl Default for SegmentTable {
    fn default() -> Self {
        SegmentTable::new(DEFAULT_SEGMENT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u16) -> Asid {
        Asid::new(n)
    }

    fn va(n: u64) -> VirtAddr {
        VirtAddr::new(n)
    }

    fn pa(n: u64) -> PhysAddr {
        PhysAddr::new(n)
    }

    #[test]
    fn insert_find_translate() {
        let mut t = SegmentTable::new(8);
        let id = t.insert(a(1), va(0x10000), 0x4000, pa(0x800000)).unwrap();
        let s = t.find(a(1), va(0x12345)).unwrap();
        assert_eq!(s.id, id);
        assert_eq!(s.translate(va(0x12345)), pa(0x802345));
        assert!(t.find(a(1), va(0x14000)).is_none(), "end is exclusive");
        assert!(t.find(a(2), va(0x12345)).is_none(), "wrong ASID");
        assert!(t.find(a(1), va(0xffff)).is_none(), "below base");
    }

    #[test]
    fn capacity_enforced() {
        let mut t = SegmentTable::new(2);
        t.insert(a(1), va(0x0000), 0x1000, pa(0)).unwrap();
        t.insert(a(1), va(0x2000), 0x1000, pa(0x1000)).unwrap();
        assert_eq!(
            t.insert(a(1), va(0x4000), 0x1000, pa(0x2000)),
            Err(HvcError::SegmentTableFull)
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn overlap_rejected_same_space_only() {
        let mut t = SegmentTable::new(8);
        t.insert(a(1), va(0x1000), 0x2000, pa(0)).unwrap();
        assert!(matches!(
            t.insert(a(1), va(0x2000), 0x1000, pa(0x9000)),
            Err(HvcError::RegionOverlap { .. })
        ));
        assert!(matches!(
            t.insert(a(1), va(0x0000), 0x2000, pa(0x9000)),
            Err(HvcError::RegionOverlap { .. })
        ));
        // Different address space: same VA range is fine.
        assert!(t.insert(a(2), va(0x1000), 0x2000, pa(0x9000)).is_ok());
    }

    #[test]
    fn remove_recycles_ids() {
        let mut t = SegmentTable::new(1);
        let id = t.insert(a(1), va(0), 0x1000, pa(0)).unwrap();
        assert!(t.get(id).is_some());
        let seg = t.remove(id).unwrap();
        assert_eq!(seg.len, 0x1000);
        assert!(t.get(id).is_none());
        assert!(t.remove(id).is_none());
        // Capacity is available again.
        t.insert(a(1), va(0x2000), 0x1000, pa(0)).unwrap();
    }

    #[test]
    fn grow_in_place() {
        let mut t = SegmentTable::new(8);
        let id = t.insert(a(1), va(0x1000), 0x1000, pa(0)).unwrap();
        t.insert(a(1), va(0x8000), 0x1000, pa(0x10000)).unwrap();
        t.grow(id, 0x3000).unwrap();
        assert!(t.find(a(1), va(0x3fff)).is_some());
        // Growing into the next segment fails.
        assert!(matches!(
            t.grow(id, 0x8000),
            Err(HvcError::RegionOverlap { .. })
        ));
        assert!(matches!(t.grow(SegmentId(99), 1), Err(HvcError::BadId(_))));
    }

    #[test]
    fn iteration_orders_by_asid_then_base() {
        let mut t = SegmentTable::new(8);
        t.insert(a(2), va(0x1000), 0x1000, pa(0)).unwrap();
        t.insert(a(1), va(0x5000), 0x1000, pa(0)).unwrap();
        t.insert(a(1), va(0x1000), 0x1000, pa(0)).unwrap();
        let order: Vec<(u16, u64)> = t
            .iter()
            .map(|s| (s.asid.as_u16(), s.base.as_u64()))
            .collect();
        assert_eq!(order, vec![(1, 0x1000), (1, 0x5000), (2, 0x1000)]);
        assert_eq!(t.count_asid(a(1)), 2);
        assert_eq!(t.iter_asid(a(2)).count(), 1);
    }
}
