//! The kernel facade: processes, memory mapping, sharing, faults.

use crate::addrspace::{AddressSpace, Vma, VmaBacking};
use crate::frame::BuddyAllocator;
use crate::pagetable::{PageTable, Pte, WalkPath};
use crate::segment::{SegmentId, SegmentTable, DEFAULT_SEGMENT_CAPACITY};
use crate::shm::{ShmId, ShmObject};
use hvc_types::{
    AccessKind, Asid, FxHashMap, HvcError, MergeStats, Permissions, Result, VirtAddr, VirtPage,
    PAGE_SHIFT, PAGE_SIZE,
};

/// Physical memory allocation policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Conventional demand paging: frames allocated at first touch.
    DemandPaging,
    /// Eager allocation of contiguous segments at `mmap` time (the
    /// RMM-style policy required for segment translation). `split`
    /// artificially breaks each allocation into that many separately
    /// placed segments — the external-fragmentation knob of the paper's
    /// Figure 7 study (`split = 1` means best-effort contiguity).
    EagerSegments {
        /// Number of pieces each allocation is broken into (≥ 1).
        split: u32,
    },
    /// Reservation-based eager allocation (Section IV-B's refinement):
    /// `mmap` *reserves* a contiguous physical region but commits it in
    /// `sub_pages`-page sub-segments only on first touch; adjacent
    /// committed sub-segments merge into one segment. Recovers the
    /// memory stranded by pure eager allocation at the cost of more
    /// segments and touch-time commit work.
    ReservedSegments {
        /// Pages per sub-segment commit unit.
        sub_pages: u64,
    },
}

/// What an `mmap` call is backed by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapIntent {
    /// Anonymous private memory (non-synonym).
    Private,
    /// A r/w mapping of a shared-memory object — creates synonym pages.
    Shared(ShmId),
    /// A read-only mapping of a shared object: content sharing, served
    /// virtually with r/o tag permissions rather than as a synonym.
    SharedRo(ShmId),
    /// A DMA buffer: pinned and physically addressed (synonym).
    Dma,
}

/// A flush the hardware must perform on cached (virtually-tagged) lines —
/// produced by unmap / remap / sharing transitions and drained by the
/// system simulator, which also charges the TLB shootdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushRequest {
    /// Flush one virtual page of one address space.
    Page(Asid, u64),
    /// Flush everything belonging to an address space (process exit).
    Space(Asid),
    /// Downgrade a page's cached permission bits to read-only.
    DowngradeRo(Asid, u64),
    /// Flush physically-named lines of one freed frame (base address).
    /// Synonym pages are cached by physical address, so releasing their
    /// frame for reuse must invalidate those lines too — the per-space
    /// requests above only reach virtually-tagged state.
    Frame(u64),
}

/// Kernel event counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Demand-paging minor faults served.
    pub minor_faults: u64,
    /// TLB shootdowns issued (mapping/status changes, filter updates).
    pub shootdowns: u64,
    /// Copy-on-write breaks of content-shared pages.
    pub cow_breaks: u64,
    /// Pages whose cachelines were requested flushed.
    pub flushed_pages: u64,
    /// Synonym-filter page insertions.
    pub filter_insertions: u64,
    /// Synonym-filter rebuilds (clear + re-insert).
    pub filter_rebuilds: u64,
}

impl KernelStats {
    /// Counter deltas accumulated since `mark` was captured — the
    /// windowing primitive the system simulator uses so per-window OS
    /// stats merge back to the whole-run totals.
    #[must_use]
    pub fn since(&self, mark: &KernelStats) -> KernelStats {
        KernelStats {
            minor_faults: self.minor_faults - mark.minor_faults,
            shootdowns: self.shootdowns - mark.shootdowns,
            cow_breaks: self.cow_breaks - mark.cow_breaks,
            flushed_pages: self.flushed_pages - mark.flushed_pages,
            filter_insertions: self.filter_insertions - mark.filter_insertions,
            filter_rebuilds: self.filter_rebuilds - mark.filter_rebuilds,
        }
    }
}

impl MergeStats for KernelStats {
    fn merge_from(&mut self, other: &Self) {
        self.minor_faults += other.minor_faults;
        self.shootdowns += other.shootdowns;
        self.cow_breaks += other.cow_breaks;
        self.flushed_pages += other.flushed_pages;
        self.filter_insertions += other.filter_insertions;
        self.filter_rebuilds += other.filter_rebuilds;
    }
}

/// The simulated operating system.
///
/// Owns physical memory, all address spaces (with their page tables and
/// synonym filters), shared-memory objects and the system-wide segment
/// table. The hardware side (TLBs, segment hardware, caches) lives in the
/// sibling crates and pulls state from here.
#[derive(Debug)]
pub struct Kernel {
    frames: BuddyAllocator,
    /// Separate pool for page-table nodes and kernel metadata, so that
    /// metadata allocations never fragment the user pool (and eager
    /// segments can grow in place).
    meta_frames: BuddyAllocator,
    spaces: FxHashMap<u16, AddressSpace>,
    next_asid: u16,
    shm: Vec<ShmObject>,
    segments: SegmentTable,
    policy: AllocPolicy,
    stats: KernelStats,
    flush_queue: Vec<FlushRequest>,
    /// Last eagerly-allocated segment per space, for in-place extension.
    last_segment: FxHashMap<u16, SegmentId>,
    /// Outstanding physical reservations (ReservedSegments policy).
    reservations: Vec<Reservation>,
    /// Synonym-filter staleness per space: shared pages unmapped since
    /// the last rebuild. Crossing [`Kernel::FILTER_STALE_LIMIT`] triggers
    /// an automatic filter reconstruction (Section III-B).
    stale_filter_pages: FxHashMap<u16, u64>,
}

/// A reserved-but-partially-committed physical region.
#[derive(Clone, Debug)]
struct Reservation {
    asid: u16,
    start_vpn: u64,
    pages: u64,
    base_frame: hvc_types::PhysFrame,
    sub_pages: u64,
    /// Segment id of each committed sub-unit (shared after merging).
    committed: Vec<Option<SegmentId>>,
}

impl Kernel {
    /// Bytes reserved at the bottom of physical memory for page tables
    /// and other kernel metadata.
    const META_BYTES: u64 = 64 << 20;

    /// Shared pages whose filter bits may be stale before the OS rebuilds
    /// the space's synonym filter automatically.
    const FILTER_STALE_LIMIT: u64 = 64;

    /// Boots a kernel managing `phys_bytes` of memory under `policy`.
    /// The bottom 64 MiB are reserved for kernel metadata (page tables);
    /// the rest is the user pool.
    ///
    /// # Panics
    ///
    /// Panics if `phys_bytes` is not page aligned or not larger than the
    /// metadata reservation.
    pub fn new(phys_bytes: u64, policy: AllocPolicy) -> Self {
        assert!(
            phys_bytes > Self::META_BYTES,
            "need more than the metadata reservation"
        );
        let user_base = hvc_types::PhysFrame::new(Self::META_BYTES >> PAGE_SHIFT);
        Kernel {
            frames: BuddyAllocator::with_base(user_base, phys_bytes - Self::META_BYTES),
            meta_frames: BuddyAllocator::new(Self::META_BYTES),
            spaces: FxHashMap::default(),
            next_asid: 1,
            shm: Vec::new(),
            segments: SegmentTable::new(DEFAULT_SEGMENT_CAPACITY),
            policy,
            stats: KernelStats::default(),
            flush_queue: Vec::new(),
            last_segment: FxHashMap::default(),
            reservations: Vec::new(),
            stale_filter_pages: FxHashMap::default(),
        }
    }

    /// Boots with a custom segment-table capacity (index-tree studies).
    pub fn with_segment_capacity(phys_bytes: u64, policy: AllocPolicy, capacity: usize) -> Self {
        let mut k = Kernel::new(phys_bytes, policy);
        k.segments = SegmentTable::new(capacity);
        k
    }

    /// Creates a new process and returns its ASID. The synonym filter
    /// pair starts cleared, as the paper specifies for address-space
    /// creation.
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] when ASIDs are exhausted,
    /// [`HvcError::OutOfMemory`] when the page-table root cannot be
    /// allocated.
    pub fn create_process(&mut self) -> Result<Asid> {
        let raw = self.next_asid;
        if raw == u16::MAX {
            return Err(HvcError::BadId("ASID space exhausted"));
        }
        self.next_asid += 1;
        let asid = Asid::new(raw);
        let pt = PageTable::new(&mut self.meta_frames)?;
        self.spaces.insert(raw, AddressSpace::new(asid, pt));
        Ok(asid)
    }

    /// Registers a process with a caller-chosen ASID (used by the
    /// virtualization layer, which composes VMID + guest ASID).
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] if the ASID is taken.
    pub fn create_process_with_asid(&mut self, asid: Asid) -> Result<()> {
        if self.spaces.contains_key(&asid.as_u16()) {
            return Err(HvcError::BadId("ASID already in use"));
        }
        let pt = PageTable::new(&mut self.meta_frames)?;
        self.spaces
            .insert(asid.as_u16(), AddressSpace::new(asid, pt));
        Ok(())
    }

    /// Tears down a process: frees private frames, detaches shared
    /// objects, removes its segments, and requests a full flush of its
    /// virtually-tagged cachelines.
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] for an unknown ASID.
    pub fn destroy_process(&mut self, asid: Asid) -> Result<()> {
        let space = self
            .spaces
            .remove(&asid.as_u16())
            .ok_or(HvcError::BadId("unknown ASID"))?;
        // Free private frames; shared frames belong to their shm objects.
        for (vpage, pte) in space.page_table.iter() {
            let backing = space
                .vmas
                .values()
                .find(|v| v.contains(vpage.base()))
                .map(|v| v.backing);
            match backing {
                Some(VmaBacking::Shared(_)) | Some(VmaBacking::SharedRo(_)) => {}
                _ => {
                    if pte.shared {
                        self.flush_queue
                            .push(FlushRequest::Frame(pte.frame.base().as_u64()));
                    }
                    self.frames.free_exact(pte.frame, 1);
                }
            }
        }
        for vma in space.vmas.values() {
            if let VmaBacking::Shared(id) | VmaBacking::SharedRo(id) = vma.backing {
                if let Some(obj) = self.shm.get_mut(id.0 as usize) {
                    obj.attachments = obj.attachments.saturating_sub(1);
                }
            }
            for &sid in &vma.segments {
                self.segments.remove(sid);
            }
        }
        self.last_segment.remove(&asid.as_u16());
        self.release_reservations(asid, 0, u64::MAX);
        self.flush_queue.push(FlushRequest::Space(asid));
        self.stats.shootdowns += 1;
        Ok(())
    }

    /// Releases every reservation of `asid` that lies inside
    /// `[start_vpn, start_vpn + pages)`: frees uncommitted sub-units
    /// (committed pages are freed through their page-table entries) and
    /// drops the committed sub-segments from the segment table.
    fn release_reservations(&mut self, asid: Asid, start_vpn: u64, pages: u64) {
        let end = start_vpn.saturating_add(pages);
        let mut kept = Vec::with_capacity(self.reservations.len());
        for r in std::mem::take(&mut self.reservations) {
            if r.asid != asid.as_u16() || r.start_vpn < start_vpn || r.start_vpn + r.pages > end {
                kept.push(r);
                continue;
            }
            let mut removed = std::collections::HashSet::new();
            for (i, slot) in r.committed.iter().enumerate() {
                let sub_start = i as u64 * r.sub_pages;
                let sub_len = r.sub_pages.min(r.pages - sub_start);
                match slot {
                    Some(id) => {
                        if removed.insert(*id) {
                            self.segments.remove(*id);
                        }
                    }
                    None => {
                        // Never committed: free the reserved frames.
                        self.frames
                            .free_exact(r.base_frame.offset(sub_start), sub_len);
                    }
                }
            }
        }
        self.reservations = kept;
    }

    /// Creates a shared-memory object of `len` bytes (page aligned up).
    ///
    /// # Errors
    ///
    /// [`HvcError::OutOfMemory`] when frames run out.
    pub fn shm_create(&mut self, len: u64) -> Result<ShmId> {
        let pages = len.div_ceil(PAGE_SIZE);
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            frames.push(self.frames.alloc_frame()?);
        }
        let id = ShmId(self.shm.len() as u32);
        self.shm.push(ShmObject {
            frames,
            attachments: 0,
        });
        Ok(id)
    }

    /// Maps `len` bytes at `va` in `asid` with the given permissions and
    /// backing.
    ///
    /// Under [`AllocPolicy::EagerSegments`], private mappings allocate
    /// contiguous physical segments immediately and register them in the
    /// system-wide segment table; shared/DMA mappings always populate
    /// their page-table entries eagerly (their translation goes through
    /// the synonym TLB path).
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] for unknown ASIDs or shm objects,
    /// [`HvcError::RegionOverlap`] if the range collides,
    /// [`HvcError::BadConfig`] for unaligned arguments,
    /// [`HvcError::OutOfMemory`] / [`HvcError::SegmentTableFull`] from
    /// allocation.
    pub fn mmap(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        len: u64,
        perm: Permissions,
        intent: MapIntent,
    ) -> Result<()> {
        if !va.is_aligned(PAGE_SIZE) || len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(HvcError::BadConfig("mmap range must be page aligned"));
        }
        let space = self
            .spaces
            .get(&asid.as_u16())
            .ok_or(HvcError::BadId("unknown ASID"))?;
        if space.overlaps(va, len) {
            return Err(HvcError::RegionOverlap {
                asid,
                vaddr: va,
                len,
            });
        }

        let backing = match intent {
            MapIntent::Private => VmaBacking::Private,
            MapIntent::Shared(id) => VmaBacking::Shared(id),
            MapIntent::SharedRo(id) => VmaBacking::SharedRo(id),
            MapIntent::Dma => VmaBacking::Dma,
        };
        let mut vma = Vma {
            start: va,
            len,
            perm,
            backing,
            segments: Vec::new(),
        };

        match intent {
            MapIntent::Shared(id) | MapIntent::SharedRo(id) => {
                self.map_shared_object(asid, &vma, id, perm, intent)?;
            }
            MapIntent::Dma => {
                self.map_dma(asid, &vma, perm)?;
            }
            MapIntent::Private => match self.policy {
                AllocPolicy::EagerSegments { split } => {
                    self.map_eager_private(asid, &mut vma, perm, split.max(1))?;
                }
                AllocPolicy::ReservedSegments { sub_pages } => {
                    self.reserve_private(asid, &vma, sub_pages.max(1))?;
                }
                AllocPolicy::DemandPaging => {
                    // Nothing until first touch.
                }
            },
        }

        let space = self.spaces.get_mut(&asid.as_u16()).expect("checked");
        space.vmas.insert(va.as_u64(), vma);
        Ok(())
    }

    /// Unmaps the VMA starting at `va`, freeing private frames and
    /// requesting flushes of its pages.
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] for an unknown ASID,
    /// [`HvcError::Unmapped`] if no VMA starts exactly at `va`.
    pub fn munmap(&mut self, asid: Asid, va: VirtAddr) -> Result<()> {
        let space = self
            .spaces
            .get_mut(&asid.as_u16())
            .ok_or(HvcError::BadId("unknown ASID"))?;
        let vma = space
            .vmas
            .remove(&va.as_u64())
            .ok_or(HvcError::Unmapped { asid, vaddr: va })?;
        let pages = vma.len >> PAGE_SHIFT;
        let first = va.page_number();
        let shared_obj = matches!(vma.backing, VmaBacking::Shared(_) | VmaBacking::SharedRo(_));
        for i in 0..pages {
            let vp = first.offset(i);
            if let Some(pte) = space.page_table.unmap(vp) {
                if !shared_obj {
                    if pte.shared {
                        self.flush_queue
                            .push(FlushRequest::Frame(pte.frame.base().as_u64()));
                    }
                    self.frames.free_exact(pte.frame, 1);
                }
                self.flush_queue.push(FlushRequest::Page(asid, vp.as_u64()));
                self.stats.flushed_pages += 1;
            }
        }
        if let VmaBacking::Shared(id) | VmaBacking::SharedRo(id) = vma.backing {
            if let Some(obj) = self.shm.get_mut(id.0 as usize) {
                obj.attachments = obj.attachments.saturating_sub(1);
            }
        }
        // Eagerly-allocated segments: their frames were just freed via
        // the page-table entries (eager allocation maps every page), so
        // only the table entries remain to drop.
        for sid in vma.segments {
            self.segments.remove(sid);
        }
        // Reservation-policy backing: free the uncommitted remainder and
        // drop committed sub-segments (their frames were freed above).
        self.release_reservations(asid, first.as_u64(), pages);
        // Unmapping a r/w shared region leaves stale bits in the synonym
        // filter; past a threshold the OS rebuilds it from the page
        // tables (the policy Section III-B describes).
        if matches!(vma.backing, VmaBacking::Shared(_)) {
            let stale = self.stale_filter_pages.entry(asid.as_u16()).or_insert(0);
            *stale += pages;
            if *stale > Self::FILTER_STALE_LIMIT {
                *stale = 0;
                self.rebuild_filter(asid)?;
            }
        }
        self.stats.shootdowns += 1;
        Ok(())
    }

    /// Translates `va` for an access of `kind`, demand-allocating on
    /// first touch and breaking copy-on-write on writes to content-shared
    /// pages. This is the path the system simulator's page walker takes on
    /// a true page-table miss.
    ///
    /// # Errors
    ///
    /// [`HvcError::Unmapped`] outside any VMA,
    /// [`HvcError::PermissionFault`] for disallowed accesses,
    /// [`HvcError::OutOfMemory`] when demand allocation fails.
    pub fn touch(&mut self, asid: Asid, va: VirtAddr, kind: AccessKind) -> Result<Pte> {
        let required = match kind {
            AccessKind::Read => Permissions::READ,
            AccessKind::Write => Permissions::WRITE,
            AccessKind::Fetch => Permissions::EXEC,
        };
        let space = self
            .spaces
            .get_mut(&asid.as_u16())
            .ok_or(HvcError::BadId("unknown ASID"))?;
        let vpage = va.page_number();
        space.touched.insert(vpage.as_u64());

        if let Some(pte) = space.page_table.lookup(vpage) {
            if pte.perm.allows(required) {
                return Ok(pte);
            }
            // Write to a read-only content-shared page: COW break.
            if kind.is_write() {
                if let Some(vma) = space.vma(va) {
                    if matches!(vma.backing, VmaBacking::SharedRo(_)) {
                        return self.break_cow(asid, va);
                    }
                }
            }
            return Err(HvcError::PermissionFault {
                asid,
                vaddr: va,
                held: pte.perm,
                required,
            });
        }

        // Page-table miss: find the VMA and demand-allocate.
        let vma = space
            .vma(va)
            .ok_or(HvcError::Unmapped { asid, vaddr: va })?;
        if !vma.perm.allows(required) {
            let held = vma.perm;
            return Err(HvcError::PermissionFault {
                asid,
                vaddr: va,
                held,
                required,
            });
        }
        debug_assert!(
            matches!(vma.backing, VmaBacking::Private),
            "non-private VMAs are populated eagerly"
        );
        let perm = vma.perm;
        if matches!(self.policy, AllocPolicy::ReservedSegments { .. }) {
            if let Some(pte) = self.commit_reserved(asid, vpage, perm)? {
                self.stats.minor_faults += 1;
                return Ok(pte);
            }
        }
        let frame = self.frames.alloc_frame()?;
        let pte = Pte {
            frame,
            perm,
            shared: false,
        };
        let space = self.spaces.get_mut(&asid.as_u16()).expect("checked");
        space.page_table.map(&mut self.meta_frames, vpage, pte)?;
        self.stats.minor_faults += 1;
        Ok(pte)
    }

    /// Reserves contiguous physical backing for a private VMA without
    /// committing it (ReservedSegments policy). Regions larger than the
    /// maximum buddy block are reserved in max-block chunks.
    fn reserve_private(
        &mut self,
        asid: Asid,
        vma: &crate::addrspace::Vma,
        sub_pages: u64,
    ) -> Result<()> {
        let total = vma.len >> PAGE_SHIFT;
        let mut done = 0u64;
        while done < total {
            let chunk = (total - done).min(crate::frame::MAX_BLOCK_FRAMES);
            let base_frame = self.frames.alloc_exact(chunk)?;
            let subs = chunk.div_ceil(sub_pages) as usize;
            self.reservations.push(Reservation {
                asid: asid.as_u16(),
                start_vpn: vma.start.page_number().as_u64() + done,
                pages: chunk,
                base_frame,
                sub_pages,
                committed: vec![None; subs],
            });
            done += chunk;
        }
        Ok(())
    }

    /// Commits the reserved sub-segment containing `vpage`: maps its
    /// pages, registers (or extends) a segment, and accounts the newly
    /// committed memory. Returns `None` if no reservation covers the
    /// page.
    fn commit_reserved(
        &mut self,
        asid: Asid,
        vpage: VirtPage,
        perm: Permissions,
    ) -> Result<Option<Pte>> {
        let vpn = vpage.as_u64();
        let Some(ridx) = self.reservations.iter().position(|r| {
            r.asid == asid.as_u16() && vpn >= r.start_vpn && vpn < r.start_vpn + r.pages
        }) else {
            return Ok(None);
        };
        let (sub_idx, sub_start, sub_len, sub_frame, left_seg, right_seg) = {
            let r = &self.reservations[ridx];
            let sub_idx = ((vpn - r.start_vpn) / r.sub_pages) as usize;
            let sub_start = r.start_vpn + sub_idx as u64 * r.sub_pages;
            let sub_len = r.sub_pages.min(r.start_vpn + r.pages - sub_start);
            let sub_frame = r.base_frame.offset(sub_start - r.start_vpn);
            let left_seg = if sub_idx > 0 {
                r.committed[sub_idx - 1]
            } else {
                None
            };
            let right_seg = r.committed.get(sub_idx + 1).copied().flatten();
            (sub_idx, sub_start, sub_len, sub_frame, left_seg, right_seg)
        };

        // Map the sub-segment's pages.
        for i in 0..sub_len {
            let pte = Pte {
                frame: sub_frame.offset(i),
                perm,
                shared: false,
            };
            let space = self
                .spaces
                .get_mut(&asid.as_u16())
                .expect("checked by caller");
            space
                .page_table
                .map(&mut self.meta_frames, VirtPage::new(sub_start + i), pte)?;
        }

        // Register the segment, merging with committed neighbours (VA
        // and PA are contiguous inside a reservation by construction).
        let seg_id = match (left_seg, right_seg) {
            (Some(l), Some(r)) => {
                // Bridge: absorb the sub-unit and the whole right segment
                // into the left segment.
                let right = self.segments.remove(r).expect("live segment");
                let left = *self.segments.get(l).expect("live segment");
                self.segments
                    .grow(l, left.len + (sub_len << PAGE_SHIFT) + right.len)?;
                // Re-point every sub-unit that referenced the right
                // segment at the merged left one.
                for c in &mut self.reservations[ridx].committed {
                    if *c == Some(r) {
                        *c = Some(l);
                    }
                }
                l
            }
            (Some(l), None) => {
                let left = *self.segments.get(l).expect("live segment");
                self.segments.grow(l, left.len + (sub_len << PAGE_SHIFT))?;
                l
            }
            (None, Some(r)) => {
                self.segments
                    .extend_down(r, VirtPage::new(sub_start).base(), sub_frame.base())?;
                r
            }
            (None, None) => self.segments.insert(
                asid,
                VirtPage::new(sub_start).base(),
                sub_len << PAGE_SHIFT,
                sub_frame.base(),
            )?,
        };
        self.reservations[ridx].committed[sub_idx] = Some(seg_id);
        let space = self
            .spaces
            .get_mut(&asid.as_u16())
            .expect("checked by caller");
        space.eager_allocated += sub_len << PAGE_SHIFT;
        let off = vpn - sub_start;
        Ok(Some(Pte {
            frame: sub_frame.offset(off),
            perm,
            shared: false,
        }))
    }

    /// Read-path convenience wrapper over [`Kernel::touch`].
    ///
    /// # Errors
    ///
    /// See [`Kernel::touch`].
    pub fn translate_touch(&mut self, asid: Asid, va: VirtAddr) -> Result<Pte> {
        self.touch(asid, va, AccessKind::Read)
    }

    /// Transitions an already-mapped private page to shared (synonym)
    /// status: sets the PTE's shared bit, inserts the page into the
    /// synonym filter, and requests a flush of its cachelines — the
    /// paper's private→synonym transition.
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] / [`HvcError::Unmapped`] for unknown targets.
    pub fn mark_page_shared(&mut self, asid: Asid, va: VirtAddr) -> Result<()> {
        let space = self
            .spaces
            .get_mut(&asid.as_u16())
            .ok_or(HvcError::BadId("unknown ASID"))?;
        let vpage = va.page_number();
        let pte = space
            .page_table
            .lookup_mut(vpage)
            .ok_or(HvcError::Unmapped { asid, vaddr: va })?;
        if !pte.shared {
            pte.shared = true;
            space.filter.insert_page(va);
            self.stats.filter_insertions += 1;
            self.flush_queue
                .push(FlushRequest::Page(asid, vpage.as_u64()));
            self.stats.flushed_pages += 1;
            self.stats.shootdowns += 1;
        }
        Ok(())
    }

    /// Downgrades a mapped page to read-only in place (content-based
    /// sharing begins): cached lines keep their virtual names but their
    /// permission bits are downgraded; no synonym-filter update is needed
    /// (the paper's Section III-D optimization).
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] / [`HvcError::Unmapped`] for unknown targets.
    pub fn downgrade_page_read_only(&mut self, asid: Asid, va: VirtAddr) -> Result<()> {
        let space = self
            .spaces
            .get_mut(&asid.as_u16())
            .ok_or(HvcError::BadId("unknown ASID"))?;
        let vpage = va.page_number();
        let pte = space
            .page_table
            .lookup_mut(vpage)
            .ok_or(HvcError::Unmapped { asid, vaddr: va })?;
        pte.perm = pte.perm.downgraded_read_only();
        self.flush_queue
            .push(FlushRequest::DowngradeRo(asid, vpage.as_u64()));
        self.stats.shootdowns += 1;
        Ok(())
    }

    /// Rebuilds the synonym filter of `asid` from its page tables (the
    /// OS's response to filter saturation from stale bits).
    ///
    /// # Errors
    ///
    /// [`HvcError::BadId`] for an unknown ASID.
    pub fn rebuild_filter(&mut self, asid: Asid) -> Result<()> {
        let space = self
            .spaces
            .get_mut(&asid.as_u16())
            .ok_or(HvcError::BadId("unknown ASID"))?;
        space.filter.clear();
        let shared: Vec<VirtPage> = space
            .page_table
            .iter()
            .filter(|(_, pte)| pte.shared)
            .map(|(vp, _)| vp)
            .collect();
        for vp in shared {
            space.filter.insert_page(vp.base());
            self.stats.filter_insertions += 1;
        }
        self.stats.filter_rebuilds += 1;
        self.stats.shootdowns += 1;
        Ok(())
    }

    // --- read-only views used by the hardware crates ---

    /// The address space of `asid`.
    pub fn space(&self, asid: Asid) -> Option<&AddressSpace> {
        self.spaces.get(&asid.as_u16())
    }

    /// All live address spaces, in unspecified order (callers that need
    /// determinism sort by ASID).
    pub fn spaces(&self) -> impl Iterator<Item = (Asid, &AddressSpace)> {
        self.spaces.iter().map(|(&a, s)| (Asid::new(a), s))
    }

    /// Synonym-filter staleness of `asid`: shared pages unmapped since
    /// the filter was last rebuilt.
    pub fn stale_filter_pages(&self, asid: Asid) -> u64 {
        self.stale_filter_pages
            .get(&asid.as_u16())
            .copied()
            .unwrap_or(0)
    }

    /// Page-table walk for the hardware walker: leaf PTE plus the four
    /// entry addresses touched. `None` means a true page fault.
    pub fn walk(&self, asid: Asid, vpage: VirtPage) -> Option<(Pte, WalkPath)> {
        self.spaces.get(&asid.as_u16())?.page_table.walk(vpage)
    }

    /// The system-wide segment table.
    pub fn segments(&self) -> &SegmentTable {
        &self.segments
    }

    /// Physical address of byte `offset` inside shared object `id`
    /// (used to resolve intermediate-space writebacks under the Enigma
    /// scheme, which names shared lines object-relatively).
    pub fn shm_phys_addr(&self, id: crate::ShmId, offset: u64) -> Option<hvc_types::PhysAddr> {
        let obj = self.shm.get(id.0 as usize)?;
        let frame = obj.frames.get((offset >> PAGE_SHIFT) as usize)?;
        Some(hvc_types::PhysAddr::new(
            frame.base().as_u64() + (offset & (PAGE_SIZE - 1)),
        ))
    }

    /// Enigma-style first-level translation (Section II of the paper):
    /// maps `(asid, va)` to a canonical *intermediate-space* line at VMA
    /// (coarse-segment) granularity. R/w-shared mappings of one object
    /// resolve to one object-relative intermediate line regardless of the
    /// attaching process or virtual address, so synonyms collapse without
    /// a filter; private mappings keep their per-ASID virtual name.
    ///
    /// Returns `(shared, canonical_line)` — `None` outside every VMA.
    pub fn intermediate_line(&self, asid: Asid, va: VirtAddr) -> Option<(bool, u64)> {
        let space = self.spaces.get(&asid.as_u16())?;
        let vma = space.vma(va)?;
        match vma.backing {
            VmaBacking::Shared(id) => {
                // Object-relative intermediate address in a reserved
                // region of the intermediate space.
                let offset = va - vma.start;
                let ia = (1u64 << 46) + ((id.0 as u64) << 34) + offset;
                Some((true, ia >> hvc_types::LINE_SHIFT))
            }
            _ => Some((false, va.line().as_u64())),
        }
    }

    /// Drains pending hardware flush requests (the system simulator
    /// applies them to the cache hierarchy and TLBs).
    pub fn drain_flush_requests(&mut self) -> Vec<FlushRequest> {
        std::mem::take(&mut self.flush_queue)
    }

    /// Number of flush requests queued but not yet drained. The
    /// simulators assert this is zero at access boundaries when runtime
    /// checking is enabled: a non-empty queue means a kernel operation's
    /// shootdowns could be observed late by the next access.
    pub fn pending_flush_requests(&self) -> usize {
        self.flush_queue.len()
    }

    /// Kernel event counters.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Free physical frames remaining.
    pub fn free_frames(&self) -> u64 {
        self.frames.free_frames()
    }

    /// The allocation policy.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    // --- internals ---

    fn map_shared_object(
        &mut self,
        asid: Asid,
        vma: &Vma,
        id: ShmId,
        perm: Permissions,
        intent: MapIntent,
    ) -> Result<()> {
        let read_only = matches!(intent, MapIntent::SharedRo(_));
        let obj = self
            .shm
            .get(id.0 as usize)
            .ok_or(HvcError::BadId("unknown shm object"))?;
        let pages = vma.len >> PAGE_SHIFT;
        if pages > obj.frames.len() as u64 {
            return Err(HvcError::BadConfig("mapping longer than shm object"));
        }
        let frames: Vec<_> = obj.frames[..pages as usize].to_vec();
        let first = vma.start.page_number();
        let effective_perm = if read_only {
            perm.downgraded_read_only()
        } else {
            perm
        };
        for (i, frame) in frames.into_iter().enumerate() {
            let vp = first.offset(i as u64);
            // R/w shared pages are synonyms; r/o content mappings are not.
            let pte = Pte {
                frame,
                perm: effective_perm,
                shared: !read_only,
            };
            let space = self
                .spaces
                .get_mut(&asid.as_u16())
                .expect("checked by caller");
            space.page_table.map(&mut self.meta_frames, vp, pte)?;
            if !read_only {
                space.filter.insert_page(vp.base());
                self.stats.filter_insertions += 1;
            }
        }
        if !read_only {
            // One shootdown per mapping operation propagates the filter
            // update to other cores running this ASID.
            self.stats.shootdowns += 1;
        }
        self.shm[id.0 as usize].attachments += 1;
        Ok(())
    }

    fn map_dma(&mut self, asid: Asid, vma: &Vma, perm: Permissions) -> Result<()> {
        let pages = vma.len >> PAGE_SHIFT;
        let base = self.frames.alloc_exact(pages)?;
        let first = vma.start.page_number();
        for i in 0..pages {
            let pte = Pte {
                frame: base.offset(i),
                perm,
                shared: true,
            };
            let space = self
                .spaces
                .get_mut(&asid.as_u16())
                .expect("checked by caller");
            space
                .page_table
                .map(&mut self.meta_frames, first.offset(i), pte)?;
            space.filter.insert_page(first.offset(i).base());
            self.stats.filter_insertions += 1;
        }
        self.stats.shootdowns += 1;
        Ok(())
    }

    fn map_eager_private(
        &mut self,
        asid: Asid,
        vma: &mut Vma,
        perm: Permissions,
        split: u32,
    ) -> Result<()> {
        let total_pages = vma.len >> PAGE_SHIFT;
        let piece_pages = total_pages.div_ceil(u64::from(split));
        let mut mapped = 0u64;
        while mapped < total_pages {
            let pages = piece_pages.min(total_pages - mapped);
            let piece_va = vma.start + (mapped << PAGE_SHIFT);
            let seg_id = self.alloc_segment(asid, piece_va, pages, split == 1)?;
            let seg = *self.segments.get(seg_id).expect("just inserted");
            // Fill page-table entries for the piece (eager population).
            let first_vp = piece_va.page_number();
            let first_frame = seg.translate(piece_va).frame_number();
            for i in 0..pages {
                let pte = Pte {
                    frame: first_frame.offset(i),
                    perm,
                    shared: false,
                };
                let space = self
                    .spaces
                    .get_mut(&asid.as_u16())
                    .expect("checked by caller");
                space
                    .page_table
                    .map(&mut self.meta_frames, first_vp.offset(i), pte)?;
            }
            if !vma.segments.contains(&seg_id) {
                vma.segments.push(seg_id);
            }
            mapped += pages;
        }
        let space = self
            .spaces
            .get_mut(&asid.as_u16())
            .expect("checked by caller");
        space.eager_allocated += vma.len;
        Ok(())
    }

    /// Allocates (or extends) a segment covering `pages` pages at `va`.
    fn alloc_segment(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        pages: u64,
        allow_extend: bool,
    ) -> Result<SegmentId> {
        // Try to grow the previous segment in place: virtual contiguity
        // plus free physical frames right after it.
        if allow_extend {
            if let Some(&last) = self.last_segment.get(&asid.as_u16()) {
                if let Some(seg) = self.segments.get(last).copied() {
                    let phys_next = seg
                        .translate(seg.base + (seg.len - 1))
                        .frame_number()
                        .offset(1);
                    if seg.end() == va && self.frames.is_run_free(phys_next, pages) {
                        self.frames.claim_run(phys_next, pages)?;
                        self.segments.grow(last, seg.len + (pages << PAGE_SHIFT))?;
                        return Ok(last);
                    }
                }
            }
        }
        let base_frame = self.frames.alloc_exact(pages)?;
        let id = self
            .segments
            .insert(asid, va, pages << PAGE_SHIFT, base_frame.base())?;
        self.last_segment.insert(asid.as_u16(), id);
        Ok(id)
    }

    fn break_cow(&mut self, asid: Asid, va: VirtAddr) -> Result<Pte> {
        let frame = self.frames.alloc_frame()?;
        let space = self
            .spaces
            .get_mut(&asid.as_u16())
            .expect("checked by caller");
        let vpage = va.page_number();
        let old = space
            .page_table
            .lookup(vpage)
            .ok_or(HvcError::Unmapped { asid, vaddr: va })?;
        let pte = Pte {
            frame,
            perm: old.perm | Permissions::RW,
            shared: false,
        };
        space.page_table.map(&mut self.meta_frames, vpage, pte)?;
        // The stale r/o lines (old name, old perm) must be flushed.
        self.flush_queue
            .push(FlushRequest::Page(asid, vpage.as_u64()));
        self.stats.flushed_pages += 1;
        self.stats.cow_breaks += 1;
        self.stats.shootdowns += 1;
        Ok(pte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    fn demand_kernel() -> Kernel {
        Kernel::new(GIB, AllocPolicy::DemandPaging)
    }

    fn eager_kernel() -> Kernel {
        Kernel::new(GIB, AllocPolicy::EagerSegments { split: 1 })
    }

    #[test]
    fn demand_paging_allocates_on_touch() {
        let mut k = demand_kernel();
        let asid = k.create_process().unwrap();
        k.mmap(
            asid,
            VirtAddr::new(0x10000),
            0x4000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        assert_eq!(k.space(asid).unwrap().mapped_pages(), 0);
        let pte = k.translate_touch(asid, VirtAddr::new(0x10040)).unwrap();
        assert!(!pte.shared);
        assert_eq!(k.space(asid).unwrap().mapped_pages(), 1);
        assert_eq!(k.stats().minor_faults, 1);
        // Second touch of the same page: no new fault.
        k.translate_touch(asid, VirtAddr::new(0x10080)).unwrap();
        assert_eq!(k.stats().minor_faults, 1);
    }

    #[test]
    fn untouched_unmapped_address_faults() {
        let mut k = demand_kernel();
        let asid = k.create_process().unwrap();
        assert!(matches!(
            k.translate_touch(asid, VirtAddr::new(0xdead_0000)),
            Err(HvcError::Unmapped { .. })
        ));
    }

    #[test]
    fn eager_policy_populates_and_registers_segment() {
        let mut k = eager_kernel();
        let asid = k.create_process().unwrap();
        k.mmap(
            asid,
            VirtAddr::new(0x100000),
            0x10000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        let space = k.space(asid).unwrap();
        assert_eq!(space.mapped_pages(), 16, "pages populated eagerly");
        assert_eq!(k.segments().count_asid(asid), 1);
        let seg = k.segments().find(asid, VirtAddr::new(0x104000)).unwrap();
        assert_eq!(seg.len, 0x10000);
        // Segment translation matches the page table.
        let pte = k
            .walk(asid, VirtAddr::new(0x104000).page_number())
            .unwrap()
            .0;
        assert_eq!(
            seg.translate(VirtAddr::new(0x104000)).frame_number(),
            pte.frame
        );
        assert_eq!(space.eager_allocated_bytes(), 0x10000);
    }

    #[test]
    fn contiguous_growth_extends_segment_in_place() {
        let mut k = eager_kernel();
        let asid = k.create_process().unwrap();
        k.mmap(
            asid,
            VirtAddr::new(0x100000),
            0x4000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        // Next mmap is VA-contiguous; the frames after the segment are
        // still free, so it should extend rather than add a segment.
        k.mmap(
            asid,
            VirtAddr::new(0x104000),
            0x4000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        assert_eq!(k.segments().count_asid(asid), 1);
        let seg = k.segments().iter_asid(asid).next().unwrap();
        assert_eq!(seg.len, 0x8000);
    }

    #[test]
    fn split_policy_breaks_allocation_into_pieces() {
        let mut k = Kernel::new(GIB, AllocPolicy::EagerSegments { split: 4 });
        let asid = k.create_process().unwrap();
        k.mmap(
            asid,
            VirtAddr::new(0x100000),
            0x10000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        assert_eq!(k.segments().count_asid(asid), 4);
    }

    #[test]
    fn shm_mapping_creates_synonyms_in_both_spaces() {
        let mut k = demand_kernel();
        let a = k.create_process().unwrap();
        let b = k.create_process().unwrap();
        let shm = k.shm_create(0x2000).unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x7000_0000),
            0x2000,
            Permissions::RW,
            MapIntent::Shared(shm),
        )
        .unwrap();
        k.mmap(
            b,
            VirtAddr::new(0x9000_0000),
            0x2000,
            Permissions::RW,
            MapIntent::Shared(shm),
        )
        .unwrap();
        let pa = k.translate_touch(a, VirtAddr::new(0x7000_0000)).unwrap();
        let pb = k.translate_touch(b, VirtAddr::new(0x9000_0000)).unwrap();
        assert_eq!(pa.frame, pb.frame, "same physical frame — a synonym");
        assert!(pa.shared && pb.shared);
        // Both filters report the candidate at their own VA.
        assert!(k
            .space(a)
            .unwrap()
            .filter
            .is_candidate(VirtAddr::new(0x7000_0000)));
        assert!(k
            .space(b)
            .unwrap()
            .filter
            .is_candidate(VirtAddr::new(0x9000_0000)));
        // And not at unrelated addresses (modulo false positives, which
        // these values do not trigger).
        assert!(!k
            .space(a)
            .unwrap()
            .filter
            .is_candidate(VirtAddr::new(0x1234_0000)));
    }

    #[test]
    fn shared_ro_is_not_a_synonym_and_cow_breaks_on_write() {
        let mut k = demand_kernel();
        let a = k.create_process().unwrap();
        let shm = k.shm_create(0x1000).unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x5000_0000),
            0x1000,
            Permissions::RW,
            MapIntent::SharedRo(shm),
        )
        .unwrap();
        let pte = k.translate_touch(a, VirtAddr::new(0x5000_0000)).unwrap();
        assert!(!pte.shared, "r/o content sharing is served virtually");
        assert!(!pte.perm.is_writable());
        let before = pte.frame;
        // Write: COW break to a fresh private frame.
        let pte2 = k
            .touch(a, VirtAddr::new(0x5000_0000), AccessKind::Write)
            .unwrap();
        assert_ne!(pte2.frame, before);
        assert!(pte2.perm.is_writable());
        assert_eq!(k.stats().cow_breaks, 1);
        let reqs = k.drain_flush_requests();
        assert!(reqs.contains(&FlushRequest::Page(a, 0x50000)));
    }

    #[test]
    fn dma_pages_are_synonyms() {
        let mut k = demand_kernel();
        let a = k.create_process().unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x8000_0000),
            0x2000,
            Permissions::RW,
            MapIntent::Dma,
        )
        .unwrap();
        let pte = k.translate_touch(a, VirtAddr::new(0x8000_0000)).unwrap();
        assert!(pte.shared);
        assert!(k
            .space(a)
            .unwrap()
            .filter
            .is_candidate(VirtAddr::new(0x8000_0000)));
    }

    #[test]
    fn mark_page_shared_transition() {
        let mut k = demand_kernel();
        let a = k.create_process().unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x1000_0000),
            0x1000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        k.translate_touch(a, VirtAddr::new(0x1000_0000)).unwrap();
        k.drain_flush_requests();
        k.mark_page_shared(a, VirtAddr::new(0x1000_0000)).unwrap();
        let pte = k
            .walk(a, VirtAddr::new(0x1000_0000).page_number())
            .unwrap()
            .0;
        assert!(pte.shared);
        assert!(k
            .space(a)
            .unwrap()
            .filter
            .is_candidate(VirtAddr::new(0x1000_0000)));
        let reqs = k.drain_flush_requests();
        assert_eq!(reqs, vec![FlushRequest::Page(a, 0x10000)]);
        // Idempotent: re-marking does not flush again.
        k.mark_page_shared(a, VirtAddr::new(0x1000_0000)).unwrap();
        assert!(k.drain_flush_requests().is_empty());
    }

    #[test]
    fn permission_fault_on_disallowed_access() {
        let mut k = demand_kernel();
        let a = k.create_process().unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x2000_0000),
            0x1000,
            Permissions::READ,
            MapIntent::Private,
        )
        .unwrap();
        assert!(matches!(
            k.touch(a, VirtAddr::new(0x2000_0000), AccessKind::Write),
            Err(HvcError::PermissionFault { .. })
        ));
    }

    #[test]
    fn munmap_frees_and_flushes() {
        let mut k = demand_kernel();
        let a = k.create_process().unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x3000_0000),
            0x2000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        k.translate_touch(a, VirtAddr::new(0x3000_0000)).unwrap();
        k.translate_touch(a, VirtAddr::new(0x3000_1000)).unwrap();
        let free_before = k.free_frames();
        k.munmap(a, VirtAddr::new(0x3000_0000)).unwrap();
        assert_eq!(k.free_frames(), free_before + 2);
        assert!(k
            .drain_flush_requests()
            .iter()
            .all(|r| matches!(r, FlushRequest::Page(_, _))));
        assert!(matches!(
            k.translate_touch(a, VirtAddr::new(0x3000_0000)),
            Err(HvcError::Unmapped { .. })
        ));
    }

    #[test]
    fn freeing_a_synonym_frame_requests_a_phys_flush() {
        // A page that went through mark_page_shared is cached by
        // physical address; releasing its frame back to the allocator
        // must also flush those physically-named lines, both on munmap
        // and on process destruction.
        let mut k = demand_kernel();
        let a = k.create_process().unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x3000_0000),
            0x2000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        let pte = k.translate_touch(a, VirtAddr::new(0x3000_0000)).unwrap();
        k.mark_page_shared(a, VirtAddr::new(0x3000_0000)).unwrap();
        k.drain_flush_requests();
        k.munmap(a, VirtAddr::new(0x3000_0000)).unwrap();
        let reqs = k.drain_flush_requests();
        assert!(
            reqs.contains(&FlushRequest::Frame(pte.frame.base().as_u64())),
            "munmap of a synonym page must flush its frame: {reqs:?}"
        );

        let b = k.create_process().unwrap();
        k.mmap(
            b,
            VirtAddr::new(0x4000_0000),
            0x1000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        let pte = k.translate_touch(b, VirtAddr::new(0x4000_0000)).unwrap();
        k.mark_page_shared(b, VirtAddr::new(0x4000_0000)).unwrap();
        k.drain_flush_requests();
        k.destroy_process(b).unwrap();
        let reqs = k.drain_flush_requests();
        assert!(
            reqs.contains(&FlushRequest::Frame(pte.frame.base().as_u64())),
            "destroy of a space with synonym pages must flush their frames: {reqs:?}"
        );
    }

    #[test]
    fn destroy_process_releases_resources() {
        let mut k = eager_kernel();
        let a = k.create_process().unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x100000),
            0x10000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        assert_eq!(k.segments().len(), 1);
        k.destroy_process(a).unwrap();
        assert_eq!(k.segments().len(), 0);
        assert!(k.space(a).is_none());
        assert!(k.drain_flush_requests().contains(&FlushRequest::Space(a)));
    }

    #[test]
    fn rebuild_filter_drops_stale_bits() {
        let mut k = demand_kernel();
        let a = k.create_process().unwrap();
        let shm = k.shm_create(0x1000).unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x7000_0000),
            0x1000,
            Permissions::RW,
            MapIntent::Shared(shm),
        )
        .unwrap();
        // Unmap the shared region: the filter still has its (stale) bits.
        k.munmap(a, VirtAddr::new(0x7000_0000)).unwrap();
        assert!(k
            .space(a)
            .unwrap()
            .filter
            .is_candidate(VirtAddr::new(0x7000_0000)));
        k.rebuild_filter(a).unwrap();
        assert!(!k
            .space(a)
            .unwrap()
            .filter
            .is_candidate(VirtAddr::new(0x7000_0000)));
        assert_eq!(k.stats().filter_rebuilds, 1);
    }

    #[test]
    fn overlapping_mmap_rejected() {
        let mut k = demand_kernel();
        let a = k.create_process().unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x1000),
            0x2000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        assert!(matches!(
            k.mmap(
                a,
                VirtAddr::new(0x2000),
                0x1000,
                Permissions::RW,
                MapIntent::Private
            ),
            Err(HvcError::RegionOverlap { .. })
        ));
        assert!(matches!(
            k.mmap(
                a,
                VirtAddr::new(0x1800),
                0x1000,
                Permissions::RW,
                MapIntent::Private
            ),
            Err(HvcError::BadConfig(_))
        ));
    }

    #[test]
    fn reserved_policy_commits_on_touch_and_merges_left() {
        let mut k = Kernel::new(GIB, AllocPolicy::ReservedSegments { sub_pages: 4 });
        let a = k.create_process().unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x100000),
            0x10000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        // Reservation made, nothing committed yet.
        assert_eq!(k.space(a).unwrap().mapped_pages(), 0);
        assert_eq!(k.segments().count_asid(a), 0);
        assert_eq!(k.space(a).unwrap().eager_allocated_bytes(), 0);

        // First touch commits one 4-page sub-segment.
        let pte = k.translate_touch(a, VirtAddr::new(0x100000)).unwrap();
        assert_eq!(k.space(a).unwrap().mapped_pages(), 4);
        assert_eq!(k.segments().count_asid(a), 1);
        assert_eq!(k.space(a).unwrap().eager_allocated_bytes(), 4 * 0x1000);

        // Touching the next sub-segment merges it into the same segment.
        let pte2 = k.translate_touch(a, VirtAddr::new(0x104000)).unwrap();
        assert_eq!(k.segments().count_asid(a), 1, "left merge");
        let seg = k.segments().iter_asid(a).next().unwrap();
        assert_eq!(seg.len, 8 * 0x1000);
        // Physical contiguity within the reservation.
        assert_eq!(pte2.frame.as_u64(), pte.frame.as_u64() + 4);

        // A hole: touching a later sub-segment creates a second segment.
        k.translate_touch(a, VirtAddr::new(0x10c000)).unwrap();
        assert_eq!(k.segments().count_asid(a), 2);
        // Segment translation agrees with the page table everywhere.
        for off in [0u64, 0x4000, 0xc000] {
            let va = VirtAddr::new(0x100000 + off);
            let seg = k.segments().find(a, va).unwrap();
            let pte = k.walk(a, va.page_number()).unwrap().0;
            assert_eq!(seg.translate(va).frame_number(), pte.frame);
        }
    }

    #[test]
    fn reserved_policy_improves_utilization_accounting() {
        // Eager: allocates everything up front. Reserved: only touched
        // sub-segments count.
        let mut k = Kernel::new(GIB, AllocPolicy::ReservedSegments { sub_pages: 8 });
        let a = k.create_process().unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x100000),
            0x100000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        k.translate_touch(a, VirtAddr::new(0x100000)).unwrap();
        let space = k.space(a).unwrap();
        assert_eq!(space.eager_allocated_bytes(), 8 * 0x1000);
        assert!(space.eager_utilization().unwrap() > 0.1);
    }

    #[test]
    fn filter_rebuilds_automatically_after_stale_unmaps() {
        let mut k = demand_kernel();
        let a = k.create_process().unwrap();
        // Map and unmap shared regions repeatedly: each unmap leaves
        // stale filter bits; past the threshold the OS rebuilds.
        for i in 0..3u64 {
            let shm = k.shm_create(0x40_000).unwrap();
            let va = VirtAddr::new(0x7000_0000 + i * 0x100_0000);
            k.mmap(a, va, 0x40_000, Permissions::RW, MapIntent::Shared(shm))
                .unwrap();
            k.munmap(a, va).unwrap();
        }
        // 3 × 64 pages unmapped > 64-page threshold → at least one rebuild.
        assert!(k.stats().filter_rebuilds >= 1);
        // After the final rebuild(s), fully-unmapped addresses are clean
        // once the last rebuild has happened.
        k.rebuild_filter(a).unwrap();
        assert!(!k
            .space(a)
            .unwrap()
            .filter
            .is_candidate(VirtAddr::new(0x7000_0000)));
    }

    #[test]
    fn automatic_rebuild_never_drops_live_synonym_pages() {
        // A saturation-triggered rebuild reconstructs the filter from the
        // page tables, so it must keep every still-mapped synonym page a
        // candidate — a false negative here would let a synonym access
        // bypass translation and read a stale virtually-named line.
        let mut k = demand_kernel();
        let a = k.create_process().unwrap();
        let live = k.shm_create(0x10_000).unwrap();
        let live_va = VirtAddr::new(0x6000_0000);
        k.mmap(
            a,
            live_va,
            0x10_000,
            Permissions::RW,
            MapIntent::Shared(live),
        )
        .unwrap();
        // Populate the page table: the rebuild only sees present entries.
        for p in 0..16u64 {
            k.translate_touch(a, VirtAddr::new(0x6000_0000 + p * 0x1000))
                .unwrap();
        }
        // Churn unrelated shared regions past FILTER_STALE_LIMIT pages
        // of stale unmaps to force at least one automatic rebuild.
        for i in 0..3u64 {
            let shm = k.shm_create(0x40_000).unwrap();
            let va = VirtAddr::new(0x7000_0000 + i * 0x100_0000);
            k.mmap(a, va, 0x40_000, Permissions::RW, MapIntent::Shared(shm))
                .unwrap();
            k.munmap(a, va).unwrap();
        }
        assert!(k.stats().filter_rebuilds >= 1);
        let filter = &k.space(a).unwrap().filter;
        for p in 0..16u64 {
            let va = VirtAddr::new(0x6000_0000 + p * 0x1000 + 0x123);
            assert!(filter.is_candidate(va), "false negative at page {p}");
        }
    }

    #[test]
    fn walk_returns_path_for_hardware_walker() {
        let mut k = demand_kernel();
        let a = k.create_process().unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x1000),
            0x1000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        k.translate_touch(a, VirtAddr::new(0x1000)).unwrap();
        let (pte, path) = k.walk(a, VirtAddr::new(0x1000).page_number()).unwrap();
        assert!(pte.perm.allows(Permissions::READ));
        assert_eq!(path.len(), crate::PT_LEVELS);
    }
}
