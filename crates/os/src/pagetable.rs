//! Four-level x86-64 radix page tables.
//!
//! Page-table nodes occupy simulated physical frames so that a hardware
//! page walk can be charged as four real memory references (the entry
//! addresses are reported via [`WalkPath`]); this is what makes delayed
//! translation's interaction with the cache hierarchy faithful.

use crate::BuddyAllocator;
use hvc_types::{FxHashMap, Permissions, PhysAddr, PhysFrame, Result, VirtPage};

/// Radix levels of an x86-64 page table (PML4 → PDPT → PD → PT).
pub const PT_LEVELS: usize = 4;
/// Index bits per level.
const LEVEL_BITS: u32 = 9;

/// A leaf page-table entry.
///
/// Besides the frame and permissions, the paper adds "a single sharing
/// bit for page mappings to mark a page sharing or non-sharing" — the
/// `shared` bit that distinguishes synonym pages, and which TLB fills use
/// to report synonym-filter false positives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pte {
    /// Mapped physical frame.
    pub frame: PhysFrame,
    /// Access permissions.
    pub perm: Permissions,
    /// `true` if the page is a synonym (r/w shared or DMA) page.
    pub shared: bool,
}

/// The four physical entry addresses a hardware walk reads, root first.
pub type WalkPath = [PhysAddr; PT_LEVELS];

/// One interior node of the radix tree.
#[derive(Clone, Debug)]
struct Node {
    frame: PhysFrame,
    children: FxHashMap<u16, usize>,
}

/// A 4-level radix page table for one address space.
#[derive(Clone, Debug)]
pub struct PageTable {
    /// Arena of interior nodes; index 0 is the root (PML4).
    nodes: Vec<Node>,
    /// Leaf entries keyed by virtual page number.
    leaves: FxHashMap<u64, Pte>,
}

impl PageTable {
    /// Creates an empty table, allocating its root node from `frames`.
    ///
    /// # Errors
    ///
    /// Returns [`hvc_types::HvcError::OutOfMemory`] if no frame is free.
    pub fn new(frames: &mut BuddyAllocator) -> Result<Self> {
        let root = Node {
            frame: frames.alloc_frame()?,
            children: FxHashMap::default(),
        };
        Ok(PageTable {
            nodes: vec![root],
            leaves: FxHashMap::default(),
        })
    }

    /// Installs or replaces the mapping for `vpage`.
    ///
    /// Interior nodes are created on demand (each takes a physical frame).
    ///
    /// # Errors
    ///
    /// Returns [`hvc_types::HvcError::OutOfMemory`] if an interior node
    /// cannot be allocated.
    pub fn map(&mut self, frames: &mut BuddyAllocator, vpage: VirtPage, pte: Pte) -> Result<()> {
        let mut node = 0usize;
        for level in (1..PT_LEVELS).rev() {
            let idx = Self::level_index(vpage, level);
            node = match self.nodes[node].children.get(&idx) {
                Some(&child) => child,
                None => {
                    let frame = frames.alloc_frame()?;
                    let child = self.nodes.len();
                    self.nodes.push(Node {
                        frame,
                        children: FxHashMap::default(),
                    });
                    self.nodes[node].children.insert(idx, child);
                    child
                }
            };
        }
        self.leaves.insert(vpage.as_u64(), pte);
        Ok(())
    }

    /// Removes the mapping for `vpage`, returning the old entry.
    pub fn unmap(&mut self, vpage: VirtPage) -> Option<Pte> {
        self.leaves.remove(&vpage.as_u64())
    }

    /// Looks up the leaf entry for `vpage`.
    pub fn lookup(&self, vpage: VirtPage) -> Option<Pte> {
        self.leaves.get(&vpage.as_u64()).copied()
    }

    /// Mutable access to the leaf entry for `vpage` (permission or
    /// sharing-bit changes).
    pub fn lookup_mut(&mut self, vpage: VirtPage) -> Option<&mut Pte> {
        self.leaves.get_mut(&vpage.as_u64())
    }

    /// Returns the leaf entry together with the four physical addresses a
    /// hardware walker would read, root first. The path is well-defined
    /// even for unmapped pages as far as nodes exist; `None` means the
    /// page is unmapped (a true page fault).
    pub fn walk(&self, vpage: VirtPage) -> Option<(Pte, WalkPath)> {
        let pte = self.lookup(vpage)?;
        Some((pte, self.walk_path(vpage)))
    }

    /// The physical entry addresses a walk of `vpage` touches, root
    /// first. Levels whose interior node is missing repeat the deepest
    /// existing node's entry address (the walk aborts there in reality;
    /// charging the same address keeps accounting simple and conservative).
    pub fn walk_path(&self, vpage: VirtPage) -> WalkPath {
        let mut path = [PhysAddr::new(0); PT_LEVELS];
        let mut node = 0usize;
        for level in (0..PT_LEVELS).rev() {
            let idx = Self::level_index(vpage, level);
            let entry_addr = self.nodes[node].frame.base() + u64::from(idx) * 8;
            path[PT_LEVELS - 1 - level] = entry_addr;
            if level > 0 {
                match self.nodes[node].children.get(&idx) {
                    Some(&child) => node = child,
                    None => {
                        // Walk aborts; charge remaining levels to the same
                        // entry (they will be absorbed by the cache).
                        for l in (0..level).rev() {
                            path[PT_LEVELS - 1 - l] = entry_addr;
                        }
                        break;
                    }
                }
            }
        }
        path
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.leaves.len()
    }

    /// Iterates over `(vpage, pte)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VirtPage, Pte)> + '_ {
        self.leaves
            .iter()
            .map(|(&vpn, &pte)| (VirtPage::new(vpn), pte))
    }

    /// Frames used by interior nodes (page-table overhead accounting).
    pub fn node_frames(&self) -> usize {
        self.nodes.len()
    }

    /// Index into the page-table level `level` (0 = leaf PT, 3 = PML4).
    fn level_index(vpage: VirtPage, level: usize) -> u16 {
        ((vpage.as_u64() >> (LEVEL_BITS as usize * level)) & ((1 << LEVEL_BITS) - 1)) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BuddyAllocator, PageTable) {
        let mut b = BuddyAllocator::new(1 << 30);
        let pt = PageTable::new(&mut b).unwrap();
        (b, pt)
    }

    fn pte(frame: u64) -> Pte {
        Pte {
            frame: PhysFrame::new(frame),
            perm: Permissions::RW,
            shared: false,
        }
    }

    #[test]
    fn map_then_lookup() {
        let (mut b, mut pt) = setup();
        let vp = VirtPage::new(0x12345);
        pt.map(&mut b, vp, pte(7)).unwrap();
        assert_eq!(pt.lookup(vp), Some(pte(7)));
        assert_eq!(pt.lookup(VirtPage::new(0x12346)), None);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn unmap_removes() {
        let (mut b, mut pt) = setup();
        let vp = VirtPage::new(5);
        pt.map(&mut b, vp, pte(1)).unwrap();
        assert_eq!(pt.unmap(vp), Some(pte(1)));
        assert_eq!(pt.lookup(vp), None);
        assert_eq!(pt.unmap(vp), None);
    }

    #[test]
    fn walk_reports_four_distinct_levels_for_spread_pages() {
        let (mut b, mut pt) = setup();
        let vp = VirtPage::new(0x0001_2345_6789);
        pt.map(&mut b, vp, pte(3)).unwrap();
        let (got, path) = pt.walk(vp).unwrap();
        assert_eq!(got, pte(3));
        // All four entry addresses are distinct (different nodes).
        for i in 0..PT_LEVELS {
            for j in i + 1..PT_LEVELS {
                assert_ne!(path[i], path[j]);
            }
        }
    }

    #[test]
    fn contiguous_pages_share_upper_level_nodes() {
        let (mut b, mut pt) = setup();
        pt.map(&mut b, VirtPage::new(0), pte(1)).unwrap();
        let nodes_before = pt.node_frames();
        pt.map(&mut b, VirtPage::new(1), pte(2)).unwrap();
        assert_eq!(pt.node_frames(), nodes_before, "same PT leaf node");
        let p0 = pt.walk_path(VirtPage::new(0));
        let p1 = pt.walk_path(VirtPage::new(1));
        assert_eq!(p0[0], p1[0], "same PML4 entry");
        assert_eq!(p0[1], p1[1]);
        assert_eq!(p0[2], p1[2]);
        assert_ne!(p0[3], p1[3], "different PT entries");
    }

    #[test]
    fn walk_of_unmapped_page_is_none_but_path_exists() {
        let (mut b, mut pt) = setup();
        pt.map(&mut b, VirtPage::new(0), pte(1)).unwrap();
        assert!(pt.walk(VirtPage::new(0x8000_0000)).is_none());
        let path = pt.walk_path(VirtPage::new(0x8000_0000));
        // Walk aborts at the root; all levels charge the root entry.
        assert_eq!(path[0], path[1]);
    }

    #[test]
    fn lookup_mut_edits_in_place() {
        let (mut b, mut pt) = setup();
        let vp = VirtPage::new(9);
        pt.map(&mut b, vp, pte(4)).unwrap();
        pt.lookup_mut(vp).unwrap().shared = true;
        assert!(pt.lookup(vp).unwrap().shared);
    }

    #[test]
    fn iter_visits_all_mappings() {
        let (mut b, mut pt) = setup();
        for i in 0..10 {
            pt.map(&mut b, VirtPage::new(i), pte(i)).unwrap();
        }
        let mut seen: Vec<u64> = pt.iter().map(|(vp, _)| vp.as_u64()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}
