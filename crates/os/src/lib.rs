//! Operating-system substrate for the HVC simulator.
//!
//! The paper's mechanisms are HW/SW co-designed: the OS owns the synonym
//! filters, the page tables (with a per-page *shared* bit), the
//! system-wide segment table for many-segment translation, and the
//! TLB-shootdown machinery that propagates all of those to other cores.
//! This crate provides that OS:
//!
//! * [`BuddyAllocator`] — physical-frame management with contiguous
//!   (eager) allocation, the source of segment contiguity and of external
//!   fragmentation,
//! * [`PageTable`] — 4-level x86-64 radix tables whose node addresses are
//!   real simulated physical addresses (so page walks generate memory
//!   references),
//! * [`AddressSpace`] / [`Kernel`] — processes, VMAs, demand paging vs.
//!   eager segment allocation, shared-memory objects (synonym pages),
//!   read-only content sharing, DMA pinning, and shootdown accounting.
//!
//! # Examples
//!
//! ```
//! use hvc_os::{AllocPolicy, Kernel, MapIntent};
//! use hvc_types::{Permissions, VirtAddr};
//!
//! # fn main() -> Result<(), hvc_types::HvcError> {
//! let mut kernel = Kernel::new(4 << 30, AllocPolicy::DemandPaging);
//! let asid = kernel.create_process()?;
//! kernel.mmap(asid, VirtAddr::new(0x1000_0000), 1 << 20, Permissions::RW, MapIntent::Private)?;
//! let pte = kernel.translate_touch(asid, VirtAddr::new(0x1000_0040))?;
//! assert!(!pte.shared, "private pages are non-synonym");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addrspace;
mod frame;
mod kernel;
mod pagetable;
mod segment;
mod shm;

pub use addrspace::{AddressSpace, Vma};
pub use frame::{BuddyAllocator, MAX_BLOCK_FRAMES};
pub use kernel::{AllocPolicy, FlushRequest, Kernel, KernelStats, MapIntent};
pub use pagetable::{PageTable, Pte, WalkPath, PT_LEVELS};
pub use segment::{Segment, SegmentId, SegmentTable};
pub use shm::ShmId;
