//! Per-process address spaces: VMAs, page table, synonym filter.

use crate::pagetable::PageTable;
use crate::segment::SegmentId;
use crate::shm::ShmId;
use hvc_filter::SynonymFilter;
use hvc_types::{Asid, FxHashSet, Permissions, VirtAddr, PAGE_SHIFT};
use std::collections::BTreeMap;

/// What backs a virtual memory area.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum VmaBacking {
    /// Anonymous private memory (non-synonym).
    Private,
    /// A r/w shared-memory object (synonym pages).
    Shared(ShmId),
    /// A read-only mapping of a shared object (content sharing — *not* a
    /// synonym thanks to the paper's r/o optimization).
    SharedRo(ShmId),
    /// A DMA buffer (synonym: devices address it physically).
    Dma,
}

/// A virtual memory area of one address space.
#[derive(Clone, Debug)]
pub struct Vma {
    /// First address (page aligned).
    pub start: VirtAddr,
    /// Length in bytes (page aligned).
    pub len: u64,
    /// Permissions pages of this area are mapped with.
    pub perm: Permissions,
    pub(crate) backing: VmaBacking,
    /// Segments eagerly allocated for this area (eager policy only).
    pub(crate) segments: Vec<SegmentId>,
}

impl Vma {
    /// Exclusive end address.
    pub fn end(&self) -> VirtAddr {
        self.start + self.len
    }

    /// Returns `true` if `va` falls inside the area.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.start && va < self.end()
    }

    /// Returns `true` if the backing produces r/w synonym pages.
    pub fn is_rw_shared(&self) -> bool {
        matches!(self.backing, VmaBacking::Shared(_) | VmaBacking::Dma)
    }
}

/// One process address space.
#[derive(Debug)]
pub struct AddressSpace {
    /// The identifier the cache hierarchy tags non-synonym lines with.
    pub asid: Asid,
    pub(crate) page_table: PageTable,
    /// The OS-maintained synonym filter pair for this space.
    pub filter: SynonymFilter,
    pub(crate) vmas: BTreeMap<u64, Vma>,
    /// Pages touched at least once (utilization accounting).
    pub(crate) touched: FxHashSet<u64>,
    /// Bytes eagerly allocated to this space (eager policy).
    pub(crate) eager_allocated: u64,
}

impl AddressSpace {
    pub(crate) fn new(asid: Asid, page_table: PageTable) -> Self {
        AddressSpace {
            asid,
            page_table,
            filter: SynonymFilter::new(),
            vmas: BTreeMap::new(),
            touched: FxHashSet::default(),
            eager_allocated: 0,
        }
    }

    /// Finds the VMA containing `va`.
    pub fn vma(&self, va: VirtAddr) -> Option<&Vma> {
        let (_, vma) = self.vmas.range(..=va.as_u64()).next_back()?;
        vma.contains(va).then_some(vma)
    }

    /// Returns `true` if `[start, start+len)` overlaps any VMA.
    pub(crate) fn overlaps(&self, start: VirtAddr, len: u64) -> bool {
        if let Some((_, prev)) = self.vmas.range(..=start.as_u64()).next_back() {
            if prev.end() > start {
                return true;
            }
        }
        if let Some((_, next)) = self.vmas.range(start.as_u64() + 1..).next() {
            if next.start.as_u64() < start.as_u64() + len {
                return true;
            }
        }
        false
    }

    /// Iterates the VMAs in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Pages currently mapped in the page table.
    pub fn mapped_pages(&self) -> usize {
        self.page_table.mapped_pages()
    }

    /// Total pages backing r/w-shared (synonym) VMAs.
    pub fn rw_shared_pages(&self) -> u64 {
        self.vmas
            .values()
            .filter(|v| v.is_rw_shared())
            .map(|v| v.len >> PAGE_SHIFT)
            .sum()
    }

    /// Total pages across all VMAs.
    pub fn total_vma_pages(&self) -> u64 {
        self.vmas.values().map(|v| v.len >> PAGE_SHIFT).sum()
    }

    /// Distinct pages touched since creation.
    pub fn touched_pages(&self) -> u64 {
        self.touched.len() as u64
    }

    /// Bytes eagerly allocated (eager segment policy).
    pub fn eager_allocated_bytes(&self) -> u64 {
        self.eager_allocated
    }

    /// Memory utilization: touched bytes over eagerly allocated bytes
    /// (Table III's final column); `None` under demand paging.
    pub fn eager_utilization(&self) -> Option<f64> {
        (self.eager_allocated > 0).then(|| {
            let touched = (self.touched.len() as u64) << PAGE_SHIFT;
            touched as f64 / self.eager_allocated as f64
        })
    }

    /// Read-only view of the page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuddyAllocator;

    fn space() -> (BuddyAllocator, AddressSpace) {
        let mut b = BuddyAllocator::new(1 << 30);
        let pt = PageTable::new(&mut b).unwrap();
        (b, AddressSpace::new(Asid::new(1), pt))
    }

    fn vma(start: u64, len: u64, backing: VmaBacking) -> Vma {
        Vma {
            start: VirtAddr::new(start),
            len,
            perm: Permissions::RW,
            backing,
            segments: Vec::new(),
        }
    }

    #[test]
    fn vma_lookup() {
        let (_b, mut s) = space();
        s.vmas
            .insert(0x1000, vma(0x1000, 0x2000, VmaBacking::Private));
        assert!(s.vma(VirtAddr::new(0x1000)).is_some());
        assert!(s.vma(VirtAddr::new(0x2fff)).is_some());
        assert!(s.vma(VirtAddr::new(0x3000)).is_none());
        assert!(s.vma(VirtAddr::new(0x0fff)).is_none());
    }

    #[test]
    fn overlap_detection() {
        let (_b, mut s) = space();
        s.vmas
            .insert(0x2000, vma(0x2000, 0x2000, VmaBacking::Private));
        assert!(s.overlaps(VirtAddr::new(0x3000), 0x1000));
        assert!(s.overlaps(VirtAddr::new(0x1000), 0x1001));
        assert!(!s.overlaps(VirtAddr::new(0x1000), 0x1000));
        assert!(!s.overlaps(VirtAddr::new(0x4000), 0x1000));
    }

    #[test]
    fn sharing_accounting() {
        let (_b, mut s) = space();
        s.vmas
            .insert(0x1000, vma(0x1000, 0x4000, VmaBacking::Private));
        s.vmas
            .insert(0x10000, vma(0x10000, 0x2000, VmaBacking::Shared(ShmId(0))));
        s.vmas.insert(
            0x20000,
            vma(0x20000, 0x1000, VmaBacking::SharedRo(ShmId(1))),
        );
        s.vmas
            .insert(0x30000, vma(0x30000, 0x1000, VmaBacking::Dma));
        assert_eq!(s.rw_shared_pages(), 2 + 1, "shm + dma count, r/o does not");
        assert_eq!(s.total_vma_pages(), 4 + 2 + 1 + 1);
    }

    #[test]
    fn utilization_requires_eager_allocation() {
        let (_b, mut s) = space();
        assert_eq!(s.eager_utilization(), None);
        s.eager_allocated = 4 * 4096;
        s.touched.insert(1);
        s.touched.insert(2);
        assert!((s.eager_utilization().unwrap() - 0.5).abs() < 1e-12);
    }
}
