//! Shared-memory objects — the source of r/w synonym pages.

use hvc_types::PhysFrame;

/// Identifier of a System-V-style shared memory object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShmId(pub u32);

/// A shared memory object: a set of physical frames that multiple address
/// spaces may map (at different virtual addresses — synonyms).
#[derive(Clone, Debug)]
pub(crate) struct ShmObject {
    pub frames: Vec<PhysFrame>,
    /// Number of address spaces currently mapping the object.
    pub attachments: u32,
}
