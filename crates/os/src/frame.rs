//! Buddy allocator for physical frames.
//!
//! Eager segment allocation needs large, *contiguous* physical regions;
//! demand paging needs single frames. A binary buddy system provides both
//! and — importantly for the paper's Table III and Figure 7 — produces
//! realistic external fragmentation as allocation patterns interleave.

use hvc_types::{HvcError, PhysFrame, Result, PAGE_SHIFT, PAGE_SIZE};
use std::collections::BTreeSet;

/// Maximum buddy order (2^18 frames = 1 GiB blocks).
const MAX_ORDER: u32 = 18;

/// Frames in the largest allocatable block (1 GiB).
pub const MAX_BLOCK_FRAMES: u64 = 1 << MAX_ORDER;

/// A binary-buddy physical frame allocator.
///
/// Frames are identified by [`PhysFrame`] number starting at zero. Blocks
/// of `2^order` frames are split and merged on demand; freed blocks
/// eagerly coalesce with their buddies.
#[derive(Clone, Debug)]
pub struct BuddyAllocator {
    /// Free blocks per order, keyed by first frame number.
    free: Vec<BTreeSet<u64>>,
    total_frames: u64,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing `bytes` of physical memory starting
    /// at frame 0.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or not page aligned.
    pub fn new(bytes: u64) -> Self {
        Self::with_base(PhysFrame::new(0), bytes)
    }

    /// Creates an allocator managing `bytes` of physical memory starting
    /// at `base` — used to carve disjoint regions (e.g. a kernel metadata
    /// pool separate from user memory) out of one physical address space.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or not page aligned.
    ///
    /// Any `base` is safe: the region decomposes into naturally-aligned
    /// buddy blocks, and blocks outside the region are never free here,
    /// so coalescing cannot escape the region.
    pub fn with_base(base: PhysFrame, bytes: u64) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(PAGE_SIZE),
            "physical memory must be a positive multiple of the page size"
        );
        let total_frames = bytes >> PAGE_SHIFT;
        let free: Vec<BTreeSet<u64>> = (0..=MAX_ORDER).map(|_| BTreeSet::new()).collect();
        let mut alloc = BuddyAllocator {
            free,
            total_frames,
            free_frames: 0,
        };
        alloc.free_exact(base, total_frames);
        alloc
    }

    /// Total managed frames.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`HvcError::OutOfMemory`] when no frame is free.
    pub fn alloc_frame(&mut self) -> Result<PhysFrame> {
        self.alloc_order(0).map(PhysFrame::new)
    }

    /// Allocates `2^order` contiguous frames, naturally aligned.
    ///
    /// # Errors
    ///
    /// Returns [`HvcError::OutOfMemory`] when no sufficiently large block
    /// exists (external fragmentation can cause this even when enough
    /// total frames are free).
    pub fn alloc_block(&mut self, order: u32) -> Result<PhysFrame> {
        self.alloc_order(order).map(PhysFrame::new)
    }

    /// Allocates exactly `n` contiguous frames by taking the enclosing
    /// power-of-two block and returning the unused tail to the free lists.
    ///
    /// # Errors
    ///
    /// Returns [`HvcError::OutOfMemory`] if no enclosing block is free, or
    /// [`HvcError::BadConfig`] if `n` is zero or exceeds the maximum block.
    pub fn alloc_exact(&mut self, n: u64) -> Result<PhysFrame> {
        if n == 0 {
            return Err(HvcError::BadConfig("cannot allocate zero frames"));
        }
        let order = 64 - (n - 1).leading_zeros();
        if order > MAX_ORDER {
            return Err(HvcError::BadConfig("allocation exceeds maximum block size"));
        }
        let base = self.alloc_order(order)?;
        // Return the tail [base+n, base+2^order) in maximal buddy chunks.
        let mut cursor = base + n;
        let end = base + (1u64 << order);
        while cursor < end {
            // Largest naturally-aligned block starting at `cursor` that
            // fits before `end`.
            let align_order = cursor.trailing_zeros().min(MAX_ORDER);
            let mut o = align_order;
            while (1u64 << o) > end - cursor {
                o -= 1;
            }
            self.free[o as usize].insert(cursor);
            self.free_frames += 1u64 << o;
            cursor += 1u64 << o;
        }
        debug_assert!(self.free_frames <= self.total_frames);
        Ok(PhysFrame::new(base))
    }

    /// Frees `n` contiguous frames starting at `base` (previously obtained
    /// from [`BuddyAllocator::alloc_exact`] or the block/frame variants).
    ///
    /// Freeing decomposes the range into naturally-aligned buddy blocks
    /// and coalesces each with its free buddy.
    pub fn free_exact(&mut self, base: PhysFrame, n: u64) {
        let mut cursor = base.as_u64();
        let end = cursor + n;
        while cursor < end {
            let align_order = if cursor == 0 {
                MAX_ORDER
            } else {
                cursor.trailing_zeros().min(MAX_ORDER)
            };
            let mut o = align_order;
            while (1u64 << o) > end - cursor {
                o -= 1;
            }
            self.free_block_at(cursor, o);
            cursor += 1u64 << o;
        }
    }

    /// Size in frames of the largest free contiguous block.
    pub fn largest_free_block(&self) -> u64 {
        for o in (0..=MAX_ORDER).rev() {
            if !self.free[o as usize].is_empty() {
                return 1u64 << o;
            }
        }
        0
    }

    /// Returns `true` if the `n` frames starting at `base` are all free as
    /// a single allocatable run — used by the segment allocator to try to
    /// *extend* an existing segment in place. Partial coverage by larger
    /// free blocks counts (they are split on claim).
    pub fn is_run_free(&self, base: PhysFrame, n: u64) -> bool {
        let mut cursor = base.as_u64();
        let end = cursor + n;
        while cursor < end {
            match self.covering_free_block(cursor) {
                Some((o, b)) => cursor = b + (1u64 << o),
                None => return false,
            }
        }
        true
    }

    /// Claims the `n` frames starting at `base`, which must satisfy
    /// [`BuddyAllocator::is_run_free`]. Covering blocks are split, with
    /// the portions outside the run returned to the free lists.
    ///
    /// # Errors
    ///
    /// Returns [`HvcError::OutOfMemory`] if the run is not entirely free.
    pub fn claim_run(&mut self, base: PhysFrame, n: u64) -> Result<()> {
        if !self.is_run_free(base, n) {
            return Err(HvcError::OutOfMemory);
        }
        let mut cursor = base.as_u64();
        let end = cursor + n;
        while cursor < end {
            let (o, b) = self
                .covering_free_block(cursor)
                .expect("checked by is_run_free");
            self.free[o as usize].remove(&b);
            self.free_frames -= 1u64 << o;
            let block_end = b + (1u64 << o);
            // Return the head and tail of the block outside the run.
            if b < cursor {
                self.free_exact(PhysFrame::new(b), cursor - b);
            }
            if block_end > end {
                self.free_exact(PhysFrame::new(end), block_end - end);
                cursor = end;
            } else {
                cursor = block_end;
            }
        }
        Ok(())
    }

    /// Finds the free block (if any) containing `frame`.
    fn covering_free_block(&self, frame: u64) -> Option<(u32, u64)> {
        for o in 0..=MAX_ORDER {
            let b = frame & !((1u64 << o) - 1);
            if self.free[o as usize].contains(&b) {
                return Some((o, b));
            }
        }
        None
    }

    // --- internals ---

    fn alloc_order(&mut self, order: u32) -> Result<u64> {
        // Find the smallest order with a free block.
        let mut o = order;
        while o <= MAX_ORDER && self.free[o as usize].is_empty() {
            o += 1;
        }
        if o > MAX_ORDER {
            return Err(HvcError::OutOfMemory);
        }
        let base = *self.free[o as usize].iter().next().expect("non-empty");
        self.free[o as usize].remove(&base);
        // Split down to the requested order.
        while o > order {
            o -= 1;
            self.free[o as usize].insert(base + (1u64 << o));
        }
        self.free_frames -= 1u64 << order;
        Ok(base)
    }

    fn free_block_at(&mut self, mut base: u64, mut order: u32) {
        self.free_frames += 1u64 << order;
        // Coalesce with buddies while possible.
        while order < MAX_ORDER {
            let buddy = base ^ (1u64 << order);
            if self.free[order as usize].remove(&buddy) {
                base = base.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        self.free[order as usize].insert(base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gib(n: u64) -> u64 {
        n << 30
    }

    #[test]
    fn allocates_distinct_frames() {
        let mut b = BuddyAllocator::new(gib(1));
        let f1 = b.alloc_frame().unwrap();
        let f2 = b.alloc_frame().unwrap();
        assert_ne!(f1, f2);
        assert_eq!(b.free_frames(), b.total_frames() - 2);
    }

    #[test]
    fn exact_allocation_returns_tail() {
        let mut b = BuddyAllocator::new(gib(1));
        let before = b.free_frames();
        let base = b.alloc_exact(5).unwrap();
        assert_eq!(b.free_frames(), before - 5);
        b.free_exact(base, 5);
        assert_eq!(b.free_frames(), before);
        assert_eq!(b.largest_free_block(), 1u64 << MAX_ORDER);
    }

    #[test]
    fn free_coalesces_back_to_max_block() {
        let mut b = BuddyAllocator::new(gib(1));
        let f = b.alloc_block(3).unwrap();
        assert!(b.largest_free_block() < b.total_frames() || b.total_frames() == 1 << MAX_ORDER);
        b.free_exact(f, 8);
        assert_eq!(b.free_frames(), b.total_frames());
        assert_eq!(b.largest_free_block(), 1u64 << MAX_ORDER);
    }

    #[test]
    fn out_of_memory_reported() {
        let mut b = BuddyAllocator::new(gib(1));
        // 1 GiB = exactly one max-order block.
        let _ = b.alloc_block(MAX_ORDER).unwrap();
        assert_eq!(b.alloc_frame(), Err(HvcError::OutOfMemory));
    }

    #[test]
    fn fragmentation_limits_contiguity() {
        let mut b = BuddyAllocator::new(gib(1));
        // Allocate every frame, then free alternating frames: lots of free
        // memory, no contiguity.
        let n = b.total_frames();
        let base = b.alloc_block(MAX_ORDER).unwrap();
        for i in (0..n).step_by(2) {
            b.free_exact(base.offset(i), 1);
        }
        assert_eq!(b.free_frames(), n / 2);
        assert_eq!(b.largest_free_block(), 1);
        assert!(b.alloc_exact(2).is_err());
    }

    #[test]
    fn run_claiming_extends_in_place() {
        let mut b = BuddyAllocator::new(gib(1));
        let base = b.alloc_exact(10).unwrap();
        let next = base.offset(10);
        assert!(b.is_run_free(next, 6));
        b.claim_run(next, 6).unwrap();
        assert!(!b.is_run_free(next, 6));
        // Cannot claim twice.
        assert_eq!(b.claim_run(next, 6), Err(HvcError::OutOfMemory));
    }

    #[test]
    fn zero_and_oversize_exact_rejected() {
        let mut b = BuddyAllocator::new(gib(1));
        assert!(matches!(b.alloc_exact(0), Err(HvcError::BadConfig(_))));
        assert!(matches!(
            b.alloc_exact(1 << 19),
            Err(HvcError::BadConfig(_))
        ));
    }

    #[test]
    #[should_panic(expected = "positive multiple")]
    fn unaligned_capacity_rejected() {
        let _ = BuddyAllocator::new(123);
    }

    #[test]
    fn alloc_exact_free_frames_accounting_is_exact() {
        let mut b = BuddyAllocator::new(gib(1));
        let total = b.free_frames();
        let mut allocated = Vec::new();
        for n in [1u64, 3, 7, 100, 513] {
            allocated.push((b.alloc_exact(n).unwrap(), n));
        }
        let used: u64 = allocated.iter().map(|&(_, n)| n).sum();
        assert_eq!(b.free_frames(), total - used);
        for (f, n) in allocated {
            b.free_exact(f, n);
        }
        assert_eq!(b.free_frames(), total);
    }
}
