//! System configuration and translation-scheme selection.

use hvc_cache::HierarchyConfig;
use hvc_mem::DramConfig;
use hvc_tlb::TlbConfig;

/// How delayed (post-LLC) translation is performed under hybrid virtual
/// caching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayedKind {
    /// Page-granularity delayed TLB with the given entry count (the
    /// paper sweeps 1K–32K).
    Tlb(usize),
    /// Many-segment translation; `segment_cache` enables the 128-entry
    /// SC (Figure 9 evaluates both variants).
    ManySegment {
        /// Enable the 128-entry 2 MB-granularity segment cache.
        segment_cache: bool,
    },
}

/// The translation architecture under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TranslationScheme {
    /// Conventional physically-addressed caches with a two-level TLB
    /// before L1 (Haswell-like, Table IV).
    Baseline,
    /// Hybrid virtual caching with a synonym filter + synonym TLB before
    /// L1 and page-granularity delayed translation after the LLC.
    HybridDelayedTlb(
        /// Delayed TLB entry count.
        usize,
    ),
    /// Hybrid virtual caching with many-segment delayed translation.
    HybridManySegment {
        /// Enable the segment cache.
        segment_cache: bool,
    },
    /// No translation cost at all (upper bound; "ideal TLB" in Figure 9).
    Ideal,
    /// Enigma-like intermediate address space (Section II): a coarse
    /// first-level translation before L1 maps synonyms of one shared
    /// object to a single intermediate name (no Bloom filter, no synonym
    /// TLB); a fixed page-granularity delayed TLB translates intermediate
    /// → physical after LLC misses. Demonstrates the scalability limit
    /// the paper attributes to Enigma.
    EnigmaDelayedTlb(
        /// Delayed TLB entry count.
        usize,
    ),
}

impl TranslationScheme {
    /// Returns `true` for schemes that cache non-synonym data virtually.
    pub fn is_hybrid(self) -> bool {
        matches!(
            self,
            TranslationScheme::HybridDelayedTlb(_) | TranslationScheme::HybridManySegment { .. }
        )
    }

    /// Returns `true` for schemes that defer translation past the LLC.
    pub fn is_delayed(self) -> bool {
        self.is_hybrid() || matches!(self, TranslationScheme::EnigmaDelayedTlb(_))
    }
}

/// Full-system parameters (Table IV plus model knobs).
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Baseline L1 TLB.
    pub l1_tlb: TlbConfig,
    /// Baseline L2 TLB.
    pub l2_tlb: TlbConfig,
    /// Hybrid synonym TLB (before L1, candidates only).
    pub synonym_tlb: TlbConfig,
    /// Core retire width (instructions per cycle when nothing stalls).
    pub width: u32,
    /// Cycles of memory latency the out-of-order window hides per access.
    pub hidden_latency: u64,
    /// Overlap delayed translation with the LLC access instead of
    /// starting it only after the miss is known (the paper's Section IV-C
    /// trade-off: "parallel accesses to the delayed translation and LLCs
    /// can improve the performance, \[but\] increase the energy consumption
    /// … to reduce the energy overhead, an alternative way is to access
    /// delayed translation serially"). Serial is the paper's default and
    /// ours; parallel hides up to one LLC latency of translation time but
    /// performs a translation for every LLC *access*, which the energy
    /// accounting reflects.
    pub parallel_delayed: bool,
    /// Enable a next-line prefetcher on LLC misses. Under physical
    /// caching the prefetcher must stop at page boundaries (the next
    /// physical line is unknown without a translation); under hybrid
    /// virtual caching it prefetches across them — a classic side benefit
    /// of virtually-addressed hierarchies.
    pub prefetch_next_line: bool,
    /// Model an instruction-fetch stream: one L1I fetch per trace item
    /// from a small hot code region, going through the translation
    /// front-end like data accesses do (the paper's observation that
    /// TLBs are consulted "for every instruction fetch and data
    /// access"). Off by default; the headline experiments measure the
    /// data side as the paper's Section III-C does.
    pub model_ifetch: bool,
    /// Event-tracer ring-buffer capacity. `0` (the default) disables
    /// tracing entirely — the simulator then pays one branch per
    /// candidate event and allocates nothing.
    pub trace_capacity: usize,
}

impl SystemConfig {
    /// The paper's Table IV configuration: 3.4 GHz 4-commit OoO core,
    /// 32 KB L1s / 256 KB L2 / 2 MB LLC, 64-entry L1 + 1024-entry L2
    /// TLBs, DDR3-1600.
    pub fn isca2016() -> Self {
        SystemConfig {
            hierarchy: HierarchyConfig::isca2016(1),
            dram: DramConfig::ddr3_1600(),
            l1_tlb: TlbConfig::l1_64(),
            l2_tlb: TlbConfig::l2_1024(),
            synonym_tlb: TlbConfig::synonym_64(),
            width: 4,
            hidden_latency: 12,
            parallel_delayed: false,
            prefetch_next_line: false,
            model_ifetch: false,
            trace_capacity: 0,
        }
    }

    /// Variant with the 8 MB shared LLC used in the Section III-C filter
    /// evaluation.
    pub fn isca2016_8mb_llc() -> Self {
        let mut c = Self::isca2016();
        c.hierarchy = HierarchyConfig {
            llc: hvc_cache::CacheConfig::l3_8m(),
            ..HierarchyConfig::isca2016(1)
        };
        c
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::isca2016()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isca_defaults() {
        let c = SystemConfig::isca2016();
        assert_eq!(c.width, 4);
        assert_eq!(c.l1_tlb.entries, 64);
        assert_eq!(c.l2_tlb.entries, 1024);
        assert_eq!(c.hierarchy.llc.size_bytes, 2 << 20);
        assert_eq!(SystemConfig::default().width, c.width);
        assert_eq!(
            SystemConfig::isca2016_8mb_llc().hierarchy.llc.size_bytes,
            8 << 20
        );
    }

    #[test]
    fn scheme_classification() {
        assert!(TranslationScheme::HybridDelayedTlb(1024).is_hybrid());
        assert!(TranslationScheme::HybridManySegment {
            segment_cache: true
        }
        .is_hybrid());
        assert!(!TranslationScheme::Baseline.is_hybrid());
        assert!(!TranslationScheme::Ideal.is_hybrid());
        assert!(!TranslationScheme::EnigmaDelayedTlb(1024).is_hybrid());
        assert!(TranslationScheme::EnigmaDelayedTlb(1024).is_delayed());
        assert!(!TranslationScheme::Baseline.is_delayed());
    }
}
