//! The hybrid virtual caching system: translation front-ends, a
//! trace-driven core timing model, the full system simulator, and the
//! translation energy model.
//!
//! This crate is the paper's primary contribution assembled from the
//! substrate crates:
//!
//! * [`TranslationScheme`] selects the architecture under test — the
//!   physically-addressed [baseline](TranslationScheme::Baseline), the
//!   hybrid virtual cache with a page-granularity
//!   [delayed TLB](TranslationScheme::HybridDelayedTlb) or with
//!   [many-segment translation](TranslationScheme::HybridManySegment),
//!   and an [ideal](TranslationScheme::Ideal) upper bound without
//!   translation costs,
//! * [`SystemSim`] runs a workload trace through the selected front-end,
//!   the hybrid cache hierarchy, delayed translation and DRAM,
//! * [`VirtSystemSim`] is the virtualized equivalent (guest + host
//!   filters, nested walks or 2D segments),
//! * [`EnergyModel`] converts event counts into translation energy, the
//!   paper's power claim.
//!
//! # Examples
//!
//! ```
//! use hvc_core::{SystemConfig, SystemSim, TranslationScheme};
//! use hvc_os::{AllocPolicy, Kernel};
//! use hvc_workloads::apps;
//!
//! # fn main() -> Result<(), hvc_types::HvcError> {
//! let mut kernel = Kernel::new(4 << 30, AllocPolicy::DemandPaging);
//! let mut wl = apps::gups(16 << 20).instantiate(&mut kernel, 7)?;
//! let mut sim = SystemSim::new(kernel, SystemConfig::isca2016(), TranslationScheme::Baseline);
//! let report = sim.run(&mut wl, 20_000);
//! assert!(report.ipc() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod core_model;
mod energy;
mod stats;
mod system;
mod virt_system;

pub use config::{DelayedKind, SystemConfig, TranslationScheme};
pub use core_model::CoreModel;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use stats::{RunReport, TranslationCounters};
pub use system::SystemSim;
pub use virt_system::{VirtScheme, VirtSystemSim};
