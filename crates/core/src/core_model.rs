//! A trace-driven, out-of-order-approximating core timing model.
//!
//! MARSSx86 models the paper's 5-issue, 128-ROB core cycle by cycle; the
//! figures we reproduce are *normalized*, so what matters is that IPC
//! responds to added or removed memory-path latency the way an OoO core's
//! does. This model captures the two first-order effects:
//!
//! * non-memory instructions retire `width` per cycle,
//! * each memory access exposes `max(0, latency - hidden)` cycles of
//!   stall, divided by the workload's memory-level parallelism (dependent
//!   pointer chases expose everything; GUPS-style independent misses
//!   overlap).

use hvc_types::Cycles;

/// The accumulating core model.
#[derive(Clone, Debug)]
pub struct CoreModel {
    width: u32,
    hidden: u64,
    instructions: u64,
    /// Fixed-point accumulator of issue cycles (per-item remainders).
    issue_insts: u64,
    stall_cycles: u64,
    /// Snapshot baselines set by [`CoreModel::mark`] (warm-up exclusion).
    mark_instructions: u64,
    mark_cycles: u64,
}

impl CoreModel {
    /// Creates a core retiring `width` instructions per cycle and hiding
    /// `hidden` cycles of each memory access in its OoO window.
    pub fn new(width: u32, hidden: u64) -> Self {
        assert!(width > 0, "core width must be positive");
        CoreModel {
            width,
            hidden,
            instructions: 0,
            issue_insts: 0,
            stall_cycles: 0,
            mark_instructions: 0,
            mark_cycles: 0,
        }
    }

    /// Marks the current point as the measurement origin: subsequent
    /// [`CoreModel::instructions`] / [`CoreModel::cycles`] / IPC readings
    /// exclude everything before the mark (warm-up exclusion). Absolute
    /// time ([`CoreModel::now`]) is unaffected.
    pub fn mark(&mut self) {
        self.mark_instructions = self.instructions;
        self.mark_cycles = self.now().get();
    }

    /// Retires `count` instructions (gap + the memory instruction).
    pub fn retire(&mut self, count: u64) {
        self.instructions += count;
        self.issue_insts += count;
    }

    /// Accounts a memory access of total `latency`, overlappable up to
    /// `mlp` ways.
    pub fn memory(&mut self, latency: Cycles, mlp: u32) {
        let exposed = latency.get().saturating_sub(self.hidden);
        self.stall_cycles += exposed / u64::from(mlp.max(1));
    }

    /// Current absolute time (issue + stalls) — also the DRAM timestamp.
    pub fn now(&self) -> Cycles {
        Cycles::new(self.issue_insts / u64::from(self.width) + self.stall_cycles)
    }

    /// Instructions retired since the last [`CoreModel::mark`].
    pub fn instructions(&self) -> u64 {
        self.instructions - self.mark_instructions
    }

    /// Cycles elapsed since the last [`CoreModel::mark`].
    pub fn cycles(&self) -> u64 {
        self.now().get() - self.mark_cycles
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.instructions as f64 / c as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_compute_ipc_equals_width() {
        let mut c = CoreModel::new(4, 12);
        c.retire(4000);
        assert_eq!(c.cycles(), 1000);
        assert!((c.ipc() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn short_latencies_are_hidden() {
        let mut c = CoreModel::new(4, 12);
        c.retire(400);
        c.memory(Cycles::new(10), 1);
        assert_eq!(c.cycles(), 100, "L1/L2-hit latency fully hidden");
    }

    #[test]
    fn long_latency_stalls_scale_with_mlp() {
        let mut a = CoreModel::new(4, 12);
        a.retire(4);
        a.memory(Cycles::new(212), 1);
        let serial = a.cycles();

        let mut b = CoreModel::new(4, 12);
        b.retire(4);
        b.memory(Cycles::new(212), 8);
        let overlapped = b.cycles();
        assert_eq!(serial, 1 + 200);
        assert_eq!(overlapped, 1 + 25);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = CoreModel::new(0, 0);
    }
}
