//! The native (non-virtualized) full-system simulator.

use crate::config::{SystemConfig, TranslationScheme};
use crate::core_model::CoreModel;
use crate::stats::{RunReport, TranslationCounters};
use hvc_cache::Hierarchy;
use hvc_mem::Dram;
use hvc_obs::{Component, CycleAttribution, EventTracer, ObsReport, TraceEvent};
use hvc_os::{FlushRequest, Kernel, KernelStats, Pte};
use hvc_segment::ManySegmentTranslator;
use hvc_tlb::{PageWalker, Tlb, TlbHit, TwoLevelTlb};
use hvc_types::{
    AccessKind, Asid, BlockName, CheckHooks, Cycles, MemRef, MergeStats, PhysAddr, TraceItem,
    VirtAddr,
};
use hvc_workloads::WorkloadInstance;

/// The full-system, trace-driven simulator for native execution.
///
/// One instance owns the OS ([`Kernel`]), the hybrid cache hierarchy,
/// DRAM, and the translation machinery selected by
/// [`TranslationScheme`]. Feed it a workload with [`SystemSim::run`].
pub struct SystemSim {
    kernel: Kernel,
    config: SystemConfig,
    scheme: TranslationScheme,
    hierarchy: Hierarchy,
    dram: Dram,
    core: CoreModel,
    /// Per-core private translation structures (the delayed structures
    /// after the LLC are shared, as in the paper).
    dtlb: Vec<TwoLevelTlb>,
    walker: Vec<PageWalker>,
    syn_tlb: Vec<Tlb>,
    delayed_tlb: Tlb,
    many: Option<ManySegmentTranslator>,
    /// Address-space → core placement, indexed by raw ASID (round-robin
    /// on first sight; `usize::MAX` marks an unplaced space).
    placement: Vec<usize>,
    /// Number of address spaces placed so far (drives the round-robin).
    placed: usize,
    /// Per-ASID instruction-fetch cursor within the synthetic code
    /// region (when `model_ifetch` is on), indexed by raw ASID;
    /// `u64::MAX` marks a space whose text region is not yet mapped.
    fetch_cursor: Vec<u64>,
    /// Last ASID that ran on each core (context-switch detection: a
    /// switch reloads the synonym-filter registers from memory).
    last_asid: Vec<Option<Asid>>,
    counters: TranslationCounters,
    refs: u64,
    /// Kernel counters at the last [`SystemSim::reset_stats`], so
    /// reports window OS events like every other counter.
    kernel_mark: KernelStats,
    /// Latency histograms + cycle attribution for the current window.
    /// Attribution is charged only at the latency-composition points of
    /// this module, so its components sum exactly to
    /// `obs.mem_latency.total()`.
    obs: ObsReport,
    /// Optional bounded event tracer (`config.trace_capacity > 0`).
    tracer: Option<EventTracer>,
    /// Optional runtime check hooks (one branch per access when unset).
    hooks: Option<Box<dyn CheckHooks>>,
}

impl SystemSim {
    /// Builds a simulator over an already-populated kernel (instantiate
    /// workloads first so eager segments exist for the many-segment
    /// scheme).
    pub fn new(kernel: Kernel, config: SystemConfig, scheme: TranslationScheme) -> Self {
        let many = match scheme {
            TranslationScheme::HybridManySegment {
                segment_cache: true,
            } => Some(ManySegmentTranslator::isca2016(kernel.segments())),
            TranslationScheme::HybridManySegment {
                segment_cache: false,
            } => Some(ManySegmentTranslator::isca2016_no_sc(kernel.segments())),
            _ => None,
        };
        let delayed_entries = match scheme {
            TranslationScheme::HybridDelayedTlb(n) | TranslationScheme::EnigmaDelayedTlb(n) => n,
            _ => 1024,
        };
        let cores = config.hierarchy.cores;
        SystemSim {
            hierarchy: Hierarchy::new(config.hierarchy.clone()),
            dram: Dram::new(config.dram.clone()),
            core: CoreModel::new(config.width, config.hidden_latency),
            dtlb: (0..cores)
                .map(|_| TwoLevelTlb::new(config.l1_tlb.clone(), config.l2_tlb.clone()))
                .collect(),
            walker: (0..cores).map(|_| PageWalker::new()).collect(),
            syn_tlb: (0..cores)
                .map(|_| Tlb::new(config.synonym_tlb.clone()))
                .collect(),
            delayed_tlb: Tlb::new(hvc_tlb::TlbConfig::delayed(delayed_entries)),
            many,
            placement: Vec::new(),
            placed: 0,
            fetch_cursor: Vec::new(),
            last_asid: vec![None; cores],
            tracer: (config.trace_capacity > 0).then(|| EventTracer::new(config.trace_capacity)),
            kernel,
            config,
            scheme,
            counters: TranslationCounters::default(),
            refs: 0,
            kernel_mark: KernelStats::default(),
            obs: ObsReport::default(),
            hooks: None,
        }
    }

    /// The core an address space runs on (round-robin placement on first
    /// appearance — a multiprogrammed schedule).
    #[inline]
    fn core_of(&mut self, asid: Asid) -> usize {
        let idx = asid.as_u16() as usize;
        if let Some(&core) = self.placement.get(idx) {
            if core != usize::MAX {
                return core;
            }
        } else {
            self.placement.resize(idx + 1, usize::MAX);
        }
        let core = self.placed % self.config.hierarchy.cores;
        self.placed += 1;
        self.placement[idx] = core;
        core
    }

    /// The scheme under test.
    pub fn scheme(&self) -> TranslationScheme {
        self.scheme
    }

    /// The kernel (for post-run inspection of spaces and segments).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The cache hierarchy (read-only; invariant sweeps).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Per-core synonym TLBs (read-only; invariant sweeps).
    pub fn synonym_tlbs(&self) -> &[Tlb] {
        &self.syn_tlb
    }

    /// Per-core two-level data TLBs (read-only; invariant sweeps).
    pub fn data_tlbs(&self) -> &[TwoLevelTlb] {
        &self.dtlb
    }

    /// The shared delayed TLB (read-only; invariant sweeps).
    pub fn delayed_tlb(&self) -> &Tlb {
        &self.delayed_tlb
    }

    /// The event tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&EventTracer> {
        self.tracer.as_ref()
    }

    /// Enables (or resizes) the bounded event tracer at runtime; a zero
    /// capacity disables it again.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = (capacity > 0).then(|| EventTracer::new(capacity));
    }

    /// Installs runtime check hooks (see [`CheckHooks`]). With no hooks
    /// installed the per-access cost is a single branch.
    pub fn set_check_hooks(&mut self, hooks: Box<dyn CheckHooks>) {
        self.hooks = Some(hooks);
    }

    /// Runs a kernel operation (unmap, process churn, sharing
    /// transition, …) and immediately applies every flush it queued, so
    /// the next access cannot observe a stale line or TLB entry. Use
    /// this instead of mutating the kernel between accesses directly.
    pub fn os<R>(&mut self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        let r = f(&mut self.kernel);
        self.apply_flushes();
        r
    }

    /// Records a trace event if tracing is on (~one branch when off).
    #[inline]
    fn trace(&mut self, name: &'static str, cat: &'static str, dur: Cycles, core: usize) {
        if let Some(t) = &mut self.tracer {
            t.record(TraceEvent {
                name,
                cat,
                ts: self.core.now().get(),
                dur: dur.get(),
                tid: core as u32,
            });
        }
    }

    /// Attributes an on-chip probe's cycles to the level that served it.
    #[inline]
    fn attribute_probe(&mut self, hit_level: Option<u8>, latency: Cycles) {
        let component = match hit_level {
            Some(0) => Component::L1Hit,
            Some(1) => Component::L2Hit,
            Some(2) => Component::LlcHit,
            _ => Component::MissProbe,
        };
        self.obs.attribution.add(component, latency);
    }

    /// Resets all statistics (cache/TLB/filter contents are kept, and
    /// absolute simulation time keeps advancing) so that measurements
    /// exclude warm-up. Typical use: `run` a warm-up slice, then
    /// `reset_stats`, then `run` the measured slice.
    pub fn reset_stats(&mut self) {
        self.counters = TranslationCounters::default();
        self.refs = 0;
        self.hierarchy.reset_stats();
        self.dram.reset_stats();
        for t in &mut self.dtlb {
            t.reset_stats();
        }
        for t in &mut self.syn_tlb {
            t.reset_stats();
        }
        self.delayed_tlb.reset_stats();
        for w in &mut self.walker {
            w.reset_stats();
        }
        if let Some(m) = &mut self.many {
            m.reset_stats();
        }
        self.core.mark();
        self.kernel_mark = self.kernel.stats().clone();
        self.obs = ObsReport::default();
    }

    /// Runs `refs` warm-up references (not measured) and then resets
    /// statistics.
    pub fn warm_up(&mut self, workload: &mut WorkloadInstance, refs: usize) {
        let mlp = workload.mlp();
        for _ in 0..refs {
            let item = workload.next_item();
            self.step(item, mlp);
        }
        self.reset_stats();
    }

    /// Runs `refs` memory references of `workload` and reports.
    pub fn run(&mut self, workload: &mut WorkloadInstance, refs: usize) -> RunReport {
        let mlp = workload.mlp();
        for _ in 0..refs {
            let item = workload.next_item();
            self.step(item, mlp);
        }
        self.report()
    }

    /// Replays a pre-recorded trace (e.g. loaded with `hvc-trace`) with
    /// the given memory-level-parallelism hint.
    pub fn run_trace<I>(&mut self, items: I, mlp: u32) -> RunReport
    where
        I: IntoIterator<Item = hvc_types::TraceItem>,
    {
        for item in items {
            self.step(item, mlp);
        }
        self.report()
    }

    /// Simulates a single trace item.
    pub fn step(&mut self, item: TraceItem, mlp: u32) {
        self.core.retire(item.instructions());
        self.refs += 1;
        let core = self.core_of(item.mref.asid);
        // Context switch: under hybrid schemes the OS loads the incoming
        // process's Bloom-filter pair into the core's filter registers
        // (two 1K-bit reads from memory, Section III-B).
        if self.last_asid[core] != Some(item.mref.asid) {
            self.last_asid[core] = Some(item.mref.asid);
            if self.scheme.is_hybrid() {
                self.counters.filter_reloads += 1;
            }
        }
        if self.config.model_ifetch {
            let fetch = self.synth_ifetch(item.mref.asid);
            let flat = match self.scheme {
                TranslationScheme::Baseline => self.step_baseline(core, fetch),
                TranslationScheme::Ideal => self.step_ideal(core, fetch),
                TranslationScheme::HybridDelayedTlb(_)
                | TranslationScheme::HybridManySegment { .. } => self.step_hybrid(core, fetch),
                TranslationScheme::EnigmaDelayedTlb(_) => self.step_enigma(core, fetch),
            };
            // Fetch latency is pipelined ahead of execution; only
            // out-of-code-region stalls would matter and the hot loop
            // stays resident, so charge nothing beyond the structures'
            // energy/statistics. The fetch still enters the latency
            // histogram (its attribution was recorded on the way).
            self.obs.mem_latency.record(flat);
            self.trace("ifetch", "mem", flat, core);
        }
        let latency = match self.scheme {
            TranslationScheme::Baseline => self.step_baseline(core, item.mref),
            TranslationScheme::Ideal => self.step_ideal(core, item.mref),
            TranslationScheme::HybridDelayedTlb(_)
            | TranslationScheme::HybridManySegment { .. } => self.step_hybrid(core, item.mref),
            TranslationScheme::EnigmaDelayedTlb(_) => self.step_enigma(core, item.mref),
        };
        self.obs.mem_latency.record(latency);
        self.trace("access", "mem", latency, core);
        self.core.memory(latency, mlp);
        if self.hooks.is_some() {
            let pending = self.kernel.pending_flush_requests();
            let refs = self.refs;
            if let Some(h) = &mut self.hooks {
                h.access_boundary(refs, pending);
            }
        }
    }

    /// Synthesizes the next instruction fetch of `asid`: a walk around a
    /// small hot code loop (128 lines = 8 KB) in a lazily-created RX
    /// region at a canonical text address.
    fn synth_ifetch(&mut self, asid: Asid) -> MemRef {
        const TEXT_BASE: u64 = 0x40_0000;
        const LOOP_LINES: u64 = 128;
        let idx = asid.as_u16() as usize;
        if idx >= self.fetch_cursor.len() {
            self.fetch_cursor.resize(idx + 1, u64::MAX);
        }
        if self.fetch_cursor[idx] == u64::MAX {
            // Lazily map the text region (ignore overlap errors if the
            // workload already mapped something there).
            let _ = self.kernel.mmap(
                asid,
                VirtAddr::new(TEXT_BASE),
                64 << 10,
                hvc_types::Permissions::RX,
                hvc_os::MapIntent::Private,
            );
            self.fetch_cursor[idx] = 0;
        }
        let cursor = &mut self.fetch_cursor[idx];
        *cursor = (*cursor + 1) % LOOP_LINES;
        let vaddr = VirtAddr::new(TEXT_BASE + *cursor * 64);
        MemRef {
            asid,
            vaddr,
            kind: AccessKind::Fetch,
        }
    }

    /// Builds the report for everything simulated so far.
    pub fn report(&self) -> RunReport {
        let mut translation = self.counters.clone();
        if let Some(m) = &self.many {
            let (sc_h, sc_m) = m.sc_stats();
            translation.sc_lookups = sc_h + sc_m;
            translation.index_cache_accesses = m.index_cache_stats().accesses();
            translation.segment_table_accesses = m.stats().tree_walks;
        }
        let mut obs = self.obs.clone();
        for w in &self.walker {
            obs.walk_latency.merge_from(&w.stats().walk_latency);
        }
        let os = self.kernel.stats().since(&self.kernel_mark);
        RunReport {
            instructions: self.core.instructions(),
            cycles: self.core.cycles(),
            refs: self.refs,
            translation,
            baseline_tlb_misses: self.dtlb.iter().map(TwoLevelTlb::full_misses).sum(),
            cache: self.hierarchy.stats(),
            dram: self.dram.stats().clone(),
            minor_faults: os.minor_faults,
            os,
            obs,
        }
    }

    /// The many-segment translator's own statistics (if active).
    pub fn many_segment_stats(&self) -> Option<&hvc_segment::ManySegmentStats> {
        self.many.as_ref().map(|m| m.stats())
    }

    // --- per-scheme access paths ---

    /// Conventional physical caching: TLB before L1, walk on miss.
    fn step_baseline(&mut self, core: usize, mref: MemRef) -> Cycles {
        let MemRef { asid, vaddr, kind } = mref;
        self.counters.l1_tlb_lookups += 1;
        let (hit_pte, hit, tlat) = self.dtlb[core].lookup(asid, vaddr.page_number());
        if hit != TlbHit::L1 {
            self.counters.l2_tlb_lookups += 1;
        }
        // An L1 TLB hit is overlapped with the VIPT L1 cache access.
        let mut front = match hit {
            TlbHit::L1 => Cycles::ZERO,
            _ => tlat,
        };
        self.obs.attribution.add(Component::FrontTlb, front);
        let pte = match hit_pte {
            Some(p) => p,
            None => {
                let pte = self.ensure_pte(asid, vaddr, kind);
                let walk = self.charged_walk(core, asid, vaddr);
                self.obs.attribution.add(Component::FrontWalk, walk);
                front += walk;
                self.dtlb[core].insert(asid, vaddr.page_number(), pte);
                pte
            }
        };
        if pte.shared {
            self.counters.shared_accesses += 1;
        }
        let pa = PhysAddr::new(pte.frame.base().as_u64() + vaddr.page_offset());
        front + self.phys_access(core, pa, kind)
    }

    /// Ideal: translation is free; physical naming.
    fn step_ideal(&mut self, core: usize, mref: MemRef) -> Cycles {
        let MemRef { asid, vaddr, kind } = mref;
        let pte = self.ensure_pte(asid, vaddr, kind);
        if pte.shared {
            self.counters.shared_accesses += 1;
        }
        let pa = PhysAddr::new(pte.frame.base().as_u64() + vaddr.page_offset());
        self.phys_access(core, pa, kind)
    }

    /// Hybrid virtual caching: filter → (synonym TLB | virtual path).
    fn step_hybrid(&mut self, core: usize, mref: MemRef) -> Cycles {
        let MemRef { asid, vaddr, kind } = mref;
        self.counters.filter_lookups += 1;
        let candidate = self
            .kernel
            .space(asid)
            .map(|s| s.filter.is_candidate(vaddr))
            .unwrap_or(false);
        if !candidate {
            // The filter probe overlaps the L1 access: no added latency.
            return self.virt_access(core, asid, vaddr, kind, None);
        }

        self.counters.filter_candidates += 1;
        self.counters.synonym_tlb_lookups += 1;
        let mut front = self.config.synonym_tlb.latency;
        self.obs.attribution.add(Component::SynonymTlb, front);
        let pte = match self.syn_tlb[core].lookup(asid, vaddr.page_number()) {
            Some(p) => p,
            None => {
                self.counters.synonym_tlb_misses += 1;
                let pte = self.ensure_pte(asid, vaddr, kind);
                let walk = self.charged_walk(core, asid, vaddr);
                self.obs.attribution.add(Component::FrontWalk, walk);
                front += walk;
                // Non-synonym entries are inserted too, so future false
                // positives are corrected quickly (Section III-A).
                self.syn_tlb[core].insert(asid, vaddr.page_number(), pte);
                pte
            }
        };
        if pte.shared {
            // A true synonym: physically addressed through the hierarchy.
            self.counters.shared_accesses += 1;
            let pa = PhysAddr::new(pte.frame.base().as_u64() + vaddr.page_offset());
            front + self.phys_access(core, pa, kind)
        } else {
            // False positive: serve virtually; the known PTE saves the
            // delayed walk if the line misses the LLC.
            self.counters.false_positives += 1;
            front + self.virt_access(core, asid, vaddr, kind, Some(pte))
        }
    }

    /// Enigma-like scheme: coarse first-level translation to the
    /// intermediate space before L1 (collapses synonyms to one canonical
    /// name, no filter), page-based delayed translation after the LLC.
    fn step_enigma(&mut self, core: usize, mref: MemRef) -> Cycles {
        let MemRef { asid, vaddr, kind } = mref;
        self.counters.enigma_lookups += 1;
        let (shared, line) = match self.kernel.intermediate_line(asid, vaddr) {
            Some(x) => x,
            None => {
                // Fault the VMA in via the OS, then retry the first level.
                let _ = self.ensure_pte(asid, vaddr, kind);
                self.kernel
                    .intermediate_line(asid, vaddr)
                    .expect("mapped after fault")
            }
        };
        if shared {
            self.counters.shared_accesses += 1;
        }
        let name = if shared {
            // Canonical object-relative intermediate name: one name for
            // all synonym views (homonym-safe via the reserved IA range).
            BlockName::Virt(Asid::KERNEL, hvc_types::LineAddr::new(line))
        } else {
            BlockName::Virt(asid, vaddr.line())
        };
        // The first-level segment lookup overlaps the L1 access (large
        // per-process segment registers): no added latency.
        self.named_access(core, name, asid, vaddr, kind, None)
    }

    // --- shared building blocks ---

    /// Physically-named hierarchy access (+DRAM on LLC miss).
    fn phys_access(&mut self, core: usize, pa: PhysAddr, kind: AccessKind) -> Cycles {
        let name = BlockName::Phys(pa.line());
        let r = self.hierarchy.lookup(core, name, kind);
        self.attribute_probe(r.hit_level, r.latency);
        let mut lat = r.latency;
        if r.llc_miss() {
            let now = self.core.now() + lat;
            let dram_lat = self.dram.access_latency(now, pa, kind.is_write());
            self.obs.attribution.add(Component::Dram, dram_lat);
            self.trace("dram", "mem", dram_lat, core);
            lat += dram_lat;
            let victim = self.hierarchy.fill_miss(
                core,
                kind,
                name,
                kind.is_write(),
                hvc_types::Permissions::RW,
            );
            if let Some(v) = victim {
                self.write_back(core, v.name);
            }
            if self.config.prefetch_next_line {
                self.prefetch_phys(core, pa);
            }
        }
        lat
    }

    /// Next-line prefetch under physical naming: stops at the page
    /// boundary (the next physical line would need a translation).
    fn prefetch_phys(&mut self, core: usize, pa: PhysAddr) {
        let next = pa + hvc_types::LINE_SIZE;
        if next.page_offset() == 0 {
            self.counters.prefetches_blocked += 1;
            return;
        }
        let name = BlockName::Phys(next.line());
        if self.hierarchy.contains(name) {
            return;
        }
        self.counters.prefetches += 1;
        let now = self.core.now();
        self.dram.access(now, next, false); // background fetch
        if let Some(v) = self.hierarchy.fill_miss(
            core,
            AccessKind::Read,
            name,
            false,
            hvc_types::Permissions::RW,
        ) {
            self.write_back(core, v.name);
        }
    }

    /// Next-line prefetch under virtual naming: virtual contiguity lets
    /// it cross page boundaries; the physical address for the background
    /// fetch comes from delayed translation (energy counted, no core
    /// latency).
    fn prefetch_virt(&mut self, core: usize, name: BlockName, asid: Asid, vaddr: VirtAddr) {
        let next_va = vaddr.align_down(hvc_types::LINE_SIZE) + hvc_types::LINE_SIZE;
        let next_name = match name {
            BlockName::Virt(a, line) if a == Asid::KERNEL => {
                // Enigma canonical name: stay in the intermediate space —
                // but only if the next virtual line still belongs to the
                // same shared object (crossing into an adjacent VMA must
                // not inherit this object's namespace).
                match self.kernel.intermediate_line(asid, next_va) {
                    Some((true, next_ia)) if next_ia == line.as_u64() + 1 => {
                        BlockName::Virt(a, hvc_types::LineAddr::new(next_ia))
                    }
                    _ => return,
                }
            }
            _ => BlockName::Virt(asid, next_va.line()),
        };
        if self.hierarchy.contains(next_name) {
            return;
        }
        // Only prefetch lines the process actually mapped.
        if self.kernel.walk(asid, next_va.page_number()).is_none() {
            return;
        }
        self.counters.prefetches += 1;
        let (pa, _, perm, _) =
            self.delayed_translate_inner(core, asid, next_va, AccessKind::Read, None, false);
        let now = self.core.now();
        self.dram.access(now, pa, false); // background fetch
        if let Some(v) = self
            .hierarchy
            .fill_miss(core, AccessKind::Read, next_name, false, perm)
        {
            self.write_back(core, v.name);
        }
    }

    /// Virtually-named hierarchy access with delayed translation after an
    /// LLC miss. `known_pte` short-circuits the delayed walk when the
    /// front-end already resolved the page (false-positive path).
    fn virt_access(
        &mut self,
        core: usize,
        asid: Asid,
        vaddr: VirtAddr,
        kind: AccessKind,
        known_pte: Option<Pte>,
    ) -> Cycles {
        let name = BlockName::Virt(asid, vaddr.line());
        self.named_access(core, name, asid, vaddr, kind, known_pte)
    }

    /// Hierarchy access under an explicit (virtual or intermediate) block
    /// name, with delayed translation of `(asid, vaddr)` after LLC misses.
    fn named_access(
        &mut self,
        core: usize,
        name: BlockName,
        asid: Asid,
        vaddr: VirtAddr,
        kind: AccessKind,
        known_pte: Option<Pte>,
    ) -> Cycles {
        // Enforce cached r/o permissions (content-shared pages): a write
        // to a read-only cached line faults to the OS, which breaks COW
        // and flushes the stale lines. Skipped while no line anywhere
        // carries non-writable permissions (the probe could not fault).
        if kind.is_write() && self.hierarchy.may_hold_readonly() {
            if let Some(p) = self.hierarchy.cached_permissions(core, name) {
                if !p.is_writable() {
                    let _ = self.ensure_pte(asid, vaddr, kind);
                }
            }
        }
        let r = self.hierarchy.lookup(core, name, kind);
        self.attribute_probe(r.hit_level, r.latency);
        let mut lat = r.latency;
        if self.config.parallel_delayed && !r.llc_miss() && r.hit_level == Some(2) {
            // Parallel mode: an LLC access that *hits* still consulted
            // the delayed structures speculatively — pure energy cost
            // (demand=false keeps the speculative work out of the
            // demand-miss metrics).
            let _ = self.delayed_translate_inner(core, asid, vaddr, kind, known_pte, false);
        }
        if r.llc_miss() {
            let (pa, tlat, perm, mut parts) =
                self.delayed_translate(core, asid, vaddr, kind, known_pte);
            // Serial: translation starts after the miss is known.
            // Parallel: it overlapped the LLC lookup, so only the part
            // exceeding the LLC latency is exposed.
            let exposed = if self.config.parallel_delayed {
                tlat.saturating_sub(self.config.hierarchy.llc.latency)
            } else {
                tlat
            };
            // Cycles hidden by the overlap were spent but never charged
            // to the core; drop them from the attribution so components
            // keep summing to the recorded memory cycles.
            parts.clip(tlat - exposed);
            self.obs.attribution.merge_from(&parts);
            self.trace("delayed_translation", "translation", exposed, core);
            lat += exposed;
            let now = self.core.now() + lat;
            let dram_lat = self.dram.access_latency(now, pa, kind.is_write());
            self.obs.attribution.add(Component::Dram, dram_lat);
            self.trace("dram", "mem", dram_lat, core);
            lat += dram_lat;
            let victim = self
                .hierarchy
                .fill_miss(core, kind, name, kind.is_write(), perm);
            if let Some(v) = victim {
                self.write_back(core, v.name);
            }
            if self.config.prefetch_next_line {
                self.prefetch_virt(core, name, asid, vaddr);
            }
        }
        lat
    }

    /// Delayed translation of a non-synonym address after an LLC miss.
    ///
    /// The returned [`CycleAttribution`] itemizes the returned latency
    /// per structure (its components sum to the latency exactly).
    fn delayed_translate(
        &mut self,
        core: usize,
        asid: Asid,
        vaddr: VirtAddr,
        kind: AccessKind,
        known_pte: Option<Pte>,
    ) -> (PhysAddr, Cycles, hvc_types::Permissions, CycleAttribution) {
        self.delayed_translate_inner(core, asid, vaddr, kind, known_pte, true)
    }

    /// `demand` distinguishes demand-path translations (counted in the
    /// TLB-miss metrics) from writeback-path translations (counted only
    /// as lookups, for energy).
    fn delayed_translate_inner(
        &mut self,
        core: usize,
        asid: Asid,
        vaddr: VirtAddr,
        kind: AccessKind,
        known_pte: Option<Pte>,
        demand: bool,
    ) -> (PhysAddr, Cycles, hvc_types::Permissions, CycleAttribution) {
        let mut parts = CycleAttribution::default();
        if let TranslationScheme::HybridManySegment { .. } = self.scheme {
            let Self {
                many,
                dram,
                core: core_model,
                kernel,
                counters,
                ..
            } = self;
            let m = many.as_mut().expect("many-segment scheme");
            let now = core_model.now();
            if let Some((pa, cost)) = m.translate_detailed(asid, vaddr, |addr| {
                counters.pte_reads += 1; // index-tree node fetch from memory
                dram.access_latency(now, addr, false)
            }) {
                parts.add(Component::SegmentCache, cost.segment_cache);
                parts.add(Component::IndexCache, cost.index_cache);
                parts.add(Component::SegmentTable, cost.segment_table);
                // Permissions ride the segment (whole-VMA granularity).
                let perm = kernel
                    .space(asid)
                    .and_then(|s| s.vma(vaddr))
                    .map(|v| v.perm)
                    .unwrap_or(hvc_types::Permissions::RW);
                return (pa, cost.total(), perm, parts);
            }
            // Not covered by any segment: fault to the OS. Under the
            // reservation policy this commits a sub-segment (changing the
            // segment table), so the hardware structures re-mirror it; a
            // plain paging-managed page falls back to a walk.
            let version_before = self.kernel.segments().version();
            let pte = self.ensure_pte(asid, vaddr, kind);
            if self.kernel.segments().version() != version_before {
                let m = self.many.as_mut().expect("many-segment scheme");
                m.rebuild(self.kernel.segments());
                self.counters.segment_table_rebuilds += 1;
            }
            let lat = self.charged_walk(core, asid, vaddr);
            parts.add(Component::DelayedWalk, lat);
            let pa = PhysAddr::new(pte.frame.base().as_u64() + vaddr.page_offset());
            return (pa, lat, pte.perm, parts);
        }

        // Page-granularity delayed TLB.
        self.counters.delayed_tlb_lookups += 1;
        let tlb_lat = self.delayed_tlb.config().latency;
        parts.add(Component::DelayedTlb, tlb_lat);
        match self.delayed_tlb.lookup(asid, vaddr.page_number()) {
            Some(pte) => {
                let pa = PhysAddr::new(pte.frame.base().as_u64() + vaddr.page_offset());
                (pa, tlb_lat, pte.perm, parts)
            }
            None => {
                if demand {
                    self.counters.delayed_tlb_misses += 1;
                }
                let pte = known_pte.unwrap_or_else(|| self.ensure_pte(asid, vaddr, kind));
                let walk = self.charged_walk(core, asid, vaddr);
                parts.add(Component::DelayedWalk, walk);
                self.delayed_tlb.insert(asid, vaddr.page_number(), pte);
                let pa = PhysAddr::new(pte.frame.base().as_u64() + vaddr.page_offset());
                (pa, tlb_lat + walk, pte.perm, parts)
            }
        }
    }

    /// Walks the page table in hardware, charging PTE reads through the
    /// (physically-addressed) cache hierarchy.
    fn charged_walk(&mut self, core_idx: usize, asid: Asid, vaddr: VirtAddr) -> Cycles {
        let Self {
            walker,
            kernel,
            hierarchy,
            dram,
            core,
            counters,
            ..
        } = self;
        let now = core.now();
        let lat = walker[core_idx]
            .walk(kernel, asid, vaddr.page_number(), |addr| {
                counters.pte_reads += 1;
                let name = BlockName::Phys(addr.line());
                let r = hierarchy.lookup(core_idx, name, AccessKind::Read);
                let mut lat = r.latency;
                if r.llc_miss() {
                    lat += dram.access_latency(now + lat, addr, false);
                    hierarchy.fill_miss(
                        core_idx,
                        AccessKind::Read,
                        name,
                        false,
                        hvc_types::Permissions::RW,
                    );
                }
                lat
            })
            .map(|(_, lat)| lat)
            .expect("page mapped by ensure_pte before walking");
        self.trace("page_walk", "translation", lat, core_idx);
        lat
    }

    /// Guarantees `(asid, vaddr)` is mapped with permissions allowing
    /// `kind`, servicing demand faults and COW breaks via the OS, and
    /// applies any flushes the OS requested.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside every VMA (a workload bug).
    fn ensure_pte(&mut self, asid: Asid, vaddr: VirtAddr, kind: AccessKind) -> Pte {
        let pte = self
            .kernel
            .touch(asid, vaddr, kind)
            .unwrap_or_else(|e| panic!("access {vaddr} in {asid} failed: {e}"));
        self.apply_flushes();
        pte
    }

    /// Applies OS-requested flushes to the hierarchy and all TLBs,
    /// charging one shootdown's worth of bookkeeping to the counters via
    /// the kernel's own statistics.
    fn apply_flushes(&mut self) {
        let reqs = self.kernel.drain_flush_requests();
        let count = reqs.len();
        for req in reqs {
            match req {
                FlushRequest::Page(asid, vpn) => {
                    self.hierarchy.flush_virt_page(asid, vpn);
                    let vp = hvc_types::VirtPage::new(vpn);
                    for t in &mut self.syn_tlb {
                        t.flush_page(asid, vp);
                    }
                    for t in &mut self.dtlb {
                        t.flush_page(asid, vp);
                    }
                    self.delayed_tlb.flush_page(asid, vp);
                }
                FlushRequest::Space(asid) => {
                    self.hierarchy.flush_asid(asid);
                    for t in &mut self.syn_tlb {
                        t.flush_asid(asid);
                    }
                    for t in &mut self.dtlb {
                        t.flush_asid(asid);
                    }
                    self.delayed_tlb.flush_asid(asid);
                    for w in &mut self.walker {
                        w.flush_asid(asid);
                    }
                }
                FlushRequest::DowngradeRo(asid, vpn) => {
                    self.hierarchy.downgrade_page_read_only(asid, vpn);
                    let vp = hvc_types::VirtPage::new(vpn);
                    for t in &mut self.syn_tlb {
                        t.flush_page(asid, vp);
                    }
                    for t in &mut self.dtlb {
                        t.flush_page(asid, vp);
                    }
                    self.delayed_tlb.flush_page(asid, vp);
                }
                FlushRequest::Frame(base) => {
                    // TLB entries for the freed page die with the Page or
                    // Space request the kernel queues alongside; only the
                    // physically-tagged cache lines need flushing here.
                    self.hierarchy.flush_phys_frame(base);
                }
            }
        }
        if count > 0 {
            if let Some(h) = &mut self.hooks {
                h.flushes_applied(count);
            }
        }
    }

    /// Writes back a dirty LLC victim. Virtually-named victims need
    /// delayed translation before reaching DRAM (charged to energy and
    /// DRAM bandwidth, not to the core's critical path).
    fn write_back(&mut self, core: usize, name: BlockName) {
        let pa = match name {
            BlockName::Phys(line) => PhysAddr::new(line.base_raw()),
            // Enigma canonical intermediate name (reserved IA range):
            // decode the shared-object id + offset and resolve directly.
            // Model note: canonical lines surviving a shm unmap decode to
            // the object's original frames (shm ids are never reused, so
            // no aliasing is possible; real hardware would flush the IA
            // range on unmap).
            BlockName::Virt(asid, line)
                if asid == Asid::KERNEL && line.base_raw() & (1 << 46) != 0 =>
            {
                self.counters.writeback_translations += 1;
                let ia = line.base_raw() - (1 << 46);
                let id = hvc_os::ShmId((ia >> 34) as u32);
                let offset = ia & ((1 << 34) - 1);
                match self.kernel.shm_phys_addr(id, offset) {
                    Some(pa) => pa,
                    None => return, // object vanished (unmapped): drop
                }
            }
            BlockName::Virt(asid, line) => {
                self.counters.writeback_translations += 1;
                let vaddr = VirtAddr::new(line.base_raw());
                let (pa, _, _, _) =
                    self.delayed_translate_inner(core, asid, vaddr, AccessKind::Read, None, false);
                pa
            }
        };
        let now = self.core.now();
        self.dram.access(now, pa, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_os::AllocPolicy;
    use hvc_workloads::apps;

    fn run_scheme(scheme: TranslationScheme, policy: AllocPolicy, refs: usize) -> RunReport {
        let mut kernel = Kernel::new(4 << 30, policy);
        let mut wl = apps::gups(8 << 20).instantiate(&mut kernel, 3).unwrap();
        let mut sim = SystemSim::new(kernel, SystemConfig::isca2016(), scheme);
        sim.run(&mut wl, refs)
    }

    #[test]
    fn baseline_counts_tlb_traffic() {
        let r = run_scheme(TranslationScheme::Baseline, AllocPolicy::DemandPaging, 5000);
        assert_eq!(r.translation.l1_tlb_lookups, 5000);
        assert!(r.translation.l2_tlb_lookups > 0);
        assert!(r.translation.pte_reads > 0);
        assert!(r.ipc() > 0.0);
        assert_eq!(r.refs, 5000);
    }

    #[test]
    fn hybrid_private_workload_bypasses_tlbs() {
        let r = run_scheme(
            TranslationScheme::HybridDelayedTlb(1024),
            AllocPolicy::DemandPaging,
            5000,
        );
        assert_eq!(r.translation.filter_lookups, 5000);
        assert_eq!(
            r.translation.synonym_tlb_lookups, 0,
            "no synonyms, no candidates"
        );
        assert!(
            r.translation.delayed_tlb_lookups > 0,
            "LLC misses translate"
        );
        assert_eq!(r.translation.l1_tlb_lookups, 0);
    }

    #[test]
    fn ideal_has_no_translation_events() {
        let r = run_scheme(TranslationScheme::Ideal, AllocPolicy::DemandPaging, 2000);
        assert_eq!(r.translation.front_tlb_accesses(), 0);
        assert_eq!(r.translation.filter_lookups, 0);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn many_segment_scheme_translates_via_segments() {
        let r = run_scheme(
            TranslationScheme::HybridManySegment {
                segment_cache: true,
            },
            AllocPolicy::EagerSegments { split: 1 },
            5000,
        );
        assert!(r.translation.sc_lookups > 0);
        assert_eq!(r.translation.delayed_tlb_lookups, 0);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn ideal_is_fastest_hybrid_beats_baseline_on_tlb_thrashers() {
        // The paper's key regime: the page working set (2048 pages of
        // GUPS-8MB) exceeds the baseline L2 TLB (1024 entries), but the
        // 8 MB LLC holds all the data — so the baseline keeps paying TLB
        // misses for cache-resident lines while hybrid virtual caching
        // needs no translation at all after warm-up.
        let run = |scheme| {
            let mut kernel = Kernel::new(4 << 30, AllocPolicy::DemandPaging);
            let mut wl = apps::gups(8 << 20).instantiate(&mut kernel, 3).unwrap();
            let mut sim = SystemSim::new(kernel, SystemConfig::isca2016_8mb_llc(), scheme);
            sim.run(&mut wl, 60_000)
        };
        let base = run(TranslationScheme::Baseline);
        let hybrid = run(TranslationScheme::HybridDelayedTlb(8192));
        let ideal = run(TranslationScheme::Ideal);
        assert!(
            hybrid.ipc() > base.ipc(),
            "hybrid {} vs baseline {}",
            hybrid.ipc(),
            base.ipc()
        );
        assert!(
            ideal.ipc() >= hybrid.ipc() * 0.99,
            "ideal {} vs hybrid {}",
            ideal.ipc(),
            hybrid.ipc()
        );
    }

    #[test]
    fn synonym_workload_routes_shared_accesses_through_tlb() {
        let mut kernel = Kernel::new(8 << 30, AllocPolicy::DemandPaging);
        let mut wl = apps::postgres().instantiate(&mut kernel, 11).unwrap();
        let mut sim = SystemSim::new(
            kernel,
            SystemConfig::isca2016(),
            TranslationScheme::HybridDelayedTlb(1024),
        );
        let r = sim.run(&mut wl, 20_000);
        assert!(r.translation.filter_candidates > 0);
        assert!(r.translation.shared_accesses > 0);
        // Access reduction: synonym TLB sees only candidates.
        let reduction =
            1.0 - r.translation.synonym_tlb_lookups as f64 / r.translation.filter_lookups as f64;
        assert!(
            (0.7..1.0).contains(&reduction),
            "postgres-like TLB access reduction {reduction}"
        );
        // False positives exist but are rare relative to all accesses.
        let fp_rate = r.translation.false_positives as f64 / r.translation.filter_lookups as f64;
        assert!(fp_rate < 0.05, "false positive rate {fp_rate}");
    }

    #[test]
    fn multicore_places_processes_round_robin_and_runs() {
        let mut kernel = Kernel::new(8 << 30, AllocPolicy::DemandPaging);
        let mut wl = apps::postgres().instantiate(&mut kernel, 31).unwrap();
        let mut config = SystemConfig::isca2016();
        config.hierarchy = hvc_cache::HierarchyConfig::isca2016(4);
        let mut sim = SystemSim::new(kernel, config, TranslationScheme::HybridDelayedTlb(1024));
        let r = sim.run(&mut wl, 20_000);
        assert!(r.ipc() > 0.0);
        // Four processes → four cores, no context switches after the
        // first touch of each core.
        assert_eq!(r.translation.filter_reloads, 4);
        // All four private L1 data caches saw traffic.
        for c in 0..4 {
            assert!(r.cache.l1d[c].accesses() > 0, "core {c} unused");
        }
    }

    #[test]
    fn single_core_multiprogramming_context_switches() {
        let mut kernel = Kernel::new(8 << 30, AllocPolicy::DemandPaging);
        let mut wl = apps::postgres().instantiate(&mut kernel, 31).unwrap();
        let mut sim = SystemSim::new(
            kernel,
            SystemConfig::isca2016(),
            TranslationScheme::HybridDelayedTlb(1024),
        );
        let r = sim.run(&mut wl, 1000);
        // Round-robin interleaving of 4 processes on one core: a filter
        // reload on almost every reference.
        assert!(r.translation.filter_reloads > 900);
    }

    #[test]
    fn prefetcher_helps_streaming_and_crosses_pages_only_virtually() {
        let run = |scheme, prefetch: bool| {
            let mut kernel = Kernel::new(4 << 30, AllocPolicy::DemandPaging);
            let mut wl = apps::milc().instantiate(&mut kernel, 3).unwrap();
            let mut config = SystemConfig::isca2016();
            config.prefetch_next_line = prefetch;
            let mut sim = SystemSim::new(kernel, config, scheme);
            sim.run(&mut wl, 30_000)
        };
        let base_off = run(TranslationScheme::Baseline, false);
        let base_on = run(TranslationScheme::Baseline, true);
        assert!(
            base_on.cycles < base_off.cycles,
            "prefetch must help streaming"
        );
        assert!(base_on.translation.prefetches > 0);
        assert!(
            base_on.translation.prefetches_blocked > 0,
            "physical prefetching stops at page boundaries"
        );

        let hyb_on = run(TranslationScheme::HybridDelayedTlb(4096), true);
        assert_eq!(
            hyb_on.translation.prefetches_blocked, 0,
            "virtual prefetching crosses page boundaries"
        );
        assert!(hyb_on.translation.prefetches > 0);
    }

    #[test]
    fn parallel_delayed_translation_trades_energy_for_latency() {
        let run = |parallel: bool| {
            let mut kernel = Kernel::new(4 << 30, AllocPolicy::EagerSegments { split: 1 });
            let mut wl = apps::gups(16 << 20).instantiate(&mut kernel, 3).unwrap();
            let mut config = SystemConfig::isca2016();
            config.parallel_delayed = parallel;
            let mut sim = SystemSim::new(
                kernel,
                config,
                TranslationScheme::HybridManySegment {
                    segment_cache: true,
                },
            );
            sim.run(&mut wl, 20_000)
        };
        let serial = run(false);
        let parallel = run(true);
        assert!(
            parallel.cycles <= serial.cycles,
            "overlap can only help latency"
        );
        assert!(
            parallel.translation.sc_lookups >= serial.translation.sc_lookups,
            "parallel mode translates speculatively on LLC hits too"
        );
    }

    #[test]
    fn enigma_collapses_synonyms_without_a_filter() {
        let mut kernel = Kernel::new(8 << 30, AllocPolicy::DemandPaging);
        let mut wl = apps::postgres().instantiate(&mut kernel, 31).unwrap();
        let mut sim = SystemSim::new(
            kernel,
            SystemConfig::isca2016(),
            TranslationScheme::EnigmaDelayedTlb(1024),
        );
        let r = sim.run(&mut wl, 20_000);
        assert_eq!(r.translation.enigma_lookups, 20_000);
        assert_eq!(r.translation.filter_lookups, 0, "no Bloom filter");
        assert_eq!(r.translation.synonym_tlb_lookups, 0, "no synonym TLB");
        assert!(r.translation.shared_accesses > 0);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn enigma_shared_lines_have_one_canonical_name() {
        // Two processes write/read the same shared page via different
        // VAs; the second access must find the first's line on chip.
        let mut kernel = Kernel::new(4 << 30, AllocPolicy::DemandPaging);
        let a = kernel.create_process().unwrap();
        let b = kernel.create_process().unwrap();
        let shm = kernel.shm_create(0x2000).unwrap();
        kernel
            .mmap(
                a,
                VirtAddr::new(0x7000_0000),
                0x2000,
                hvc_types::Permissions::RW,
                hvc_os::MapIntent::Shared(shm),
            )
            .unwrap();
        kernel
            .mmap(
                b,
                VirtAddr::new(0x9000_0000),
                0x2000,
                hvc_types::Permissions::RW,
                hvc_os::MapIntent::Shared(shm),
            )
            .unwrap();
        let mut sim = SystemSim::new(
            kernel,
            SystemConfig::isca2016(),
            TranslationScheme::EnigmaDelayedTlb(1024),
        );
        sim.step(
            hvc_types::TraceItem::new(0, MemRef::write(a, VirtAddr::new(0x7000_0040))),
            1,
        );
        let before = sim.report().cache.llc.misses;
        sim.step(
            hvc_types::TraceItem::new(0, MemRef::read(b, VirtAddr::new(0x9000_0040))),
            1,
        );
        let after = sim.report().cache.llc.misses;
        assert_eq!(before, after, "synonym view must hit the canonical line");
    }

    #[test]
    fn ifetch_modeling_adds_front_end_traffic_without_changing_data_side() {
        let run = |ifetch: bool, scheme| {
            let mut kernel = Kernel::new(4 << 30, AllocPolicy::DemandPaging);
            let mut wl = apps::gups(8 << 20).instantiate(&mut kernel, 3).unwrap();
            let mut config = SystemConfig::isca2016();
            config.model_ifetch = ifetch;
            let mut sim = SystemSim::new(kernel, config, scheme);
            sim.run(&mut wl, 3000)
        };
        let base_off = run(false, TranslationScheme::Baseline);
        let base_on = run(true, TranslationScheme::Baseline);
        // Baseline: one extra L1 TLB lookup per item (the fetch).
        assert_eq!(
            base_on.translation.l1_tlb_lookups,
            2 * base_off.translation.l1_tlb_lookups
        );
        assert!(base_on.cache.l1i[0].accesses() > 0);

        let hyb_on = run(true, TranslationScheme::HybridDelayedTlb(1024));
        // Hybrid: the fetch probes the filter, not a TLB.
        assert_eq!(hyb_on.translation.filter_lookups, 6000);
        assert_eq!(hyb_on.translation.l1_tlb_lookups, 0);
    }

    #[test]
    fn filter_has_no_false_negatives_in_system_context() {
        let mut kernel = Kernel::new(8 << 30, AllocPolicy::DemandPaging);
        let mut wl = apps::postgres().instantiate(&mut kernel, 13).unwrap();
        // Every access to a page the kernel says is shared must be a
        // candidate (otherwise a synonym would be cached virtually).
        for item in wl.iter().take(5000).collect::<Vec<_>>() {
            let asid = item.mref.asid;
            let va = item.mref.vaddr;
            let space = kernel.space(asid).unwrap();
            let shared = space
                .page_table()
                .lookup(va.page_number())
                .map(|p| p.shared)
                .unwrap_or(false);
            if shared {
                assert!(space.filter.is_candidate(va), "false negative at {va}");
            }
        }
    }
}
