//! Translation energy model.
//!
//! The paper estimates component energies with CACTI 6.5 and reports the
//! *relative* dynamic power of the translation components (≈60% lower
//! under hybrid virtual caching). We encode CACTI-flavoured per-access
//! energies in picojoules (32 nm-class SRAM reads, scaled by structure
//! size) and multiply by event counts; the interesting output is the
//! ratio between schemes, which is insensitive to the absolute scale.

use crate::stats::TranslationCounters;

/// Per-access energies in picojoules.
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyModel {
    /// 64-entry L1 TLB lookup (fully-assoc-ish CAM+RAM).
    pub l1_tlb_pj: f64,
    /// 1024-entry 8-way L2 TLB lookup.
    pub l2_tlb_pj: f64,
    /// Synonym-filter probe (two 1K-bit SRAM reads + XOR trees).
    pub filter_pj: f64,
    /// 64-entry synonym TLB lookup.
    pub synonym_tlb_pj: f64,
    /// Delayed TLB lookup per 1K entries (scaled by size at use).
    pub delayed_tlb_per_k_pj: f64,
    /// 128-entry segment cache lookup.
    pub segment_cache_pj: f64,
    /// 32 KB index-cache block read.
    pub index_cache_pj: f64,
    /// 2048-entry segment-table read.
    pub segment_table_pj: f64,
    /// One page-table-entry read's share of cache/DRAM energy.
    pub pte_read_pj: f64,
    /// Enigma-style coarse first-level segment lookup.
    pub enigma_pj: f64,
}

impl EnergyModel {
    /// CACTI-flavoured defaults.
    pub fn cacti_32nm() -> Self {
        EnergyModel {
            l1_tlb_pj: 2.3,
            l2_tlb_pj: 9.0,
            filter_pj: 0.35,
            synonym_tlb_pj: 2.3,
            delayed_tlb_per_k_pj: 9.0,
            segment_cache_pj: 2.8,
            index_cache_pj: 5.5,
            segment_table_pj: 7.5,
            pte_read_pj: 12.0,
            enigma_pj: 0.9,
        }
    }

    /// Computes the translation-energy breakdown for a run.
    pub fn breakdown(
        &self,
        c: &TranslationCounters,
        delayed_tlb_entries: usize,
    ) -> EnergyBreakdown {
        let delayed_pj = self.delayed_tlb_per_k_pj
            * ((delayed_tlb_entries.max(1) as f64) / 1024.0)
                .sqrt()
                .max(0.25);
        EnergyBreakdown {
            l1_tlb: c.l1_tlb_lookups as f64 * self.l1_tlb_pj,
            l2_tlb: c.l2_tlb_lookups as f64 * self.l2_tlb_pj,
            filter: c.filter_lookups as f64 * self.filter_pj,
            synonym_tlb: c.synonym_tlb_lookups as f64 * self.synonym_tlb_pj,
            delayed_tlb: c.delayed_tlb_lookups as f64 * delayed_pj,
            segment_cache: c.sc_lookups as f64 * self.segment_cache_pj,
            index_cache: c.index_cache_accesses as f64 * self.index_cache_pj,
            segment_table: c.segment_table_accesses as f64 * self.segment_table_pj,
            page_walks: c.pte_reads as f64 * self.pte_read_pj,
            enigma: c.enigma_lookups as f64 * self.enigma_pj,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::cacti_32nm()
    }
}

/// Translation dynamic energy per component, in picojoules.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Baseline L1 TLB.
    pub l1_tlb: f64,
    /// Baseline L2 TLB.
    pub l2_tlb: f64,
    /// Synonym filter.
    pub filter: f64,
    /// Synonym TLB.
    pub synonym_tlb: f64,
    /// Delayed TLB.
    pub delayed_tlb: f64,
    /// Segment cache.
    pub segment_cache: f64,
    /// Index cache.
    pub index_cache: f64,
    /// Hardware segment table.
    pub segment_table: f64,
    /// Page-walk memory reads.
    pub page_walks: f64,
    /// Enigma first-level segment lookups.
    pub enigma: f64,
}

impl EnergyBreakdown {
    /// Total translation energy.
    pub fn total(&self) -> f64 {
        self.l1_tlb
            + self.l2_tlb
            + self.filter
            + self.synonym_tlb
            + self.delayed_tlb
            + self.segment_cache
            + self.index_cache
            + self.segment_table
            + self.page_walks
            + self.enigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_heavy_counters_cost_more_than_hybrid() {
        let m = EnergyModel::cacti_32nm();
        // Baseline: every access hits the L1 TLB; some go to L2 + walks.
        let baseline = TranslationCounters {
            l1_tlb_lookups: 1_000_000,
            l2_tlb_lookups: 100_000,
            pte_reads: 40_000,
            ..Default::default()
        };
        // Hybrid: every access probes the filter; few candidates.
        let hybrid = TranslationCounters {
            filter_lookups: 1_000_000,
            synonym_tlb_lookups: 10_000,
            delayed_tlb_lookups: 30_000,
            pte_reads: 8_000,
            ..Default::default()
        };
        let b = m.breakdown(&baseline, 1024).total();
        let h = m.breakdown(&hybrid, 1024).total();
        assert!(h < b * 0.5, "hybrid {h} vs baseline {b}");
    }

    #[test]
    fn delayed_tlb_energy_scales_with_size() {
        let m = EnergyModel::cacti_32nm();
        let c = TranslationCounters {
            delayed_tlb_lookups: 1000,
            ..Default::default()
        };
        let small = m.breakdown(&c, 1024).delayed_tlb;
        let large = m.breakdown(&c, 32 * 1024).delayed_tlb;
        assert!(large > small * 3.0 && large < small * 8.0);
    }

    #[test]
    fn total_sums_components() {
        let b = EnergyBreakdown {
            l1_tlb: 1.0,
            filter: 2.0,
            ..Default::default()
        };
        assert!((b.total() - 3.0).abs() < 1e-12);
    }
}
