//! Run-level statistics.

use hvc_cache::CacheStats;
use hvc_mem::DramStats;
use hvc_obs::ObsReport;
use hvc_os::KernelStats;
use hvc_types::MergeStats;

/// Event counts of the translation machinery, fed to the energy model
/// and to the Table II metrics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TranslationCounters {
    /// Baseline L1 TLB lookups (every access in the baseline).
    pub l1_tlb_lookups: u64,
    /// Baseline L2 TLB lookups (L1 TLB misses).
    pub l2_tlb_lookups: u64,
    /// Synonym-filter probes (every access in hybrid schemes).
    pub filter_lookups: u64,
    /// Synonym-filter candidates (true synonyms + false positives).
    pub filter_candidates: u64,
    /// Candidates that turned out to be false positives.
    pub false_positives: u64,
    /// Synonym TLB lookups (candidates only).
    pub synonym_tlb_lookups: u64,
    /// Synonym TLB misses (walk before L1).
    pub synonym_tlb_misses: u64,
    /// Delayed TLB lookups (LLC misses of non-synonym lines).
    pub delayed_tlb_lookups: u64,
    /// Delayed TLB misses (page walk after LLC miss).
    pub delayed_tlb_misses: u64,
    /// Segment-cache lookups.
    pub sc_lookups: u64,
    /// Index-cache block reads.
    pub index_cache_accesses: u64,
    /// Hardware segment-table reads.
    pub segment_table_accesses: u64,
    /// Page-table entry reads issued by walkers.
    pub pte_reads: u64,
    /// Accesses that targeted r/w-shared (synonym) pages.
    pub shared_accesses: u64,
    /// Writebacks that required delayed translation of a virtual name.
    pub writeback_translations: u64,
    /// Context-switch reloads of the per-core synonym-filter registers
    /// (two 1K-bit Bloom filters read from OS memory, Section III-B).
    pub filter_reloads: u64,
    /// Re-mirrorings of the hardware segment structures after the OS
    /// changed the segment table (reservation commits, unmaps).
    pub segment_table_rebuilds: u64,
    /// Enigma-style coarse first-level translations (every access under
    /// the Enigma scheme).
    pub enigma_lookups: u64,
    /// Next-line prefetches issued (when the prefetcher is enabled).
    pub prefetches: u64,
    /// Prefetches suppressed at a page boundary (physical naming only).
    pub prefetches_blocked: u64,
}

impl TranslationCounters {
    /// TLB accesses before L1: baseline = L1 TLB lookups; hybrid =
    /// synonym TLB lookups. The Table II "TLB access reduction" compares
    /// these.
    pub fn front_tlb_accesses(&self) -> u64 {
        self.l1_tlb_lookups + self.synonym_tlb_lookups
    }

    /// All TLB misses requiring a page walk (baseline: two-level miss;
    /// hybrid: synonym TLB miss + delayed TLB miss). Table II's "total
    /// TLB miss reduction" compares these.
    pub fn total_tlb_misses(&self) -> u64 {
        self.synonym_tlb_misses + self.delayed_tlb_misses
    }
}

impl MergeStats for TranslationCounters {
    fn merge_from(&mut self, other: &Self) {
        self.l1_tlb_lookups += other.l1_tlb_lookups;
        self.l2_tlb_lookups += other.l2_tlb_lookups;
        self.filter_lookups += other.filter_lookups;
        self.filter_candidates += other.filter_candidates;
        self.false_positives += other.false_positives;
        self.synonym_tlb_lookups += other.synonym_tlb_lookups;
        self.synonym_tlb_misses += other.synonym_tlb_misses;
        self.delayed_tlb_lookups += other.delayed_tlb_lookups;
        self.delayed_tlb_misses += other.delayed_tlb_misses;
        self.sc_lookups += other.sc_lookups;
        self.index_cache_accesses += other.index_cache_accesses;
        self.segment_table_accesses += other.segment_table_accesses;
        self.pte_reads += other.pte_reads;
        self.shared_accesses += other.shared_accesses;
        self.writeback_translations += other.writeback_translations;
        self.filter_reloads += other.filter_reloads;
        self.segment_table_rebuilds += other.segment_table_rebuilds;
        self.enigma_lookups += other.enigma_lookups;
        self.prefetches += other.prefetches;
        self.prefetches_blocked += other.prefetches_blocked;
    }
}

/// The complete result of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Memory references simulated.
    pub refs: u64,
    /// Translation event counts.
    pub translation: TranslationCounters,
    /// Baseline-TLB full misses (both levels missed; baseline runs only).
    pub baseline_tlb_misses: u64,
    /// Cache hierarchy statistics.
    pub cache: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Demand-paging minor faults during the run.
    pub minor_faults: u64,
    /// OS kernel event counters (shootdowns, flushes, filter
    /// maintenance) for the measured window.
    pub os: KernelStats,
    /// Observability record: latency histograms and the
    /// cycle-attribution ledger.
    pub obs: ObsReport,
}

impl RunReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Misses per kilo-instruction for an event count.
    pub fn mpki(&self, events: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            events as f64 * 1000.0 / self.instructions as f64
        }
    }
}

impl MergeStats for RunReport {
    /// Merges every counter; derived metrics ([`RunReport::ipc`],
    /// [`RunReport::mpki`]) automatically reflect the merged counts
    /// because they are recomputed on demand.
    fn merge_from(&mut self, other: &Self) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.refs += other.refs;
        self.translation.merge_from(&other.translation);
        self.baseline_tlb_misses += other.baseline_tlb_misses;
        self.cache.merge_from(&other.cache);
        self.dram.merge_from(&other.dram);
        self.minor_faults += other.minor_faults;
        self.os.merge_from(&other.os);
        self.obs.merge_from(&other.obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_report_recomputes_derived_metrics() {
        let mut a = RunReport {
            instructions: 1000,
            cycles: 500,
            refs: 10,
            ..Default::default()
        };
        let b = RunReport {
            instructions: 3000,
            cycles: 1500,
            refs: 30,
            ..Default::default()
        };
        a.merge_from(&b);
        assert_eq!(a.instructions, 4000);
        assert_eq!(a.refs, 40);
        assert!((a.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ipc_and_mpki() {
        let r = RunReport {
            instructions: 2000,
            cycles: 1000,
            ..Default::default()
        };
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.mpki(10) - 5.0).abs() < 1e-12);
        let empty = RunReport::default();
        assert_eq!(empty.ipc(), 0.0);
        assert_eq!(empty.mpki(5), 0.0);
    }

    #[test]
    fn counter_rollups() {
        let c = TranslationCounters {
            l1_tlb_lookups: 10,
            synonym_tlb_lookups: 2,
            synonym_tlb_misses: 1,
            delayed_tlb_misses: 3,
            ..Default::default()
        };
        assert_eq!(c.front_tlb_accesses(), 12);
        assert_eq!(c.total_tlb_misses(), 4);
    }
}
