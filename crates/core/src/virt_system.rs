//! The virtualized full-system simulator (Section V).

use crate::config::SystemConfig;
use crate::core_model::CoreModel;
use crate::stats::{RunReport, TranslationCounters};
use hvc_cache::Hierarchy;
use hvc_mem::Dram;
use hvc_tlb::Tlb;
use hvc_types::{
    AccessKind, Asid, BlockName, CheckHooks, Cycles, GuestPhysAddr, MemRef, Permissions, PhysAddr,
    TraceItem, VirtAddr, VirtPage, Vmid,
};
use hvc_virt::{Hypervisor, NestedSegments, NestedWalker};
use hvc_workloads::WorkloadInstance;

/// Translation architecture of a virtualized system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VirtScheme {
    /// Physical caching with a two-level TLB holding gVA→MA entries and
    /// a 2D walker accelerated by a nested TLB — the "state-of-the-art
    /// translation cache" baseline.
    NestedBaseline,
    /// Hybrid virtual caching: guest+host synonym filters and a synonym
    /// TLB before L1; a delayed TLB (gVA→MA) backed by the 2D walker
    /// after LLC misses.
    HybridDelayedNested(
        /// Delayed TLB entries.
        usize,
    ),
    /// Hybrid virtual caching with delayed 2D segment translation
    /// (guest + host segments, gVA→MA segment cache).
    HybridNestedSegments,
}

/// The virtualized system simulator: one VM's workload driven through
/// guest + host translation.
pub struct VirtSystemSim {
    hv: Hypervisor,
    vmid: Vmid,
    scheme: VirtScheme,
    config: SystemConfig,
    hierarchy: Hierarchy,
    dram: Dram,
    core: CoreModel,
    /// Baseline: two-level TLB caching gVA→MA (flattened into one
    /// structure with baseline L2 capacity; lookups modelled two-level).
    gva_tlb: Tlb,
    syn_tlb: Tlb,
    delayed_tlb: Tlb,
    walker: NestedWalker,
    nested_segments: Option<NestedSegments>,
    counters: TranslationCounters,
    refs: u64,
    nested_walks: u64,
    hooks: Option<Box<dyn CheckHooks>>,
    /// Fault injection for hvc-check self-tests: drops `Space` and
    /// `DowngradeRo` guest flush requests, reproducing the historical
    /// bug where only `Page` requests were applied.
    drop_non_page_flushes: bool,
}

impl VirtSystemSim {
    /// Builds the simulator over a hypervisor whose VM `vmid` already has
    /// its workload instantiated in the guest kernel.
    ///
    /// # Errors
    ///
    /// Propagates [`hvc_virt::NestedSegments::build`] errors for the
    /// segment scheme.
    pub fn new(
        hv: Hypervisor,
        vmid: Vmid,
        config: SystemConfig,
        scheme: VirtScheme,
    ) -> hvc_types::Result<Self> {
        let nested_segments = match scheme {
            VirtScheme::HybridNestedSegments => Some(NestedSegments::build(&hv, vmid)?),
            _ => None,
        };
        let delayed_entries = match scheme {
            VirtScheme::HybridDelayedNested(n) => n,
            _ => 1024,
        };
        Ok(VirtSystemSim {
            hierarchy: Hierarchy::new(config.hierarchy.clone()),
            dram: Dram::new(config.dram.clone()),
            core: CoreModel::new(config.width, config.hidden_latency),
            gva_tlb: Tlb::new(config.l2_tlb.clone()),
            syn_tlb: Tlb::new(config.synonym_tlb.clone()),
            delayed_tlb: Tlb::new(hvc_tlb::TlbConfig::delayed(delayed_entries)),
            walker: NestedWalker::isca2016(),
            nested_segments,
            hv,
            vmid,
            scheme,
            config,
            counters: TranslationCounters::default(),
            refs: 0,
            nested_walks: 0,
            hooks: None,
            drop_non_page_flushes: false,
        })
    }

    /// Installs runtime check hooks (see [`CheckHooks`]). With no hooks
    /// installed the per-access cost is a single branch.
    pub fn set_check_hooks(&mut self, hooks: Box<dyn CheckHooks>) {
        self.hooks = Some(hooks);
    }

    /// Fault injection for `hvc-check` self-tests: silently drop every
    /// non-`Page` guest flush request (the pre-fix behaviour). Never set
    /// in real simulations.
    #[doc(hidden)]
    pub fn inject_drop_non_page_flushes(&mut self) {
        self.drop_non_page_flushes = true;
    }

    /// Resets statistics (contents kept) so measurements exclude warm-up.
    pub fn reset_stats(&mut self) {
        self.counters = TranslationCounters::default();
        self.refs = 0;
        self.nested_walks = 0;
        self.hierarchy.reset_stats();
        self.dram.reset_stats();
        self.gva_tlb.reset_stats();
        self.syn_tlb.reset_stats();
        self.delayed_tlb.reset_stats();
        self.walker.reset_stats();
        self.core.mark();
    }

    /// Runs `refs` warm-up references (not measured), then resets stats.
    pub fn warm_up(&mut self, workload: &mut WorkloadInstance, refs: usize) {
        let mlp = workload.mlp();
        for _ in 0..refs {
            let item = workload.next_item();
            self.step(item, mlp);
        }
        self.reset_stats();
    }

    /// Runs `refs` references of the guest workload.
    pub fn run(&mut self, workload: &mut WorkloadInstance, refs: usize) -> RunReport {
        let mlp = workload.mlp();
        for _ in 0..refs {
            let item = workload.next_item();
            self.step(item, mlp);
        }
        self.report()
    }

    /// Simulates one trace item.
    pub fn step(&mut self, item: TraceItem, mlp: u32) {
        self.core.retire(item.instructions());
        self.refs += 1;
        let latency = match self.scheme {
            VirtScheme::NestedBaseline => self.step_baseline(item.mref),
            VirtScheme::HybridDelayedNested(_) | VirtScheme::HybridNestedSegments => {
                self.step_hybrid(item.mref)
            }
        };
        self.core.memory(latency, mlp);
        if self.hooks.is_some() {
            let pending = self
                .hv
                .guest_kernel(self.vmid)
                .map(|k| k.pending_flush_requests())
                .unwrap_or(0);
            let refs = self.refs;
            if let Some(h) = &mut self.hooks {
                h.access_boundary(refs, pending);
            }
        }
    }

    /// Builds the report.
    pub fn report(&self) -> RunReport {
        RunReport {
            instructions: self.core.instructions(),
            cycles: self.core.cycles(),
            refs: self.refs,
            translation: self.counters.clone(),
            baseline_tlb_misses: self.gva_tlb.stats().misses,
            cache: self.hierarchy.stats(),
            dram: self.dram.stats().clone(),
            minor_faults: self
                .hv
                .guest_kernel(self.vmid)
                .map(|k| k.stats().minor_faults)
                .unwrap_or(0),
            os: self
                .hv
                .guest_kernel(self.vmid)
                .map(|k| k.stats().clone())
                .unwrap_or_default(),
            ..Default::default()
        }
    }

    /// Number of full 2D walks performed.
    pub fn nested_walks(&self) -> u64 {
        self.nested_walks
    }

    // --- paths ---

    fn step_baseline(&mut self, mref: MemRef) -> Cycles {
        let MemRef { asid, vaddr, kind } = mref;
        self.counters.l1_tlb_lookups += 1;
        let mut front = Cycles::ZERO;
        let pte = match self.gva_tlb.lookup(asid, vaddr.page_number()) {
            Some(p) => p,
            None => {
                self.counters.l2_tlb_lookups += 1;
                front += self.config.l2_tlb.latency;
                let (npte, wlat) = self.nested_walk(asid, vaddr, kind);
                front += wlat;
                let pte = hvc_os::Pte {
                    frame: npte.machine_frame,
                    perm: npte.perm,
                    shared: npte.guest_shared,
                };
                self.gva_tlb.insert(asid, vaddr.page_number(), pte);
                pte
            }
        };
        if pte.shared {
            self.counters.shared_accesses += 1;
        }
        let ma = PhysAddr::new(pte.frame.base().as_u64() + vaddr.page_offset());
        front + self.phys_access(ma, kind)
    }

    fn step_hybrid(&mut self, mref: MemRef) -> Cycles {
        let MemRef { asid, vaddr, kind } = mref;
        self.counters.filter_lookups += 1;
        // Guest filter (per-process, in the guest kernel) OR host filter
        // (per-VM, in the hypervisor), both indexed by gVA.
        let guest_hit = self
            .hv
            .guest_kernel(self.vmid)
            .ok()
            .and_then(|k| k.space(asid).map(|s| s.filter.is_candidate(vaddr)))
            .unwrap_or(false);
        let host_hit = self
            .hv
            .host_filter(self.vmid)
            .map(|f| f.is_candidate(vaddr))
            .unwrap_or(false);
        if !(guest_hit || host_hit) {
            return self.virt_access(asid, vaddr, kind);
        }
        self.counters.filter_candidates += 1;
        self.counters.synonym_tlb_lookups += 1;
        let mut front = self.config.synonym_tlb.latency;
        let pte = match self.syn_tlb.lookup(asid, vaddr.page_number()) {
            Some(p) => p,
            None => {
                self.counters.synonym_tlb_misses += 1;
                let (npte, wlat) = self.nested_walk(asid, vaddr, kind);
                front += wlat;
                let pte = hvc_os::Pte {
                    frame: npte.machine_frame,
                    perm: npte.perm,
                    // Host-induced sharing also forces physical naming.
                    shared: npte.guest_shared || host_hit,
                };
                self.syn_tlb.insert(asid, vaddr.page_number(), pte);
                pte
            }
        };
        if pte.shared {
            self.counters.shared_accesses += 1;
            let ma = PhysAddr::new(pte.frame.base().as_u64() + vaddr.page_offset());
            front + self.phys_access(ma, kind)
        } else {
            self.counters.false_positives += 1;
            front + self.virt_access(asid, vaddr, kind)
        }
    }

    fn phys_access(&mut self, ma: PhysAddr, kind: AccessKind) -> Cycles {
        let name = BlockName::Phys(ma.line());
        let r = self.hierarchy.lookup(0, name, kind);
        let mut lat = r.latency;
        if r.llc_miss() {
            let now = self.core.now() + lat;
            lat += self.dram.access_latency(now, ma, kind.is_write());
            let victim = self
                .hierarchy
                .fill_miss(0, kind, name, kind.is_write(), Permissions::RW);
            if let Some(v) = victim {
                self.write_back(v.name);
            }
        }
        lat
    }

    fn virt_access(&mut self, asid: Asid, vaddr: VirtAddr, kind: AccessKind) -> Cycles {
        let name = BlockName::Virt(asid, vaddr.line());
        let r = self.hierarchy.lookup(0, name, kind);
        let mut lat = r.latency;
        if r.llc_miss() {
            let (ma, tlat, perm) = self.delayed_translate(asid, vaddr, kind);
            lat += tlat;
            let now = self.core.now() + lat;
            lat += self.dram.access_latency(now, ma, kind.is_write());
            let victim = self
                .hierarchy
                .fill_miss(0, kind, name, kind.is_write(), perm);
            if let Some(v) = victim {
                self.write_back(v.name);
            }
        }
        lat
    }

    fn delayed_translate(
        &mut self,
        asid: Asid,
        vaddr: VirtAddr,
        kind: AccessKind,
    ) -> (PhysAddr, Cycles, Permissions) {
        self.delayed_translate_inner(asid, vaddr, kind, true)
    }

    /// `demand` distinguishes demand-path translations (TLB-miss
    /// metrics) from writeback-path translations (energy only).
    fn delayed_translate_inner(
        &mut self,
        asid: Asid,
        vaddr: VirtAddr,
        kind: AccessKind,
        demand: bool,
    ) -> (PhysAddr, Cycles, Permissions) {
        if self.nested_segments.is_some() {
            let host_key = self.hv.host_segment_key(self.vmid).expect("VM exists");
            let Self {
                nested_segments,
                dram,
                core,
                counters,
                ..
            } = self;
            let ns = nested_segments.as_mut().expect("checked");
            let now = core.now();
            counters.sc_lookups += 1;
            if let Some((ma, lat)) = ns.translate(asid, host_key, vaddr, |addr| {
                counters.pte_reads += 1;
                dram.access_latency(now, addr, false)
            }) {
                counters.segment_table_accesses += 1;
                return (ma, lat, Permissions::RW);
            }
            // Fallback: 2D page walk for paging-managed guest pages.
            let (npte, lat) = self.nested_walk(asid, vaddr, kind);
            let ma = PhysAddr::new(npte.machine_frame.base().as_u64() + vaddr.page_offset());
            return (ma, lat, npte.perm);
        }

        self.counters.delayed_tlb_lookups += 1;
        let tlb_lat = self.delayed_tlb.config().latency;
        match self.delayed_tlb.lookup(asid, vaddr.page_number()) {
            Some(pte) => {
                let ma = PhysAddr::new(pte.frame.base().as_u64() + vaddr.page_offset());
                (ma, tlb_lat, pte.perm)
            }
            None => {
                if demand {
                    self.counters.delayed_tlb_misses += 1;
                }
                let (npte, wlat) = self.nested_walk(asid, vaddr, kind);
                let pte = hvc_os::Pte {
                    frame: npte.machine_frame,
                    perm: npte.perm,
                    shared: npte.guest_shared,
                };
                self.delayed_tlb.insert(asid, vaddr.page_number(), pte);
                let ma = PhysAddr::new(pte.frame.base().as_u64() + vaddr.page_offset());
                (ma, tlb_lat + wlat, pte.perm)
            }
        }
    }

    /// Performs a full 2D walk, demand-servicing guest faults and EPT
    /// violations first, charging all memory reads through the hierarchy.
    fn nested_walk(
        &mut self,
        asid: Asid,
        vaddr: VirtAddr,
        kind: AccessKind,
    ) -> (hvc_virt::NestedPte, Cycles) {
        self.nested_walks += 1;
        self.ensure_backed(asid, vaddr, kind);
        let Self {
            walker,
            hv,
            hierarchy,
            dram,
            core,
            counters,
            vmid,
            ..
        } = self;
        let now = core.now();
        walker
            .walk(hv, *vmid, asid, vaddr.page_number(), |addr| {
                counters.pte_reads += 1;
                let name = BlockName::Phys(addr.line());
                let r = hierarchy.lookup(0, name, AccessKind::Read);
                let mut lat = r.latency;
                if r.llc_miss() {
                    lat += dram.access_latency(now + lat, addr, false);
                    hierarchy.fill_miss(0, AccessKind::Read, name, false, Permissions::RW);
                }
                lat
            })
            .expect("backed by ensure_backed")
    }

    /// Makes sure the guest page is mapped and all its translation
    /// structures have machine backing.
    fn ensure_backed(&mut self, asid: Asid, vaddr: VirtAddr, kind: AccessKind) {
        let vmid = self.vmid;
        let gk = self.hv.guest_kernel_mut(vmid).expect("VM exists");
        let gpte = gk
            .touch(asid, vaddr, kind)
            .unwrap_or_else(|e| panic!("guest access {vaddr} in {asid} failed: {e}"));
        // Drain guest flush requests into the (machine-side) hierarchy.
        let reqs = gk.drain_flush_requests();
        self.apply_guest_flushes(reqs);
        // Machine backing for the guest PT pages and the data page.
        let (_, gpath) = self
            .hv
            .guest_kernel(vmid)
            .expect("VM exists")
            .walk(asid, vaddr.page_number())
            .expect("just touched");
        for entry in gpath {
            self.hv
                .machine_addr(vmid, GuestPhysAddr::new(entry.as_u64()))
                .expect("machine memory available");
        }
        self.hv
            .machine_addr(vmid, GuestPhysAddr::new(gpte.frame.base().as_u64()))
            .expect("machine memory available");
    }

    /// Applies guest-kernel flush requests to the machine-side hierarchy
    /// and every gVA-indexed structure, mirroring the native path's
    /// semantics in `system.rs`. All three TLBs are keyed by guest
    /// virtual address + ASID, so every guest shootdown must reach each
    /// of them; virtually tagged cache lines are likewise gVA-named.
    fn apply_guest_flushes(&mut self, reqs: Vec<hvc_os::FlushRequest>) {
        let count = reqs.len();
        for req in reqs {
            match req {
                hvc_os::FlushRequest::Page(a, vpn) => {
                    let vp = VirtPage::new(vpn);
                    self.hierarchy.flush_virt_page(a, vpn);
                    self.gva_tlb.flush_page(a, vp);
                    self.syn_tlb.flush_page(a, vp);
                    self.delayed_tlb.flush_page(a, vp);
                }
                hvc_os::FlushRequest::Space(a) => {
                    if self.drop_non_page_flushes {
                        continue;
                    }
                    self.hierarchy.flush_asid(a);
                    self.gva_tlb.flush_asid(a);
                    self.syn_tlb.flush_asid(a);
                    self.delayed_tlb.flush_asid(a);
                    // The nested walker's internal caches hold gVA-indexed
                    // entries but expose no per-ASID shootdown, so flush
                    // them whole (conservative, matches a real ASID reuse).
                    self.walker.flush();
                }
                hvc_os::FlushRequest::DowngradeRo(a, vpn) => {
                    if self.drop_non_page_flushes {
                        continue;
                    }
                    let vp = VirtPage::new(vpn);
                    self.hierarchy.downgrade_page_read_only(a, vpn);
                    self.gva_tlb.flush_page(a, vp);
                    self.syn_tlb.flush_page(a, vp);
                    self.delayed_tlb.flush_page(a, vp);
                }
                hvc_os::FlushRequest::Frame(gpa_base) => {
                    if self.drop_non_page_flushes {
                        continue;
                    }
                    // The guest names frames by guest-physical address but
                    // the hierarchy's physical tags are machine addresses:
                    // translate through the EPT. No entry means no machine
                    // backing was ever established, so nothing is cached.
                    if let Some((mpte, _)) =
                        self.hv.ept_walk(self.vmid, GuestPhysAddr::new(gpa_base))
                    {
                        self.hierarchy.flush_phys_frame(mpte.frame.base().as_u64());
                    }
                }
            }
        }
        if count > 0 {
            if let Some(h) = &mut self.hooks {
                h.flushes_applied(count);
            }
        }
    }

    /// Runs a guest-kernel operation and immediately applies every flush
    /// request it queued, so the next access cannot observe a stale line
    /// or TLB entry. Returns the closure's result.
    pub fn guest_os<R>(&mut self, f: impl FnOnce(&mut hvc_os::Kernel) -> R) -> R {
        let vmid = self.vmid;
        let gk = self.hv.guest_kernel_mut(vmid).expect("VM exists");
        let r = f(gk);
        let reqs = gk.drain_flush_requests();
        self.apply_guest_flushes(reqs);
        r
    }

    /// The cache hierarchy (read-only; invariant sweeps).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The hypervisor (read-only; invariant sweeps).
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hv
    }

    /// The VM under simulation.
    pub fn vmid(&self) -> Vmid {
        self.vmid
    }

    /// The baseline gVA→MA TLB (read-only).
    pub fn gva_tlb(&self) -> &Tlb {
        &self.gva_tlb
    }

    /// The synonym TLB (read-only).
    pub fn synonym_tlb(&self) -> &Tlb {
        &self.syn_tlb
    }

    /// The delayed TLB (read-only).
    pub fn delayed_tlb(&self) -> &Tlb {
        &self.delayed_tlb
    }

    fn write_back(&mut self, name: BlockName) {
        let ma = match name {
            BlockName::Phys(line) => PhysAddr::new(line.base_raw()),
            BlockName::Virt(asid, line) => {
                self.counters.writeback_translations += 1;
                let vaddr = VirtAddr::new(line.base_raw());
                let (ma, _, _) = self.delayed_translate_inner(asid, vaddr, AccessKind::Read, false);
                ma
            }
        };
        let now = self.core.now();
        self.dram.access(now, ma, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_os::AllocPolicy;
    use hvc_workloads::apps;

    const GIB: u64 = 1 << 30;

    fn setup(policy: AllocPolicy, eager_backing: bool) -> (Hypervisor, Vmid, WorkloadInstance) {
        let mut hv = Hypervisor::new(4 * GIB);
        let vm = hv.create_vm(GIB, policy, eager_backing).unwrap();
        // Instantiate the workload inside the guest via a stand-in ASID
        // from the hypervisor (the workload API creates its own process;
        // route it through the guest kernel).
        let gk = hv.guest_kernel_mut(vm).unwrap();
        let wl = apps::gups(8 << 20).instantiate(gk, 5).unwrap();
        (hv, vm, wl)
    }

    #[test]
    fn nested_baseline_runs_and_walks() {
        let (hv, vm, mut wl) = setup(AllocPolicy::DemandPaging, false);
        let mut sim =
            VirtSystemSim::new(hv, vm, SystemConfig::isca2016(), VirtScheme::NestedBaseline)
                .unwrap();
        let r = sim.run(&mut wl, 5000);
        assert!(r.ipc() > 0.0);
        assert!(sim.nested_walks() > 0);
        assert!(r.translation.pte_reads > 0);
        assert_eq!(r.translation.l1_tlb_lookups, 5000);
    }

    #[test]
    fn hybrid_delayed_nested_bypasses_front_tlb() {
        let (hv, vm, mut wl) = setup(AllocPolicy::DemandPaging, false);
        let mut sim = VirtSystemSim::new(
            hv,
            vm,
            SystemConfig::isca2016(),
            VirtScheme::HybridDelayedNested(4096),
        )
        .unwrap();
        let r = sim.run(&mut wl, 5000);
        assert_eq!(r.translation.filter_lookups, 5000);
        assert_eq!(r.translation.synonym_tlb_lookups, 0, "private guest pages");
        assert!(r.translation.delayed_tlb_lookups > 0);
    }

    #[test]
    fn hybrid_beats_nested_baseline_on_walk_heavy_guest() {
        // TLB-thrashing but LLC-resident guest working set: the nested
        // baseline pays 2D-walk latency for cache-resident lines; hybrid
        // virtual caching removes translation from that path entirely.
        let (hv, vm, mut wl) = setup(AllocPolicy::DemandPaging, false);
        let mut base = VirtSystemSim::new(
            hv,
            vm,
            SystemConfig::isca2016_8mb_llc(),
            VirtScheme::NestedBaseline,
        )
        .unwrap();
        let rb = base.run(&mut wl, 60_000);

        let (hv2, vm2, mut wl2) = setup(AllocPolicy::DemandPaging, false);
        let mut hyb = VirtSystemSim::new(
            hv2,
            vm2,
            SystemConfig::isca2016_8mb_llc(),
            VirtScheme::HybridDelayedNested(8192),
        )
        .unwrap();
        let rh = hyb.run(&mut wl2, 60_000);
        assert!(
            rh.ipc() > rb.ipc(),
            "hybrid virt {} vs nested baseline {}",
            rh.ipc(),
            rb.ipc()
        );
    }

    #[test]
    fn nested_segments_scheme_uses_segment_path() {
        let (hv, vm, mut wl) = setup(AllocPolicy::EagerSegments { split: 1 }, true);
        let mut sim = VirtSystemSim::new(
            hv,
            vm,
            SystemConfig::isca2016(),
            VirtScheme::HybridNestedSegments,
        )
        .unwrap();
        let r = sim.run(&mut wl, 5000);
        assert!(r.translation.sc_lookups > 0);
        assert!(r.translation.segment_table_accesses > 0);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn destroyed_guest_space_leaves_no_stale_lines() {
        let (hv, vm, mut wl) = setup(AllocPolicy::DemandPaging, false);
        let asid = wl.procs()[0].asid;
        let mut sim = VirtSystemSim::new(
            hv,
            vm,
            SystemConfig::isca2016(),
            VirtScheme::HybridDelayedNested(1024),
        )
        .unwrap();
        sim.run(&mut wl, 2000);
        assert!(
            sim.hierarchy()
                .resident_names()
                .any(|n| matches!(n, BlockName::Virt(a, _) if a == asid)),
            "warm-up should leave virtually tagged lines for the process"
        );
        sim.guest_os(|gk| gk.destroy_process(asid).unwrap());
        assert!(
            sim.hierarchy()
                .resident_names()
                .all(|n| !matches!(n, BlockName::Virt(a, _) if a == asid)),
            "stale virtually tagged lines survived guest ASID destruction"
        );
        assert!(
            sim.gva_tlb().entries().all(|(a, _, _)| a != asid)
                && sim.delayed_tlb().entries().all(|(a, _, _)| a != asid),
            "stale TLB entries survived guest ASID destruction"
        );
    }

    #[test]
    fn injected_flush_drop_reproduces_stale_lines() {
        // With the pre-fix fault injected (Space/DowngradeRo requests
        // dropped), destroying the guest process leaves stale virtually
        // tagged lines behind — exactly what hvc-check must flag.
        let (hv, vm, mut wl) = setup(AllocPolicy::DemandPaging, false);
        let asid = wl.procs()[0].asid;
        let mut sim = VirtSystemSim::new(
            hv,
            vm,
            SystemConfig::isca2016(),
            VirtScheme::HybridDelayedNested(1024),
        )
        .unwrap();
        sim.inject_drop_non_page_flushes();
        sim.run(&mut wl, 2000);
        sim.guest_os(|gk| gk.destroy_process(asid).unwrap());
        assert!(
            sim.hierarchy()
                .resident_names()
                .any(|n| matches!(n, BlockName::Virt(a, _) if a == asid)),
            "fault injection should reproduce the dropped-flush bug"
        );
    }

    #[test]
    fn host_induced_sharing_becomes_candidate() {
        let mut hv = Hypervisor::new(4 * GIB);
        let vm = hv.create_vm(GIB, AllocPolicy::DemandPaging, false).unwrap();
        let gk = hv.guest_kernel_mut(vm).unwrap();
        let wl = apps::gups(4 << 20).instantiate(gk, 5).unwrap();
        let asid = wl.procs()[0].asid;
        // The hypervisor shares the first guest page r/w with the host.
        hv.share_rw_with_host(vm, VirtAddr::new(0x1000_0000))
            .unwrap();
        let mut sim = VirtSystemSim::new(
            hv,
            vm,
            SystemConfig::isca2016(),
            VirtScheme::HybridDelayedNested(1024),
        )
        .unwrap();
        // Drive an access directly at the shared page.
        let item = hvc_types::TraceItem::new(0, MemRef::read(asid, VirtAddr::new(0x1000_0040)));
        sim.step(item, 1);
        let r = sim.report();
        assert_eq!(r.translation.filter_candidates, 1);
        assert_eq!(
            r.translation.shared_accesses, 1,
            "host-induced synonym → PA path"
        );
        // A private page is not a candidate.
        let _ = wl;
    }
}
