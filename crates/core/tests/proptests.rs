//! Property tests for the system simulator: functional agreement across
//! schemes for arbitrary workload shapes.

use hvc_core::{SystemConfig, SystemSim, TranslationScheme};
use hvc_os::{AllocPolicy, Kernel};
use hvc_types::PAGE_SIZE;
use hvc_workloads::{AccessPattern, RegionSpec, SharingSpec, WorkloadSpec};
use proptest::prelude::*;

fn small_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1u64..64,
        prop_oneof![
            Just(AccessPattern::Uniform),
            (0.5f64..0.9).prop_map(AccessPattern::Zipfian),
            Just(AccessPattern::Stream),
        ],
        0.0f64..0.6,
        prop::option::of(Just(SharingSpec {
            processes: 2,
            shared_bytes: 8 * PAGE_SIZE,
            shared_access_frac: 0.2,
        })),
    )
        .prop_map(|(pages, pattern, write_frac, sharing)| WorkloadSpec {
            name: "prop".into(),
            regions: vec![RegionSpec::full(pages * PAGE_SIZE)],
            contiguous: true,
            pattern,
            write_frac,
            mean_gap: 3,
            mlp: 2,
            burst: 4,
            stack_frac: 0.2,
            sharing,
        })
}

fn run(
    spec: &WorkloadSpec,
    scheme: TranslationScheme,
    policy: AllocPolicy,
    seed: u64,
) -> hvc_core::RunReport {
    let mut kernel = Kernel::new(1 << 30, policy);
    let mut wl = spec.instantiate(&mut kernel, seed).unwrap();
    let mut sim = SystemSim::new(kernel, SystemConfig::isca2016(), scheme);
    sim.run(&mut wl, 3000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every demand-paged scheme sees identical functional footprints for
    /// the same workload stream: same instructions, same faults, same
    /// shared-access counts, and the ideal scheme is never slower.
    #[test]
    fn schemes_agree_functionally(spec in small_spec(), seed in 0u64..500) {
        let d = AllocPolicy::DemandPaging;
        let base = run(&spec, TranslationScheme::Baseline, d, seed);
        let hyb = run(&spec, TranslationScheme::HybridDelayedTlb(1024), d, seed);
        let enig = run(&spec, TranslationScheme::EnigmaDelayedTlb(1024), d, seed);
        let ideal = run(&spec, TranslationScheme::Ideal, d, seed);

        for r in [&hyb, &enig, &ideal] {
            prop_assert_eq!(r.instructions, base.instructions);
            prop_assert_eq!(r.minor_faults, base.minor_faults);
            prop_assert_eq!(r.translation.shared_accesses, base.translation.shared_accesses);
        }
        prop_assert!(ideal.cycles <= base.cycles);
        prop_assert!(ideal.cycles <= hyb.cycles);
        prop_assert!(ideal.cycles <= enig.cycles);
        // The hybrid filter never under-reports synonyms.
        prop_assert!(hyb.translation.filter_candidates >= hyb.translation.shared_accesses);
        // Enigma consults its first level on every reference.
        prop_assert_eq!(enig.translation.enigma_lookups, enig.refs);
    }

    /// The many-segment scheme agrees with the delayed-TLB scheme on all
    /// functional counters under eager allocation.
    #[test]
    fn many_segment_functional_agreement(spec in small_spec(), seed in 0u64..500) {
        let e = AllocPolicy::EagerSegments { split: 1 };
        let tlb = run(&spec, TranslationScheme::HybridDelayedTlb(1024), e, seed);
        let seg = run(
            &spec,
            TranslationScheme::HybridManySegment { segment_cache: true },
            e,
            seed,
        );
        prop_assert_eq!(seg.instructions, tlb.instructions);
        prop_assert_eq!(seg.translation.shared_accesses, tlb.translation.shared_accesses);
        prop_assert_eq!(seg.minor_faults, 0);
    }

    /// Simulation determinism: identical configuration ⇒ identical report.
    #[test]
    fn identical_runs_are_identical(spec in small_spec(), seed in 0u64..500) {
        let a = run(&spec, TranslationScheme::HybridDelayedTlb(2048), AllocPolicy::DemandPaging, seed);
        let b = run(&spec, TranslationScheme::HybridDelayedTlb(2048), AllocPolicy::DemandPaging, seed);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.translation, b.translation);
    }
}
