//! Property tests for the core types.

use hvc_types::{Asid, Cycles, Permissions, PhysAddr, VirtAddr, Vmid, LINE_SIZE, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    #[test]
    fn virt_addr_masking_is_idempotent(raw in any::<u64>()) {
        let once = VirtAddr::new(raw);
        let twice = VirtAddr::new(once.as_u64());
        prop_assert_eq!(once, twice);
        prop_assert!(once.as_u64() < (1 << 48));
    }

    #[test]
    fn page_and_line_offsets_compose(raw in 0u64..(1 << 48)) {
        let va = VirtAddr::new(raw);
        prop_assert_eq!(va.page_number().base().as_u64() + va.page_offset(), raw);
        prop_assert_eq!(va.line().base_raw() + va.line_offset(), raw);
        prop_assert!(va.page_offset() < PAGE_SIZE);
        prop_assert!(va.line_offset() < LINE_SIZE);
    }

    #[test]
    fn align_down_up_bracket_the_address(raw in 0u64..(1 << 47), shift in 0u32..21) {
        let align = 1u64 << shift;
        let va = VirtAddr::new(raw);
        let down = va.align_down(align);
        let up = va.align_up(align);
        prop_assert!(down <= va);
        prop_assert!(up >= va || up.as_u64() == 0); // wrap at the top masked away
        prop_assert!(down.is_aligned(align));
        prop_assert!(va - down < align);
    }

    #[test]
    fn asid_vmid_composition_roundtrips(vmid in 0u8..64, local in 0u16..1024) {
        let a = Asid::for_vm(Vmid::new(vmid), local);
        prop_assert_eq!(a.vmid(), Vmid::new(vmid));
        prop_assert_eq!(a.local(), local);
    }

    #[test]
    fn asid_composition_is_injective(
        a in (0u8..64, 0u16..1024),
        b in (0u8..64, 0u16..1024),
    ) {
        let ca = Asid::for_vm(Vmid::new(a.0), a.1);
        let cb = Asid::for_vm(Vmid::new(b.0), b.1);
        prop_assert_eq!(ca == cb, a == b);
    }

    #[test]
    fn cycles_arithmetic_is_consistent(a in 0u64..(1 << 40), b in 0u64..(1 << 40)) {
        let ca = Cycles::new(a);
        let cb = Cycles::new(b);
        prop_assert_eq!((ca + cb).get(), a + b);
        prop_assert_eq!(ca.saturating_sub(cb).get(), a.saturating_sub(b));
        prop_assert_eq!(ca.max(cb).get(), a.max(b));
    }

    #[test]
    fn permission_downgrade_removes_only_write(bits in 0u8..8) {
        let mut p = Permissions::NONE;
        if bits & 1 != 0 { p |= Permissions::READ; }
        if bits & 2 != 0 { p |= Permissions::WRITE; }
        if bits & 4 != 0 { p |= Permissions::EXEC; }
        let d = p.downgraded_read_only();
        prop_assert!(!d.is_writable());
        prop_assert_eq!(d.allows(Permissions::READ), p.allows(Permissions::READ));
        prop_assert_eq!(d.allows(Permissions::EXEC), p.allows(Permissions::EXEC));
    }

    #[test]
    fn phys_addr_frame_roundtrip(raw in 0u64..(1 << 52)) {
        let pa = PhysAddr::new(raw);
        prop_assert_eq!(pa.frame_number().base().as_u64() + pa.page_offset(), raw);
    }
}
