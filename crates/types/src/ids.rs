//! Address-space and virtual-machine identifiers, and the hybrid cache
//! block naming scheme.

use crate::addr::LineAddr;
use core::fmt;

/// A 16-bit address-space identifier.
///
/// The paper configures the ASID to 16 bits, "which allow 65,536 address
/// spaces"; for virtualized systems the ASID embeds the virtual-machine
/// identifier ([`Vmid`]) in its upper bits so that "a VM cannot access
/// virtually-addressed cachelines of another VM".
///
/// # Examples
///
/// ```
/// use hvc_types::{Asid, Vmid};
///
/// let native = Asid::new(42);
/// assert_eq!(native.as_u16(), 42);
///
/// let guest = Asid::for_vm(Vmid::new(3), 42);
/// assert_eq!(guest.vmid(), Vmid::new(3));
/// assert_eq!(guest.local(), 42);
/// assert_ne!(native, guest);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asid(u16);

/// Number of ASID bits reserved for the VMID in virtualized systems.
const VMID_BITS: u32 = 6;
/// Number of ASID bits left for the per-VM process identifier.
const LOCAL_BITS: u32 = 16 - VMID_BITS;

impl Asid {
    /// The kernel / hypervisor address space (ASID 0).
    pub const KERNEL: Asid = Asid(0);

    /// Creates a native (non-virtualized) ASID.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        Asid(raw)
    }

    /// Composes an ASID for process `local` running inside VM `vmid`.
    ///
    /// # Panics
    ///
    /// Panics if `local` does not fit in the low 10 bits.
    #[inline]
    pub fn for_vm(vmid: Vmid, local: u16) -> Self {
        assert!(
            local < (1 << LOCAL_BITS),
            "per-VM ASID {local} exceeds {} bits",
            LOCAL_BITS
        );
        Asid(((vmid.0 as u16) << LOCAL_BITS) | local)
    }

    /// Returns the raw 16-bit value.
    #[inline]
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns the VMID embedded in the upper bits (VMID 0 for native
    /// ASIDs).
    #[inline]
    pub const fn vmid(self) -> Vmid {
        Vmid((self.0 >> LOCAL_BITS) as u8)
    }

    /// Returns the per-VM (or native) local identifier in the low bits.
    #[inline]
    pub const fn local(self) -> u16 {
        self.0 & ((1 << LOCAL_BITS) - 1)
    }
}

impl fmt::Debug for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Asid({})", self.0)
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for Asid {
    #[inline]
    fn from(raw: u16) -> Self {
        Asid(raw)
    }
}

/// A virtual-machine identifier (up to 64 VMs).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vmid(u8);

impl Vmid {
    /// The host / native "VM" (VMID 0).
    pub const HOST: Vmid = Vmid(0);

    /// Creates a new VMID.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not fit in 6 bits.
    #[inline]
    pub fn new(raw: u8) -> Self {
        assert!(
            raw < (1 << VMID_BITS),
            "VMID {raw} exceeds {VMID_BITS} bits"
        );
        Vmid(raw)
    }

    /// Returns the raw value.
    #[inline]
    pub const fn as_u8(self) -> u8 {
        self.0
    }
}

impl fmt::Debug for Vmid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vmid({})", self.0)
    }
}

impl fmt::Display for Vmid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The unique name of a cache block in the hybrid hierarchy.
///
/// The paper's key correctness invariant is that "a single address (either
/// ASID+VA or PA) is used for a physical cacheline in the entire cache
/// hierarchy" — synonym pages are cached under their physical line address,
/// non-synonym pages under `ASID ++ virtual line address`. `BlockName` is
/// that single name; the cache crate keys tags by it and the coherence
/// machinery never needs reverse maps.
///
/// The enum discriminant plays the role of the tag's *synonym bit* (`S` in
/// the paper's Figure 2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BlockName {
    /// A physically-addressed block (synonym page, or a baseline physical
    /// cache).
    Phys(LineAddr),
    /// A virtually-addressed block, tagged with the owning address space to
    /// avoid homonyms.
    Virt(Asid, LineAddr),
}

impl BlockName {
    /// Returns the line address portion of the name (space-agnostic).
    #[inline]
    pub fn line(self) -> LineAddr {
        match self {
            BlockName::Phys(l) | BlockName::Virt(_, l) => l,
        }
    }

    /// Returns `true` if this block is physically addressed (the tag's
    /// synonym bit is set).
    #[inline]
    pub fn is_phys(self) -> bool {
        matches!(self, BlockName::Phys(_))
    }

    /// Returns the ASID for virtually-addressed blocks.
    #[inline]
    pub fn asid(self) -> Option<Asid> {
        match self {
            BlockName::Phys(_) => None,
            BlockName::Virt(a, _) => Some(a),
        }
    }
}

impl fmt::Debug for BlockName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockName::Phys(l) => write!(f, "P:{:#x}", l.as_u64()),
            BlockName::Virt(a, l) => write!(f, "V:{}:{:#x}", a, l.as_u64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asid_vm_composition_round_trips() {
        let a = Asid::for_vm(Vmid::new(5), 123);
        assert_eq!(a.vmid(), Vmid::new(5));
        assert_eq!(a.local(), 123);
    }

    #[test]
    fn native_asid_has_host_vmid() {
        assert_eq!(Asid::new(99).vmid(), Vmid::HOST);
    }

    #[test]
    fn different_vms_never_collide() {
        // Same local process id in two VMs must produce distinct ASIDs,
        // otherwise one VM could hit the other's virtually-tagged lines.
        let a = Asid::for_vm(Vmid::new(1), 7);
        let b = Asid::for_vm(Vmid::new(2), 7);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_local_asid_rejected() {
        let _ = Asid::for_vm(Vmid::new(1), 1 << 10);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_vmid_rejected() {
        let _ = Vmid::new(64);
    }

    #[test]
    fn block_names_distinguish_spaces() {
        let l = LineAddr::new(0x40);
        let p = BlockName::Phys(l);
        let v = BlockName::Virt(Asid::new(1), l);
        assert_ne!(p, v);
        assert!(p.is_phys());
        assert!(!v.is_phys());
        assert_eq!(p.line(), l);
        assert_eq!(v.asid(), Some(Asid::new(1)));
        assert_eq!(p.asid(), None);
    }

    #[test]
    fn homonyms_are_distinguished_by_asid() {
        // Two processes using the same VA get different block names.
        let l = LineAddr::new(0x1000);
        let a = BlockName::Virt(Asid::new(1), l);
        let b = BlockName::Virt(Asid::new(2), l);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_formats() {
        let l = LineAddr::new(0x40);
        assert_eq!(format!("{:?}", BlockName::Phys(l)), "P:0x40");
        assert_eq!(
            format!("{:?}", BlockName::Virt(Asid::new(3), l)),
            "V:3:0x40"
        );
    }
}
