//! Simulation time as processor cycles.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub};

/// A duration or timestamp measured in processor core cycles.
///
/// All latencies in the simulator are expressed in core cycles at the
/// nominal 3.4 GHz frequency of the paper's Table IV configuration; the
/// DRAM model converts its own timing internally.
///
/// # Examples
///
/// ```
/// use hvc_types::Cycles;
///
/// let l1 = Cycles::new(4);
/// let l2 = Cycles::new(6);
/// assert_eq!((l1 + l2).get(), 10);
/// assert_eq!(l1 * 3, Cycles::new(12));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction (useful for overlap accounting).
    #[inline]
    #[must_use]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two cycle counts.
    #[inline]
    #[must_use]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycles {
    #[inline]
    fn from(n: u64) -> Cycles {
        Cycles(n)
    }
}

impl From<Cycles> for u64 {
    #[inline]
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Cycles::new(3) + Cycles::new(4), Cycles::new(7));
        assert_eq!(Cycles::new(7) - Cycles::new(4), Cycles::new(3));
        assert_eq!(Cycles::new(3) * 4, Cycles::new(12));
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(5)), Cycles::ZERO);
        assert_eq!(Cycles::new(3).max(Cycles::new(5)), Cycles::new(5));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Cycles = [1u64, 2, 3].iter().map(|&n| Cycles::new(n)).sum();
        assert_eq!(total, Cycles::new(6));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Cycles::new(5)), "5");
        assert_eq!(format!("{:?}", Cycles::new(5)), "5cy");
    }
}
