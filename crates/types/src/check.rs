//! Runtime correctness-check hooks.
//!
//! The simulators accept an optional [`CheckHooks`] implementation and
//! call it at well-defined points (access boundaries, flush
//! application). When no hooks are installed the cost is a single
//! branch per call site, so production sweeps pay nothing; the
//! `hvc-check` crate installs hooks that audit the paper's correctness
//! invariants (most importantly: the OS flush-request queue must be
//! empty whenever a new access can observe cache or TLB state).

/// Callbacks invoked by the simulators when checking is enabled.
///
/// All methods have empty default bodies so an implementation only
/// overrides the events it cares about. Implementations that need to
/// expose results to an external observer typically wrap shared state
/// (e.g. `Rc<RefCell<…>>`) — the simulator owns the hook itself.
pub trait CheckHooks {
    /// Called after every simulated reference with the number of
    /// OS-requested flushes still queued. A non-zero count means a
    /// kernel operation's shootdowns were not applied before the next
    /// access could observe a stale line — a violation of the paper's
    /// single-name discipline.
    fn access_boundary(&mut self, refs: u64, pending_flushes: usize) {
        let _ = (refs, pending_flushes);
    }

    /// Called whenever the simulator drains and applies a batch of
    /// flush requests from the OS (`count` requests were applied).
    fn flushes_applied(&mut self, count: usize) {
        let _ = count;
    }
}

/// A no-op [`CheckHooks`] implementation (checking disabled explicitly).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoChecks;

impl CheckHooks for NoChecks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bodies_are_no_ops() {
        let mut h = NoChecks;
        h.access_boundary(1, 0);
        h.flushes_applied(3);
    }
}
