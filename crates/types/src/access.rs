//! Memory-reference trace records.
//!
//! The simulator is trace-driven: workload generators in `hvc-workloads`
//! produce streams of [`TraceItem`]s that the core model in `hvc-core`
//! consumes. Each item carries a memory reference plus the number of
//! non-memory instructions that retire before it, which is all the timing
//! model needs to approximate an out-of-order core.

use crate::{Asid, VirtAddr};
use core::fmt;

/// The kind of a memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store.
    Write,
    /// An instruction fetch.
    Fetch,
}

impl AccessKind {
    /// Returns `true` for stores.
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// Returns `true` for instruction fetches.
    #[inline]
    pub const fn is_fetch(self) -> bool {
        matches!(self, AccessKind::Fetch)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
            AccessKind::Fetch => write!(f, "F"),
        }
    }
}

/// A single memory reference issued by some address space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemRef {
    /// Issuing address space.
    pub asid: Asid,
    /// Virtual address accessed.
    pub vaddr: VirtAddr,
    /// Load / store / fetch.
    pub kind: AccessKind,
}

impl MemRef {
    /// Creates a data-load reference.
    #[inline]
    pub fn read(asid: Asid, vaddr: VirtAddr) -> Self {
        MemRef {
            asid,
            vaddr,
            kind: AccessKind::Read,
        }
    }

    /// Creates a data-store reference.
    #[inline]
    pub fn write(asid: Asid, vaddr: VirtAddr) -> Self {
        MemRef {
            asid,
            vaddr,
            kind: AccessKind::Write,
        }
    }

    /// Creates an instruction-fetch reference.
    #[inline]
    pub fn fetch(asid: Asid, vaddr: VirtAddr) -> Self {
        MemRef {
            asid,
            vaddr,
            kind: AccessKind::Fetch,
        }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {} {}]", self.asid, self.kind, self.vaddr)
    }
}

/// One unit of trace: a memory reference preceded by `gap` non-memory
/// instructions.
///
/// The instruction count of a trace is `sum(gap + 1)` over its items (each
/// memory reference is itself one instruction).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceItem {
    /// Non-memory instructions retiring before this reference.
    pub gap: u32,
    /// The memory reference.
    pub mref: MemRef,
}

impl TraceItem {
    /// Creates a trace item.
    #[inline]
    pub fn new(gap: u32, mref: MemRef) -> Self {
        TraceItem { gap, mref }
    }

    /// Instructions represented by this item (the gap plus the reference
    /// itself).
    #[inline]
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap) + 1
    }
}

/// An owned instruction/memory trace plus bookkeeping helpers.
///
/// # Examples
///
/// ```
/// use hvc_types::{Asid, MemRef, Trace, TraceItem, VirtAddr};
///
/// let mut t = Trace::new();
/// t.push(TraceItem::new(3, MemRef::read(Asid::new(1), VirtAddr::new(0x1000))));
/// t.push(TraceItem::new(0, MemRef::write(Asid::new(1), VirtAddr::new(0x1040))));
/// assert_eq!(t.instructions(), 5);
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Clone, Default, Debug)]
pub struct Trace {
    items: Vec<TraceItem>,
}

impl Trace {
    /// Creates an empty trace.
    #[inline]
    pub fn new() -> Self {
        Trace { items: Vec::new() }
    }

    /// Creates an empty trace with reserved capacity.
    #[inline]
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            items: Vec::with_capacity(n),
        }
    }

    /// Appends an item.
    #[inline]
    pub fn push(&mut self, item: TraceItem) {
        self.items.push(item);
    }

    /// Number of memory references.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the trace has no references.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total instructions represented (gaps + references).
    pub fn instructions(&self) -> u64 {
        self.items.iter().map(TraceItem::instructions).sum()
    }

    /// Iterates over the items.
    pub fn iter(&self) -> core::slice::Iter<'_, TraceItem> {
        self.items.iter()
    }

    /// Borrows the underlying items.
    #[inline]
    pub fn as_slice(&self) -> &[TraceItem] {
        &self.items
    }
}

impl FromIterator<TraceItem> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceItem>>(iter: I) -> Self {
        Trace {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceItem> for Trace {
    fn extend<I: IntoIterator<Item = TraceItem>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceItem;
    type IntoIter = core::slice::Iter<'a, TraceItem>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TraceItem;
    type IntoIter = std::vec::IntoIter<TraceItem>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(va: u64) -> MemRef {
        MemRef::read(Asid::new(1), VirtAddr::new(va))
    }

    #[test]
    fn trace_instruction_accounting() {
        let t: Trace = [TraceItem::new(9, r(0)), TraceItem::new(0, r(64))]
            .into_iter()
            .collect();
        assert_eq!(t.instructions(), 11);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn constructors_set_kind() {
        let a = Asid::new(2);
        assert_eq!(MemRef::read(a, VirtAddr::new(0)).kind, AccessKind::Read);
        assert_eq!(MemRef::write(a, VirtAddr::new(0)).kind, AccessKind::Write);
        assert_eq!(MemRef::fetch(a, VirtAddr::new(0)).kind, AccessKind::Fetch);
        assert!(AccessKind::Write.is_write());
        assert!(AccessKind::Fetch.is_fetch());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn trace_iteration() {
        let mut t = Trace::with_capacity(4);
        t.extend([TraceItem::new(1, r(0))]);
        t.push(TraceItem::new(2, r(64)));
        let gaps: Vec<u32> = t.iter().map(|i| i.gap).collect();
        assert_eq!(gaps, vec![1, 2]);
        let owned: Vec<TraceItem> = t.clone().into_iter().collect();
        assert_eq!(owned.len(), 2);
        assert_eq!(t.as_slice().len(), 2);
    }

    #[test]
    fn display_formats() {
        let m = MemRef::read(Asid::new(1), VirtAddr::new(0x40));
        assert_eq!(format!("{m}"), "[1 R 0x40]");
    }
}
