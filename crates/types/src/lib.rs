//! Core types shared across the Hybrid Virtual Caching (HVC) simulator.
//!
//! This crate defines the strongly-typed vocabulary of the simulator:
//! virtual / physical / guest-physical addresses, address-space and
//! virtual-machine identifiers, cycle counts, access permissions and the
//! trace records that drive the timing model.
//!
//! The newtypes follow the paper's address-space conventions:
//!
//! * virtual addresses are 48-bit canonical (x86-64),
//! * physical (machine) addresses are up to 52 bits,
//! * address-space identifiers (ASIDs) are 16 bits, wide enough to embed a
//!   virtual-machine identifier (VMID) in the upper bits for virtualized
//!   systems,
//! * cache blocks in the hybrid hierarchy are named by **either** a
//!   physical line address (synonym pages) **or** `ASID ++ VA` (non-synonym
//!   pages) — see [`BlockName`].
//!
//! # Examples
//!
//! ```
//! use hvc_types::{VirtAddr, PAGE_SIZE};
//!
//! let va = VirtAddr::new(0x7fff_dead_b000);
//! assert_eq!(va.page_offset(), 0);
//! assert_eq!(va.page_number().base().as_u64(), 0x7fff_dead_b000);
//! assert_eq!(VirtAddr::new(0x1234).align_down(PAGE_SIZE).as_u64(), 0x1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod addr;
mod check;
mod cycles;
mod error;
mod fx;
mod ids;
mod merge;
mod perm;

pub use access::{AccessKind, MemRef, Trace, TraceItem};
pub use addr::{
    GuestPhysAddr, LineAddr, PhysAddr, PhysFrame, VirtAddr, VirtPage, LINE_SHIFT, LINE_SIZE,
    PAGE_SHIFT, PAGE_SIZE, PHYS_ADDR_BITS, VIRT_ADDR_BITS,
};
pub use check::{CheckHooks, NoChecks};
pub use cycles::Cycles;
pub use error::{HvcError, Result};
pub use fx::{FxHashMap, FxHashSet, FxHasher};
pub use ids::{Asid, BlockName, Vmid};
pub use merge::MergeStats;
pub use perm::Permissions;
