//! A fast, deterministic hasher for the simulator's small integer keys.
//!
//! The std `HashMap` defaults to SipHash with a per-instance random seed.
//! That is the right default for untrusted input, but the simulator's maps
//! are keyed by small internal identifiers (ASIDs, virtual page numbers,
//! radix indices) chosen by the model itself, so DoS resistance buys
//! nothing and the per-lookup SipHash cost lands on the hottest paths
//! (`Kernel::space`, page-table walks). This multiply-xor hash — the
//! rotate/multiply construction popularized by Firefox and rustc — is a
//! handful of ALU ops per word and, unlike `RandomState`, fully
//! deterministic, which keeps map iteration order stable across runs.
//!
//! Behavioral note: nothing in the simulator may depend on map iteration
//! order (the golden-equivalence suite reproduces byte-identical reports
//! across processes even under `RandomState`'s per-process seeds), so
//! swapping the hasher is observationally neutral; determinism here is a
//! debugging nicety, not a correctness requirement.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Multiply-xor hasher for small trusted keys (not DoS-resistant).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

/// Odd multiplier close to 2^64 / phi, spreading entropy into high bits.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hash_of = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        let hashes: Vec<u64> = (0..1000).map(hash_of).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len(), "no collisions on 0..1000");
        // High bits must carry entropy — HashMap uses the top 7 bits for
        // its SIMD tag byte.
        assert!(hashes.iter().any(|h| h >> 57 != hashes[0] >> 57));
    }

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u16, u32> = FxHashMap::default();
        for i in 0..100u16 {
            m.insert(i, u32::from(i) * 3);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&42), Some(&126));
        assert_eq!(m.remove(&42), Some(126));
        assert!(!m.contains_key(&42));
    }

    #[test]
    fn byte_writes_match_word_writes_for_length() {
        // `write` must consume all bytes (padding short tails), so equal
        // prefixes with different tails hash differently.
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }
}
