//! Address newtypes and page / cache-line arithmetic.
//!
//! Three distinct address spaces appear in the simulator, mirroring the
//! paper's Figure 8:
//!
//! * [`VirtAddr`] — a (guest) virtual address produced by a process,
//! * [`GuestPhysAddr`] — the intermediate space of a virtualized system,
//! * [`PhysAddr`] — the real machine address that reaches DRAM.
//!
//! Keeping them distinct at the type level prevents the classic simulator
//! bug of translating an address twice or indexing DRAM with a virtual
//! address.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Number of meaningful bits of a canonical x86-64 virtual address.
pub const VIRT_ADDR_BITS: u32 = 48;
/// Number of meaningful bits of a physical address (AMD-style 52-bit space).
pub const PHYS_ADDR_BITS: u32 = 52;
/// log2 of the base page size (4 KiB pages).
pub const PAGE_SHIFT: u32 = 12;
/// Base page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// log2 of the cache-line size (64 B lines).
pub const LINE_SHIFT: u32 = 6;
/// Cache-line size in bytes.
pub const LINE_SIZE: u64 = 1 << LINE_SHIFT;

macro_rules! addr_common {
    ($t:ident, $bits:expr, $doc_space:expr) => {
        impl $t {
            /// Maximum representable address in this space (inclusive).
            pub const MAX: $t = $t((1u64 << $bits) - 1);

            /// Creates a new address, masking to the meaningful bits of the
            #[doc = concat!($doc_space, " space.")]
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw & ((1u64 << $bits) - 1))
            }

            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Returns the byte offset within the containing 4 KiB page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// Returns the byte offset within the containing 64 B cache line.
            #[inline]
            pub const fn line_offset(self) -> u64 {
                self.0 & (LINE_SIZE - 1)
            }

            /// Returns the cache-line-aligned address (the line this address
            /// falls in).
            #[inline]
            pub const fn line(self) -> LineAddr {
                LineAddr(self.0 >> LINE_SHIFT)
            }

            /// Rounds the address down to a multiple of `align`.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two.
            #[inline]
            pub fn align_down(self, align: u64) -> Self {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                Self(self.0 & !(align - 1))
            }

            /// Rounds the address up to a multiple of `align`.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two.
            #[inline]
            pub fn align_up(self, align: u64) -> Self {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                Self::new(self.0.wrapping_add(align - 1) & !(align - 1))
            }

            /// Returns `true` if the address is a multiple of `align`.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two.
            #[inline]
            pub fn is_aligned(self, align: u64) -> bool {
                self.align_down(align) == self
            }
        }

        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($t), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<$t> for u64 {
            #[inline]
            fn from(a: $t) -> u64 {
                a.0
            }
        }

        impl Add<u64> for $t {
            type Output = $t;
            #[inline]
            fn add(self, rhs: u64) -> $t {
                $t::new(self.0.wrapping_add(rhs))
            }
        }

        impl AddAssign<u64> for $t {
            #[inline]
            fn add_assign(&mut self, rhs: u64) {
                *self = *self + rhs;
            }
        }

        impl Sub<$t> for $t {
            type Output = u64;
            #[inline]
            fn sub(self, rhs: $t) -> u64 {
                self.0.wrapping_sub(rhs.0)
            }
        }
    };
}

/// A (guest) virtual address as issued by a process.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(u64);
addr_common!(VirtAddr, VIRT_ADDR_BITS, "48-bit virtual");

/// A physical (machine) address, as used to access DRAM.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(u64);
addr_common!(PhysAddr, PHYS_ADDR_BITS, "52-bit physical");

/// A guest-physical address: the intermediate space of a virtualized
/// system, translated to a machine [`PhysAddr`] by the hypervisor.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GuestPhysAddr(u64);
addr_common!(GuestPhysAddr, PHYS_ADDR_BITS, "guest-physical");

impl VirtAddr {
    /// Returns the virtual page number containing this address.
    #[inline]
    pub const fn page_number(self) -> VirtPage {
        VirtPage(self.0 >> PAGE_SHIFT)
    }
}

impl PhysAddr {
    /// Returns the physical frame number containing this address.
    #[inline]
    pub const fn frame_number(self) -> PhysFrame {
        PhysFrame(self.0 >> PAGE_SHIFT)
    }
}

impl GuestPhysAddr {
    /// Returns the guest frame number containing this address.
    #[inline]
    pub const fn frame_number(self) -> PhysFrame {
        PhysFrame(self.0 >> PAGE_SHIFT)
    }
}

/// A virtual page number (a [`VirtAddr`] shifted right by [`PAGE_SHIFT`]).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtPage(u64);

impl VirtPage {
    /// Creates a page number from its raw value.
    #[inline]
    pub const fn new(vpn: u64) -> Self {
        Self(vpn & ((1u64 << (VIRT_ADDR_BITS - PAGE_SHIFT)) - 1))
    }

    /// Returns the raw page number.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of this page.
    #[inline]
    pub const fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the page `n` pages after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> Self {
        Self::new(self.0.wrapping_add(n))
    }
}

impl fmt::Debug for VirtPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtPage({:#x})", self.0)
    }
}

/// A physical frame number (a [`PhysAddr`] shifted right by [`PAGE_SHIFT`]).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysFrame(u64);

impl PhysFrame {
    /// Creates a frame number from its raw value.
    #[inline]
    pub const fn new(pfn: u64) -> Self {
        Self(pfn & ((1u64 << (PHYS_ADDR_BITS - PAGE_SHIFT)) - 1))
    }

    /// Returns the raw frame number.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of this frame.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the frame `n` frames after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> Self {
        Self::new(self.0.wrapping_add(n))
    }
}

impl fmt::Debug for PhysFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysFrame({:#x})", self.0)
    }
}

/// A cache-line number in an unspecified address space.
///
/// `LineAddr` deliberately erases which space it came from: the cache
/// hierarchy keys blocks by [`crate::BlockName`], which pairs a `LineAddr`
/// with its naming space, and the DRAM model receives physical line numbers
/// only after delayed translation.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line number from its raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw line number.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of the line, as a raw
    /// integer (space-agnostic).
    #[inline]
    pub const fn base_raw(self) -> u64 {
        self.0 << LINE_SHIFT
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_masks_to_48_bits() {
        let va = VirtAddr::new(u64::MAX);
        assert_eq!(va.as_u64(), (1u64 << 48) - 1);
        assert_eq!(va, VirtAddr::MAX);
    }

    #[test]
    fn phys_addr_masks_to_52_bits() {
        let pa = PhysAddr::new(u64::MAX);
        assert_eq!(pa.as_u64(), (1u64 << 52) - 1);
    }

    #[test]
    fn page_math_round_trips() {
        let va = VirtAddr::new(0x1234_5678_9abc);
        assert_eq!(va.page_number().base() + va.page_offset(), va);
        assert_eq!(va.page_offset(), 0xabc);
    }

    #[test]
    fn line_math() {
        let va = VirtAddr::new(0x1040);
        assert_eq!(va.line().as_u64(), 0x41);
        assert_eq!(va.line_offset(), 0);
        assert_eq!(VirtAddr::new(0x107f).line().as_u64(), 0x41);
        assert_eq!(VirtAddr::new(0x107f).line_offset(), 0x3f);
    }

    #[test]
    fn alignment() {
        let va = VirtAddr::new(0x1001);
        assert_eq!(va.align_down(0x1000).as_u64(), 0x1000);
        assert_eq!(va.align_up(0x1000).as_u64(), 0x2000);
        assert!(VirtAddr::new(0x2000).is_aligned(0x1000));
        assert!(!va.is_aligned(2));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_rejects_non_power_of_two() {
        let _ = VirtAddr::new(0).align_down(3);
    }

    #[test]
    fn addition_and_subtraction() {
        let a = VirtAddr::new(0x1000);
        let b = a + 0x40;
        assert_eq!(b.as_u64(), 0x1040);
        assert_eq!(b - a, 0x40);
        let mut c = a;
        c += 0x80;
        assert_eq!(c.as_u64(), 0x1080);
    }

    #[test]
    fn frame_and_page_offsets() {
        let f = PhysFrame::new(10);
        assert_eq!(f.offset(5).as_u64(), 15);
        assert_eq!(f.base().as_u64(), 10 << PAGE_SHIFT);
        let p = VirtPage::new(7);
        assert_eq!(p.offset(1).base().as_u64(), 8 << PAGE_SHIFT);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(format!("{}", VirtAddr::new(0xff)), "0xff");
        assert_eq!(format!("{:x}", PhysAddr::new(0xff)), "ff");
        assert_eq!(format!("{:?}", LineAddr::new(0x10)), "LineAddr(0x10)");
    }
}
