//! Access permissions carried in page-table entries and hybrid cache tags.

use core::fmt;
use core::ops::{BitOr, BitOrAssign};

/// Page / cacheline access permissions.
///
/// The paper extends each cache tag with two permission bits for
/// non-synonym cachelines so that permission checks normally done by the
/// TLB can be enforced at the cache instead (Figure 2 shows `rw` / `ro`
/// encodings). We model read, write and execute.
///
/// # Examples
///
/// ```
/// use hvc_types::Permissions;
///
/// let ro = Permissions::READ;
/// assert!(ro.allows(Permissions::READ));
/// assert!(!ro.allows(Permissions::WRITE));
///
/// let rw = Permissions::READ | Permissions::WRITE;
/// assert!(rw.allows(Permissions::WRITE));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Permissions(u8);

impl Permissions {
    /// No access.
    pub const NONE: Permissions = Permissions(0);
    /// Read access.
    pub const READ: Permissions = Permissions(1);
    /// Write access.
    pub const WRITE: Permissions = Permissions(2);
    /// Instruction-fetch access.
    pub const EXEC: Permissions = Permissions(4);
    /// Read + write (the common private-page permission).
    pub const RW: Permissions = Permissions(1 | 2);
    /// Read + exec (the common text-page permission).
    pub const RX: Permissions = Permissions(1 | 4);

    /// Returns `true` if every permission in `required` is granted.
    #[inline]
    pub const fn allows(self, required: Permissions) -> bool {
        (self.0 & required.0) == required.0
    }

    /// Returns `true` if write access is granted.
    #[inline]
    pub const fn is_writable(self) -> bool {
        self.allows(Permissions::WRITE)
    }

    /// Returns a copy with write permission removed — the paper's
    /// "downgrade to read-only" used for content-based sharing.
    #[inline]
    #[must_use]
    pub const fn downgraded_read_only(self) -> Permissions {
        Permissions(self.0 & !Permissions::WRITE.0)
    }

    /// Returns the raw bits (for tag-overhead accounting).
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }
}

impl BitOr for Permissions {
    type Output = Permissions;
    #[inline]
    fn bitor(self, rhs: Permissions) -> Permissions {
        Permissions(self.0 | rhs.0)
    }
}

impl BitOrAssign for Permissions {
    #[inline]
    fn bitor_assign(&mut self, rhs: Permissions) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for Permissions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.allows(Permissions::READ) {
                "r"
            } else {
                "-"
            },
            if self.allows(Permissions::WRITE) {
                "w"
            } else {
                "-"
            },
            if self.allows(Permissions::EXEC) {
                "x"
            } else {
                "-"
            },
        )
    }
}

impl fmt::Display for Permissions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_is_subset_check() {
        assert!(Permissions::RW.allows(Permissions::READ));
        assert!(Permissions::RW.allows(Permissions::WRITE));
        assert!(!Permissions::RW.allows(Permissions::EXEC));
        assert!(Permissions::NONE.allows(Permissions::NONE));
        assert!(!Permissions::NONE.allows(Permissions::READ));
    }

    #[test]
    fn downgrade_removes_write_only() {
        let p = Permissions::RW | Permissions::EXEC;
        let d = p.downgraded_read_only();
        assert!(d.allows(Permissions::READ));
        assert!(d.allows(Permissions::EXEC));
        assert!(!d.is_writable());
    }

    #[test]
    fn debug_is_unix_style() {
        assert_eq!(format!("{:?}", Permissions::RW), "rw-");
        assert_eq!(format!("{:?}", Permissions::RX), "r-x");
        assert_eq!(format!("{:?}", Permissions::NONE), "---");
    }
}
