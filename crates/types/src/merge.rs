//! Deterministic merging of statistics shards.
//!
//! Experiment sweeps (the `hvc-runner` crate) may split one logical run
//! into several measurement windows or shards and combine the per-shard
//! counters afterwards. [`MergeStats`] is the contract that makes that
//! combination well-defined: merging must behave like elementwise
//! addition of counters, so it is **associative** and **commutative**,
//! and merging a default-constructed value is the identity.
//!
//! # Examples
//!
//! ```
//! use hvc_types::{Cycles, MergeStats};
//!
//! let mut a = Cycles::new(3);
//! a.merge_from(&Cycles::new(4));
//! assert_eq!(a, Cycles::new(7));
//! ```

use crate::cycles::Cycles;

/// Counter-style statistics that can be combined across shards.
///
/// Implementations must satisfy, for all `a`, `b`, `c`:
///
/// * **identity** — `a.merge_from(&Default::default())` leaves `a`
///   unchanged;
/// * **commutativity** — `a + b == b + a` (writing `+` for merge);
/// * **associativity** — `(a + b) + c == a + (b + c)`.
///
/// Plain counters satisfy these via wrapping-free `u64` addition;
/// derived metrics (rates, means) must be recomputed from the merged
/// counters rather than merged themselves.
pub trait MergeStats {
    /// Folds `other`'s counts into `self`.
    fn merge_from(&mut self, other: &Self);

    /// Returns the merge of two values without mutating either.
    #[must_use]
    fn merged(&self, other: &Self) -> Self
    where
        Self: Clone,
    {
        let mut out = self.clone();
        out.merge_from(other);
        out
    }
}

impl MergeStats for u64 {
    fn merge_from(&mut self, other: &Self) {
        *self += *other;
    }
}

impl MergeStats for Cycles {
    fn merge_from(&mut self, other: &Self) {
        *self += *other;
    }
}

impl<T: MergeStats + Clone + Default> MergeStats for Vec<T> {
    /// Merges elementwise; a shorter vector is treated as padded with
    /// default (all-zero) entries, so shards that saw different core
    /// counts still combine deterministically.
    fn merge_from(&mut self, other: &Self) {
        if self.len() < other.len() {
            self.resize(other.len(), T::default());
        }
        for (dst, src) in self.iter_mut().zip(other.iter()) {
            dst.merge_from(src);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_and_cycles_add() {
        let mut n = 5u64;
        n.merge_from(&7);
        assert_eq!(n, 12);
        assert_eq!(Cycles::new(2).merged(&Cycles::new(9)), Cycles::new(11));
    }

    #[test]
    fn vec_pads_shorter_side() {
        let mut a = vec![1u64, 2];
        a.merge_from(&vec![10, 20, 30]);
        assert_eq!(a, vec![11, 22, 30]);

        let mut b = vec![1u64, 2, 3];
        b.merge_from(&vec![10]);
        assert_eq!(b, vec![11, 2, 3]);
    }

    #[test]
    fn default_is_identity() {
        let mut v = vec![4u64, 5];
        v.merge_from(&Vec::new());
        assert_eq!(v, vec![4, 5]);
    }
}
