//! Error types for the HVC simulator.

use crate::{Asid, Permissions, VirtAddr};
use core::fmt;

/// Convenience alias for results carrying [`HvcError`].
pub type Result<T> = core::result::Result<T, HvcError>;

/// Errors surfaced by the simulator's OS and translation substrates.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum HvcError {
    /// A virtual address had no mapping in its address space (page fault
    /// that the workload did not arrange to handle).
    Unmapped {
        /// Faulting address space.
        asid: Asid,
        /// Faulting address.
        vaddr: VirtAddr,
    },
    /// An access violated the page permissions (e.g. write to a read-only
    /// content-shared page).
    PermissionFault {
        /// Faulting address space.
        asid: Asid,
        /// Faulting address.
        vaddr: VirtAddr,
        /// Permissions held by the mapping.
        held: Permissions,
        /// Permissions required by the access.
        required: Permissions,
    },
    /// Physical memory is exhausted.
    OutOfMemory,
    /// The requested virtual region overlaps an existing mapping.
    RegionOverlap {
        /// Address space of the conflict.
        asid: Asid,
        /// Start of the requested region.
        vaddr: VirtAddr,
        /// Length of the requested region in bytes.
        len: u64,
    },
    /// The system-wide segment table is full (the paper provisions 2048
    /// entries).
    SegmentTableFull,
    /// An identifier (ASID, VMID, …) was exhausted or unknown.
    BadId(
        /// Description of the failing identifier.
        &'static str,
    ),
    /// A configuration parameter was invalid (e.g. non-power-of-two set
    /// count).
    BadConfig(
        /// Description of the failing parameter.
        &'static str,
    ),
}

impl fmt::Display for HvcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvcError::Unmapped { asid, vaddr } => {
                write!(f, "unmapped address {vaddr} in address space {asid}")
            }
            HvcError::PermissionFault { asid, vaddr, held, required } => write!(
                f,
                "permission fault at {vaddr} in address space {asid}: held {held}, required {required}"
            ),
            HvcError::OutOfMemory => write!(f, "out of physical memory"),
            HvcError::RegionOverlap { asid, vaddr, len } => write!(
                f,
                "region [{vaddr}, +{len:#x}) overlaps an existing mapping in address space {asid}"
            ),
            HvcError::SegmentTableFull => write!(f, "system-wide segment table is full"),
            HvcError::BadId(what) => write!(f, "bad identifier: {what}"),
            HvcError::BadConfig(what) => write!(f, "bad configuration: {what}"),
        }
    }
}

impl std::error::Error for HvcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = HvcError::Unmapped {
            asid: Asid::new(1),
            vaddr: VirtAddr::new(0x1000),
        };
        assert_eq!(e.to_string(), "unmapped address 0x1000 in address space 1");

        let e = HvcError::PermissionFault {
            asid: Asid::new(2),
            vaddr: VirtAddr::new(0x2000),
            held: Permissions::READ,
            required: Permissions::WRITE,
        };
        assert!(e.to_string().contains("permission fault"));
        assert!(e.to_string().contains("r--"));

        assert_eq!(HvcError::OutOfMemory.to_string(), "out of physical memory");
        assert!(HvcError::SegmentTableFull
            .to_string()
            .contains("segment table"));
        assert!(HvcError::BadId("asid").to_string().contains("asid"));
        assert!(HvcError::BadConfig("ways").to_string().contains("ways"));
        let e = HvcError::RegionOverlap {
            asid: Asid::new(1),
            vaddr: VirtAddr::new(0),
            len: 4096,
        };
        assert!(e.to_string().contains("overlaps"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_error(HvcError::OutOfMemory);
    }
}
