//! Bounded ring-buffer event tracing.

/// One completed span, in the vocabulary of Chrome's `trace_event`
/// format (a "complete" event, `"ph": "X"`): a name, a category, a
/// start timestamp, and a duration, all in simulated cycles.
///
/// The struct is plain data on purpose — the JSON encoding lives in
/// `hvc-runner`, which owns the workspace's dependency-free JSON
/// writer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (e.g. `"access"`, `"page_walk"`).
    pub name: &'static str,
    /// Event category (e.g. `"mem"`, `"translation"`).
    pub cat: &'static str,
    /// Start time in simulated cycles.
    pub ts: u64,
    /// Duration in simulated cycles.
    pub dur: u64,
    /// Track id; the simulator uses the core index.
    pub tid: u32,
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s.
///
/// Recording never allocates after construction and never grows: once
/// the buffer is full, the oldest event is overwritten and a drop
/// counter advances, so a multi-billion-cycle run keeps the *most
/// recent* window of activity at a bounded memory cost.
///
/// # Examples
///
/// ```
/// use hvc_obs::{EventTracer, TraceEvent};
///
/// let mut t = EventTracer::new(2);
/// for i in 0..3 {
///     t.record(TraceEvent { name: "access", cat: "mem", ts: i, dur: 1, tid: 0 });
/// }
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.dropped(), 1);
/// let ts: Vec<u64> = t.events().map(|e| e.ts).collect();
/// assert_eq!(ts, vec![1, 2]); // oldest event evicted first
/// ```
#[derive(Clone, Debug)]
pub struct EventTracer {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl EventTracer {
    /// Creates a tracer holding at most `capacity` events. A zero
    /// capacity is allowed and drops everything.
    pub fn new(capacity: usize) -> Self {
        EventTracer {
            events: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, start) = self.events.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted (or refused, for a zero-capacity tracer) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            name: "access",
            cat: "mem",
            ts,
            dur: 4,
            tid: 0,
        }
    }

    #[test]
    fn fills_then_wraps_preserving_order() {
        let mut t = EventTracer::new(3);
        assert!(t.is_empty());
        for i in 0..5 {
            t.record(ev(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.capacity(), 3);
        assert_eq!(t.dropped(), 2);
        let ts: Vec<u64> = t.events().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut t = EventTracer::new(0);
        t.record(ev(1));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn under_capacity_keeps_insertion_order() {
        let mut t = EventTracer::new(10);
        t.record(ev(7));
        t.record(ev(9));
        let ts: Vec<u64> = t.events().map(|e| e.ts).collect();
        assert_eq!(ts, vec![7, 9]);
        assert_eq!(t.dropped(), 0);
    }
}
