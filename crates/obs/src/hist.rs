//! Log₂-bucketed latency histograms.

use hvc_types::{Cycles, MergeStats};

/// Number of buckets: one per possible bit-width of a `u64` latency
/// (0 through 64), so every recordable value has a bucket and the
/// histogram never allocates or saturates.
pub const BUCKETS: usize = 65;

/// An allocation-free latency histogram with power-of-two buckets.
///
/// Bucket `k > 0` covers the half-open value range `[2^(k-1), 2^k)`;
/// bucket 0 holds exact zeros. Recording is two adds and a max — cheap
/// enough for per-access hot paths — and merging is elementwise
/// addition, so the histogram satisfies the [`MergeStats`] laws exactly
/// and per-shard results combine into the same distribution a single
/// whole run would have produced.
///
/// Percentile readout is deterministic: the reported quantile is the
/// *inclusive upper bound* of the bucket containing the requested rank
/// (clamped to the exact tracked maximum), so it is a pure function of
/// the bucket counts and identical however the shards were merged.
///
/// # Examples
///
/// ```
/// use hvc_obs::LatencyHistogram;
/// use hvc_types::Cycles;
///
/// let mut h = LatencyHistogram::default();
/// for lat in [3u64, 4, 4, 5, 200] {
///     h.record(Cycles::new(lat));
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 200);
/// assert_eq!(h.p50(), 7); // upper bound of the [4, 8) bucket
/// assert_eq!(h.p99(), 200); // capped at the exact maximum
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total: Cycles,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            total: Cycles::ZERO,
            max: 0,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("total", &self.total)
            .field("max", &self.max)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

/// Bucket index for a value: its bit width (0 for 0).
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `k`.
fn upper_bound(k: usize) -> u64 {
    match k {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << k) - 1,
    }
}

impl LatencyHistogram {
    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: Cycles) {
        let v = latency.get();
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.total += latency;
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn total(&self) -> Cycles {
        self.total
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample; `None` when the histogram is empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total.get() as f64 / self.count as f64)
    }

    /// The quantile `num/den` (e.g. 95/100 for p95) as the inclusive
    /// upper bound of the bucket holding that rank, clamped to the exact
    /// maximum. Returns 0 for an empty histogram.
    ///
    /// Integer rank arithmetic (`ceil(count * num / den)`) keeps the
    /// readout an exact function of the counts — no float rounding can
    /// make two merge orders disagree.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count as u128 * num as u128).div_ceil(den as u128);
        let rank = (rank as u64).max(1);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return upper_bound(k).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(50, 100)
    }

    /// 95th percentile (see [`Self::quantile`]).
    pub fn p95(&self) -> u64 {
        self.quantile(95, 100)
    }

    /// 99th percentile (see [`Self::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending order — the compact form reports serialize.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| (upper_bound(k), n))
    }
}

impl MergeStats for LatencyHistogram {
    fn merge_from(&mut self, other: &Self) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(samples: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        for &s in samples {
            h.record(Cycles::new(s));
        }
        h
    }

    #[test]
    fn buckets_cover_bit_widths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(upper_bound(0), 0);
        assert_eq!(upper_bound(3), 7);
        assert_eq!(upper_bound(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let h = hist(&[1; 99]).merged(&hist(&[1_000_000]));
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p95(), 1);
        // The single outlier lands exactly on the p99 rank boundary:
        // rank ceil(100 * 99/100) = 99 is still in the ones bucket.
        assert_eq!(h.p99(), 1);
        assert_eq!(h.quantile(100, 100), 1_000_000);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn quantile_is_clamped_to_exact_max() {
        let h = hist(&[100]);
        // 100 lives in the [64, 128) bucket whose upper bound is 127,
        // but the readout never exceeds the tracked maximum.
        assert_eq!(h.p50(), 100);
        assert_eq!(h.p99(), 100);
    }

    #[test]
    fn merge_matches_whole_run() {
        let whole = hist(&[0, 3, 9, 9, 70, 300, 5000]);
        let merged = hist(&[0, 3, 9]).merged(&hist(&[9, 70, 300, 5000]));
        assert_eq!(whole, merged);
        assert_eq!(whole.total(), Cycles::new(5391));
    }

    #[test]
    fn merge_laws_hold() {
        let a = hist(&[1, 2, 3]);
        let b = hist(&[100, 200]);
        let c = hist(&[7]);
        assert_eq!(a.merged(&LatencyHistogram::default()), a);
        assert_eq!(a.merged(&b), b.merged(&a));
        assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }
}
