//! Cycle attribution: explaining *where* memory-access cycles went.

use crate::hist::LatencyHistogram;
use hvc_types::{Cycles, MergeStats};

/// The named components a demand memory access's cycles are split into.
///
/// Components are attributed at the latency-composition points of the
/// system model, so for every scheme the per-component cycles sum
/// exactly to the total cycles recorded in the memory-latency
/// histogram (`ObsReport::mem_latency.total()`), turning each scheme's
/// CPI gap into an itemized bill instead of a single number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Component {
    /// Demand access served by the L1 (data or instruction).
    L1Hit,
    /// Demand access served by the private L2.
    L2Hit,
    /// Demand access served by the shared LLC.
    LlcHit,
    /// Probe cost of an access that missed the whole hierarchy
    /// (the traversal latency charged before DRAM takes over).
    MissProbe,
    /// Conventional front-side TLB lookups charged on the critical path.
    FrontTlb,
    /// Synonym-TLB lookups for filter-flagged candidates (hybrid
    /// schemes).
    SynonymTlb,
    /// Front-side page walks (baseline scheme, and hybrid synonym
    /// resolution).
    FrontWalk,
    /// Delayed-TLB lookups after an LLC miss (delayed translation).
    DelayedTlb,
    /// Page walks triggered by delayed translation misses.
    DelayedWalk,
    /// Segment-cache probes of the many-segment translator.
    SegmentCache,
    /// Index-cache probes (including node fetches) of the many-segment
    /// translator.
    IndexCache,
    /// Hardware segment-table reads of the many-segment translator.
    SegmentTable,
    /// Main-memory access time.
    Dram,
}

impl Component {
    /// Every component, in the fixed serialization order.
    pub const ALL: [Component; 13] = [
        Component::L1Hit,
        Component::L2Hit,
        Component::LlcHit,
        Component::MissProbe,
        Component::FrontTlb,
        Component::SynonymTlb,
        Component::FrontWalk,
        Component::DelayedTlb,
        Component::DelayedWalk,
        Component::SegmentCache,
        Component::IndexCache,
        Component::SegmentTable,
        Component::Dram,
    ];

    /// Stable snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Component::L1Hit => "l1_hit",
            Component::L2Hit => "l2_hit",
            Component::LlcHit => "llc_hit",
            Component::MissProbe => "miss_probe",
            Component::FrontTlb => "front_tlb",
            Component::SynonymTlb => "synonym_tlb",
            Component::FrontWalk => "front_walk",
            Component::DelayedTlb => "delayed_tlb",
            Component::DelayedWalk => "delayed_walk",
            Component::SegmentCache => "segment_cache",
            Component::IndexCache => "index_cache",
            Component::SegmentTable => "segment_table",
            Component::Dram => "dram",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// A per-component cycle ledger.
///
/// Merging adds elementwise, so the ledger obeys the [`MergeStats`]
/// laws and per-window/per-shard attributions combine exactly.
///
/// # Examples
///
/// ```
/// use hvc_obs::{Component, CycleAttribution};
/// use hvc_types::Cycles;
///
/// let mut a = CycleAttribution::default();
/// a.add(Component::L1Hit, Cycles::new(4));
/// a.add(Component::Dram, Cycles::new(180));
/// assert_eq!(a.total(), Cycles::new(184));
/// assert_eq!(a.get(Component::Dram), Cycles::new(180));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleAttribution {
    cycles: [u64; 13],
}

impl CycleAttribution {
    /// Charges `cycles` to `component`.
    #[inline]
    pub fn add(&mut self, component: Component, cycles: Cycles) {
        self.cycles[component.index()] += cycles.get();
    }

    /// Cycles charged to one component.
    pub fn get(&self, component: Component) -> Cycles {
        Cycles::new(self.cycles[component.index()])
    }

    /// Sum over all components.
    pub fn total(&self) -> Cycles {
        Cycles::new(self.cycles.iter().sum())
    }

    /// All `(component, cycles)` pairs in the fixed order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, Cycles)> + '_ {
        Component::ALL
            .iter()
            .zip(self.cycles.iter())
            .map(|(&c, &n)| (c, Cycles::new(n)))
    }

    /// Removes up to `hidden` cycles from the ledger, draining
    /// components in their fixed declared order, and returns how many
    /// cycles were actually removed.
    ///
    /// This models latency hidden by overlap (e.g. delayed translation
    /// probed in parallel with the LLC access): the hidden cycles were
    /// spent by the structures but never exposed to the core, so they
    /// must leave the ledger for the sum-equals-total invariant to keep
    /// holding.
    pub fn clip(&mut self, hidden: Cycles) -> Cycles {
        let mut left = hidden.get();
        for n in self.cycles.iter_mut() {
            let take = (*n).min(left);
            *n -= take;
            left -= take;
            if left == 0 {
                break;
            }
        }
        Cycles::new(hidden.get() - left)
    }
}

impl MergeStats for CycleAttribution {
    fn merge_from(&mut self, other: &Self) {
        for (dst, src) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *dst += *src;
        }
    }
}

/// The full observability record of one run window: latency
/// distributions plus the cycle-attribution ledger.
///
/// Lives inside `RunReport` and merges with it, so sharded sweeps
/// reconstruct exactly the whole-run observability picture.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsReport {
    /// Distribution of demand memory-access latencies as charged to the
    /// core (one sample per retired memory reference, instruction
    /// fetches included when modelled).
    pub mem_latency: LatencyHistogram,
    /// Distribution of page-walk latencies (front-side and delayed).
    pub walk_latency: LatencyHistogram,
    /// Where those memory cycles went; components sum to
    /// `mem_latency.total()`.
    pub attribution: CycleAttribution,
}

impl MergeStats for ObsReport {
    fn merge_from(&mut self, other: &Self) {
        self.mem_latency.merge_from(&other.mem_latency);
        self.walk_latency.merge_from(&other.walk_latency);
        self.attribution.merge_from(&other.attribution);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_ordered() {
        let names: Vec<_> = Component::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(names[0], "l1_hit");
        assert_eq!(names[12], "dram");
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn add_get_total_roundtrip() {
        let mut a = CycleAttribution::default();
        a.add(Component::FrontTlb, Cycles::new(2));
        a.add(Component::FrontTlb, Cycles::new(3));
        a.add(Component::Dram, Cycles::new(100));
        assert_eq!(a.get(Component::FrontTlb), Cycles::new(5));
        assert_eq!(a.get(Component::L1Hit), Cycles::ZERO);
        assert_eq!(a.total(), Cycles::new(105));
        let collected: Vec<_> = a.iter().filter(|(_, n)| n.get() > 0).collect();
        assert_eq!(
            collected,
            vec![
                (Component::FrontTlb, Cycles::new(5)),
                (Component::Dram, Cycles::new(100)),
            ]
        );
    }

    #[test]
    fn clip_drains_in_declared_order() {
        let mut a = CycleAttribution::default();
        a.add(Component::DelayedTlb, Cycles::new(2));
        a.add(Component::DelayedWalk, Cycles::new(30));
        // 10 hidden cycles: the delayed TLB empties first, the walk
        // absorbs the rest.
        assert_eq!(a.clip(Cycles::new(10)), Cycles::new(10));
        assert_eq!(a.get(Component::DelayedTlb), Cycles::ZERO);
        assert_eq!(a.get(Component::DelayedWalk), Cycles::new(22));
        // Clipping more than the ledger holds reports the shortfall.
        assert_eq!(a.clip(Cycles::new(100)), Cycles::new(22));
        assert_eq!(a.total(), Cycles::ZERO);
    }

    #[test]
    fn merge_laws_hold() {
        let mut a = CycleAttribution::default();
        a.add(Component::L1Hit, Cycles::new(7));
        let mut b = CycleAttribution::default();
        b.add(Component::Dram, Cycles::new(11));
        let mut c = CycleAttribution::default();
        c.add(Component::L1Hit, Cycles::new(1));
        assert_eq!(a.merged(&CycleAttribution::default()), a);
        assert_eq!(a.merged(&b), b.merged(&a));
        assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }
}
