//! Observability primitives for the HVC simulator.
//!
//! The paper's delayed-translation argument is a *tail-latency* story:
//! translation work moves off the critical path, which averages alone
//! cannot show. This crate provides the three measurement tools the
//! rest of the workspace wires through its models:
//!
//! * [`LatencyHistogram`] — a log₂-bucketed, allocation-free histogram
//!   with p50/p95/p99/max readout. It implements
//!   [`hvc_types::MergeStats`], so per-window and per-shard histograms
//!   merge exactly and sweep results stay independent of `--jobs`.
//! * [`CycleAttribution`] — a ledger splitting every demand memory
//!   access's cycles into named [`Component`]s (L1/L2/LLC hit,
//!   synonym TLB, delayed walk, index cache, segment cache, DRAM, …),
//!   with the invariant that the components sum to the total memory
//!   cycles recorded in the latency histogram.
//! * [`EventTracer`] — a bounded ring buffer of [`TraceEvent`] spans
//!   that `hvc-runner` serializes into Chrome `trace_event` JSON for
//!   `about:tracing`; costs nothing when disabled.
//!
//! # Examples
//!
//! ```
//! use hvc_obs::LatencyHistogram;
//! use hvc_types::{Cycles, MergeStats};
//!
//! // Two shards of the same run merge into the whole-run histogram.
//! let mut shard_a = LatencyHistogram::default();
//! let mut shard_b = LatencyHistogram::default();
//! shard_a.record(Cycles::new(4));
//! shard_b.record(Cycles::new(900));
//! let whole = shard_a.merged(&shard_b);
//! assert_eq!(whole.count(), 2);
//! assert_eq!(whole.max(), 900);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attr;
mod hist;
mod tracer;

pub use attr::{Component, CycleAttribution, ObsReport};
pub use hist::{LatencyHistogram, BUCKETS};
pub use tracer::{EventTracer, TraceEvent};
