//! Property tests for the cache hierarchy invariants, including a
//! differential check of the flat slab storage against a naive
//! `Vec<Vec<_>>` reference model.

use hvc_cache::{Cache, CacheConfig, Hierarchy, HierarchyConfig, Victim};
use hvc_types::{
    AccessKind, Asid, BlockName, Cycles, LineAddr, Permissions, LINE_SHIFT, PAGE_SHIFT,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn name_strategy() -> impl Strategy<Value = BlockName> {
    prop_oneof![
        (1u16..4, 0u64..512).prop_map(|(a, l)| BlockName::Virt(Asid::new(a), LineAddr::new(l))),
        (0u64..512).prop_map(|l| BlockName::Phys(LineAddr::new(l))),
    ]
}

proptest! {
    /// A single cache level never exceeds capacity, never duplicates a
    /// name, and hits exactly the resident set.
    #[test]
    fn level_has_no_duplicates_and_respects_capacity(
        ops in prop::collection::vec((name_strategy(), any::<bool>()), 1..400),
    ) {
        let mut c = Cache::new(CacheConfig::new(32 * 64, 2, Cycles::new(1)));
        for (name, write) in ops {
            if !c.access(name, write) {
                c.fill(name, write, hvc_types::Permissions::RW);
            }
            prop_assert!(c.contains(name));
            prop_assert!(c.occupancy() <= 32);
            // No duplicate names.
            let names: Vec<_> = c.resident_names().collect();
            let set: HashSet<_> = names.iter().copied().collect();
            prop_assert_eq!(set.len(), names.len(), "duplicate names resident");
        }
    }

    /// Inclusive hierarchy: everything in a private cache is also in the
    /// LLC (checked via the public `contains`, which consults all levels,
    /// after arbitrary access sequences including evictions).
    #[test]
    fn hierarchy_access_always_leaves_block_resident(
        ops in prop::collection::vec((name_strategy(), prop_oneof![
            Just(AccessKind::Read), Just(AccessKind::Write), Just(AccessKind::Fetch)
        ]), 1..300),
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::test_tiny());
        for (name, kind) in ops {
            h.access(0, name, kind);
            prop_assert!(h.contains(name), "accessed block must be resident");
        }
    }

    /// Flushing a page removes exactly that page's lines of that ASID.
    #[test]
    fn page_flush_is_precise(
        lines in prop::collection::btree_set(0u64..256, 2..40),
        flush_page in 0u64..4,
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::test_tiny());
        for &l in &lines {
            h.access(0, BlockName::Virt(Asid::new(1), LineAddr::new(l)), AccessKind::Read);
        }
        h.flush_virt_page(Asid::new(1), flush_page);
        for &l in &lines {
            let name = BlockName::Virt(Asid::new(1), LineAddr::new(l));
            let in_flushed_page = l >> 6 == flush_page;
            if in_flushed_page {
                prop_assert!(!h.contains(name), "line {l} should be flushed");
            }
            // Lines outside the flushed page may or may not be resident
            // (capacity evictions), but flushing must not have removed
            // lines that were resident right before the flush. We check
            // the stronger property with a fresh probe sequence:
        }
    }

    /// MESI: after a write by one core, no other core's private copy
    /// survives (re-reading from another core cannot hit below the LLC).
    #[test]
    fn writes_invalidate_remote_private_copies(line in 0u64..64) {
        let mut h = Hierarchy::new(HierarchyConfig { cores: 2, ..HierarchyConfig::test_tiny() });
        let name = BlockName::Phys(LineAddr::new(line));
        h.access(0, name, AccessKind::Read);
        h.access(1, name, AccessKind::Read);
        h.access(0, name, AccessKind::Write);
        let r = h.access(1, name, AccessKind::Read);
        prop_assert!(r.hit_level >= Some(2), "remote copy must be invalidated, got {:?}", r.hit_level);
    }
}

// --- Differential model: flat slab storage vs. naive Vec<Vec<_>> ---

/// One line of the reference model, mirroring the real per-line state.
#[derive(Clone, Debug)]
struct RefLine {
    name: BlockName,
    dirty: bool,
    perm: Permissions,
    lru: u64,
    sharers: u32,
}

/// The naive seed-era storage the flat slab replaced: one `Vec` per set,
/// linear probes, LRU victim by minimum tick. Semantics are written from
/// the documented `Cache` contract, not its implementation.
struct RefCache {
    sets: Vec<Vec<RefLine>>,
    ways: usize,
    set_mask: usize,
    tick: u64,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        RefCache {
            sets: vec![Vec::new(); sets],
            ways,
            set_mask: sets - 1,
            tick: 0,
        }
    }

    fn set_of(&self, name: BlockName) -> usize {
        (name.line().as_u64() as usize) & self.set_mask
    }

    fn find(&mut self, name: BlockName) -> Option<&mut RefLine> {
        let set = self.set_of(name);
        self.sets[set].iter_mut().find(|l| l.name == name)
    }

    fn access(&mut self, name: BlockName, write: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.find(name) {
            Some(line) => {
                line.lru = tick;
                line.dirty |= write;
                true
            }
            None => false,
        }
    }

    fn access_perm(&mut self, name: BlockName, write: bool) -> Option<Permissions> {
        let hit = self.access(name, write);
        hit.then(|| self.find(name).unwrap().perm)
    }

    fn access_sharing(&mut self, name: BlockName, write: bool, core: usize) -> Option<Permissions> {
        let perm = self.access_perm(name, write);
        if perm.is_some() {
            self.find(name).unwrap().sharers |= 1 << core;
        }
        perm
    }

    fn fill(&mut self, name: BlockName, dirty: bool, perm: Permissions) -> Option<Victim> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(line) = self.find(name) {
            line.lru = tick;
            line.dirty |= dirty;
            line.perm = perm;
            return None;
        }
        let set = self.set_of(name);
        let ways = self.ways;
        let lines = &mut self.sets[set];
        let victim = (lines.len() == ways).then(|| {
            let at = (0..lines.len())
                .min_by_key(|&i| lines[i].lru)
                .expect("full set");
            let v = lines.remove(at);
            Victim {
                name: v.name,
                dirty: v.dirty,
            }
        });
        lines.push(RefLine {
            name,
            dirty,
            perm,
            lru: tick,
            sharers: 0,
        });
        victim
    }

    fn fill_unshare(
        &mut self,
        name: BlockName,
        dirty: bool,
        perm: Permissions,
        core: usize,
    ) -> Option<Victim> {
        let resident = self.find(name).is_some();
        let victim = self.fill(name, dirty, perm);
        if resident {
            self.find(name).unwrap().sharers &= !(1 << core);
        }
        victim
    }

    fn invalidate(&mut self, name: BlockName) -> Option<Victim> {
        let set = self.set_of(name);
        let at = self.sets[set].iter().position(|l| l.name == name)?;
        let line = self.sets[set].remove(at);
        Some(Victim {
            name: line.name,
            dirty: line.dirty,
        })
    }

    fn set_sharer(&mut self, name: BlockName, core: usize, present: bool) {
        if let Some(line) = self.find(name) {
            if present {
                line.sharers |= 1 << core;
            } else {
                line.sharers &= !(1 << core);
            }
        }
    }

    /// Removes every line matching `f`, returning the dirty ones.
    fn flush_matching(&mut self, f: impl Fn(BlockName) -> bool) -> Vec<Victim> {
        let mut victims = Vec::new();
        for lines in &mut self.sets {
            lines.retain(|l| {
                if f(l.name) {
                    if l.dirty {
                        victims.push(Victim {
                            name: l.name,
                            dirty: true,
                        });
                    }
                    false
                } else {
                    true
                }
            });
        }
        victims
    }

    fn downgrade_page(&mut self, asid: Asid, vpage: u64) {
        for lines in &mut self.sets {
            for l in lines.iter_mut() {
                if ref_page_of(l.name) == Some((asid, vpage)) {
                    l.perm = l.perm.downgraded_read_only();
                }
            }
        }
    }

    fn resident(&self) -> Vec<BlockName> {
        let mut names: Vec<_> = self.sets.iter().flatten().map(|l| l.name).collect();
        names.sort_by_key(|n| name_key(*n));
        names
    }
}

fn ref_page_of(name: BlockName) -> Option<(Asid, u64)> {
    match name {
        BlockName::Virt(asid, line) => Some((asid, line.as_u64() >> (PAGE_SHIFT - LINE_SHIFT))),
        BlockName::Phys(_) => None,
    }
}

/// Total order on names for comparing victim sets (flush order is a slot
/// -layout artifact neither model pins down).
fn name_key(name: BlockName) -> (u8, u16, u64) {
    match name {
        BlockName::Phys(line) => (0, 0, line.as_u64()),
        BlockName::Virt(asid, line) => (1, asid.as_u16(), line.as_u64()),
    }
}

fn sorted_victims(mut v: Vec<Victim>) -> Vec<Victim> {
    v.sort_by_key(|v| name_key(v.name));
    v
}

/// The operation alphabet of the differential test — every hot-path
/// entry point of `Cache` plus the flush/maintenance surface.
#[derive(Clone, Debug)]
enum CacheOp {
    Access(BlockName, bool),
    AccessPerm(BlockName, bool),
    AccessSharing(BlockName, bool, usize),
    Fill(BlockName, bool, Permissions),
    FillUnshare(BlockName, bool, Permissions, usize),
    Invalidate(BlockName),
    AddSharer(BlockName, usize),
    RemoveSharer(BlockName, usize),
    FlushPage(u16, u64),
    FlushFrame(u64),
    FlushAsid(u16),
    DowngradePage(u16, u64),
}

fn model_name() -> impl Strategy<Value = BlockName> {
    prop_oneof![
        (1u16..3, 0u64..128).prop_map(|(a, l)| BlockName::Virt(Asid::new(a), LineAddr::new(l))),
        (0u64..128).prop_map(|l| BlockName::Phys(LineAddr::new(l))),
    ]
}

fn perm_strategy() -> impl Strategy<Value = Permissions> {
    prop_oneof![Just(Permissions::RW), Just(Permissions::READ)]
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (model_name(), any::<bool>()).prop_map(|(n, w)| CacheOp::Access(n, w)),
        (model_name(), any::<bool>()).prop_map(|(n, w)| CacheOp::AccessPerm(n, w)),
        (model_name(), any::<bool>(), 0usize..4)
            .prop_map(|(n, w, c)| CacheOp::AccessSharing(n, w, c)),
        (model_name(), any::<bool>(), perm_strategy()).prop_map(|(n, d, p)| CacheOp::Fill(n, d, p)),
        (model_name(), any::<bool>(), perm_strategy(), 0usize..4)
            .prop_map(|(n, d, p, c)| CacheOp::FillUnshare(n, d, p, c)),
        model_name().prop_map(CacheOp::Invalidate),
        (model_name(), 0usize..4).prop_map(|(n, c)| CacheOp::AddSharer(n, c)),
        (model_name(), 0usize..4).prop_map(|(n, c)| CacheOp::RemoveSharer(n, c)),
        (1u16..3, 0u64..2).prop_map(|(a, p)| CacheOp::FlushPage(a, p)),
        (0u64..2).prop_map(|f| CacheOp::FlushFrame(f << PAGE_SHIFT)),
        (1u16..3).prop_map(CacheOp::FlushAsid),
        (1u16..3, 0u64..2).prop_map(|(a, p)| CacheOp::DowngradePage(a, p)),
    ]
}

proptest! {
    /// The flat slab `Cache` is observationally equal to the naive
    /// per-set-`Vec` model under arbitrary interleavings: identical
    /// hit/miss results, identical LRU victim choice, identical dirty
    /// bits, permissions, sharer bitmaps and flush victim sets.
    #[test]
    fn flat_cache_matches_naive_model(
        ops in prop::collection::vec(cache_op(), 1..300),
    ) {
        // 8 sets × 2 ways over a 128-line name space: plenty of
        // evictions, set conflicts and cross-ASID aliasing.
        let mut flat = Cache::new(CacheConfig::new(8 * 2 * 64, 2, Cycles::new(1)));
        let mut model = RefCache::new(8, 2);
        let mut scratch = Vec::new();
        for op in ops {
            match op {
                CacheOp::Access(n, w) => {
                    prop_assert_eq!(flat.access(n, w), model.access(n, w), "access {:?}", n);
                }
                CacheOp::AccessPerm(n, w) => {
                    prop_assert_eq!(flat.access_perm(n, w), model.access_perm(n, w));
                }
                CacheOp::AccessSharing(n, w, c) => {
                    prop_assert_eq!(
                        flat.access_sharing(n, w, c),
                        model.access_sharing(n, w, c)
                    );
                }
                CacheOp::Fill(n, d, p) => {
                    prop_assert_eq!(flat.fill(n, d, p), model.fill(n, d, p), "fill {:?}", n);
                }
                CacheOp::FillUnshare(n, d, p, c) => {
                    prop_assert_eq!(
                        flat.fill_unshare(n, d, p, c),
                        model.fill_unshare(n, d, p, c)
                    );
                }
                CacheOp::Invalidate(n) => {
                    prop_assert_eq!(flat.invalidate(n), model.invalidate(n));
                }
                CacheOp::AddSharer(n, c) => {
                    flat.add_sharer(n, c);
                    model.set_sharer(n, c, true);
                }
                CacheOp::RemoveSharer(n, c) => {
                    flat.remove_sharer(n, c);
                    model.set_sharer(n, c, false);
                }
                CacheOp::FlushPage(a, p) => {
                    scratch.clear();
                    flat.flush_virt_page(Asid::new(a), p, &mut scratch);
                    let expect = model.flush_matching(|n| ref_page_of(n) == Some((Asid::new(a), p)));
                    prop_assert_eq!(
                        sorted_victims(scratch.clone()),
                        sorted_victims(expect)
                    );
                }
                CacheOp::FlushFrame(base) => {
                    scratch.clear();
                    flat.flush_phys_frame(base, &mut scratch);
                    let expect = model.flush_matching(|n| matches!(n, BlockName::Phys(line)
                        if line.base_raw() >> PAGE_SHIFT == base >> PAGE_SHIFT));
                    prop_assert_eq!(
                        sorted_victims(scratch.clone()),
                        sorted_victims(expect)
                    );
                }
                CacheOp::FlushAsid(a) => {
                    scratch.clear();
                    flat.flush_asid(Asid::new(a), &mut scratch);
                    let expect = model.flush_matching(|n| n.asid() == Some(Asid::new(a)));
                    prop_assert_eq!(
                        sorted_victims(scratch.clone()),
                        sorted_victims(expect)
                    );
                }
                CacheOp::DowngradePage(a, p) => {
                    flat.downgrade_page_read_only(Asid::new(a), p);
                    model.downgrade_page(Asid::new(a), p);
                }
            }
        }
        // End-of-run audit: identical resident sets and per-line state.
        let mut flat_names: Vec<_> = flat.resident_names().collect();
        flat_names.sort_by_key(|n| name_key(*n));
        prop_assert_eq!(&flat_names, &model.resident(), "resident sets differ");
        prop_assert_eq!(flat.occupancy(), flat_names.len());
        for &n in &flat_names {
            let line = model.find(n).expect("model agrees on residency");
            prop_assert_eq!(flat.permissions(n), Some(line.perm));
            prop_assert_eq!(flat.sharers(n), line.sharers, "sharers of {:?}", n);
            // `invalidate` is the only way to observe the dirty bit.
            prop_assert_eq!(flat.invalidate(n).unwrap().dirty, line.dirty);
        }
    }
}
