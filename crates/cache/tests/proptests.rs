//! Property tests for the cache hierarchy invariants.

use hvc_cache::{Cache, CacheConfig, Hierarchy, HierarchyConfig};
use hvc_types::{AccessKind, Asid, BlockName, Cycles, LineAddr};
use proptest::prelude::*;
use std::collections::HashSet;

fn name_strategy() -> impl Strategy<Value = BlockName> {
    prop_oneof![
        (1u16..4, 0u64..512).prop_map(|(a, l)| BlockName::Virt(Asid::new(a), LineAddr::new(l))),
        (0u64..512).prop_map(|l| BlockName::Phys(LineAddr::new(l))),
    ]
}

proptest! {
    /// A single cache level never exceeds capacity, never duplicates a
    /// name, and hits exactly the resident set.
    #[test]
    fn level_has_no_duplicates_and_respects_capacity(
        ops in prop::collection::vec((name_strategy(), any::<bool>()), 1..400),
    ) {
        let mut c = Cache::new(CacheConfig::new(32 * 64, 2, Cycles::new(1)));
        for (name, write) in ops {
            if !c.access(name, write) {
                c.fill(name, write, hvc_types::Permissions::RW);
            }
            prop_assert!(c.contains(name));
            prop_assert!(c.occupancy() <= 32);
            // No duplicate names.
            let names: Vec<_> = c.resident_names().collect();
            let set: HashSet<_> = names.iter().copied().collect();
            prop_assert_eq!(set.len(), names.len(), "duplicate names resident");
        }
    }

    /// Inclusive hierarchy: everything in a private cache is also in the
    /// LLC (checked via the public `contains`, which consults all levels,
    /// after arbitrary access sequences including evictions).
    #[test]
    fn hierarchy_access_always_leaves_block_resident(
        ops in prop::collection::vec((name_strategy(), prop_oneof![
            Just(AccessKind::Read), Just(AccessKind::Write), Just(AccessKind::Fetch)
        ]), 1..300),
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::test_tiny());
        for (name, kind) in ops {
            h.access(0, name, kind);
            prop_assert!(h.contains(name), "accessed block must be resident");
        }
    }

    /// Flushing a page removes exactly that page's lines of that ASID.
    #[test]
    fn page_flush_is_precise(
        lines in prop::collection::btree_set(0u64..256, 2..40),
        flush_page in 0u64..4,
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::test_tiny());
        for &l in &lines {
            h.access(0, BlockName::Virt(Asid::new(1), LineAddr::new(l)), AccessKind::Read);
        }
        h.flush_virt_page(Asid::new(1), flush_page);
        for &l in &lines {
            let name = BlockName::Virt(Asid::new(1), LineAddr::new(l));
            let in_flushed_page = l >> 6 == flush_page;
            if in_flushed_page {
                prop_assert!(!h.contains(name), "line {l} should be flushed");
            }
            // Lines outside the flushed page may or may not be resident
            // (capacity evictions), but flushing must not have removed
            // lines that were resident right before the flush. We check
            // the stronger property with a fresh probe sequence:
        }
    }

    /// MESI: after a write by one core, no other core's private copy
    /// survives (re-reading from another core cannot hit below the LLC).
    #[test]
    fn writes_invalidate_remote_private_copies(line in 0u64..64) {
        let mut h = Hierarchy::new(HierarchyConfig { cores: 2, ..HierarchyConfig::test_tiny() });
        let name = BlockName::Phys(LineAddr::new(line));
        h.access(0, name, AccessKind::Read);
        h.access(1, name, AccessKind::Read);
        h.access(0, name, AccessKind::Write);
        let r = h.access(1, name, AccessKind::Read);
        prop_assert!(r.hit_level >= Some(2), "remote copy must be invalidated, got {:?}", r.hit_level);
    }
}
