//! Cache statistics.

/// Counters for a single cache level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Lookups that found the block.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines displaced by fills.
    pub evictions: u64,
    /// Dirty lines displaced by fills.
    pub writebacks: u64,
    /// Lines removed by explicit invalidation (flushes, coherence).
    pub invalidations: u64,
}

impl LevelStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; `None` with no accesses.
    pub fn miss_rate(&self) -> Option<f64> {
        let n = self.accesses();
        (n > 0).then(|| self.misses as f64 / n as f64)
    }
}

/// Aggregated statistics for a whole [`crate::Hierarchy`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Per-core L1I stats.
    pub l1i: Vec<LevelStats>,
    /// Per-core L1D stats.
    pub l1d: Vec<LevelStats>,
    /// Per-core L2 stats.
    pub l2: Vec<LevelStats>,
    /// Shared LLC stats.
    pub llc: LevelStats,
    /// Coherence invalidations sent to private caches.
    pub coherence_invalidations: u64,
    /// Writebacks that reached memory (dirty LLC victims plus coherence
    /// downgrades).
    pub memory_writebacks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate() {
        let s = LevelStats { hits: 3, misses: 1, ..Default::default() };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_rate().unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(LevelStats::default().miss_rate(), None);
    }
}
