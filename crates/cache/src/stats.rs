//! Cache statistics.

use hvc_obs::LatencyHistogram;
use hvc_types::MergeStats;

/// Counters for a single cache level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Lookups that found the block.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines displaced by fills.
    pub evictions: u64,
    /// Dirty lines displaced by fills.
    pub writebacks: u64,
    /// Lines removed by explicit invalidation (flushes, coherence).
    pub invalidations: u64,
}

impl LevelStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; `None` with no accesses.
    pub fn miss_rate(&self) -> Option<f64> {
        let n = self.accesses();
        (n > 0).then(|| self.misses as f64 / n as f64)
    }
}

impl MergeStats for LevelStats {
    fn merge_from(&mut self, other: &Self) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.invalidations += other.invalidations;
    }
}

/// Aggregated statistics for a whole [`crate::Hierarchy`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Per-core L1I stats.
    pub l1i: Vec<LevelStats>,
    /// Per-core L1D stats.
    pub l1d: Vec<LevelStats>,
    /// Per-core L2 stats.
    pub l2: Vec<LevelStats>,
    /// Shared LLC stats.
    pub llc: LevelStats,
    /// Coherence invalidations sent to private caches.
    pub coherence_invalidations: u64,
    /// Writebacks that reached memory (dirty LLC victims plus coherence
    /// downgrades).
    pub memory_writebacks: u64,
    /// Distribution of on-chip lookup latencies (one sample per
    /// hierarchy access, DRAM time excluded).
    pub lookup_latency: LatencyHistogram,
}

impl MergeStats for CacheStats {
    /// Merges elementwise. Per-core vectors of unequal length are merged
    /// by padding the shorter with zero entries (see the `Vec` impl in
    /// `hvc-types`), so shards from different core counts still combine.
    fn merge_from(&mut self, other: &Self) {
        self.l1i.merge_from(&other.l1i);
        self.l1d.merge_from(&other.l1d);
        self.l2.merge_from(&other.l2);
        self.llc.merge_from(&other.llc);
        self.coherence_invalidations += other.coherence_invalidations;
        self.memory_writebacks += other.memory_writebacks;
        self.lookup_latency.merge_from(&other.lookup_latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_elementwise() {
        let one = |n: u64| LevelStats {
            hits: n,
            misses: n + 1,
            evictions: n + 2,
            writebacks: n + 3,
            invalidations: n + 4,
        };
        let mut a = CacheStats {
            l1i: vec![one(1)],
            l1d: vec![one(2), one(3)],
            l2: vec![],
            llc: one(4),
            coherence_invalidations: 5,
            memory_writebacks: 6,
            ..Default::default()
        };
        let b = CacheStats {
            l1i: vec![one(10), one(20)],
            l1d: vec![one(30)],
            l2: vec![one(40)],
            llc: one(50),
            coherence_invalidations: 7,
            memory_writebacks: 8,
            ..Default::default()
        };
        a.merge_from(&b);
        assert_eq!(a.l1i, vec![one(1).merged(&one(10)), one(20)]);
        assert_eq!(a.l1d, vec![one(2).merged(&one(30)), one(3)]);
        assert_eq!(a.l2, vec![one(40)]);
        assert_eq!(a.llc.hits, 54);
        assert_eq!(a.coherence_invalidations, 12);
        assert_eq!(a.memory_writebacks, 14);
    }

    #[test]
    fn miss_rate() {
        let s = LevelStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_rate().unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(LevelStats::default().miss_rate(), None);
    }
}
