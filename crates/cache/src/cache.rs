//! A single set-associative cache level keyed by [`BlockName`].

use crate::{CacheConfig, LevelStats};
#[cfg(test)]
use hvc_types::LineAddr;
use hvc_types::{Asid, BlockName, Permissions, PAGE_SHIFT};

/// An evicted line returned to the caller for writeback handling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    /// The unique name of the evicted block.
    pub name: BlockName,
    /// Whether the block was dirty (needs a writeback).
    pub dirty: bool,
}

/// Per-line state other than the name. `sharers` is used only by the LLC
/// level of a multi-core [`crate::Hierarchy`] to track which private
/// caches hold the block (MESI-style directory-in-LLC).
#[derive(Clone, Copy, Debug)]
struct Meta {
    dirty: bool,
    perm: Permissions,
    lru: u64,
    sharers: u32,
}

impl Meta {
    /// Filler for slots whose valid bit is clear; never observed.
    const EMPTY: Meta = Meta {
        dirty: false,
        perm: Permissions::NONE,
        lru: 0,
        sharers: 0,
    };
}

/// Name filler for invalid slots; never observed.
const EMPTY_NAME: BlockName = BlockName::Phys(hvc_types::LineAddr::new(0));

/// A set-associative cache level keyed by the hybrid [`BlockName`].
///
/// Indexing uses the low line-address bits (as hardware does); the ASID
/// participates only in tag comparison, which is exactly the paper's tag
/// extension (Figure 2): `ASID | PA/VA tag | S | permission`.
///
/// Storage is two contiguous slabs in structure-of-arrays form: set `s`
/// occupies `names[s * ways .. (s + 1) * ways]` (the tag array a probe
/// scans) and the same span of `meta` (LRU/dirty/permission state touched
/// only on the way that hit), with a per-set occupancy bitmask selecting
/// the live ways. A probe therefore streams just the 16-byte names of one
/// set — not the full line records — before touching any metadata.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// `sets * ways` block names; slots whose `valid` bit is clear hold
    /// [`EMPTY_NAME`] filler.
    names: Box<[BlockName]>,
    /// Per-slot LRU/dirty/permission/sharer state, parallel to `names`.
    meta: Box<[Meta]>,
    /// One occupancy bitmask per set (bit `w` = way `w` live).
    valid: Box<[u64]>,
    ways: usize,
    set_mask: usize,
    tick: u64,
    stats: LevelStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has more than 64 ways (the per-set
    /// occupancy bitmask is a `u64`).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(config.ways <= 64, "at most 64 ways per set");
        Cache {
            names: vec![EMPTY_NAME; sets * config.ways].into_boxed_slice(),
            meta: vec![Meta::EMPTY; sets * config.ways].into_boxed_slice(),
            valid: vec![0u64; sets].into_boxed_slice(),
            ways: config.ways,
            set_mask: sets - 1,
            config,
            tick: 0,
            stats: LevelStats::default(),
        }
    }

    /// Returns the geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Returns accumulated statistics for this level.
    pub fn stats(&self) -> &LevelStats {
        &self.stats
    }

    /// Resets statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = LevelStats::default();
    }

    #[inline]
    fn set_index(&self, name: BlockName) -> usize {
        (name.line().as_u64() as usize) & self.set_mask
    }

    /// Finds the slab index of `name` within `set`, scanning only the
    /// live ways of the occupancy bitmask.
    #[inline]
    fn find(&self, set: usize, name: BlockName) -> Option<usize> {
        let base = set * self.ways;
        let mut live = self.valid[set];
        while live != 0 {
            let slot = base + live.trailing_zeros() as usize;
            if self.names[slot] == name {
                return Some(slot);
            }
            live &= live - 1;
        }
        None
    }

    /// Looks up `name`; on a hit updates LRU and (for writes) the dirty
    /// bit, and returns `true`.
    #[inline]
    pub fn access(&mut self, name: BlockName, write: bool) -> bool {
        self.tick += 1;
        let set = self.set_index(name);
        if let Some(slot) = self.find(set, name) {
            let meta = &mut self.meta[slot];
            meta.lru = self.tick;
            meta.dirty |= write;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// [`Cache::access`] returning the cached permissions on a hit — one
    /// way-scan where an `access` + [`Cache::permissions`] pair would do
    /// two.
    #[inline]
    pub fn access_perm(&mut self, name: BlockName, write: bool) -> Option<Permissions> {
        self.tick += 1;
        let set = self.set_index(name);
        if let Some(slot) = self.find(set, name) {
            let meta = &mut self.meta[slot];
            meta.lru = self.tick;
            meta.dirty |= write;
            self.stats.hits += 1;
            Some(meta.perm)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// [`Cache::access`] that additionally records `core` in the sharer
    /// set and returns the cached permissions — the LLC hit path in one
    /// way-scan instead of three (`access` + `permissions` +
    /// [`Cache::add_sharer`]).
    #[inline]
    pub fn access_sharing(
        &mut self,
        name: BlockName,
        write: bool,
        core: usize,
    ) -> Option<Permissions> {
        self.tick += 1;
        let set = self.set_index(name);
        if let Some(slot) = self.find(set, name) {
            let meta = &mut self.meta[slot];
            meta.lru = self.tick;
            meta.dirty |= write;
            meta.sharers |= 1 << core;
            self.stats.hits += 1;
            Some(meta.perm)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Probes for `name` without updating LRU or statistics.
    #[inline]
    pub fn contains(&self, name: BlockName) -> bool {
        self.find(self.set_index(name), name).is_some()
    }

    /// Returns the permission bits cached with `name`, if present.
    #[inline]
    pub fn permissions(&self, name: BlockName) -> Option<Permissions> {
        self.find(self.set_index(name), name)
            .map(|slot| self.meta[slot].perm)
    }

    /// Inserts `name` (filling after a miss); returns the victim if the
    /// set was full. If the block is already present this refreshes its
    /// LRU/dirty state instead of duplicating it.
    pub fn fill(&mut self, name: BlockName, dirty: bool, perm: Permissions) -> Option<Victim> {
        self.tick += 1;
        let set = self.set_index(name);
        if let Some(slot) = self.find(set, name) {
            let meta = &mut self.meta[slot];
            meta.lru = self.tick;
            meta.dirty |= dirty;
            meta.perm = perm;
            return None;
        }
        self.insert_absent(set, name, dirty, perm, 0)
            .map(|(v, _)| v)
    }

    /// Inserts `name` directly after a miss of the same name, skipping the
    /// residency probe [`Cache::fill`] performs: the caller guarantees the
    /// block is absent (it just missed this level and nothing filled it in
    /// between), so the hierarchy does one way-scan per miss instead of
    /// two.
    pub fn fill_after_miss(
        &mut self,
        name: BlockName,
        dirty: bool,
        perm: Permissions,
    ) -> Option<Victim> {
        self.tick += 1;
        let set = self.set_index(name);
        debug_assert!(
            self.find(set, name).is_none(),
            "fill_after_miss of a resident line"
        );
        self.insert_absent(set, name, dirty, perm, 0)
            .map(|(v, _)| v)
    }

    /// Merges a private-cache victim into its (inclusive-resident) LLC
    /// line and removes `core` from its sharer set — one way-scan for
    /// what would otherwise be a [`Cache::fill`] + [`Cache::remove_sharer`]
    /// pair. Falls back to a plain insert if the line is somehow absent,
    /// exactly as the unfused pair would.
    pub fn fill_unshare(
        &mut self,
        name: BlockName,
        dirty: bool,
        perm: Permissions,
        core: usize,
    ) -> Option<Victim> {
        self.tick += 1;
        let set = self.set_index(name);
        if let Some(slot) = self.find(set, name) {
            let meta = &mut self.meta[slot];
            meta.lru = self.tick;
            meta.dirty |= dirty;
            meta.perm = perm;
            meta.sharers &= !(1 << core);
            return None;
        }
        self.insert_absent(set, name, dirty, perm, 0)
            .map(|(v, _)| v)
    }

    /// [`Cache::fill_after_miss`] for the directory-holding LLC: seeds the
    /// new line's sharer set with `sharers` (saving the separate
    /// `add_sharer` scan) and reports the evicted line's sharer bitmap, so
    /// the hierarchy back-invalidates only private caches that actually
    /// hold the victim.
    pub fn fill_after_miss_tracked(
        &mut self,
        name: BlockName,
        dirty: bool,
        perm: Permissions,
        sharers: u32,
    ) -> Option<(Victim, u32)> {
        self.tick += 1;
        let set = self.set_index(name);
        debug_assert!(
            self.find(set, name).is_none(),
            "fill_after_miss of a resident line"
        );
        self.insert_absent(set, name, dirty, perm, sharers)
    }

    /// Places `name` into `set`, evicting the LRU way if the set is full.
    /// LRU ticks are unique among live lines (every residency-granting or
    /// refreshing operation stamps a fresh tick), so the minimum is unique
    /// and victim choice does not depend on slot order. Returns the victim
    /// together with its sharer bitmap.
    fn insert_absent(
        &mut self,
        set: usize,
        name: BlockName,
        dirty: bool,
        perm: Permissions,
        sharers: u32,
    ) -> Option<(Victim, u32)> {
        let base = set * self.ways;
        let mask = self.valid[set];
        let mut victim = None;
        let way = if mask.count_ones() as usize == self.ways {
            let mut live = mask;
            let mut best = 0usize;
            let mut best_lru = u64::MAX;
            while live != 0 {
                let w = live.trailing_zeros() as usize;
                let lru = self.meta[base + w].lru;
                if lru < best_lru {
                    best_lru = lru;
                    best = w;
                }
                live &= live - 1;
            }
            let old_meta = self.meta[base + best];
            self.stats.evictions += 1;
            if old_meta.dirty {
                self.stats.writebacks += 1;
            }
            victim = Some((
                Victim {
                    name: self.names[base + best],
                    dirty: old_meta.dirty,
                },
                old_meta.sharers,
            ));
            best
        } else {
            (!mask).trailing_zeros() as usize
        };
        self.names[base + way] = name;
        self.meta[base + way] = Meta {
            dirty,
            perm,
            lru: self.tick,
            sharers,
        };
        self.valid[set] |= 1 << way;
        victim
    }

    /// Removes `name` if present, returning its victim record (dirty state
    /// preserved so the caller can write it back).
    pub fn invalidate(&mut self, name: BlockName) -> Option<Victim> {
        let set = self.set_index(name);
        if let Some(slot) = self.find(set, name) {
            let dirty = self.meta[slot].dirty;
            self.names[slot] = EMPTY_NAME;
            self.meta[slot] = Meta::EMPTY;
            self.valid[set] &= !(1 << (slot - set * self.ways));
            self.stats.invalidations += 1;
            Some(Victim { name, dirty })
        } else {
            None
        }
    }

    /// Marks `name` dirty if present, without touching LRU or statistics
    /// (coherence fold-in of a remote modified copy).
    pub fn mark_dirty(&mut self, name: BlockName) {
        if let Some(slot) = self.find(self.set_index(name), name) {
            self.meta[slot].dirty = true;
        }
    }

    /// Marks `name` clean (after a writeback) if present.
    pub fn clean(&mut self, name: BlockName) {
        if let Some(slot) = self.find(self.set_index(name), name) {
            self.meta[slot].dirty = false;
        }
    }

    /// Downgrades the cached permissions of every line of the given
    /// virtual page to read-only (the paper's content-sharing transition).
    pub fn downgrade_page_read_only(&mut self, asid: Asid, vpage: u64) {
        self.retain_update(|name, meta| {
            if page_of(name) == Some((asid, vpage)) {
                meta.perm = meta.perm.downgraded_read_only();
            }
            true
        });
    }

    /// Invalidates every line belonging to the virtual page `(asid,
    /// vpage)`, appending dirty victims to `victims` (a reusable scratch
    /// buffer the caller clears between flushes).
    pub fn flush_virt_page(&mut self, asid: Asid, vpage: u64, victims: &mut Vec<Victim>) {
        let before = victims.len();
        self.retain_update(|name, meta| {
            if page_of(name) == Some((asid, vpage)) {
                if meta.dirty {
                    victims.push(Victim { name, dirty: true });
                }
                false
            } else {
                true
            }
        });
        self.stats.invalidations += (victims.len() - before) as u64;
    }

    /// Invalidates every physically-named line of the frame whose base
    /// byte address is `frame_base`, appending dirty victims to `victims`.
    /// The OS requests this when a freed synonym frame goes back to the
    /// allocator — physically-tagged lines survive every per-space flush.
    pub fn flush_phys_frame(&mut self, frame_base: u64, victims: &mut Vec<Victim>) {
        let before = victims.len();
        self.retain_update(|name, meta| {
            let of_frame = matches!(name, BlockName::Phys(line)
                if line.base_raw() >> PAGE_SHIFT == frame_base >> PAGE_SHIFT);
            if of_frame {
                if meta.dirty {
                    victims.push(Victim { name, dirty: true });
                }
                false
            } else {
                true
            }
        });
        self.stats.invalidations += (victims.len() - before) as u64;
    }

    /// Invalidates every line of an address space (process teardown),
    /// appending dirty victims to `victims`.
    pub fn flush_asid(&mut self, asid: Asid, victims: &mut Vec<Victim>) {
        self.retain_update(|name, meta| {
            if name.asid() == Some(asid) {
                if meta.dirty {
                    victims.push(Victim { name, dirty: true });
                }
                false
            } else {
                true
            }
        });
    }

    /// Number of resident lines (for tests and occupancy reporting).
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Iterates over resident block names (used by inclusion checks in
    /// tests).
    pub fn resident_names(&self) -> impl Iterator<Item = BlockName> + '_ {
        self.valid.iter().enumerate().flat_map(move |(set, &mask)| {
            let base = set * self.ways;
            BitIter(mask).map(move |w| self.names[base + w])
        })
    }

    // --- LLC sharer tracking (MESI-style directory-in-LLC) ---

    /// Adds `core` to the sharer set of `name` (LLC use only).
    pub fn add_sharer(&mut self, name: BlockName, core: usize) {
        if let Some(slot) = self.find(self.set_index(name), name) {
            self.meta[slot].sharers |= 1 << core;
        }
    }

    /// Removes `core` from the sharer set of `name` (LLC use only).
    pub fn remove_sharer(&mut self, name: BlockName, core: usize) {
        if let Some(slot) = self.find(self.set_index(name), name) {
            self.meta[slot].sharers &= !(1 << core);
        }
    }

    /// Returns the sharer bitmap of `name` (LLC use only).
    pub fn sharers(&self, name: BlockName) -> u32 {
        self.find(self.set_index(name), name)
            .map_or(0, |slot| self.meta[slot].sharers)
    }

    /// Visits every live line in slot order; lines for which `f` returns
    /// `false` are invalidated (their valid bit cleared).
    fn retain_update(&mut self, mut f: impl FnMut(BlockName, &mut Meta) -> bool) {
        for (set, mask) in self.valid.iter_mut().enumerate() {
            let base = set * self.ways;
            let mut live = *mask;
            while live != 0 {
                let w = live.trailing_zeros() as usize;
                if !f(self.names[base + w], &mut self.meta[base + w]) {
                    *mask &= !(1 << w);
                    self.names[base + w] = EMPTY_NAME;
                    self.meta[base + w] = Meta::EMPTY;
                }
                live &= live - 1;
            }
        }
    }
}

/// Iterator over the set bit positions of a `u64` mask, low to high.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let w = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(w)
    }
}

/// Returns the `(asid, virtual page number)` of a virtually-named block.
#[inline]
fn page_of(name: BlockName) -> Option<(Asid, u64)> {
    match name {
        BlockName::Virt(asid, line) => {
            Some((asid, line.as_u64() >> (PAGE_SHIFT - hvc_types::LINE_SHIFT)))
        }
        BlockName::Phys(_) => None,
    }
}

/// Returns the block names of all 64 lines of a virtual page — a helper
/// for page-granularity operations on physical names.
#[cfg(test)]
pub(crate) fn lines_of_virt_page(asid: Asid, vpage: u64) -> impl Iterator<Item = BlockName> {
    let lines_per_page = 1u64 << (PAGE_SHIFT - hvc_types::LINE_SHIFT);
    (0..lines_per_page)
        .map(move |i| BlockName::Virt(asid, LineAddr::new(vpage * lines_per_page + i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_types::Cycles;

    fn tiny() -> Cache {
        // 4 lines, 2 ways, 2 sets.
        Cache::new(CacheConfig::new(256, 2, Cycles::new(1)))
    }

    fn v(asid: u16, line: u64) -> BlockName {
        BlockName::Virt(Asid::new(asid), LineAddr::new(line))
    }

    fn p(line: u64) -> BlockName {
        BlockName::Phys(LineAddr::new(line))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(v(1, 0), false));
        c.fill(v(1, 0), false, Permissions::RW);
        assert!(c.access(v(1, 0), false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        c.fill(v(1, 0), false, Permissions::RW);
        c.fill(v(1, 2), false, Permissions::RW);
        c.access(v(1, 0), false); // make line 0 most recent
        let victim = c.fill(v(1, 4), false, Permissions::RW).expect("eviction");
        assert_eq!(victim.name, v(1, 2));
    }

    #[test]
    fn dirty_victims_are_reported() {
        let mut c = tiny();
        c.fill(v(1, 0), true, Permissions::RW);
        c.fill(v(1, 2), false, Permissions::RW);
        let victim = c.fill(v(1, 4), false, Permissions::RW).unwrap();
        assert_eq!(
            victim,
            Victim {
                name: v(1, 0),
                dirty: true
            }
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_sets_dirty_bit() {
        let mut c = tiny();
        c.fill(v(1, 0), false, Permissions::RW);
        c.access(v(1, 0), true);
        let victim = c.invalidate(v(1, 0)).unwrap();
        assert!(victim.dirty);
    }

    #[test]
    fn clean_clears_dirty() {
        let mut c = tiny();
        c.fill(v(1, 0), true, Permissions::RW);
        c.clean(v(1, 0));
        assert!(!c.invalidate(v(1, 0)).unwrap().dirty);
    }

    #[test]
    fn refill_of_resident_line_does_not_duplicate() {
        let mut c = tiny();
        c.fill(v(1, 0), false, Permissions::RW);
        assert!(c.fill(v(1, 0), true, Permissions::RW).is_none());
        assert_eq!(c.occupancy(), 1);
        // Dirty bit merged.
        assert!(c.invalidate(v(1, 0)).unwrap().dirty);
    }

    #[test]
    fn fill_after_miss_inserts_and_evicts_like_fill() {
        let mut c = tiny();
        assert!(!c.access(v(1, 0), false));
        assert!(c.fill_after_miss(v(1, 0), false, Permissions::RW).is_none());
        assert!(c.access(v(1, 0), false));
        assert!(!c.access(v(1, 2), false));
        c.fill_after_miss(v(1, 2), true, Permissions::RW);
        assert!(!c.access(v(1, 4), false));
        let victim = c.fill_after_miss(v(1, 4), false, Permissions::RW).unwrap();
        // Line 0's last touch predates line 2's fill, so 0 is the victim.
        assert_eq!(victim.name, v(1, 0));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn access_perm_reports_hit_permissions() {
        let mut c = tiny();
        c.fill(v(1, 0), false, Permissions::READ);
        assert_eq!(c.access_perm(v(1, 0), false), Some(Permissions::READ));
        assert_eq!(c.access_perm(v(1, 2), false), None);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn access_sharing_records_core_and_returns_perm() {
        let mut c = tiny();
        c.fill(p(0), false, Permissions::RW);
        assert_eq!(c.access_sharing(p(0), true, 2), Some(Permissions::RW));
        assert_eq!(c.sharers(p(0)), 0b100);
        assert!(c.invalidate(p(0)).unwrap().dirty, "write set the dirty bit");
        assert_eq!(c.access_sharing(p(0), false, 0), None, "gone after inval");
    }

    #[test]
    fn tracked_fill_seeds_sharers_and_reports_victim_sharers() {
        let mut c = tiny();
        let (_, vs) = {
            c.fill_after_miss_tracked(v(1, 0), false, Permissions::RW, 0b01);
            c.fill_after_miss_tracked(v(1, 2), false, Permissions::RW, 0b10);
            c.fill_after_miss_tracked(v(1, 4), false, Permissions::RW, 0)
                .expect("set 0 full, LRU victim evicted")
        };
        assert_eq!(vs, 0b01, "victim v(1,0) carried its seeded sharer set");
        assert_eq!(c.sharers(v(1, 2)), 0b10);
    }

    #[test]
    fn asid_distinguishes_same_line() {
        let mut c = tiny();
        c.fill(v(1, 0), false, Permissions::RW);
        assert!(!c.access(v(2, 0), false), "homonym must not hit");
        assert!(c.contains(v(1, 0)));
        assert!(!c.contains(v(2, 0)));
    }

    #[test]
    fn phys_and_virt_names_are_disjoint() {
        let mut c = tiny();
        c.fill(v(1, 0), false, Permissions::RW);
        assert!(!c.access(p(0), false));
    }

    #[test]
    fn flush_phys_frame_removes_only_that_frame() {
        let mut c = Cache::new(CacheConfig::new(64 * 128, 2, Cycles::new(1)));
        // Lines 0 and 5 live in the frame at byte 0; line 64 is the
        // first line of the next frame; virtual names never match.
        c.fill(p(0), false, Permissions::RW);
        c.fill(p(5), true, Permissions::RW);
        c.fill(p(64), false, Permissions::RW);
        c.fill(v(1, 0), false, Permissions::RW);
        let mut victims = Vec::new();
        c.flush_phys_frame(0, &mut victims);
        assert_eq!(victims.len(), 1, "one dirty line in the frame");
        assert_eq!(victims[0].name, p(5));
        assert!(!c.contains(p(0)) && !c.contains(p(5)));
        assert!(c.contains(p(64)), "next frame untouched");
        assert!(c.contains(v(1, 0)), "virtual names untouched");
    }

    #[test]
    fn flush_virt_page_removes_all_lines_of_page() {
        let mut c = Cache::new(CacheConfig::new(64 * 128, 2, Cycles::new(1)));
        // Page 0 of ASID 1: lines 0..64.
        for name in lines_of_virt_page(Asid::new(1), 0) {
            c.fill(name, false, Permissions::RW);
        }
        c.access(v(1, 5), true); // dirty one line
        let mut victims = Vec::new();
        c.flush_virt_page(Asid::new(1), 0, &mut victims);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].name, v(1, 5));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn flush_asid_spares_other_spaces() {
        let mut c = tiny();
        c.fill(v(1, 0), true, Permissions::RW);
        c.fill(v(2, 1), false, Permissions::RW);
        c.fill(p(3), false, Permissions::RW);
        let mut victims = Vec::new();
        c.flush_asid(Asid::new(1), &mut victims);
        assert_eq!(victims.len(), 1);
        assert!(!c.contains(v(1, 0)));
        assert!(c.contains(v(2, 1)));
        assert!(c.contains(p(3)));
    }

    #[test]
    fn flush_scratch_buffer_appends_across_calls() {
        let mut c = tiny();
        c.fill(v(1, 0), true, Permissions::RW);
        c.fill(v(2, 1), true, Permissions::RW);
        let mut victims = Vec::new();
        c.flush_asid(Asid::new(1), &mut victims);
        c.flush_asid(Asid::new(2), &mut victims);
        assert_eq!(victims.len(), 2, "flushes append, callers clear");
    }

    #[test]
    fn downgrade_page_clears_write_permission() {
        let mut c = tiny();
        c.fill(v(1, 0), false, Permissions::RW);
        c.downgrade_page_read_only(Asid::new(1), 0);
        assert_eq!(c.permissions(v(1, 0)), Some(Permissions::READ));
    }

    #[test]
    fn sharer_tracking() {
        let mut c = tiny();
        c.fill(p(0), false, Permissions::RW);
        c.add_sharer(p(0), 0);
        c.add_sharer(p(0), 2);
        assert_eq!(c.sharers(p(0)), 0b101);
        c.remove_sharer(p(0), 0);
        assert_eq!(c.sharers(p(0)), 0b100);
        assert_eq!(c.sharers(p(99)), 0);
    }

    #[test]
    fn lines_of_page_enumerates_64_lines() {
        let names: Vec<_> = lines_of_virt_page(Asid::new(1), 2).collect();
        assert_eq!(names.len(), 64);
        assert_eq!(names[0], v(1, 128));
        assert_eq!(names[63], v(1, 191));
    }
}
