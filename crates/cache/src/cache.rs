//! A single set-associative cache level keyed by [`BlockName`].

use crate::{CacheConfig, LevelStats};
#[cfg(test)]
use hvc_types::LineAddr;
use hvc_types::{Asid, BlockName, Permissions, PAGE_SHIFT};

/// An evicted line returned to the caller for writeback handling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    /// The unique name of the evicted block.
    pub name: BlockName,
    /// Whether the block was dirty (needs a writeback).
    pub dirty: bool,
}

/// One cached line. `sharers` is used only by the LLC level of a
/// multi-core [`crate::Hierarchy`] to track which private caches hold the
/// block (MESI-style directory-in-LLC).
#[derive(Clone, Copy, Debug)]
struct Line {
    name: BlockName,
    dirty: bool,
    perm: Permissions,
    lru: u64,
    sharers: u32,
}

/// A set-associative cache level keyed by the hybrid [`BlockName`].
///
/// Indexing uses the low line-address bits (as hardware does); the ASID
/// participates only in tag comparison, which is exactly the paper's tag
/// extension (Figure 2): `ASID | PA/VA tag | S | permission`.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: LevelStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            sets: vec![Vec::with_capacity(config.ways); sets],
            config,
            tick: 0,
            stats: LevelStats::default(),
        }
    }

    /// Returns the geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Returns accumulated statistics for this level.
    pub fn stats(&self) -> &LevelStats {
        &self.stats
    }

    /// Resets statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = LevelStats::default();
    }

    fn set_index(&self, name: BlockName) -> usize {
        (name.line().as_u64() as usize) & (self.sets.len() - 1)
    }

    /// Looks up `name`; on a hit updates LRU and (for writes) the dirty
    /// bit, and returns `true`.
    pub fn access(&mut self, name: BlockName, write: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(name);
        let set = &mut self.sets[idx];
        if let Some(line) = set.iter_mut().find(|l| l.name == name) {
            line.lru = tick;
            line.dirty |= write;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Probes for `name` without updating LRU or statistics.
    pub fn contains(&self, name: BlockName) -> bool {
        let idx = self.set_index(name);
        self.sets[idx].iter().any(|l| l.name == name)
    }

    /// Returns the permission bits cached with `name`, if present.
    pub fn permissions(&self, name: BlockName) -> Option<Permissions> {
        let idx = self.set_index(name);
        self.sets[idx]
            .iter()
            .find(|l| l.name == name)
            .map(|l| l.perm)
    }

    /// Inserts `name` (filling after a miss); returns the victim if the
    /// set was full. If the block is already present this refreshes its
    /// LRU/dirty state instead of duplicating it.
    pub fn fill(&mut self, name: BlockName, dirty: bool, perm: Permissions) -> Option<Victim> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.config.ways;
        let idx = self.set_index(name);
        let set = &mut self.sets[idx];
        if let Some(line) = set.iter_mut().find(|l| l.name == name) {
            line.lru = tick;
            line.dirty |= dirty;
            line.perm = perm;
            return None;
        }
        let mut victim = None;
        if set.len() == ways {
            let (slot, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("non-empty set");
            let old = set.swap_remove(slot);
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
            victim = Some(Victim {
                name: old.name,
                dirty: old.dirty,
            });
        }
        set.push(Line {
            name,
            dirty,
            perm,
            lru: tick,
            sharers: 0,
        });
        victim
    }

    /// Removes `name` if present, returning its victim record (dirty state
    /// preserved so the caller can write it back).
    pub fn invalidate(&mut self, name: BlockName) -> Option<Victim> {
        let idx = self.set_index(name);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|l| l.name == name) {
            let old = set.swap_remove(pos);
            self.stats.invalidations += 1;
            Some(Victim {
                name: old.name,
                dirty: old.dirty,
            })
        } else {
            None
        }
    }

    /// Marks `name` dirty if present, without touching LRU or statistics
    /// (coherence fold-in of a remote modified copy).
    pub fn mark_dirty(&mut self, name: BlockName) {
        let idx = self.set_index(name);
        if let Some(line) = self.sets[idx].iter_mut().find(|l| l.name == name) {
            line.dirty = true;
        }
    }

    /// Marks `name` clean (after a writeback) if present.
    pub fn clean(&mut self, name: BlockName) {
        let idx = self.set_index(name);
        if let Some(line) = self.sets[idx].iter_mut().find(|l| l.name == name) {
            line.dirty = false;
        }
    }

    /// Downgrades the cached permissions of every line of the given
    /// virtual page to read-only (the paper's content-sharing transition).
    pub fn downgrade_page_read_only(&mut self, asid: Asid, vpage: u64) {
        self.retain_update(|l| {
            if page_of(l.name) == Some((asid, vpage)) {
                l.perm = l.perm.downgraded_read_only();
            }
            true
        });
    }

    /// Invalidates every line belonging to the virtual page `(asid,
    /// vpage)`, returning dirty victims.
    pub fn flush_virt_page(&mut self, asid: Asid, vpage: u64) -> Vec<Victim> {
        let mut victims = Vec::new();
        self.retain_update(|l| {
            if page_of(l.name) == Some((asid, vpage)) {
                if l.dirty {
                    victims.push(Victim {
                        name: l.name,
                        dirty: true,
                    });
                }
                false
            } else {
                true
            }
        });
        self.stats.invalidations += victims.len() as u64;
        victims
    }

    /// Invalidates every physically-named line of the frame whose base
    /// byte address is `frame_base`, returning dirty victims. The OS
    /// requests this when a freed synonym frame goes back to the
    /// allocator — physically-tagged lines survive every per-space flush.
    pub fn flush_phys_frame(&mut self, frame_base: u64) -> Vec<Victim> {
        let mut victims = Vec::new();
        self.retain_update(|l| {
            let of_frame = matches!(l.name, BlockName::Phys(line)
                if line.base_raw() >> PAGE_SHIFT == frame_base >> PAGE_SHIFT);
            if of_frame {
                if l.dirty {
                    victims.push(Victim {
                        name: l.name,
                        dirty: true,
                    });
                }
                false
            } else {
                true
            }
        });
        self.stats.invalidations += victims.len() as u64;
        victims
    }

    /// Invalidates every line of an address space (process teardown).
    pub fn flush_asid(&mut self, asid: Asid) -> Vec<Victim> {
        let mut victims = Vec::new();
        self.retain_update(|l| {
            if l.name.asid() == Some(asid) {
                if l.dirty {
                    victims.push(Victim {
                        name: l.name,
                        dirty: true,
                    });
                }
                false
            } else {
                true
            }
        });
        victims
    }

    /// Number of resident lines (for tests and occupancy reporting).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Iterates over resident block names (used by inclusion checks in
    /// tests).
    pub fn resident_names(&self) -> impl Iterator<Item = BlockName> + '_ {
        self.sets.iter().flatten().map(|l| l.name)
    }

    // --- LLC sharer tracking (MESI-style directory-in-LLC) ---

    /// Adds `core` to the sharer set of `name` (LLC use only).
    pub fn add_sharer(&mut self, name: BlockName, core: usize) {
        let idx = self.set_index(name);
        if let Some(line) = self.sets[idx].iter_mut().find(|l| l.name == name) {
            line.sharers |= 1 << core;
        }
    }

    /// Removes `core` from the sharer set of `name` (LLC use only).
    pub fn remove_sharer(&mut self, name: BlockName, core: usize) {
        let idx = self.set_index(name);
        if let Some(line) = self.sets[idx].iter_mut().find(|l| l.name == name) {
            line.sharers &= !(1 << core);
        }
    }

    /// Returns the sharer bitmap of `name` (LLC use only).
    pub fn sharers(&self, name: BlockName) -> u32 {
        let idx = self.set_index(name);
        self.sets[idx]
            .iter()
            .find(|l| l.name == name)
            .map_or(0, |l| l.sharers)
    }

    fn retain_update(&mut self, mut f: impl FnMut(&mut Line) -> bool) {
        for set in &mut self.sets {
            set.retain_mut(|l| f(l));
        }
    }
}

/// Returns the `(asid, virtual page number)` of a virtually-named block.
fn page_of(name: BlockName) -> Option<(Asid, u64)> {
    match name {
        BlockName::Virt(asid, line) => {
            Some((asid, line.as_u64() >> (PAGE_SHIFT - hvc_types::LINE_SHIFT)))
        }
        BlockName::Phys(_) => None,
    }
}

/// Returns the block names of all 64 lines of a virtual page — a helper
/// for page-granularity operations on physical names.
#[cfg(test)]
pub(crate) fn lines_of_virt_page(asid: Asid, vpage: u64) -> impl Iterator<Item = BlockName> {
    let lines_per_page = 1u64 << (PAGE_SHIFT - hvc_types::LINE_SHIFT);
    (0..lines_per_page)
        .map(move |i| BlockName::Virt(asid, LineAddr::new(vpage * lines_per_page + i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_types::Cycles;

    fn tiny() -> Cache {
        // 4 lines, 2 ways, 2 sets.
        Cache::new(CacheConfig::new(256, 2, Cycles::new(1)))
    }

    fn v(asid: u16, line: u64) -> BlockName {
        BlockName::Virt(Asid::new(asid), LineAddr::new(line))
    }

    fn p(line: u64) -> BlockName {
        BlockName::Phys(LineAddr::new(line))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(v(1, 0), false));
        c.fill(v(1, 0), false, Permissions::RW);
        assert!(c.access(v(1, 0), false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        c.fill(v(1, 0), false, Permissions::RW);
        c.fill(v(1, 2), false, Permissions::RW);
        c.access(v(1, 0), false); // make line 0 most recent
        let victim = c.fill(v(1, 4), false, Permissions::RW).expect("eviction");
        assert_eq!(victim.name, v(1, 2));
    }

    #[test]
    fn dirty_victims_are_reported() {
        let mut c = tiny();
        c.fill(v(1, 0), true, Permissions::RW);
        c.fill(v(1, 2), false, Permissions::RW);
        let victim = c.fill(v(1, 4), false, Permissions::RW).unwrap();
        assert_eq!(
            victim,
            Victim {
                name: v(1, 0),
                dirty: true
            }
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_sets_dirty_bit() {
        let mut c = tiny();
        c.fill(v(1, 0), false, Permissions::RW);
        c.access(v(1, 0), true);
        let victim = c.invalidate(v(1, 0)).unwrap();
        assert!(victim.dirty);
    }

    #[test]
    fn clean_clears_dirty() {
        let mut c = tiny();
        c.fill(v(1, 0), true, Permissions::RW);
        c.clean(v(1, 0));
        assert!(!c.invalidate(v(1, 0)).unwrap().dirty);
    }

    #[test]
    fn refill_of_resident_line_does_not_duplicate() {
        let mut c = tiny();
        c.fill(v(1, 0), false, Permissions::RW);
        assert!(c.fill(v(1, 0), true, Permissions::RW).is_none());
        assert_eq!(c.occupancy(), 1);
        // Dirty bit merged.
        assert!(c.invalidate(v(1, 0)).unwrap().dirty);
    }

    #[test]
    fn asid_distinguishes_same_line() {
        let mut c = tiny();
        c.fill(v(1, 0), false, Permissions::RW);
        assert!(!c.access(v(2, 0), false), "homonym must not hit");
        assert!(c.contains(v(1, 0)));
        assert!(!c.contains(v(2, 0)));
    }

    #[test]
    fn phys_and_virt_names_are_disjoint() {
        let mut c = tiny();
        c.fill(v(1, 0), false, Permissions::RW);
        assert!(!c.access(p(0), false));
    }

    #[test]
    fn flush_phys_frame_removes_only_that_frame() {
        let mut c = Cache::new(CacheConfig::new(64 * 128, 2, Cycles::new(1)));
        // Lines 0 and 5 live in the frame at byte 0; line 64 is the
        // first line of the next frame; virtual names never match.
        c.fill(p(0), false, Permissions::RW);
        c.fill(p(5), true, Permissions::RW);
        c.fill(p(64), false, Permissions::RW);
        c.fill(v(1, 0), false, Permissions::RW);
        let victims = c.flush_phys_frame(0);
        assert_eq!(victims.len(), 1, "one dirty line in the frame");
        assert_eq!(victims[0].name, p(5));
        assert!(!c.contains(p(0)) && !c.contains(p(5)));
        assert!(c.contains(p(64)), "next frame untouched");
        assert!(c.contains(v(1, 0)), "virtual names untouched");
    }

    #[test]
    fn flush_virt_page_removes_all_lines_of_page() {
        let mut c = Cache::new(CacheConfig::new(64 * 128, 2, Cycles::new(1)));
        // Page 0 of ASID 1: lines 0..64.
        for name in lines_of_virt_page(Asid::new(1), 0) {
            c.fill(name, false, Permissions::RW);
        }
        c.access(v(1, 5), true); // dirty one line
        let victims = c.flush_virt_page(Asid::new(1), 0);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].name, v(1, 5));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn flush_asid_spares_other_spaces() {
        let mut c = tiny();
        c.fill(v(1, 0), true, Permissions::RW);
        c.fill(v(2, 1), false, Permissions::RW);
        c.fill(p(3), false, Permissions::RW);
        let victims = c.flush_asid(Asid::new(1));
        assert_eq!(victims.len(), 1);
        assert!(!c.contains(v(1, 0)));
        assert!(c.contains(v(2, 1)));
        assert!(c.contains(p(3)));
    }

    #[test]
    fn downgrade_page_clears_write_permission() {
        let mut c = tiny();
        c.fill(v(1, 0), false, Permissions::RW);
        c.downgrade_page_read_only(Asid::new(1), 0);
        assert_eq!(c.permissions(v(1, 0)), Some(Permissions::READ));
    }

    #[test]
    fn sharer_tracking() {
        let mut c = tiny();
        c.fill(p(0), false, Permissions::RW);
        c.add_sharer(p(0), 0);
        c.add_sharer(p(0), 2);
        assert_eq!(c.sharers(p(0)), 0b101);
        c.remove_sharer(p(0), 0);
        assert_eq!(c.sharers(p(0)), 0b100);
        assert_eq!(c.sharers(p(99)), 0);
    }

    #[test]
    fn lines_of_page_enumerates_64_lines() {
        let names: Vec<_> = lines_of_virt_page(Asid::new(1), 2).collect();
        assert_eq!(names.len(), 64);
        assert_eq!(names[0], v(1, 128));
        assert_eq!(names[63], v(1, 191));
    }
}
