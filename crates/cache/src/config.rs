//! Cache geometry and hierarchy configuration.

use hvc_types::{Cycles, LINE_SIZE};

/// Geometry and latency of a single cache level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency of this level.
    pub latency: Cycles,
}

impl CacheConfig {
    /// Creates a configuration, validating that the geometry divides into
    /// a power-of-two number of sets.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a multiple of `ways * 64` or the
    /// resulting set count is not a power of two.
    pub fn new(size_bytes: u64, ways: usize, latency: Cycles) -> Self {
        let c = CacheConfig {
            size_bytes,
            ways,
            latency,
        };
        let sets = c.sets();
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        c
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / LINE_SIZE;
        assert!(
            lines.is_multiple_of(self.ways as u64) && lines > 0,
            "capacity must divide into whole sets"
        );
        (lines / self.ways as u64) as usize
    }

    /// Total lines of capacity.
    pub fn lines(&self) -> u64 {
        self.size_bytes / LINE_SIZE
    }

    /// 32 KB 4-way L1 (2-cycle tag+data as in Table IV; the 2/4-cycle
    /// split of the paper is modelled as a uniform 2 cycles for loads).
    pub fn l1_32k() -> Self {
        CacheConfig::new(32 * 1024, 4, Cycles::new(2))
    }

    /// 256 KB 8-way 6-cycle L2 (Table IV).
    pub fn l2_256k() -> Self {
        CacheConfig::new(256 * 1024, 8, Cycles::new(6))
    }

    /// 2 MB 16-way 27-cycle L3 (Table IV).
    pub fn l3_2m() -> Self {
        CacheConfig::new(2 * 1024 * 1024, 16, Cycles::new(27))
    }

    /// 8 MB 16-way shared cache used in the paper's Section III-C filter
    /// evaluation.
    pub fn l3_8m() -> Self {
        CacheConfig::new(8 * 1024 * 1024, 16, Cycles::new(27))
    }
}

/// Configuration of a full multi-core hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores, each with private L1I/L1D/L2.
    pub cores: usize,
    /// Private instruction L1.
    pub l1i: CacheConfig,
    /// Private data L1.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared inclusive LLC.
    pub llc: CacheConfig,
}

impl HierarchyConfig {
    /// The paper's Table IV configuration for `cores` cores: 32 KB L1I/D,
    /// 256 KB L2, 2 MB shared LLC (scaled by core count for multi-core
    /// mixes, matching the paper's per-core LLC provisioning).
    pub fn isca2016(cores: usize) -> Self {
        assert!(cores > 0, "hierarchy needs at least one core");
        let llc_bytes = 2 * 1024 * 1024 * cores as u64;
        HierarchyConfig {
            cores,
            l1i: CacheConfig::l1_32k(),
            l1d: CacheConfig::l1_32k(),
            l2: CacheConfig::l2_256k(),
            llc: CacheConfig::new(llc_bytes, 16, Cycles::new(27)),
        }
    }

    /// A small configuration for unit tests (fast to fill and evict).
    pub fn test_tiny() -> Self {
        HierarchyConfig {
            cores: 1,
            l1i: CacheConfig::new(512, 2, Cycles::new(1)),
            l1d: CacheConfig::new(512, 2, Cycles::new(1)),
            l2: CacheConfig::new(1024, 2, Cycles::new(3)),
            llc: CacheConfig::new(2048, 2, Cycles::new(9)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isca_geometry() {
        let c = HierarchyConfig::isca2016(1);
        assert_eq!(c.l1d.sets(), 128);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.llc.sets(), 2048);
        assert_eq!(c.llc.lines(), 32768);
    }

    #[test]
    fn multi_core_scales_llc() {
        let c = HierarchyConfig::isca2016(4);
        assert_eq!(c.llc.size_bytes, 8 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheConfig::new(3 * 64 * 4, 4, Cycles::new(1));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = HierarchyConfig::isca2016(0);
    }
}
