//! Set-associative cache hierarchy with hybrid virtual/physical block
//! naming and MESI-style coherence.
//!
//! The defining property of the paper's hybrid virtual caching is that the
//! *entire* hierarchy — L1 through the shared LLC, including the coherence
//! protocol — operates on a single unique name per physical block:
//! `ASID ++ VA` for non-synonym pages and the physical address for synonym
//! pages ([`hvc_types::BlockName`]). This crate implements that hierarchy:
//!
//! * [`Cache`] — one set-associative level, keyed by [`hvc_types::BlockName`],
//!   with LRU replacement, dirty bits and per-line permission bits (the
//!   paper's Figure 2 tag extension),
//! * [`Hierarchy`] — per-core L1I/L1D/L2 backed by a shared inclusive LLC
//!   with MESI-style sharer tracking,
//! * page-granularity flush operations used by the OS substrate for
//!   remaps, permission changes and synonym-status transitions.
//!
//! # Examples
//!
//! ```
//! use hvc_cache::{Hierarchy, HierarchyConfig};
//! use hvc_types::{AccessKind, Asid, BlockName, LineAddr};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::isca2016(1));
//! let name = BlockName::Virt(Asid::new(1), LineAddr::new(0x40));
//! let first = h.access(0, name, AccessKind::Read);
//! assert!(first.llc_miss()); // cold
//! let second = h.access(0, name, AccessKind::Read);
//! assert_eq!(second.hit_level, Some(0)); // L1 hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod hierarchy;
mod stats;

pub use cache::{Cache, Victim};
pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::{AccessResult, Hierarchy};
pub use stats::{CacheStats, LevelStats};
