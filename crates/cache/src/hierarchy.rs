//! A multi-core cache hierarchy: private L1I/L1D/L2 per core, shared
//! inclusive LLC, MESI-style coherence over hybrid block names.

use crate::{Cache, CacheStats, HierarchyConfig, Victim};
use hvc_obs::LatencyHistogram;
use hvc_types::{AccessKind, Asid, BlockName, Cycles, Permissions};

/// The outcome of one hierarchy access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Level that supplied the block: `0` = L1, `1` = L2, `2` = LLC,
    /// `None` = missed everywhere (main memory must be accessed).
    pub hit_level: Option<u8>,
    /// Lookup latency through the levels traversed (DRAM not included —
    /// the caller performs delayed translation and the memory access).
    pub latency: Cycles,
    /// Dirty LLC victim displaced by the (auto-)fill, if any. The caller
    /// owns its writeback (which needs delayed translation under hybrid
    /// virtual caching).
    pub llc_victim: Option<Victim>,
}

impl AccessResult {
    /// `true` if the access missed the entire on-chip hierarchy.
    pub fn llc_miss(&self) -> bool {
        self.hit_level.is_none()
    }
}

/// A full cache hierarchy operating on [`BlockName`]s.
///
/// Because every physical block has exactly one name (the paper's
/// correctness invariant), coherence needs no reverse translation: the
/// LLC doubles as a directory keyed by the same name the private caches
/// use.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Vec<Cache>,
    llc: Cache,
    coherence_invalidations: u64,
    memory_writebacks: u64,
    lookup_latency: LatencyHistogram,
    /// Reusable victim buffer for page/frame/space flushes, so shootdowns
    /// allocate nothing on the steady state.
    scratch: Vec<Victim>,
    /// `true` once any line was ever filled with (or downgraded to)
    /// non-writable permissions. While `false`, the front-end's r/o write
    /// check can skip its hierarchy-wide permission probe: no cached line
    /// can fault it. Monotone, so skipping is observationally neutral.
    may_cache_readonly: bool,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        Hierarchy {
            l1i: (0..config.cores)
                .map(|_| Cache::new(config.l1i.clone()))
                .collect(),
            l1d: (0..config.cores)
                .map(|_| Cache::new(config.l1d.clone()))
                .collect(),
            l2: (0..config.cores)
                .map(|_| Cache::new(config.l2.clone()))
                .collect(),
            llc: Cache::new(config.llc.clone()),
            config,
            coherence_invalidations: 0,
            memory_writebacks: 0,
            lookup_latency: LatencyHistogram::default(),
            scratch: Vec::new(),
            may_cache_readonly: false,
        }
    }

    /// `true` if some line anywhere may carry non-writable permissions —
    /// the cue for the front-end to run its cached r/o write check.
    #[inline]
    pub fn may_hold_readonly(&self) -> bool {
        self.may_cache_readonly
    }

    /// Returns the configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Accesses `name` from `core` with read/write permissions cached as
    /// given (stored in the tag on fill, per the paper's Figure 2).
    ///
    /// On a complete miss the block is auto-filled into LLC, L2 and L1
    /// (the simulator carries no data, so fill and access fold together);
    /// the returned latency covers the on-chip lookups only.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access_with_perm(
        &mut self,
        core: usize,
        name: BlockName,
        kind: AccessKind,
        perm: Permissions,
    ) -> AccessResult {
        let result = self.access_with_perm_inner(core, name, kind, perm);
        self.lookup_latency.record(result.latency);
        result
    }

    fn access_with_perm_inner(
        &mut self,
        core: usize,
        name: BlockName,
        kind: AccessKind,
        perm: Permissions,
    ) -> AccessResult {
        assert!(core < self.config.cores, "core {core} out of range");
        self.may_cache_readonly |= !perm.is_writable();
        let write = kind.is_write();
        // MESI upgrade: any write must remove other cores' copies, even if
        // the writer hits its own (Shared-state) L1 copy.
        if write && self.config.cores > 1 {
            self.invalidate_other_sharers(core, name);
        }
        let mut latency = if kind.is_fetch() {
            self.config.l1i.latency
        } else {
            self.config.l1d.latency
        };

        // L1.
        let l1 = if kind.is_fetch() {
            &mut self.l1i[core]
        } else {
            &mut self.l1d[core]
        };
        if l1.access(name, write) {
            return AccessResult {
                hit_level: Some(0),
                latency,
                llc_victim: None,
            };
        }

        // L2.
        latency += self.config.l2.latency;
        if self.l2[core].access(name, write) {
            self.fill_l1(core, kind, name, write, perm);
            return AccessResult {
                hit_level: Some(1),
                latency,
                llc_victim: None,
            };
        }

        // LLC (one scan: hit bookkeeping + sharer registration fused).
        latency += self.config.llc.latency;
        if self.llc.access_sharing(name, write, core).is_some() {
            self.fill_private(core, kind, name, write, perm);
            return AccessResult {
                hit_level: Some(2),
                latency,
                llc_victim: None,
            };
        }

        // Miss everywhere: fill bottom-up, maintaining inclusion.
        let llc_victim = self.fill_miss(core, kind, name, write, perm);
        AccessResult {
            hit_level: None,
            latency,
            llc_victim,
        }
    }

    /// Accesses with default read-write permissions.
    pub fn access(&mut self, core: usize, name: BlockName, kind: AccessKind) -> AccessResult {
        self.access_with_perm(core, name, kind, Permissions::RW)
    }

    /// Probes the hierarchy without filling on a complete miss — the
    /// system simulator uses this so the fill can carry the permissions
    /// produced by delayed translation ([`Hierarchy::fill_miss`]).
    pub fn lookup(&mut self, core: usize, name: BlockName, kind: AccessKind) -> AccessResult {
        let result = self.lookup_inner(core, name, kind);
        self.lookup_latency.record(result.latency);
        result
    }

    fn lookup_inner(&mut self, core: usize, name: BlockName, kind: AccessKind) -> AccessResult {
        assert!(core < self.config.cores, "core {core} out of range");
        let write = kind.is_write();
        if write && self.config.cores > 1 {
            self.invalidate_other_sharers(core, name);
        }
        let mut latency = if kind.is_fetch() {
            self.config.l1i.latency
        } else {
            self.config.l1d.latency
        };
        let l1 = if kind.is_fetch() {
            &mut self.l1i[core]
        } else {
            &mut self.l1d[core]
        };
        if l1.access(name, write) {
            return AccessResult {
                hit_level: Some(0),
                latency,
                llc_victim: None,
            };
        }
        latency += self.config.l2.latency;
        // Promote with the permissions already cached at L2 (read out by
        // the same scan that services the hit).
        if let Some(perm) = self.l2[core].access_perm(name, write) {
            self.fill_l1(core, kind, name, write, perm);
            return AccessResult {
                hit_level: Some(1),
                latency,
                llc_victim: None,
            };
        }
        latency += self.config.llc.latency;
        if let Some(perm) = self.llc.access_sharing(name, write, core) {
            self.fill_private(core, kind, name, write, perm);
            return AccessResult {
                hit_level: Some(2),
                latency,
                llc_victim: None,
            };
        }
        AccessResult {
            hit_level: None,
            latency,
            llc_victim: None,
        }
    }

    /// Installs a block after a complete miss (memory returned the data),
    /// with the permissions obtained from (delayed) translation. Returns
    /// a dirty LLC victim needing a writeback, if any.
    pub fn fill_miss(
        &mut self,
        core: usize,
        kind: AccessKind,
        name: BlockName,
        dirty: bool,
        perm: Permissions,
    ) -> Option<Victim> {
        self.may_cache_readonly |= !perm.is_writable();
        let victim = self.fill_llc(core, name, dirty, perm);
        self.fill_private(core, kind, name, dirty, perm);
        victim
    }

    /// Returns the permission bits cached for `name`, looking from the L1
    /// of `core` outwards (used by the front-end to enforce r/o sharing).
    pub fn cached_permissions(&self, core: usize, name: BlockName) -> Option<Permissions> {
        self.l1d[core]
            .permissions(name)
            .or_else(|| self.l1i[core].permissions(name))
            .or_else(|| self.l2[core].permissions(name))
            .or_else(|| self.llc.permissions(name))
    }

    /// Iterates over every block name resident anywhere in the
    /// hierarchy (all L1s, L2s and the LLC), including duplicates when
    /// a block is cached at several levels. Used by the `hvc-check`
    /// invariant sweeps to audit the single-name guarantee; not on any
    /// simulation fast path.
    pub fn resident_names(&self) -> impl Iterator<Item = BlockName> + '_ {
        self.l1i
            .iter()
            .chain(&self.l1d)
            .chain(&self.l2)
            .flat_map(|c| c.resident_names())
            .chain(self.llc.resident_names())
    }

    /// Probes the whole hierarchy for `name` without side effects.
    pub fn contains(&self, name: BlockName) -> bool {
        self.llc.contains(name)
            || self.l1i.iter().any(|c| c.contains(name))
            || self.l1d.iter().any(|c| c.contains(name))
            || self.l2.iter().any(|c| c.contains(name))
    }

    /// Flushes all lines of virtual page `(asid, vpage)` hierarchy-wide;
    /// returns the number of dirty lines written back to memory. Used by
    /// the OS for unmap / remap / synonym-status transitions.
    pub fn flush_virt_page(&mut self, asid: Asid, vpage: u64) -> u64 {
        let mut victims = std::mem::take(&mut self.scratch);
        victims.clear();
        for c in self.l1i.iter_mut().chain(&mut self.l1d).chain(&mut self.l2) {
            c.flush_virt_page(asid, vpage, &mut victims);
        }
        self.llc.flush_virt_page(asid, vpage, &mut victims);
        let dirty = victims.len() as u64;
        self.scratch = victims;
        self.memory_writebacks += dirty;
        dirty
    }

    /// Flushes all physically-named lines of the frame at `frame_base`
    /// hierarchy-wide; returns the number of dirty lines written back.
    /// Used by the OS when a synonym page's frame is freed for reuse.
    pub fn flush_phys_frame(&mut self, frame_base: u64) -> u64 {
        let mut victims = std::mem::take(&mut self.scratch);
        victims.clear();
        for c in self.l1i.iter_mut().chain(&mut self.l1d).chain(&mut self.l2) {
            c.flush_phys_frame(frame_base, &mut victims);
        }
        self.llc.flush_phys_frame(frame_base, &mut victims);
        let dirty = victims.len() as u64;
        self.scratch = victims;
        self.memory_writebacks += dirty;
        dirty
    }

    /// Downgrades cached permissions of a virtual page to read-only in
    /// every level (content-based-sharing transition; no flush needed).
    pub fn downgrade_page_read_only(&mut self, asid: Asid, vpage: u64) {
        self.may_cache_readonly = true;
        for c in self.l1i.iter_mut().chain(&mut self.l1d).chain(&mut self.l2) {
            c.downgrade_page_read_only(asid, vpage);
        }
        self.llc.downgrade_page_read_only(asid, vpage);
    }

    /// Flushes every line of an address space (process exit).
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        let mut victims = std::mem::take(&mut self.scratch);
        victims.clear();
        for c in self.l1i.iter_mut().chain(&mut self.l1d).chain(&mut self.l2) {
            c.flush_asid(asid, &mut victims);
        }
        self.llc.flush_asid(asid, &mut victims);
        // Every appended victim is dirty by the `Cache::flush_asid`
        // contract, so the buffer length is the writeback count.
        let dirty = victims.len() as u64;
        self.scratch = victims;
        self.memory_writebacks += dirty;
        dirty
    }

    /// Gathers statistics from all levels.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            l1i: self.l1i.iter().map(|c| c.stats().clone()).collect(),
            l1d: self.l1d.iter().map(|c| c.stats().clone()).collect(),
            l2: self.l2.iter().map(|c| c.stats().clone()).collect(),
            llc: self.llc.stats().clone(),
            coherence_invalidations: self.coherence_invalidations,
            memory_writebacks: self.memory_writebacks,
            lookup_latency: self.lookup_latency.clone(),
        }
    }

    /// Resets statistics on every level (contents kept — useful for
    /// warm-up phases).
    pub fn reset_stats(&mut self) {
        for c in self.l1i.iter_mut().chain(&mut self.l1d).chain(&mut self.l2) {
            c.reset_stats();
        }
        self.llc.reset_stats();
        self.coherence_invalidations = 0;
        self.memory_writebacks = 0;
        self.lookup_latency = LatencyHistogram::default();
    }

    // --- internals ---

    fn fill_l1(
        &mut self,
        core: usize,
        kind: AccessKind,
        name: BlockName,
        dirty: bool,
        perm: Permissions,
    ) {
        let l1 = if kind.is_fetch() {
            &mut self.l1i[core]
        } else {
            &mut self.l1d[core]
        };
        // The caller just missed `name` in this L1, so skip the residency
        // probe; the displaced victim's write-back uses the plain `fill`
        // because the line *is* resident in the inclusive L2.
        if let Some(v) = l1.fill_after_miss(name, dirty, perm) {
            if v.dirty {
                self.l2[core].fill(v.name, true, perm);
            }
        }
    }

    fn fill_private(
        &mut self,
        core: usize,
        kind: AccessKind,
        name: BlockName,
        dirty: bool,
        perm: Permissions,
    ) {
        if let Some(v) = self.l2[core].fill_after_miss(name, dirty, perm) {
            // L2 victim: its dirty state merges into the (inclusive) LLC;
            // also evict from L1s to keep L2⊇L1 inclusion simple.
            self.evict_from_l1s(core, v.name);
            if v.dirty {
                self.llc.fill_unshare(v.name, true, perm, core);
            } else {
                self.llc.remove_sharer(v.name, core);
            }
        }
        self.fill_l1(core, kind, name, dirty, perm);
    }

    fn fill_llc(
        &mut self,
        core: usize,
        name: BlockName,
        dirty: bool,
        perm: Permissions,
    ) -> Option<Victim> {
        // The new line's sharer set is seeded with the filling core, so no
        // separate `add_sharer` scan is needed after the private fills.
        let (victim, sharers) = self
            .llc
            .fill_after_miss_tracked(name, dirty, perm, 1 << core)?;
        // Inclusive LLC: back-invalidate the victim from the private
        // caches that hold it (the directory's sharer bits are exact —
        // every private fill sets them, every private eviction clears
        // them); any dirty private copy makes the victim dirty.
        let mut dirty_above = false;
        let mut holders = sharers;
        while holders != 0 {
            let c = holders.trailing_zeros() as usize;
            holders &= holders - 1;
            dirty_above |= self.evict_from_l1s(c, victim.name);
            if let Some(v) = self.l2[c].invalidate(victim.name) {
                dirty_above |= v.dirty;
            }
        }
        let victim = Victim {
            name: victim.name,
            dirty: victim.dirty || dirty_above,
        };
        if victim.dirty {
            self.memory_writebacks += 1;
        }
        victim.dirty.then_some(victim)
    }

    fn evict_from_l1s(&mut self, core: usize, name: BlockName) -> bool {
        let mut dirty = false;
        if let Some(v) = self.l1i[core].invalidate(name) {
            dirty |= v.dirty;
        }
        if let Some(v) = self.l1d[core].invalidate(name) {
            dirty |= v.dirty;
        }
        dirty
    }

    /// MESI write-invalidate: a write by `core` removes all other cores'
    /// private copies (their dirty data folds into the LLC copy).
    fn invalidate_other_sharers(&mut self, core: usize, name: BlockName) {
        let sharers = self.llc.sharers(name);
        for other in 0..self.config.cores {
            if other == core || sharers & (1 << other) == 0 {
                continue;
            }
            let mut dirty = self.evict_from_l1s(other, name);
            if let Some(v) = self.l2[other].invalidate(name) {
                dirty |= v.dirty;
            }
            if dirty {
                // Fold the modified data into the LLC copy.
                self.llc.mark_dirty(name);
            }
            self.llc.remove_sharer(name, other);
            self.coherence_invalidations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_types::LineAddr;

    fn v(asid: u16, line: u64) -> BlockName {
        BlockName::Virt(Asid::new(asid), LineAddr::new(line))
    }

    fn p(line: u64) -> BlockName {
        BlockName::Phys(LineAddr::new(line))
    }

    fn tiny(cores: usize) -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            cores,
            ..HierarchyConfig::test_tiny()
        })
    }

    #[test]
    fn cold_miss_then_l1_hit() {
        let mut h = tiny(1);
        let r = h.access(0, v(1, 0), AccessKind::Read);
        assert!(r.llc_miss());
        assert_eq!(r.latency, Cycles::new(1 + 3 + 9));
        let r = h.access(0, v(1, 0), AccessKind::Read);
        assert_eq!(r.hit_level, Some(0));
        assert_eq!(r.latency, Cycles::new(1));
    }

    #[test]
    fn fetch_uses_l1i() {
        let mut h = tiny(1);
        h.access(0, v(1, 0), AccessKind::Fetch);
        // A data read of the same name misses L1D but hits L2 (filled on
        // the fetch path).
        let r = h.access(0, v(1, 0), AccessKind::Read);
        assert_eq!(r.hit_level, Some(1));
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let mut h = tiny(1);
        h.access(0, v(1, 0), AccessKind::Read);
        // Evict line 0 from tiny L1D (512 B, 2-way, 4 sets ⇒ lines 0, 4, 8
        // share set 0) but not from L2.
        h.access(0, v(1, 4), AccessKind::Read);
        h.access(0, v(1, 8), AccessKind::Read);
        let r = h.access(0, v(1, 0), AccessKind::Read);
        assert_eq!(r.hit_level, Some(1));
        let r = h.access(0, v(1, 0), AccessKind::Read);
        assert_eq!(r.hit_level, Some(0), "L2 hit should refill L1");
    }

    #[test]
    fn other_core_read_hits_shared_llc() {
        let mut h = tiny(2);
        h.access(0, p(0), AccessKind::Read);
        let r = h.access(1, p(0), AccessKind::Read);
        assert_eq!(r.hit_level, Some(2));
    }

    #[test]
    fn write_invalidates_other_cores_copies() {
        let mut h = tiny(2);
        h.access(0, p(0), AccessKind::Read);
        h.access(1, p(0), AccessKind::Read);
        // Core 1 writes: core 0's private copies must go.
        let r = h.access(1, p(0), AccessKind::Write);
        assert_eq!(r.hit_level, Some(0)); // it had its own L1 copy? No — write hits its L1.
        let s = h.stats();
        // Core 0 re-reads: must not hit its L1 (invalidated).
        let r0 = h.access(0, p(0), AccessKind::Read);
        assert!(
            r0.hit_level >= Some(2),
            "copy must come from LLC, got {:?}",
            r0.hit_level
        );
        assert!(s.coherence_invalidations >= 1);
    }

    #[test]
    fn inclusive_llc_back_invalidates() {
        let mut h = tiny(1);
        let cfg = h.config().clone();
        let llc_lines = cfg.llc.lines();
        // Touch enough distinct lines mapping set 0 of the LLC to evict
        // the first one.
        let sets = cfg.llc.sets() as u64;
        h.access(0, v(1, 0), AccessKind::Read);
        for i in 1..=cfg.llc.ways as u64 {
            h.access(0, v(1, i * sets), AccessKind::Read);
        }
        assert!(!h.contains(v(1, 0)), "victim must leave every level");
        let _ = llc_lines;
    }

    #[test]
    fn dirty_llc_victim_is_reported_and_counted() {
        let mut h = tiny(1);
        let sets = h.config().llc.sets() as u64;
        h.access(0, v(1, 0), AccessKind::Write);
        let mut saw_victim = false;
        for i in 1..=h.config().llc.ways as u64 + 1 {
            let r = h.access(0, v(1, i * sets), AccessKind::Read);
            if let Some(vv) = r.llc_victim {
                assert_eq!(vv.name, v(1, 0));
                assert!(vv.dirty);
                saw_victim = true;
                break;
            }
        }
        assert!(saw_victim);
        assert!(h.stats().memory_writebacks >= 1);
    }

    #[test]
    fn flush_virt_page_hits_all_levels() {
        let mut h = tiny(1);
        h.access(0, v(1, 0), AccessKind::Write); // page 0 (lines 0..64)
        h.access(0, v(1, 63), AccessKind::Read);
        let dirty = h.flush_virt_page(Asid::new(1), 0);
        assert!(dirty >= 1);
        assert!(!h.contains(v(1, 0)));
        assert!(!h.contains(v(1, 63)));
    }

    #[test]
    fn flush_asid_leaves_others() {
        let mut h = tiny(1);
        h.access(0, v(1, 0), AccessKind::Read);
        h.access(0, v(2, 1), AccessKind::Read);
        h.flush_asid(Asid::new(1));
        assert!(!h.contains(v(1, 0)));
        assert!(h.contains(v(2, 1)));
    }

    #[test]
    fn permissions_are_cached_and_downgradable() {
        let mut h = tiny(1);
        h.access_with_perm(0, v(1, 0), AccessKind::Read, Permissions::RW);
        assert_eq!(h.cached_permissions(0, v(1, 0)), Some(Permissions::RW));
        h.downgrade_page_read_only(Asid::new(1), 0);
        assert_eq!(h.cached_permissions(0, v(1, 0)), Some(Permissions::READ));
    }

    #[test]
    fn stats_reset() {
        let mut h = tiny(1);
        h.access(0, v(1, 0), AccessKind::Read);
        h.reset_stats();
        let s = h.stats();
        assert_eq!(s.l1d[0].accesses(), 0);
        assert_eq!(s.llc.accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let mut h = tiny(1);
        h.access(1, v(1, 0), AccessKind::Read);
    }
}
