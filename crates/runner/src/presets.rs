//! Named experiment presets for the paper's figures and tables.
//!
//! Each preset fixes the grid axes; reference counts default to a size
//! that finishes in minutes on one machine and can be raised from the
//! CLI (`--refs`/`--warm` override the preset). The native-execution
//! figures are covered; Figure 10 (virtualized speedup) needs the
//! `VirtSystemSim` front-end, which the sweep executor does not drive
//! yet, and so has no preset.

use crate::grid::Experiment;
use crate::params::{SYNONYM_WORKLOADS, WORKLOAD_NAMES};

/// `(name, summary)` for every preset, in display order.
pub const PRESET_NAMES: &[(&str, &str)] = &[
    (
        "smoke",
        "2-cell sanity sweep (gups × baseline/manyseg, tiny)",
    ),
    ("fig4", "delayed-TLB size sweep, 1K-32K entries"),
    (
        "fig9",
        "speedup of hybrid schemes over baseline, big-memory apps",
    ),
    ("fig11", "synonym apps under the full hybrid scheme"),
    ("table1", "synonym access behaviour (filter statistics)"),
    (
        "table2",
        "TLB access / miss reduction vs baseline, all apps",
    ),
    ("table3", "translation energy comparison"),
];

fn strings(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

/// The sixteen big-memory applications (Figure 9's x-axis).
fn big_memory() -> Vec<String> {
    strings(&WORKLOAD_NAMES[..16])
}

/// Resolves a preset by name.
pub fn preset(name: &str) -> Option<Experiment> {
    let base = Experiment {
        name: name.to_string(),
        ..Default::default()
    };
    Some(match name {
        // A deliberately tiny grid for CI and integration tests.
        "smoke" => Experiment {
            workloads: strings(&["gups"]),
            schemes: strings(&["baseline", "manyseg"]),
            refs: 20_000,
            warm: 5_000,
            mem: 16 << 20,
            ..base
        },
        // Figure 4: total TLB misses as the delayed TLB grows. The page
        // -granularity hybrid scheme with 1K-32K entry delayed TLBs.
        "fig4" => Experiment {
            workloads: strings(&["gups", "mcf", "milc", "canneal", "graph500"]),
            schemes: strings(&[
                "dtlb:1024",
                "dtlb:2048",
                "dtlb:4096",
                "dtlb:8192",
                "dtlb:16384",
                "dtlb:32768",
            ]),
            refs: 200_000,
            warm: 100_000,
            ..base
        },
        // Figure 9: execution-time comparison of baseline, the delayed
        // TLB hybrid, many-segment translation, and the ideal bound.
        "fig9" => Experiment {
            workloads: big_memory(),
            schemes: strings(&["baseline", "dtlb:4096", "manyseg", "ideal"]),
            refs: 200_000,
            warm: 100_000,
            ..base
        },
        // Figure 11: the synonym-heavy applications under the full
        // scheme (synonym filter + many-segment delayed translation).
        "fig11" => Experiment {
            workloads: strings(SYNONYM_WORKLOADS),
            schemes: strings(&["baseline", "manyseg", "ideal"]),
            refs: 200_000,
            warm: 100_000,
            ..base
        },
        // Table I: synonym candidate / false-positive rates, observable
        // in the `translation` counters of a hybrid run.
        "table1" => Experiment {
            workloads: strings(SYNONYM_WORKLOADS),
            schemes: strings(&["manyseg"]),
            refs: 200_000,
            warm: 100_000,
            ..base
        },
        // Table II: front-TLB access and total-miss reduction over the
        // baseline for every application.
        "table2" => Experiment {
            workloads: strings(WORKLOAD_NAMES),
            schemes: strings(&["baseline", "manyseg"]),
            refs: 200_000,
            warm: 100_000,
            ..base
        },
        // Table III: dynamic translation energy for the competing
        // schemes (the report's `energy_uj` field).
        "table3" => Experiment {
            workloads: big_memory(),
            schemes: strings(&["baseline", "dtlb:4096", "manyseg"]),
            refs: 200_000,
            warm: 100_000,
            ..base
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_resolves_and_validates() {
        for (name, _) in PRESET_NAMES {
            let exp = preset(name).unwrap_or_else(|| panic!("missing preset {name}"));
            exp.validate()
                .unwrap_or_else(|e| panic!("preset {name}: {e}"));
            assert_eq!(exp.name, *name);
            assert!(!exp.cells().is_empty());
        }
        assert!(preset("fig10").is_none());
    }

    #[test]
    fn smoke_is_two_cells() {
        assert_eq!(preset("smoke").unwrap().cells().len(), 2);
    }

    #[test]
    fn fig9_covers_the_four_schemes() {
        let exp = preset("fig9").unwrap();
        assert_eq!(exp.schemes.len(), 4);
        assert_eq!(exp.workloads.len(), 16);
        assert_eq!(exp.cells().len(), 64);
    }
}
