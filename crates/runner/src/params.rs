//! Shared parsing of workload names, scheme strings, and sizes.
//!
//! Both the `hvcsim` CLI and the sweep grid accept the same spellings;
//! keeping the parsers here means a scheme string that works for a
//! single run works unchanged as a grid axis value.

use hvc_core::TranslationScheme;
use hvc_os::AllocPolicy;
use hvc_workloads::{apps, WorkloadSpec};

/// All workload profile names, grouped as in the paper: the sixteen
/// big-memory applications first, then the five synonym (r/w-shared)
/// applications.
pub const WORKLOAD_NAMES: &[&str] = &[
    "gups",
    "milc",
    "mcf",
    "xalancbmk",
    "tigr",
    "omnetpp",
    "soplex",
    "astar",
    "cactus",
    "gems",
    "canneal",
    "stream",
    "mummer",
    "memcached",
    "cg",
    "graph500",
    "ferret",
    "postgres",
    "specjbb",
    "firefox",
    "apache",
];

/// The synonym-heavy subset (Figure 11 / Table I workloads).
pub const SYNONYM_WORKLOADS: &[&str] = &["ferret", "postgres", "specjbb", "firefox", "apache"];

/// Parses a size with an optional `K`/`M`/`G` suffix (`8M` → `8 << 20`).
pub fn parse_size(s: &str) -> Option<u64> {
    let (num, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1u64 << 10),
        b'M' | b'm' => (&s[..s.len() - 1], 1u64 << 20),
        b'G' | b'g' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

/// Looks up a workload profile by name; `gups_mem` sizes the GUPS table.
pub fn workload_by_name(name: &str, gups_mem: u64) -> Option<WorkloadSpec> {
    Some(match name {
        "gups" => apps::gups(gups_mem),
        "milc" => apps::milc(),
        "mcf" => apps::mcf(),
        "xalancbmk" => apps::xalancbmk(),
        "tigr" => apps::tigr(),
        "omnetpp" => apps::omnetpp(),
        "soplex" => apps::soplex(),
        "astar" => apps::astar(),
        "cactus" => apps::cactus(),
        "gems" => apps::gems(),
        "canneal" => apps::canneal(),
        "stream" => apps::stream(),
        "mummer" => apps::mummer(),
        "memcached" => apps::memcached(),
        "cg" => apps::npb_cg(),
        "graph500" => apps::graph500(),
        "ferret" => apps::ferret(),
        "postgres" => apps::postgres(),
        "specjbb" => apps::specjbb(),
        "firefox" => apps::firefox(),
        "apache" => apps::apache(),
        _ => return None,
    })
}

/// Parses a scheme string — `baseline`, `ideal`, `dtlb:<entries>`,
/// `manyseg`, `manyseg-nosc`, or `enigma:<entries>` — together with the
/// allocation policy the scheme requires (many-segment translation needs
/// eagerly reserved segments).
pub fn parse_scheme(s: &str) -> Option<(TranslationScheme, AllocPolicy)> {
    let demand = AllocPolicy::DemandPaging;
    let eager = AllocPolicy::EagerSegments { split: 1 };
    Some(match s {
        "baseline" => (TranslationScheme::Baseline, demand),
        "ideal" => (TranslationScheme::Ideal, demand),
        "manyseg" => (
            TranslationScheme::HybridManySegment {
                segment_cache: true,
            },
            eager,
        ),
        "manyseg-nosc" => (
            TranslationScheme::HybridManySegment {
                segment_cache: false,
            },
            eager,
        ),
        _ => {
            if let Some(n) = s.strip_prefix("dtlb:") {
                (TranslationScheme::HybridDelayedTlb(n.parse().ok()?), demand)
            } else if let Some(n) = s.strip_prefix("enigma:") {
                (TranslationScheme::EnigmaDelayedTlb(n.parse().ok()?), demand)
            } else {
                return None;
            }
        }
    })
}

/// The delayed-TLB entry count a scheme exposes to the energy model
/// (schemes without a delayed TLB report the paper's default 4096).
pub fn delayed_entries(scheme: TranslationScheme) -> usize {
    match scheme {
        TranslationScheme::HybridDelayedTlb(n) | TranslationScheme::EnigmaDelayedTlb(n) => n,
        _ => 4096,
    }
}

/// Validates an LLC capacity against the fixed 16-way, 64-byte-line
/// geometry (the set count must be a power of two).
pub fn valid_llc(bytes: u64) -> bool {
    let lines = bytes / 64;
    lines > 0 && lines.is_multiple_of(16) && (lines / 16).is_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(parse_size("64"), Some(64));
        assert_eq!(parse_size("4K"), Some(4 << 10));
        assert_eq!(parse_size("8M"), Some(8 << 20));
        assert_eq!(parse_size("2g"), Some(2 << 30));
        assert_eq!(parse_size("x"), None);
        assert_eq!(parse_size(""), None);
    }

    #[test]
    fn every_listed_workload_resolves() {
        for name in WORKLOAD_NAMES {
            assert!(workload_by_name(name, 16 << 20).is_some(), "{name}");
        }
        assert!(workload_by_name("nope", 16 << 20).is_none());
    }

    #[test]
    fn schemes() {
        assert!(matches!(
            parse_scheme("baseline"),
            Some((TranslationScheme::Baseline, _))
        ));
        assert!(matches!(
            parse_scheme("dtlb:4096"),
            Some((TranslationScheme::HybridDelayedTlb(4096), _))
        ));
        assert!(matches!(
            parse_scheme("manyseg"),
            Some((
                TranslationScheme::HybridManySegment {
                    segment_cache: true
                },
                _
            ))
        ));
        assert!(parse_scheme("dtlb:").is_none());
        assert!(parse_scheme("bogus").is_none());
    }

    #[test]
    fn llc_geometry() {
        assert!(valid_llc(2 << 20));
        assert!(valid_llc(8 << 20));
        assert!(!valid_llc(3 << 20));
        assert!(!valid_llc(0));
    }
}
