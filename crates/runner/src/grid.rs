//! Experiment grids and their cells.

use crate::params;

/// A full experiment: the cartesian product of workloads × schemes ×
/// base seeds × LLC capacities, with shared reference counts and
/// machine configuration.
///
/// Cells are enumerated in a fixed row-major order (workload outermost,
/// LLC innermost), so a cell's index is stable across runs and across
/// `--jobs` values; the per-cell RNG seed derives from the base seed and
/// that index (see [`Cell::derive_seed`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Experiment {
    /// Grid name (preset name, or `custom` for ad-hoc grids).
    pub name: String,
    /// Workload axis (profile names, see `params::WORKLOAD_NAMES`).
    pub workloads: Vec<String>,
    /// Scheme axis (strings accepted by `params::parse_scheme`).
    pub schemes: Vec<String>,
    /// Base-seed axis.
    pub seeds: Vec<u64>,
    /// LLC-capacity axis in bytes.
    pub llc_bytes: Vec<u64>,
    /// Measured references per cell.
    pub refs: usize,
    /// Warm-up references per cell (unmeasured).
    pub warm: usize,
    /// GUPS table size in bytes.
    pub mem: u64,
    /// Cores simulated per cell.
    pub cores: usize,
    /// Model the instruction-fetch stream.
    pub ifetch: bool,
    /// Replay this HVCT trace instead of generating references (the
    /// workload still provides the memory layout and MLP hint).
    pub replay: Option<String>,
    /// Include the observability sections (latency percentiles, cycle
    /// attribution) in the report. Collection is always on — this only
    /// widens the JSON, so turning it off reproduces the lean reports.
    pub obs: bool,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            name: "custom".into(),
            workloads: vec!["gups".into()],
            schemes: vec!["manyseg".into()],
            seeds: vec![42],
            llc_bytes: vec![2 << 20],
            refs: 500_000,
            warm: 250_000,
            mem: 512 << 20,
            cores: 1,
            ifetch: false,
            replay: None,
            obs: false,
        }
    }
}

/// One point of the grid, fully determined by the experiment and its
/// index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Position in the fixed enumeration order.
    pub index: usize,
    /// Workload profile name.
    pub workload: String,
    /// Scheme string.
    pub scheme: String,
    /// The base seed this cell came from.
    pub base_seed: u64,
    /// The derived per-cell RNG seed actually used.
    pub seed: u64,
    /// LLC capacity in bytes.
    pub llc_bytes: u64,
}

impl Cell {
    /// Derives the per-cell seed from `(base seed, cell index)` with a
    /// SplitMix64 round, so neighbouring cells get decorrelated streams
    /// while the mapping stays a pure function of the grid position.
    pub fn derive_seed(base_seed: u64, index: usize) -> u64 {
        let mut z = base_seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Experiment {
    /// Checks every axis value; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.workloads.is_empty()
            || self.schemes.is_empty()
            || self.seeds.is_empty()
            || self.llc_bytes.is_empty()
        {
            return Err("experiment has an empty axis".into());
        }
        if self.refs == 0 {
            return Err("refs must be positive".into());
        }
        if self.cores == 0 {
            return Err("cores must be positive".into());
        }
        for w in &self.workloads {
            if params::workload_by_name(w, self.mem).is_none() {
                return Err(format!("unknown workload '{w}'"));
            }
        }
        for s in &self.schemes {
            if params::parse_scheme(s).is_none() {
                return Err(format!("unknown scheme '{s}'"));
            }
        }
        for &llc in &self.llc_bytes {
            if !params::valid_llc(llc) {
                return Err(format!(
                    "LLC capacity {llc} is not a valid 16-way geometry (use a power of two ≥ 64K)"
                ));
            }
        }
        Ok(())
    }

    /// Enumerates the grid in its fixed order: workload, then scheme,
    /// then base seed, then LLC capacity.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::with_capacity(
            self.workloads.len() * self.schemes.len() * self.seeds.len() * self.llc_bytes.len(),
        );
        for w in &self.workloads {
            for s in &self.schemes {
                for &seed in &self.seeds {
                    for &llc in &self.llc_bytes {
                        let index = out.len();
                        out.push(Cell {
                            index,
                            workload: w.clone(),
                            scheme: s.clone(),
                            base_seed: seed,
                            seed: Cell::derive_seed(seed, index),
                            llc_bytes: llc,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_row_major_and_indexed() {
        let exp = Experiment {
            workloads: vec!["gups".into(), "mcf".into()],
            schemes: vec!["baseline".into(), "ideal".into()],
            seeds: vec![1, 2],
            llc_bytes: vec![2 << 20],
            ..Default::default()
        };
        let cells = exp.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].workload, "gups");
        assert_eq!(cells[0].scheme, "baseline");
        assert_eq!(cells[0].base_seed, 1);
        assert_eq!(cells[3].scheme, "ideal");
        assert_eq!(cells[4].workload, "mcf");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.seed, Cell::derive_seed(c.base_seed, i));
        }
    }

    #[test]
    fn derived_seeds_are_decorrelated() {
        let a = Cell::derive_seed(42, 0);
        let b = Cell::derive_seed(42, 1);
        let c = Cell::derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Pure function of (base, index).
        assert_eq!(a, Cell::derive_seed(42, 0));
    }

    #[test]
    fn validation_rejects_bad_axes() {
        let ok = Experiment::default();
        assert!(ok.validate().is_ok());
        let bad = Experiment {
            workloads: vec!["nope".into()],
            ..Default::default()
        };
        assert!(bad.validate().unwrap_err().contains("workload"));
        let bad = Experiment {
            schemes: vec!["warp-drive".into()],
            ..Default::default()
        };
        assert!(bad.validate().unwrap_err().contains("scheme"));
        let bad = Experiment {
            llc_bytes: vec![3 << 20],
            ..Default::default()
        };
        assert!(bad.validate().unwrap_err().contains("LLC"));
        let mut bad = Experiment::default();
        bad.seeds.clear();
        assert!(bad.validate().unwrap_err().contains("empty axis"));
    }
}
