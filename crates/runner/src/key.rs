//! Stable cell keys for memoizing per-cell results.
//!
//! A cell's merged statistics are a **pure function** of the inputs
//! hashed here — workload profile, scheme string, the derived per-cell
//! seed, LLC capacity, and the experiment-level knobs that shape the
//! reference stream (`refs`, `warm`, `mem`, `cores`, `ifetch`, and the
//! replay path, if any). [`cell_key`] folds those into one 64-bit
//! FNV-1a hash of a canonical byte string, so two cells collide exactly
//! when they would produce identical statistics (up to hash collision,
//! which at 64 bits is negligible for any realistic result store).
//!
//! Keys are used by the `hvcsim serve` result cache and its on-disk
//! spool: a completed cell is stored under its key and replayed on any
//! later request — even after a server restart — whose grid contains a
//! config-identical cell.
//!
//! Deliberately **excluded** from the key:
//!
//! * `shards` — sharded measurement merges bitwise to the unsharded
//!   report (tested in `exec.rs`), so the window split cannot change
//!   the result.
//! * `obs` — statistics collection is always on; the flag only widens
//!   the JSON serialization (see [`Experiment::obs`]), and consumers
//!   strip the observability sections at serialization time.
//! * the grid *position* (`index`, `base_seed`) — only the derived
//!   per-cell seed matters; two grids that derive the same seed for a
//!   config-identical cell genuinely share the result.
//!
//! A caveat on `replay`: the trace **path** is hashed, not the trace
//! contents, so persisted keys are only trustworthy for generated
//! workloads. The experiment server rejects replay requests outright.
//!
//! The canonical form is versioned as [`KEY_SCHEMA`]; any change to the
//! statistics' dependence on the inputs must bump it so stale spools
//! are never mistaken for current results.

use crate::grid::{Cell, Experiment};

/// Version tag mixed into every key. Bump when the canonical form — or
/// anything that changes what statistics a given config produces —
/// changes, so persisted results from older builds never alias.
pub const KEY_SCHEMA: &str = "hvc-cell-key/1";

/// The stable 64-bit key of one grid cell under its experiment.
///
/// Equal keys ⇔ equal cell configurations (workload, scheme, derived
/// seed, LLC bytes, refs, warm, mem, cores, ifetch, replay path), up to
/// 64-bit hash collision. See the module docs for what is excluded and
/// why.
pub fn cell_key(exp: &Experiment, cell: &Cell) -> u64 {
    fnv1a64(canonical_form(exp, cell).as_bytes())
}

/// [`cell_key`] formatted as a fixed-width lowercase hex string — the
/// spelling used in spool filenames and NDJSON events.
pub fn cell_key_hex(exp: &Experiment, cell: &Cell) -> String {
    format!("{:016x}", cell_key(exp, cell))
}

/// The canonical byte string that is hashed. Decimal fields joined by
/// newlines: no endianness, no struct layout, stable across platforms.
fn canonical_form(exp: &Experiment, cell: &Cell) -> String {
    format!(
        "{KEY_SCHEMA}\nworkload={}\nscheme={}\nseed={}\nllc={}\nrefs={}\nwarm={}\nmem={}\ncores={}\nifetch={}\nreplay={}\n",
        cell.workload,
        cell.scheme,
        cell.seed,
        cell.llc_bytes,
        exp.refs,
        exp.warm,
        exp.mem,
        exp.cores,
        exp.ifetch,
        exp.replay.as_deref().unwrap_or("-"),
    )
}

/// 64-bit FNV-1a — tiny, dependency-free, and stable by specification.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::preset;

    #[test]
    fn keys_are_a_pure_function_of_the_config() {
        let exp = preset("smoke").unwrap();
        for cell in exp.cells() {
            assert_eq!(cell_key(&exp, &cell), cell_key(&exp, &cell));
            assert_eq!(cell_key_hex(&exp, &cell).len(), 16);
        }
    }

    #[test]
    fn smoke_grid_keys_are_distinct() {
        let exp = preset("smoke").unwrap();
        let cells = exp.cells();
        let keys: Vec<u64> = cells.iter().map(|c| cell_key(&exp, c)).collect();
        for i in 0..keys.len() {
            for j in 0..i {
                assert_ne!(keys[i], keys[j], "cells {i} and {j} alias");
            }
        }
    }

    #[test]
    fn grid_position_does_not_leak_into_the_key() {
        // The same config at a different index keys identically as long
        // as the derived seed matches: reindex cell 1 as cell 0.
        let exp = preset("smoke").unwrap();
        let cells = exp.cells();
        let mut moved = cells[1].clone();
        moved.index = 0;
        moved.base_seed = 7; // position metadata, not config
        assert_eq!(cell_key(&exp, &cells[1]), cell_key(&exp, &moved));
    }

    #[test]
    fn every_hashed_field_changes_the_key() {
        let exp = preset("smoke").unwrap();
        let cell = exp.cells().remove(0);
        let base = cell_key(&exp, &cell);

        let mut c = cell.clone();
        c.workload = "mcf".into();
        assert_ne!(base, cell_key(&exp, &c));
        let mut c = cell.clone();
        c.scheme = "ideal".into();
        assert_ne!(base, cell_key(&exp, &c));
        let mut c = cell.clone();
        c.seed ^= 1;
        assert_ne!(base, cell_key(&exp, &c));
        let mut c = cell.clone();
        c.llc_bytes *= 2;
        assert_ne!(base, cell_key(&exp, &c));

        let mut e = exp.clone();
        e.refs += 1;
        assert_ne!(base, cell_key(&e, &cell));
        let mut e = exp.clone();
        e.warm += 1;
        assert_ne!(base, cell_key(&e, &cell));
        let mut e = exp.clone();
        e.mem *= 2;
        assert_ne!(base, cell_key(&e, &cell));
        let mut e = exp.clone();
        e.cores += 1;
        assert_ne!(base, cell_key(&e, &cell));
        let mut e = exp.clone();
        e.ifetch = true;
        assert_ne!(base, cell_key(&e, &cell));
        let mut e = exp.clone();
        e.replay = Some("t.hvct".into());
        assert_ne!(base, cell_key(&e, &cell));
    }

    #[test]
    fn excluded_knobs_do_not_change_the_key() {
        let exp = preset("smoke").unwrap();
        let cell = exp.cells().remove(0);
        let base = cell_key(&exp, &cell);
        let mut e = exp.clone();
        e.obs = true;
        e.name = "renamed".into();
        assert_eq!(base, cell_key(&e, &cell));
    }

    #[test]
    fn field_values_cannot_smear_across_separators() {
        // "ab" + "c" must not alias "a" + "bc": fields are delimited,
        // not concatenated.
        let exp = preset("smoke").unwrap();
        let mut a = exp.cells().remove(0);
        a.workload = "gupsx".into();
        let mut b = a.clone();
        b.workload = "gups".into();
        b.scheme = format!("x{}", a.scheme);
        assert_ne!(cell_key(&exp, &a), cell_key(&exp, &b));
    }
}
