//! JSON sweep reports.
//!
//! # Schema `hvc-sweep-report/3`
//!
//! ```text
//! {
//!   "schema": "hvc-sweep-report/3",
//!   "simulator": { "name": "hvc", "version": "<crate version>" },
//!   "experiment": {
//!     "name", "workloads" [], "schemes" [], "seeds" [], "llc_bytes" [],
//!     "refs", "warm", "mem", "cores", "ifetch", "replay" (string|null),
//!     "obs"
//!   },
//!   "jobs": <worker threads>,
//!   "shards": <windows merged per cell>,
//!   "wall_ms": <wall-clock of the parallel phase>,
//!   "cells": [
//!     {
//!       "index", "workload", "scheme", "base_seed", "seed", "llc_bytes",
//!       "stats": {
//!         "instructions", "cycles", "ipc", "refs",
//!         "baseline_tlb_misses", "minor_faults",
//!         "translation": { ...all TranslationCounters fields...,
//!                          "front_tlb_accesses", "total_tlb_misses" },
//!         "cache": { "l1i" [], "l1d" [], "l2" [],
//!                    "llc" { "hits", "misses", "evictions",
//!                            "writebacks", "invalidations",
//!                            "miss_rate" (float|null) },
//!                    "coherence_invalidations", "memory_writebacks" },
//!         "dram": { "reads", "writes", "row_hits", "row_misses",
//!                   "row_conflicts", "total_latency_cycles",
//!                   "row_hit_rate" (float|null),
//!                   "mean_latency" (float|null) },
//!         "energy_uj": <translation energy, µJ>,
//!         "os": { "minor_faults", "shootdowns", "cow_breaks",
//!                 "flushed_pages", "filter_insertions",
//!                 "filter_rebuilds" },
//!         "filter_occupancy": [
//!           { "asid", "insertions", "coarse_saturation",
//!             "fine_saturation", "stale_pages" }, ...
//!         ],
//!         // with "obs": true on the experiment:
//!         "latency": { "memory" {...}, "walk" {...} },  // histograms:
//!                    // count, total_cycles, max, mean, p50, p95, p99,
//!                    // buckets [[upper_bound, count], ...]
//!         "attribution": { "l1_hit", ..., "dram", "total" }
//!       }
//!     }, ...
//!   ]
//! }
//! ```
//!
//! All counters are exact `u64`; derived floats (`ipc`, `energy_uj`,
//! saturations, `mean`, the cache/DRAM rates) are pure functions of the
//! counters, so the whole `cells` array is byte-identical for identical
//! statistics. Derived rates over an empty denominator — a cache level
//! that saw no accesses, a cell with no DRAM traffic — are emitted as
//! JSON `null`, never `NaN` (which is not valid JSON).
//! `wall_ms` is the only field that varies between invocations, and it
//! lives outside the per-cell objects on purpose. Percentiles are
//! computed from the merged log₂ histogram buckets with integer rank
//! arithmetic, which keeps them `--jobs`- and shard-invariant too.

use crate::exec::{CellResult, FilterOccupancy, RunOptions, SweepOutcome};
use crate::grid::Experiment;
use crate::json::Value;
use crate::params;
use hvc_cache::{CacheStats, LevelStats};
use hvc_core::{EnergyModel, RunReport, TranslationCounters};
use hvc_mem::DramStats;
use hvc_obs::{Component, CycleAttribution, LatencyHistogram, TraceEvent};
use hvc_os::KernelStats;

/// The schema identifier written into every report.
pub const SCHEMA: &str = "hvc-sweep-report/3";

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Builds the report document for a finished sweep.
pub fn sweep_report(exp: &Experiment, opts: &RunOptions, outcome: &SweepOutcome) -> Value {
    object(vec![
        ("schema", Value::Str(SCHEMA.into())),
        (
            "simulator",
            object(vec![
                ("name", Value::Str("hvc".into())),
                ("version", Value::Str(env!("CARGO_PKG_VERSION").into())),
            ]),
        ),
        ("experiment", experiment_value(exp)),
        ("jobs", Value::UInt(opts.jobs as u64)),
        ("shards", Value::UInt(opts.shards as u64)),
        ("wall_ms", Value::UInt(outcome.wall.as_millis() as u64)),
        (
            "cells",
            Value::Array(
                outcome
                    .results
                    .iter()
                    .map(|r| cell_value(r, exp.obs))
                    .collect(),
            ),
        ),
    ])
}

fn experiment_value(exp: &Experiment) -> Value {
    let strs = |v: &[String]| Value::Array(v.iter().map(|s| Value::Str(s.clone())).collect());
    object(vec![
        ("name", Value::Str(exp.name.clone())),
        ("workloads", strs(&exp.workloads)),
        ("schemes", strs(&exp.schemes)),
        (
            "seeds",
            Value::Array(exp.seeds.iter().map(|&s| Value::UInt(s)).collect()),
        ),
        (
            "llc_bytes",
            Value::Array(exp.llc_bytes.iter().map(|&b| Value::UInt(b)).collect()),
        ),
        ("refs", Value::UInt(exp.refs as u64)),
        ("warm", Value::UInt(exp.warm as u64)),
        ("mem", Value::UInt(exp.mem)),
        ("cores", Value::UInt(exp.cores as u64)),
        ("ifetch", Value::Bool(exp.ifetch)),
        (
            "replay",
            exp.replay
                .as_ref()
                .map_or(Value::Null, |p| Value::Str(p.clone())),
        ),
        ("obs", Value::Bool(exp.obs)),
    ])
}

fn cell_value(result: &CellResult, obs: bool) -> Value {
    let c = &result.cell;
    object(vec![
        ("index", Value::UInt(c.index as u64)),
        ("workload", Value::Str(c.workload.clone())),
        ("scheme", Value::Str(c.scheme.clone())),
        ("base_seed", Value::UInt(c.base_seed)),
        ("seed", Value::UInt(c.seed)),
        ("llc_bytes", Value::UInt(c.llc_bytes)),
        (
            "stats",
            stats_value(&result.report, &result.filters, &c.scheme, obs),
        ),
    ])
}

/// Serializes one run's statistics exactly as a sweep cell's `stats`
/// object. Public so equivalence harnesses (golden-report tests, the
/// hot-path bench) can pin a `RunReport` bitwise without going through a
/// full sweep; the byte-identical guarantee of the module doc applies.
pub fn run_report_value(
    r: &RunReport,
    filters: &[FilterOccupancy],
    scheme: &str,
    obs: bool,
) -> Value {
    stats_value(r, filters, scheme, obs)
}

fn stats_value(r: &RunReport, filters: &[FilterOccupancy], scheme: &str, obs: bool) -> Value {
    let entries = params::parse_scheme(scheme)
        .map(|(s, _)| params::delayed_entries(s))
        .unwrap_or(4096);
    let energy = EnergyModel::cacti_32nm()
        .breakdown(&r.translation, entries)
        .total()
        / 1e6;
    let mut fields = vec![
        ("instructions", Value::UInt(r.instructions)),
        ("cycles", Value::UInt(r.cycles)),
        ("ipc", Value::Float(r.ipc())),
        ("refs", Value::UInt(r.refs)),
        ("baseline_tlb_misses", Value::UInt(r.baseline_tlb_misses)),
        ("minor_faults", Value::UInt(r.minor_faults)),
        ("translation", translation_value(&r.translation)),
        ("cache", cache_value(&r.cache)),
        ("dram", dram_value(&r.dram)),
        ("energy_uj", Value::Float(energy)),
        ("os", os_value(&r.os)),
        (
            "filter_occupancy",
            Value::Array(filters.iter().map(occupancy_value).collect()),
        ),
    ];
    if obs {
        fields.push((
            "latency",
            object(vec![
                ("memory", histogram_value(&r.obs.mem_latency)),
                ("walk", histogram_value(&r.obs.walk_latency)),
            ]),
        ));
        fields.push(("attribution", attribution_value(&r.obs.attribution)));
    }
    object(fields)
}

fn os_value(k: &KernelStats) -> Value {
    object(vec![
        ("minor_faults", Value::UInt(k.minor_faults)),
        ("shootdowns", Value::UInt(k.shootdowns)),
        ("cow_breaks", Value::UInt(k.cow_breaks)),
        ("flushed_pages", Value::UInt(k.flushed_pages)),
        ("filter_insertions", Value::UInt(k.filter_insertions)),
        ("filter_rebuilds", Value::UInt(k.filter_rebuilds)),
    ])
}

fn occupancy_value(f: &FilterOccupancy) -> Value {
    object(vec![
        ("asid", Value::UInt(f.asid as u64)),
        ("insertions", Value::UInt(f.insertions)),
        ("coarse_saturation", Value::Float(f.coarse_saturation)),
        ("fine_saturation", Value::Float(f.fine_saturation)),
        ("stale_pages", Value::UInt(f.stale_pages)),
    ])
}

/// Serializes a log₂ latency histogram: exact counters plus the derived
/// percentiles (pure functions of the buckets, hence merge-invariant).
fn histogram_value(h: &LatencyHistogram) -> Value {
    object(vec![
        ("count", Value::UInt(h.count())),
        ("total_cycles", Value::UInt(h.total().get())),
        ("max", Value::UInt(h.max())),
        ("mean", h.mean().map_or(Value::Null, Value::Float)),
        ("p50", Value::UInt(h.p50())),
        ("p95", Value::UInt(h.p95())),
        ("p99", Value::UInt(h.p99())),
        (
            "buckets",
            Value::Array(
                h.nonzero_buckets()
                    .map(|(ub, n)| Value::Array(vec![Value::UInt(ub), Value::UInt(n)]))
                    .collect(),
            ),
        ),
    ])
}

/// Serializes the cycle-attribution ledger; `total` equals the memory
/// latency histogram's `total_cycles` by construction.
fn attribution_value(a: &CycleAttribution) -> Value {
    let mut fields: Vec<(&str, Value)> = Component::ALL
        .iter()
        .map(|&c| (c.name(), Value::UInt(a.get(c).get())))
        .collect();
    fields.push(("total", Value::UInt(a.total().get())));
    object(fields)
}

/// Builds a Chrome `trace_event`-format document (the "JSON Array
/// Format" with an explicit object wrapper) from captured events.
/// Load the output in `chrome://tracing` or Perfetto.
pub fn trace_events_json(events: impl IntoIterator<Item = TraceEvent>) -> Value {
    let events = events
        .into_iter()
        .map(|e| {
            object(vec![
                ("name", Value::Str(e.name.into())),
                ("cat", Value::Str(e.cat.into())),
                ("ph", Value::Str("X".into())),
                ("ts", Value::UInt(e.ts)),
                ("dur", Value::UInt(e.dur)),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(e.tid as u64)),
            ])
        })
        .collect();
    object(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ns".into())),
    ])
}

fn translation_value(t: &TranslationCounters) -> Value {
    object(vec![
        ("l1_tlb_lookups", Value::UInt(t.l1_tlb_lookups)),
        ("l2_tlb_lookups", Value::UInt(t.l2_tlb_lookups)),
        ("filter_lookups", Value::UInt(t.filter_lookups)),
        ("filter_candidates", Value::UInt(t.filter_candidates)),
        ("false_positives", Value::UInt(t.false_positives)),
        ("synonym_tlb_lookups", Value::UInt(t.synonym_tlb_lookups)),
        ("synonym_tlb_misses", Value::UInt(t.synonym_tlb_misses)),
        ("delayed_tlb_lookups", Value::UInt(t.delayed_tlb_lookups)),
        ("delayed_tlb_misses", Value::UInt(t.delayed_tlb_misses)),
        ("sc_lookups", Value::UInt(t.sc_lookups)),
        ("index_cache_accesses", Value::UInt(t.index_cache_accesses)),
        (
            "segment_table_accesses",
            Value::UInt(t.segment_table_accesses),
        ),
        ("pte_reads", Value::UInt(t.pte_reads)),
        ("shared_accesses", Value::UInt(t.shared_accesses)),
        (
            "writeback_translations",
            Value::UInt(t.writeback_translations),
        ),
        ("filter_reloads", Value::UInt(t.filter_reloads)),
        (
            "segment_table_rebuilds",
            Value::UInt(t.segment_table_rebuilds),
        ),
        ("enigma_lookups", Value::UInt(t.enigma_lookups)),
        ("prefetches", Value::UInt(t.prefetches)),
        ("prefetches_blocked", Value::UInt(t.prefetches_blocked)),
        ("front_tlb_accesses", Value::UInt(t.front_tlb_accesses())),
        ("total_tlb_misses", Value::UInt(t.total_tlb_misses())),
    ])
}

fn level_value(l: &LevelStats) -> Value {
    object(vec![
        ("hits", Value::UInt(l.hits)),
        ("misses", Value::UInt(l.misses)),
        ("evictions", Value::UInt(l.evictions)),
        ("writebacks", Value::UInt(l.writebacks)),
        ("invalidations", Value::UInt(l.invalidations)),
        // Derived; null rather than NaN when the level saw no accesses
        // (empty measurement windows, ifetch-only levels, …).
        ("miss_rate", l.miss_rate().map_or(Value::Null, Value::Float)),
    ])
}

fn cache_value(c: &CacheStats) -> Value {
    let levels = |v: &[LevelStats]| Value::Array(v.iter().map(level_value).collect());
    object(vec![
        ("l1i", levels(&c.l1i)),
        ("l1d", levels(&c.l1d)),
        ("l2", levels(&c.l2)),
        ("llc", level_value(&c.llc)),
        (
            "coherence_invalidations",
            Value::UInt(c.coherence_invalidations),
        ),
        ("memory_writebacks", Value::UInt(c.memory_writebacks)),
    ])
}

fn dram_value(d: &DramStats) -> Value {
    object(vec![
        ("reads", Value::UInt(d.reads)),
        ("writes", Value::UInt(d.writes)),
        ("row_hits", Value::UInt(d.row_hits)),
        ("row_misses", Value::UInt(d.row_misses)),
        ("row_conflicts", Value::UInt(d.row_conflicts)),
        ("total_latency_cycles", Value::UInt(d.total_latency.get())),
        // Derived; null rather than NaN for a cell with no DRAM traffic.
        (
            "row_hit_rate",
            d.row_hit_rate().map_or(Value::Null, Value::Float),
        ),
        (
            "mean_latency",
            d.mean_latency().map_or(Value::Null, Value::Float),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fake_outcome() -> (Experiment, RunOptions, SweepOutcome) {
        let exp = Experiment {
            workloads: vec!["gups".into()],
            schemes: vec!["baseline".into()],
            ..Default::default()
        };
        let cell = exp.cells().remove(0);
        let report = RunReport {
            instructions: 1000,
            cycles: 500,
            refs: 100,
            ..Default::default()
        };
        let outcome = SweepOutcome {
            results: vec![CellResult {
                cell,
                report,
                filters: vec![FilterOccupancy {
                    asid: 1,
                    insertions: 3,
                    coarse_saturation: 0.25,
                    fine_saturation: 0.125,
                    stale_pages: 0,
                }],
            }],
            wall: Duration::from_millis(12),
        };
        (
            exp,
            RunOptions {
                jobs: 2,
                shards: 1,
                check: false,
            },
            outcome,
        )
    }

    #[test]
    fn report_has_schema_and_cells() {
        let (exp, opts, outcome) = fake_outcome();
        let doc = sweep_report(&exp, &opts, &outcome);
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(doc.get("jobs").unwrap().as_u64(), Some(2));
        let cells = doc.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 1);
        let stats = cells[0].get("stats").unwrap();
        assert_eq!(stats.get("instructions").unwrap().as_u64(), Some(1000));
        assert!((stats.get("ipc").unwrap().as_f64().unwrap() - 2.0).abs() < 1e-12);
        assert!(stats.get("translation").unwrap().get("pte_reads").is_some());
        assert!(stats.get("cache").unwrap().get("llc").is_some());
        assert!(stats.get("dram").unwrap().get("reads").is_some());
    }

    #[test]
    fn empty_cell_rates_are_null_not_nan() {
        // A report with zero cache accesses and zero DRAM traffic must
        // emit null for the derived rates: NaN is not valid JSON and a
        // 0/0 division would produce exactly that.
        let (exp, opts, outcome) = fake_outcome();
        let doc = sweep_report(&exp, &opts, &outcome);
        let stats = doc.get("cells").unwrap().as_array().unwrap()[0]
            .get("stats")
            .unwrap();
        let llc = stats.get("cache").unwrap().get("llc").unwrap();
        assert_eq!(llc.get("miss_rate"), Some(&Value::Null));
        let dram = stats.get("dram").unwrap();
        assert_eq!(dram.get("row_hit_rate"), Some(&Value::Null));
        assert_eq!(dram.get("mean_latency"), Some(&Value::Null));
        // The whole document still round-trips through the strict parser.
        assert!(crate::json::parse(&doc.to_pretty()).is_ok());
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let (exp, opts, outcome) = fake_outcome();
        let doc = sweep_report(&exp, &opts, &outcome);
        let text = doc.to_pretty();
        assert_eq!(crate::json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn cells_serialization_ignores_wall_clock() {
        let (exp, opts, mut outcome) = fake_outcome();
        let a = sweep_report(&exp, &opts, &outcome);
        outcome.wall = Duration::from_millis(9_999);
        let b = sweep_report(&exp, &opts, &outcome);
        assert_eq!(
            a.get("cells").unwrap().to_pretty(),
            b.get("cells").unwrap().to_pretty()
        );
        assert_ne!(a.get("wall_ms"), b.get("wall_ms"));
    }
}
