//! Experiment orchestration for the HVC simulator.
//!
//! This crate turns single simulator runs into **sweeps**: the
//! cartesian product of workload × scheme × seed × cache-configuration
//! axes, executed on a pool of worker threads and written out as one
//! JSON report. It owns
//!
//! * [`Experiment`] — the grid type, with [`presets`] for the paper's
//!   figures and tables (`fig9`, `table2`, …),
//! * [`run_sweep`] — the parallel executor; every cell runs in its own
//!   [`hvc_core::SystemSim`] with a seed derived from the grid
//!   position, so results are a pure function of the experiment and do
//!   not depend on `--jobs` or scheduling order,
//! * [`hvc_types::MergeStats`]-based shard merging — a cell can be
//!   measured in several windows whose statistics combine exactly,
//! * [`sweep_report`] — a self-describing JSON document (schema
//!   [`report::SCHEMA`]) with exact `u64` counters, written and parsed
//!   by the dependency-free [`json`] module,
//! * [`cell_key`] — the stable 64-bit memoization key of one cell
//!   (schema [`KEY_SCHEMA`]), which the `hvcsim serve` result cache and
//!   crash-resume spool index by,
//! * [`write_atomic`] — crash-safe write-temp-then-rename file output,
//!   shared by the CLI report writers and the server spool.
//!
//! # Examples
//!
//! ```
//! use hvc_runner::{presets, run_sweep, sweep_report, RunOptions};
//!
//! let mut exp = presets::preset("smoke").unwrap();
//! exp.refs = 2_000; // keep the doctest quick
//! exp.warm = 500;
//! let opts = RunOptions { jobs: 2, shards: 1, check: false };
//! let outcome = run_sweep(&exp, &opts).unwrap();
//! let doc = sweep_report(&exp, &opts, &outcome);
//! assert_eq!(doc.get("cells").unwrap().as_array().unwrap().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
pub mod fsio;
mod grid;
pub mod json;
mod key;
pub mod params;
pub mod presets;
pub mod report;

pub use exec::{run_cell, run_sweep, CellResult, FilterOccupancy, RunOptions, SweepOutcome};
pub use fsio::write_atomic;
pub use grid::{Cell, Experiment};
pub use key::{cell_key, cell_key_hex, KEY_SCHEMA};
pub use report::{run_report_value, sweep_report, trace_events_json};
