//! The parallel sweep executor.
//!
//! Cells are pushed onto a shared queue and claimed by `--jobs` worker
//! threads (work stealing degenerates to work sharing with a single
//! global deque, which is all a sweep of independent, similarly-sized
//! cells needs). Every cell runs in its own [`SystemSim`] with a seed
//! derived from the grid position, so the reported statistics are a
//! pure function of the experiment — identical whatever the job count
//! or completion order.

use crate::grid::{Cell, Experiment};
use crate::params;
use hvc_core::{RunReport, SystemConfig, SystemSim};
use hvc_os::Kernel;
use hvc_types::{Cycles, MergeStats, TraceItem};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Knobs of one sweep invocation (as opposed to the experiment itself,
/// these must not influence the reported statistics).
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker threads.
    pub jobs: usize,
    /// Measurement windows per cell; the per-window reports are merged
    /// with [`MergeStats`], exercising the same path a distributed
    /// sweep would use to combine shards.
    pub shards: usize,
    /// Re-run every cell through the `hvc-check` differential oracle
    /// after measuring it and fail the sweep on any invariant violation.
    /// Checking runs on a separate simulator pair, so the reported
    /// statistics are bitwise unaffected.
    pub check: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            jobs: 1,
            shards: 1,
            check: false,
        }
    }
}

/// The outcome of one cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The grid cell that produced this result.
    pub cell: Cell,
    /// Merged statistics over all shards of the cell.
    pub report: RunReport,
    /// End-of-run synonym-filter occupancy per address space, sorted by
    /// ASID. A gauge, not a counter: it is sampled from the final kernel
    /// state rather than merged across shards (merging saturations is
    /// meaningless), so it lives outside the [`RunReport`].
    pub filters: Vec<FilterOccupancy>,
}

/// End-of-run occupancy of one address space's synonym filter.
#[derive(Clone, Debug, PartialEq)]
pub struct FilterOccupancy {
    /// Address-space identifier.
    pub asid: u16,
    /// Lifetime insertions into this space's filter.
    pub insertions: u64,
    /// Fraction of coarse (16 MB-granularity) filter bits set.
    pub coarse_saturation: f64,
    /// Fraction of fine (32 KB-granularity) filter bits set.
    pub fine_saturation: f64,
    /// Pages unmapped since the last filter rebuild (stale filter
    /// contributions awaiting a lazy rebuild).
    pub stale_pages: u64,
}

/// The outcome of a whole sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Per-cell results in grid order.
    pub results: Vec<CellResult>,
    /// Wall-clock time of the parallel phase.
    pub wall: Duration,
}

/// Runs every cell of `exp` on `opts.jobs` threads.
pub fn run_sweep(exp: &Experiment, opts: &RunOptions) -> Result<SweepOutcome, String> {
    exp.validate()?;
    if opts.jobs == 0 {
        return Err("jobs must be positive".into());
    }
    if opts.shards == 0 {
        return Err("shards must be positive".into());
    }
    let replay_items: Option<Vec<TraceItem>> = match &exp.replay {
        Some(path) => Some(load_trace(path)?),
        None => None,
    };

    let cells = exp.cells();
    let n = cells.len();
    let queue: Mutex<VecDeque<Cell>> = Mutex::new(cells.into());
    let slots: Vec<Mutex<Option<Result<CellResult, String>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..opts.jobs.min(n.max(1)) {
            scope.spawn(|| loop {
                let Some(cell) = queue.lock().unwrap().pop_front() else {
                    return;
                };
                let index = cell.index;
                let outcome =
                    run_cell(exp, &cell, opts.shards, replay_items.as_deref(), opts.check).map(
                        |(report, filters)| CellResult {
                            cell,
                            report,
                            filters,
                        },
                    );
                *slots[index].lock().unwrap() = Some(outcome);
            });
        }
    });
    let wall = start.elapsed();

    let mut results = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap() {
            Some(Ok(r)) => results.push(r),
            Some(Err(e)) => return Err(format!("cell {i}: {e}")),
            None => return Err(format!("cell {i} was never executed")),
        }
    }
    Ok(SweepOutcome { results, wall })
}

/// Runs one cell: build the system, warm it up, then measure `refs`
/// references split over `shards` windows whose reports are merged.
/// Alongside the merged report, returns the end-of-run filter-occupancy
/// gauges (sorted by ASID for deterministic serialization).
pub fn run_cell(
    exp: &Experiment,
    cell: &Cell,
    shards: usize,
    replay: Option<&[TraceItem]>,
    check: bool,
) -> Result<(RunReport, Vec<FilterOccupancy>), String> {
    if check && replay.is_some() {
        return Err("--check does not support trace replay (the oracle needs the workload)".into());
    }
    let spec = params::workload_by_name(&cell.workload, exp.mem)
        .ok_or_else(|| format!("unknown workload '{}'", cell.workload))?;
    let (scheme, policy) = params::parse_scheme(&cell.scheme)
        .ok_or_else(|| format!("unknown scheme '{}'", cell.scheme))?;

    let config = cell_config(exp, cell)?;

    let mut kernel = Kernel::new(16 << 30, policy);
    let mut wl = spec
        .instantiate(&mut kernel, cell.seed)
        .map_err(|e| format!("workload setup failed: {e}"))?;
    let mlp = wl.mlp();
    let mut sim = SystemSim::new(kernel, config, scheme);

    // Warm-up (replay runs consume the head of the trace, as a real
    // recorded execution would).
    let mut replay_pos = 0usize;
    if exp.warm > 0 {
        match replay {
            Some(items) => {
                let end = exp.warm.min(items.len());
                sim.run_trace(items[..end].iter().copied(), mlp);
                sim.reset_stats();
                replay_pos = end;
            }
            None => sim.warm_up(&mut wl, exp.warm),
        }
    }

    // Measure in `shards` windows and merge — bitwise the same as one
    // window because `reset_stats` preserves microarchitectural state.
    let mut merged: Option<RunReport> = None;
    for window in window_sizes(exp.refs, shards) {
        let report = match replay {
            Some(items) => {
                let end = (replay_pos + window).min(items.len());
                let r = sim.run_trace(items[replay_pos..end].iter().copied(), mlp);
                replay_pos = end;
                r
            }
            None => sim.run(&mut wl, window),
        };
        sim.reset_stats();
        match &mut merged {
            Some(m) => m.merge_from(&report),
            None => merged = Some(report),
        }
    }
    let report = merged.ok_or_else(|| String::from("no measurement windows"))?;
    if check {
        check_cell(exp, cell, scheme, policy)?;
    }
    Ok((report, filter_occupancy(&sim)))
}

/// Builds the per-cell system configuration (shared by the measurement
/// run and the `--check` oracle pass, which must agree exactly).
fn cell_config(exp: &Experiment, cell: &Cell) -> Result<SystemConfig, String> {
    let mut config = SystemConfig::isca2016();
    config.hierarchy = hvc_cache::HierarchyConfig::isca2016(exp.cores.max(1));
    if cell.llc_bytes != config.hierarchy.llc.size_bytes {
        if !params::valid_llc(cell.llc_bytes) {
            return Err(format!("invalid LLC capacity {}", cell.llc_bytes));
        }
        config.hierarchy.llc = hvc_cache::CacheConfig::new(cell.llc_bytes, 16, Cycles::new(27));
    }
    config.model_ifetch = exp.ifetch;
    Ok(config)
}

/// Re-runs the cell through the `hvc-check` differential oracle: the
/// identical workload, seed and configuration on the scheme under test
/// and a physically-addressed reference machine in lockstep, with
/// whole-machine invariant sweeps along the way.
fn check_cell(
    exp: &Experiment,
    cell: &Cell,
    scheme: hvc_core::TranslationScheme,
    policy: hvc_os::AllocPolicy,
) -> Result<(), String> {
    let spec = params::workload_by_name(&cell.workload, exp.mem)
        .ok_or_else(|| format!("unknown workload '{}'", cell.workload))?;
    let (mut harness, mut wl) = hvc_check::DiffHarness::new(
        cell_config(exp, cell)?,
        scheme,
        hvc_check::CheckConfig::default(),
        16 << 30,
        policy,
        |k| spec.instantiate(k, cell.seed),
    )
    .map_err(|e| format!("check setup failed: {e}"))?;
    if exp.warm > 0 {
        harness.warm_up(&mut wl, exp.warm);
    }
    harness.run(&mut wl, exp.refs);
    let violations = harness.finish();
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "invariant violations under --check: {}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        ))
    }
}

/// Samples the end-of-run synonym-filter occupancy of every address
/// space, sorted by ASID (the kernel iterates spaces in hash order).
fn filter_occupancy(sim: &SystemSim) -> Vec<FilterOccupancy> {
    let kernel = sim.kernel();
    let mut out: Vec<FilterOccupancy> = kernel
        .spaces()
        .map(|(asid, space)| {
            let (coarse, fine) = space.filter.saturation();
            FilterOccupancy {
                asid: asid.as_u16(),
                insertions: space.filter.insertions(),
                coarse_saturation: coarse,
                fine_saturation: fine,
                stale_pages: kernel.stale_filter_pages(asid),
            }
        })
        .collect();
    out.sort_by_key(|f| f.asid);
    out
}

/// Splits `refs` into `shards` near-equal window sizes (the first
/// windows absorb the remainder); empty windows are dropped.
fn window_sizes(refs: usize, shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let base = refs / shards;
    let extra = refs % shards;
    (0..shards)
        .map(|i| base + usize::from(i < extra))
        .filter(|&w| w > 0)
        .collect()
}

fn load_trace(path: &str) -> Result<Vec<TraceItem>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open trace {path}: {e}"))?;
    let reader = hvc_trace::read_trace(std::io::BufReader::new(file))
        .map_err(|e| format!("cannot read trace {path}: {e}"))?;
    reader
        .collect::<std::io::Result<Vec<_>>>()
        .map_err(|e| format!("corrupt trace {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::preset;

    #[test]
    fn window_sizes_partition_refs() {
        assert_eq!(window_sizes(10, 3), vec![4, 3, 3]);
        assert_eq!(window_sizes(9, 3), vec![3, 3, 3]);
        assert_eq!(window_sizes(2, 4), vec![1, 1]);
        assert_eq!(window_sizes(0, 4), Vec::<usize>::new());
        assert_eq!(window_sizes(5, 1), vec![5]);
    }

    fn tiny() -> Experiment {
        let mut exp = preset("smoke").unwrap();
        exp.refs = 4_000;
        exp.warm = 1_000;
        exp
    }

    #[test]
    fn jobs_do_not_change_results() {
        let exp = tiny();
        let serial = run_sweep(
            &exp,
            &RunOptions {
                jobs: 1,
                shards: 1,
                check: false,
            },
        )
        .unwrap();
        let parallel = run_sweep(
            &exp,
            &RunOptions {
                jobs: 4,
                shards: 1,
                check: false,
            },
        )
        .unwrap();
        assert_eq!(serial.results.len(), parallel.results.len());
        for (a, b) in serial.results.iter().zip(parallel.results.iter()) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.report.instructions, b.report.instructions);
            assert_eq!(a.report.cycles, b.report.cycles);
            assert_eq!(a.report.translation, b.report.translation);
            assert_eq!(a.report.cache, b.report.cache);
            assert_eq!(a.report.dram, b.report.dram);
            assert_eq!(a.report.minor_faults, b.report.minor_faults);
        }
    }

    #[test]
    fn sharded_run_merges_to_the_unsharded_report() {
        let exp = tiny();
        let whole = run_sweep(
            &exp,
            &RunOptions {
                jobs: 1,
                shards: 1,
                check: false,
            },
        )
        .unwrap();
        let sharded = run_sweep(
            &exp,
            &RunOptions {
                jobs: 1,
                shards: 4,
                check: false,
            },
        )
        .unwrap();
        for (a, b) in whole.results.iter().zip(sharded.results.iter()) {
            assert_eq!(a.report.instructions, b.report.instructions);
            assert_eq!(a.report.cycles, b.report.cycles);
            assert_eq!(a.report.refs, b.report.refs);
            assert_eq!(a.report.translation, b.report.translation);
            assert_eq!(a.report.baseline_tlb_misses, b.report.baseline_tlb_misses);
            assert_eq!(a.report.cache, b.report.cache);
            assert_eq!(a.report.dram, b.report.dram);
            assert_eq!(a.report.minor_faults, b.report.minor_faults);
        }
    }

    #[test]
    fn errors_name_the_failing_cell() {
        let mut exp = tiny();
        exp.replay = Some("/nonexistent/trace.hvct".into());
        assert!(run_sweep(&exp, &RunOptions::default()).is_err());
    }

    #[test]
    fn checked_sweep_passes_and_reports_match_unchecked() {
        let mut exp = tiny();
        exp.refs = 2_000;
        exp.warm = 500;
        let plain = run_sweep(&exp, &RunOptions::default()).unwrap();
        let checked = run_sweep(
            &exp,
            &RunOptions {
                check: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        for (a, b) in plain.results.iter().zip(checked.results.iter()) {
            assert_eq!(a.report.cycles, b.report.cycles);
            assert_eq!(a.report.translation, b.report.translation);
            assert_eq!(a.report.cache, b.report.cache);
        }
    }

    #[test]
    fn check_refuses_trace_replay() {
        let exp = tiny();
        let cell = &exp.cells()[0];
        let err = run_cell(&exp, cell, 1, Some(&[]), true).unwrap_err();
        assert!(err.contains("replay"), "unexpected error: {err}");
    }
}
