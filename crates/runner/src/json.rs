//! A small, dependency-free JSON document model.
//!
//! Reports need exact, deterministic serialization (byte-identical
//! output for identical statistics regardless of `--jobs`), so objects
//! preserve insertion order and `u64` counters are kept lossless rather
//! than routed through `f64`. The parser accepts standard JSON and is
//! used by the CLI integration tests to read reports back.

use std::fmt::Write as _;

/// A JSON value with order-preserving objects and lossless `u64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the counters' native type).
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (also accepts integral floats).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no insignificant whitespace —
    /// the NDJSON form used by the experiment server, where every
    /// streamed event must be exactly one line. Like [`Value::to_pretty`]
    /// it is deterministic: identical values serialize byte-identically.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null | Value::Bool(_) | Value::UInt(_) | Value::Float(_) | Value::Str(_) => {
                self.write(out, 0)
            }
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is the shortest round-trip form and always
                    // keeps a decimal point or exponent, so the value
                    // reads back as a float.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the
                            // report vocabulary; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: &[(&str, Value)]) -> Value {
        Value::Object(
            fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn round_trips() {
        let doc = obj(&[
            ("name", Value::Str("he said \"hi\"\n".into())),
            ("big", Value::UInt(u64::MAX)),
            ("pi", Value::Float(3.25)),
            ("flag", Value::Bool(true)),
            ("none", Value::Null),
            ("list", Value::Array(vec![Value::UInt(1), Value::UInt(2)])),
            ("empty", Value::Array(vec![])),
            ("nested", obj(&[("x", Value::UInt(0))])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn compact_form_is_one_line_and_round_trips() {
        let doc = obj(&[
            ("name", Value::Str("a \"quoted\"\nstring".into())),
            ("n", Value::UInt(7)),
            ("list", Value::Array(vec![Value::UInt(1), Value::Null])),
            ("empty", Value::Object(vec![])),
        ]);
        let text = doc.to_compact();
        assert!(!text.contains('\n') || text.contains("\\n"));
        assert_eq!(text.lines().count(), 1, "compact output spans lines");
        assert_eq!(parse(&text).unwrap(), doc);
        assert_eq!(
            Value::Array(vec![]).to_compact(),
            "[]",
            "empty array stays bare"
        );
        assert_eq!(
            obj(&[("a", Value::UInt(1)), ("b", Value::Bool(false))]).to_compact(),
            "{\"a\":1,\"b\":false}"
        );
    }

    #[test]
    fn u64_counters_survive_exactly() {
        let n = u64::MAX - 1;
        let text = Value::UInt(n).to_pretty();
        assert_eq!(parse(text.trim()).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn serialization_is_deterministic() {
        let doc = obj(&[("a", Value::UInt(1)), ("b", Value::Float(0.5))]);
        assert_eq!(doc.to_pretty(), doc.to_pretty());
        assert_eq!(doc.to_pretty(), "{\n  \"a\": 1,\n  \"b\": 0.5\n}\n");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parses_standard_json() {
        let v = parse(r#"{"a": [1, -2.5, true, null], "s": "xA"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(v.get("s").unwrap().as_str(), Some("xA"));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-2.5)
        );
    }
}
