//! Crash-safe file output.
//!
//! Report writers (`hvcsim sweep --out`, `hvcsim bench --out`, the
//! experiment server's result spool) must never leave a truncated file
//! behind: a half-written JSON document is worse than none, because
//! downstream tooling — and the server's restart-resume path — trusts
//! whatever parses. [`write_atomic`] gives all of them the standard
//! write-temp-then-rename protocol: the destination either keeps its
//! old contents or holds the complete new ones, never a prefix.

use std::io::Write as _;
use std::path::Path;

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// sibling file (same directory, so the rename cannot cross a
/// filesystem), are flushed, and the temp file is renamed over `path`.
/// A crash at any point leaves either the previous file or the complete
/// new one. The temp file is removed on any error.
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    let path = path.as_ref();
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("path {} has no file name", path.display()),
        )
    })?;
    // Process-unique temp name: concurrent writers of the same target
    // (two sweeps with the same --out) cannot trample each other's
    // in-progress bytes; last rename wins with a complete file.
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);

    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents.as_ref())?;
        // Push the bytes to disk before the rename publishes the name;
        // otherwise a power cut could publish an empty file.
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hvc-fsio-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = temp_dir("basic");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let dir = temp_dir("clean");
        write_atomic(dir.join("a.json"), b"x").unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["a.json".to_string()], "stray files: {names:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failure_preserves_the_old_file() {
        let dir = temp_dir("fail");
        let path = dir.join("keep.json");
        write_atomic(&path, b"precious").unwrap();
        // Writing *into* a directory that does not exist fails at temp
        // creation — before the destination could possibly change.
        let err = write_atomic(dir.join("missing").join("keep.json"), b"x");
        assert!(err.is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"precious");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_a_bare_root_path() {
        assert!(write_atomic("/", b"x").is_err());
    }
}
