//! Property tests for the `MergeStats` algebra.
//!
//! Shard merging is only sound if merge behaves like elementwise
//! addition: **commutative** (shards finish in any order) and
//! **associative** (shards can be combined pairwise in any grouping),
//! with the default value as identity. These laws are checked here for
//! every stats struct the sweep pipeline merges.

use hvc_cache::{CacheStats, LevelStats};
use hvc_core::{RunReport, TranslationCounters};
use hvc_mem::DramStats;
use hvc_obs::{Component, CycleAttribution, LatencyHistogram, ObsReport};
use hvc_os::KernelStats;
use hvc_tlb::{TlbStats, WalkerStats};
use hvc_types::{Cycles, MergeStats};
use proptest::prelude::*;

// Counters stay below 2^40 so merging a handful of values can never
// overflow u64.
const MAX: u64 = 1 << 40;

fn level_stats() -> impl Strategy<Value = LevelStats> {
    prop::collection::vec(0u64..MAX, 5..6).prop_map(|v| LevelStats {
        hits: v[0],
        misses: v[1],
        evictions: v[2],
        writebacks: v[3],
        invalidations: v[4],
    })
}

fn cache_stats() -> impl Strategy<Value = CacheStats> {
    (
        prop::collection::vec(level_stats(), 0..3),
        prop::collection::vec(level_stats(), 0..3),
        prop::collection::vec(level_stats(), 0..3),
        level_stats(),
        0u64..MAX,
        0u64..MAX,
    )
        .prop_map(|(l1i, l1d, l2, llc, ci, mw)| CacheStats {
            l1i,
            l1d,
            l2,
            llc,
            coherence_invalidations: ci,
            memory_writebacks: mw,
            ..Default::default()
        })
}

fn dram_stats() -> impl Strategy<Value = DramStats> {
    prop::collection::vec(0u64..MAX, 6..7).prop_map(|v| DramStats {
        reads: v[0],
        writes: v[1],
        row_hits: v[2],
        row_misses: v[3],
        row_conflicts: v[4],
        total_latency: Cycles::new(v[5]),
        ..Default::default()
    })
}

fn translation_counters() -> impl Strategy<Value = TranslationCounters> {
    prop::collection::vec(0u64..MAX, 20..21).prop_map(|v| TranslationCounters {
        l1_tlb_lookups: v[0],
        l2_tlb_lookups: v[1],
        filter_lookups: v[2],
        filter_candidates: v[3],
        false_positives: v[4],
        synonym_tlb_lookups: v[5],
        synonym_tlb_misses: v[6],
        delayed_tlb_lookups: v[7],
        delayed_tlb_misses: v[8],
        sc_lookups: v[9],
        index_cache_accesses: v[10],
        segment_table_accesses: v[11],
        pte_reads: v[12],
        shared_accesses: v[13],
        writeback_translations: v[14],
        filter_reloads: v[15],
        segment_table_rebuilds: v[16],
        enigma_lookups: v[17],
        prefetches: v[18],
        prefetches_blocked: v[19],
    })
}

fn latency_histogram() -> impl Strategy<Value = LatencyHistogram> {
    prop::collection::vec(0u64..MAX, 0..40).prop_map(|samples| {
        let mut h = LatencyHistogram::default();
        for s in samples {
            h.record(Cycles::new(s));
        }
        h
    })
}

fn cycle_attribution() -> impl Strategy<Value = CycleAttribution> {
    prop::collection::vec(0u64..MAX, Component::ALL.len()..Component::ALL.len() + 1).prop_map(|v| {
        let mut a = CycleAttribution::default();
        for (&c, &cycles) in Component::ALL.iter().zip(v.iter()) {
            a.add(c, Cycles::new(cycles));
        }
        a
    })
}

fn obs_report() -> impl Strategy<Value = ObsReport> {
    (
        latency_histogram(),
        latency_histogram(),
        cycle_attribution(),
    )
        .prop_map(|(mem_latency, walk_latency, attribution)| ObsReport {
            mem_latency,
            walk_latency,
            attribution,
        })
}

fn kernel_stats() -> impl Strategy<Value = KernelStats> {
    prop::collection::vec(0u64..MAX, 6..7).prop_map(|v| KernelStats {
        minor_faults: v[0],
        shootdowns: v[1],
        cow_breaks: v[2],
        flushed_pages: v[3],
        filter_insertions: v[4],
        filter_rebuilds: v[5],
    })
}

fn run_report() -> impl Strategy<Value = RunReport> {
    (
        (0u64..MAX, 0u64..MAX, 0u64..MAX, 0u64..MAX, 0u64..MAX),
        translation_counters(),
        cache_stats(),
        dram_stats(),
        kernel_stats(),
        obs_report(),
    )
        .prop_map(
            |((instructions, cycles, refs, btm, faults), translation, cache, dram, os, obs)| {
                RunReport {
                    instructions,
                    cycles,
                    refs,
                    translation,
                    baseline_tlb_misses: btm,
                    cache,
                    dram,
                    minor_faults: faults,
                    os,
                    obs,
                }
            },
        )
}

/// `RunReport` has no `PartialEq`; compare the parts that do.
fn reports_equal(a: &RunReport, b: &RunReport) -> bool {
    a.instructions == b.instructions
        && a.cycles == b.cycles
        && a.refs == b.refs
        && a.translation == b.translation
        && a.baseline_tlb_misses == b.baseline_tlb_misses
        && a.cache == b.cache
        && a.dram == b.dram
        && a.minor_faults == b.minor_faults
        && a.os == b.os
        && a.obs == b.obs
}

macro_rules! merge_laws {
    ($comm:ident, $assoc:ident, $ident:ident, $strat:expr, $ty:ty) => {
        proptest! {
            #[test]
            fn $comm(a in $strat, b in $strat) {
                prop_assert_eq!(a.merged(&b), b.merged(&a));
            }

            #[test]
            fn $assoc(a in $strat, b in $strat, c in $strat) {
                prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
            }

            #[test]
            fn $ident(a in $strat) {
                prop_assert_eq!(a.merged(&<$ty>::default()), a);
            }
        }
    };
}

merge_laws!(
    level_commutative,
    level_associative,
    level_identity,
    level_stats(),
    LevelStats
);
merge_laws!(
    cache_commutative,
    cache_associative,
    cache_identity,
    cache_stats(),
    CacheStats
);
merge_laws!(
    dram_commutative,
    dram_associative,
    dram_identity,
    dram_stats(),
    DramStats
);
merge_laws!(
    translation_commutative,
    translation_associative,
    translation_identity,
    translation_counters(),
    TranslationCounters
);
merge_laws!(
    histogram_commutative,
    histogram_associative,
    histogram_identity,
    latency_histogram(),
    LatencyHistogram
);
merge_laws!(
    attribution_commutative,
    attribution_associative,
    attribution_identity,
    cycle_attribution(),
    CycleAttribution
);
merge_laws!(
    obs_commutative,
    obs_associative,
    obs_identity,
    obs_report(),
    ObsReport
);
merge_laws!(
    kernel_commutative,
    kernel_associative,
    kernel_identity,
    kernel_stats(),
    KernelStats
);

proptest! {
    /// Merging two histograms is exactly recording the union of their
    /// samples — count, totals, max, and every derived percentile agree.
    #[test]
    fn histogram_merge_is_union_of_samples(
        xs in prop::collection::vec(0u64..MAX, 0..40),
        ys in prop::collection::vec(0u64..MAX, 0..40),
    ) {
        let mut a = LatencyHistogram::default();
        for &x in &xs {
            a.record(Cycles::new(x));
        }
        let mut b = LatencyHistogram::default();
        for &y in &ys {
            b.record(Cycles::new(y));
        }
        let mut union = LatencyHistogram::default();
        for &v in xs.iter().chain(ys.iter()) {
            union.record(Cycles::new(v));
        }
        let merged = a.merged(&b);
        prop_assert_eq!(&merged, &union);
        prop_assert_eq!(merged.p50(), union.p50());
        prop_assert_eq!(merged.p95(), union.p95());
        prop_assert_eq!(merged.p99(), union.p99());
    }

    /// Attribution totals are preserved by merging.
    #[test]
    fn attribution_merge_preserves_total(a in cycle_attribution(), b in cycle_attribution()) {
        let merged = a.merged(&b);
        prop_assert_eq!(merged.total(), a.total() + b.total());
    }
}

proptest! {
    #[test]
    fn tlb_stats_laws(h1 in 0u64..MAX, m1 in 0u64..MAX, h2 in 0u64..MAX, m2 in 0u64..MAX) {
        let a = TlbStats { hits: h1, misses: m1 };
        let b = TlbStats { hits: h2, misses: m2 };
        prop_assert_eq!(a.merged(&b), b.merged(&a));
        prop_assert_eq!(a.merged(&TlbStats::default()), a);
    }

    #[test]
    fn walker_stats_laws(v in prop::collection::vec(0u64..MAX, 8..9)) {
        let a = WalkerStats {
            walks: v[0],
            pte_reads: v[1],
            skipped_reads: v[2],
            walk_cycles: Cycles::new(v[3]),
            ..Default::default()
        };
        let b = WalkerStats {
            walks: v[4],
            pte_reads: v[5],
            skipped_reads: v[6],
            walk_cycles: Cycles::new(v[7]),
            ..Default::default()
        };
        prop_assert_eq!(a.merged(&b), b.merged(&a));
        prop_assert_eq!(a.merged(&WalkerStats::default()), a.clone());
        prop_assert_eq!(
            a.merged(&b).merged(&a),
            a.merged(&b.merged(&a))
        );
    }

    #[test]
    fn run_report_laws(a in run_report(), b in run_report(), c in run_report()) {
        prop_assert!(reports_equal(&a.merged(&b), &b.merged(&a)));
        prop_assert!(reports_equal(&a.merged(&b).merged(&c), &a.merged(&b.merged(&c))));
        prop_assert!(reports_equal(&a.merged(&RunReport::default()), &a));
    }
}
