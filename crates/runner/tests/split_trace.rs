//! Shard-merging identity on a recorded trace: replaying a trace in one
//! window must report exactly the same statistics as replaying it split
//! into several merged windows — the property that makes distributed
//! sharding of a cell legitimate.

use hvc_os::{AllocPolicy, Kernel};
use hvc_runner::{run_sweep, sweep_report, Experiment, RunOptions};
use hvc_types::TraceItem;

fn record_trace(path: &std::path::Path, refs: usize) {
    let mut kernel = Kernel::new(4 << 30, AllocPolicy::DemandPaging);
    let mut wl = hvc_workloads::apps::gups(16 << 20)
        .instantiate(&mut kernel, 7)
        .expect("workload setup");
    let items: Vec<TraceItem> = (0..refs).map(|_| wl.next_item()).collect();
    let file = std::fs::File::create(path).expect("create trace");
    hvc_trace::write_trace(std::io::BufWriter::new(file), items).expect("write trace");
}

#[test]
fn split_replay_merges_to_the_whole_run() {
    let dir = std::env::temp_dir().join(format!("hvc-runner-split-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("split.hvct");
    record_trace(&trace, 6_000);

    let exp = Experiment {
        workloads: vec!["gups".into()],
        schemes: vec!["baseline".into(), "manyseg".into()],
        refs: 5_000,
        warm: 1_000,
        mem: 16 << 20,
        replay: Some(trace.to_string_lossy().into_owned()),
        ..Default::default()
    };

    let whole = run_sweep(
        &exp,
        &RunOptions {
            jobs: 1,
            shards: 1,
            check: false,
        },
    )
    .expect("whole run");
    let split = run_sweep(
        &exp,
        &RunOptions {
            jobs: 1,
            shards: 5,
            check: false,
        },
    )
    .expect("split run");

    assert_eq!(whole.results.len(), split.results.len());
    for (a, b) in whole.results.iter().zip(split.results.iter()) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(
            a.report.instructions, b.report.instructions,
            "{}",
            a.cell.scheme
        );
        assert_eq!(a.report.cycles, b.report.cycles, "{}", a.cell.scheme);
        assert_eq!(a.report.refs, b.report.refs);
        assert_eq!(
            a.report.translation, b.report.translation,
            "{}",
            a.cell.scheme
        );
        assert_eq!(a.report.baseline_tlb_misses, b.report.baseline_tlb_misses);
        assert_eq!(a.report.cache, b.report.cache, "{}", a.cell.scheme);
        assert_eq!(a.report.dram, b.report.dram, "{}", a.cell.scheme);
        assert_eq!(a.report.minor_faults, b.report.minor_faults);
        assert_eq!(a.report.os, b.report.os, "{}", a.cell.scheme);
        assert_eq!(a.report.obs, b.report.obs, "{}", a.cell.scheme);
        assert_eq!(a.filters, b.filters, "{}", a.cell.scheme);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Reports with the observability sections enabled stay byte-identical
/// whatever the job count — the log₂ histograms, percentiles, and the
/// attribution ledger are all merge-invariant — and every cell's
/// attribution components sum exactly to its memory-latency total.
#[test]
fn obs_report_is_jobs_invariant_and_attribution_sums() {
    obs_invariants(false);
    // The instruction-fetch stream goes through the same translation
    // front-end and latency histogram; the sum invariant must survive it.
    obs_invariants(true);
}

fn obs_invariants(ifetch: bool) {
    let exp = Experiment {
        workloads: vec!["gups".into()],
        schemes: vec!["baseline".into(), "dtlb:4096".into(), "manyseg".into()],
        refs: 4_000,
        warm: 1_000,
        mem: 16 << 20,
        ifetch,
        obs: true,
        ..Default::default()
    };

    let serial_opts = RunOptions {
        jobs: 1,
        shards: 1,
        check: false,
    };
    let parallel_opts = RunOptions {
        jobs: 4,
        shards: 2,
        check: false,
    };
    let serial = run_sweep(&exp, &serial_opts).expect("serial run");
    let parallel = run_sweep(&exp, &parallel_opts).expect("parallel run");

    let a = sweep_report(&exp, &serial_opts, &serial);
    let b = sweep_report(&exp, &parallel_opts, &parallel);
    assert_eq!(
        a.get("cells").unwrap().to_pretty(),
        b.get("cells").unwrap().to_pretty(),
        "obs-enabled cells must serialize identically across --jobs/--shards"
    );

    for cell in &serial.results {
        let obs = &cell.report.obs;
        assert_eq!(
            obs.attribution.total(),
            obs.mem_latency.total(),
            "attribution components must sum to total memory cycles ({})",
            cell.cell.scheme
        );
        // One histogram sample per data access, plus one per modelled
        // instruction fetch.
        let expected = cell.report.refs * if ifetch { 2 } else { 1 };
        assert_eq!(obs.mem_latency.count(), expected);
        // The report exposes the same invariant through JSON.
        let doc = sweep_report(&exp, &serial_opts, &serial);
        let cells = doc.get("cells").unwrap().as_array().unwrap();
        let stats = cells[cell.cell.index].get("stats").unwrap();
        let latency = stats.get("latency").unwrap();
        let mem = latency.get("memory").unwrap();
        assert!(mem.get("p50").unwrap().as_u64().is_some());
        assert!(mem.get("p95").unwrap().as_u64().is_some());
        assert!(mem.get("p99").unwrap().as_u64().is_some());
        let attribution = stats.get("attribution").unwrap();
        assert_eq!(
            attribution.get("total").unwrap().as_u64(),
            mem.get("total_cycles").unwrap().as_u64()
        );
    }
}
