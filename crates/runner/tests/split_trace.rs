//! Shard-merging identity on a recorded trace: replaying a trace in one
//! window must report exactly the same statistics as replaying it split
//! into several merged windows — the property that makes distributed
//! sharding of a cell legitimate.

use hvc_os::{AllocPolicy, Kernel};
use hvc_runner::{run_sweep, Experiment, RunOptions};
use hvc_types::TraceItem;

fn record_trace(path: &std::path::Path, refs: usize) {
    let mut kernel = Kernel::new(4 << 30, AllocPolicy::DemandPaging);
    let mut wl = hvc_workloads::apps::gups(16 << 20)
        .instantiate(&mut kernel, 7)
        .expect("workload setup");
    let items: Vec<TraceItem> = (0..refs).map(|_| wl.next_item()).collect();
    let file = std::fs::File::create(path).expect("create trace");
    hvc_trace::write_trace(std::io::BufWriter::new(file), items).expect("write trace");
}

#[test]
fn split_replay_merges_to_the_whole_run() {
    let dir = std::env::temp_dir().join(format!("hvc-runner-split-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("split.hvct");
    record_trace(&trace, 6_000);

    let exp = Experiment {
        workloads: vec!["gups".into()],
        schemes: vec!["baseline".into(), "manyseg".into()],
        refs: 5_000,
        warm: 1_000,
        mem: 16 << 20,
        replay: Some(trace.to_string_lossy().into_owned()),
        ..Default::default()
    };

    let whole = run_sweep(&exp, &RunOptions { jobs: 1, shards: 1 }).expect("whole run");
    let split = run_sweep(&exp, &RunOptions { jobs: 1, shards: 5 }).expect("split run");

    assert_eq!(whole.results.len(), split.results.len());
    for (a, b) in whole.results.iter().zip(split.results.iter()) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(
            a.report.instructions, b.report.instructions,
            "{}",
            a.cell.scheme
        );
        assert_eq!(a.report.cycles, b.report.cycles, "{}", a.cell.scheme);
        assert_eq!(a.report.refs, b.report.refs);
        assert_eq!(
            a.report.translation, b.report.translation,
            "{}",
            a.cell.scheme
        );
        assert_eq!(a.report.baseline_tlb_misses, b.report.baseline_tlb_misses);
        assert_eq!(a.report.cache, b.report.cache, "{}", a.cell.scheme);
        assert_eq!(a.report.dram, b.report.dram, "{}", a.cell.scheme);
        assert_eq!(a.report.minor_faults, b.report.minor_faults);
    }
    std::fs::remove_dir_all(&dir).ok();
}
