//! Property test for the stable cell key: **key equality ⇔ config
//! equality** over randomized variations of the smoke grid.
//!
//! The memoizing result cache and the crash-resume spool both rely on
//! this biconditional. A false *positive* (equal keys, different
//! configs) would silently serve one experiment's statistics for
//! another; a false *negative* (different keys, equal configs) would
//! only waste a re-simulation — still worth catching, since it breaks
//! the "warm server re-sweep is free" contract.

use hvc_runner::presets::preset;
use hvc_runner::{cell_key, Cell, Experiment};
use proptest::prelude::*;

/// The configuration tuple the key is specified over (everything
/// [`cell_key`] documents as hashed, in one comparable value).
fn config_tuple(
    exp: &Experiment,
    cell: &Cell,
) -> (
    String,
    String,
    u64,
    u64,
    usize,
    usize,
    u64,
    usize,
    bool,
    Option<String>,
) {
    (
        cell.workload.clone(),
        cell.scheme.clone(),
        cell.seed,
        cell.llc_bytes,
        exp.refs,
        exp.warm,
        exp.mem,
        exp.cores,
        exp.ifetch,
        exp.replay.clone(),
    )
}

/// A smoke-grid experiment with a few axes perturbed, plus one of its
/// cells. Values are drawn from small sets so identical configurations
/// occur often enough to exercise both directions of the biconditional.
fn smoke_variant() -> impl Strategy<Value = (Experiment, Cell)> {
    (
        0usize..2, // which smoke cell (baseline / manyseg)
        prop_oneof![Just(1_000usize), Just(2_000usize)],
        prop_oneof![Just(0usize), Just(500usize)],
        prop_oneof![Just(16u64 << 20), Just(32u64 << 20)],
        0u64..3,       // base seed
        any::<bool>(), // ifetch
        any::<bool>(), // obs (must NOT affect the key)
    )
        .prop_map(|(cell_ix, refs, warm, mem, seed, ifetch, obs)| {
            let mut exp = preset("smoke").expect("smoke preset");
            exp.refs = refs;
            exp.warm = warm;
            exp.mem = mem;
            exp.seeds = vec![seed];
            exp.ifetch = ifetch;
            exp.obs = obs;
            let cell = exp.cells().swap_remove(cell_ix);
            (exp, cell)
        })
}

proptest! {
    #[test]
    fn key_equality_iff_config_equality(
        (exp_a, cell_a) in smoke_variant(),
        (exp_b, cell_b) in smoke_variant(),
    ) {
        let keys_equal = cell_key(&exp_a, &cell_a) == cell_key(&exp_b, &cell_b);
        let configs_equal =
            config_tuple(&exp_a, &cell_a) == config_tuple(&exp_b, &cell_b);
        prop_assert_eq!(
            keys_equal, configs_equal,
            "key aliasing disagrees with config equality: a={:?} b={:?}",
            config_tuple(&exp_a, &cell_a), config_tuple(&exp_b, &cell_b)
        );
    }

    #[test]
    fn key_is_deterministic_across_recomputation(
        (exp, cell) in smoke_variant(),
    ) {
        prop_assert_eq!(cell_key(&exp, &cell), cell_key(&exp, &cell));
    }
}
