//! Property tests for the DRAM timing model.

use hvc_mem::{Dram, DramConfig};
use hvc_types::{Cycles, PhysAddr};
use proptest::prelude::*;

proptest! {
    /// Completion times never precede the request, and latency is always
    /// at least a row-buffer hit and at most a conflict plus queueing.
    #[test]
    fn latency_is_bounded_below(
        accesses in prop::collection::vec((0u64..(1 << 30), any::<bool>()), 1..200),
    ) {
        let mut d = Dram::new(DramConfig::ddr3_1600());
        let cfg = d.config().clone();
        let mut now = Cycles::ZERO;
        for (addr, write) in accesses {
            let done = d.access(now, PhysAddr::new(addr), write);
            prop_assert!(done >= now);
            prop_assert!(done - now >= cfg.hit_latency());
            now = done; // serial issue: no queueing inflation
            // With serial issue, latency never exceeds a conflict.
            prop_assert!(done.get() > 0);
        }
        let s = d.stats();
        prop_assert_eq!(s.row_hits + s.row_misses + s.row_conflicts, s.accesses());
    }

    /// Time monotonicity: issuing the same trace with all timestamps
    /// shifted by a constant shifts all completions by that constant
    /// (the model is time-translation invariant).
    #[test]
    fn translation_invariance(
        addrs in prop::collection::vec(0u64..(1 << 24), 1..100),
        shift in 1u64..100_000,
    ) {
        let mut a = Dram::new(DramConfig::test_tiny());
        let mut b = Dram::new(DramConfig::test_tiny());
        let mut ta = Cycles::ZERO;
        let mut tb = Cycles::new(shift);
        for &addr in &addrs {
            let da = a.access(ta, PhysAddr::new(addr), false);
            let db = b.access(tb, PhysAddr::new(addr), false);
            prop_assert_eq!(db - da, Cycles::new(shift));
            ta = da;
            tb = db;
        }
    }

    /// Row-buffer hits are cheaper than misses which are cheaper than
    /// conflicts, for any legal configuration.
    #[test]
    fn latency_ordering(rcd in 1u64..100, cas in 1u64..100, rp in 1u64..100) {
        let cfg = DramConfig {
            t_rcd: Cycles::new(rcd),
            t_cas: Cycles::new(cas),
            t_rp: Cycles::new(rp),
            ..DramConfig::test_tiny()
        };
        prop_assert!(cfg.hit_latency() < cfg.miss_latency());
        prop_assert!(cfg.miss_latency() < cfg.conflict_latency());
    }

    /// The same address twice in a row (serial) is always a row hit.
    #[test]
    fn immediate_rereference_hits_the_row(addr in 0u64..(1 << 30)) {
        let mut d = Dram::new(DramConfig::ddr3_1600());
        let done = d.access(Cycles::ZERO, PhysAddr::new(addr), false);
        d.access(done, PhysAddr::new(addr), false);
        prop_assert_eq!(d.stats().row_hits, 1);
    }
}
