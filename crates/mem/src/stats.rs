//! DRAM access statistics.

use crate::bank::RowOutcome;
use hvc_obs::LatencyHistogram;
use hvc_types::{Cycles, MergeStats};

/// Counters accumulated by [`crate::Dram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Number of read accesses.
    pub reads: u64,
    /// Number of write accesses.
    pub writes: u64,
    /// Accesses that hit an open row buffer.
    pub row_hits: u64,
    /// Accesses to a closed bank.
    pub row_misses: u64,
    /// Accesses that had to close another row first.
    pub row_conflicts: u64,
    /// Sum of access latencies (queueing included).
    pub total_latency: Cycles,
    /// Distribution of per-access latencies (queueing included).
    pub access_latency: LatencyHistogram,
}

impl DramStats {
    pub(crate) fn record(&mut self, outcome: RowOutcome, is_write: bool, latency: u64) {
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        match outcome {
            RowOutcome::Hit => self.row_hits += 1,
            RowOutcome::Miss => self.row_misses += 1,
            RowOutcome::Conflict => self.row_conflicts += 1,
        }
        self.total_latency += Cycles::new(latency);
        self.access_latency.record(Cycles::new(latency));
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit rate over all accesses, in `[0, 1]`; `None` if no
    /// accesses were recorded.
    pub fn row_hit_rate(&self) -> Option<f64> {
        let n = self.accesses();
        (n > 0).then(|| self.row_hits as f64 / n as f64)
    }

    /// Mean access latency; `None` if no accesses were recorded.
    pub fn mean_latency(&self) -> Option<f64> {
        let n = self.accesses();
        (n > 0).then(|| self.total_latency.get() as f64 / n as f64)
    }
}

impl MergeStats for DramStats {
    fn merge_from(&mut self, other: &Self) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.total_latency += other.total_latency;
        self.access_latency.merge_from(&other.access_latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_all_counters() {
        let mut a = DramStats::default();
        a.record(RowOutcome::Hit, false, 10);
        let mut b = DramStats::default();
        b.record(RowOutcome::Conflict, true, 30);
        a.merge_from(&b);
        assert_eq!(a.reads, 1);
        assert_eq!(a.writes, 1);
        assert_eq!(a.row_hits, 1);
        assert_eq!(a.row_conflicts, 1);
        assert_eq!(a.total_latency, Cycles::new(40));
    }

    #[test]
    fn rates_on_empty_stats_are_none() {
        let s = DramStats::default();
        assert_eq!(s.row_hit_rate(), None);
        assert_eq!(s.mean_latency(), None);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn record_classifies_outcomes() {
        let mut s = DramStats::default();
        s.record(RowOutcome::Hit, false, 10);
        s.record(RowOutcome::Miss, true, 20);
        s.record(RowOutcome::Conflict, false, 30);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_conflicts, 1);
        assert_eq!(s.accesses(), 3);
        assert!((s.row_hit_rate().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_latency().unwrap() - 20.0).abs() < 1e-12);
    }
}
