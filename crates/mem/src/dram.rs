//! The DRAM device: channel/bank address mapping plus per-bank timing.

use crate::bank::Bank;
use crate::{DramConfig, DramStats};
use hvc_types::{Cycles, PhysAddr, LINE_SHIFT};

/// A DRAM subsystem with row-buffer-aware timing.
///
/// Address mapping interleaves consecutive cache lines across channels and
/// then banks, which spreads streaming traffic for bank-level parallelism
/// while keeping page-sized regions within one row for locality — the
/// conventional mapping DRAMSim2 uses by default.
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM subsystem from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or banks, or a
    /// non-power-of-two row size.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "DRAM needs at least one channel");
        assert!(config.banks_per_channel > 0, "DRAM needs at least one bank");
        assert!(
            config.row_bytes.is_power_of_two(),
            "row size must be a power of two"
        );
        let total_banks = config.channels * config.banks_per_channel;
        Dram {
            banks: vec![Bank::default(); total_banks],
            config,
            stats: DramStats::default(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets accumulated statistics (bank state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Performs a line-sized access to `addr` arriving at absolute time
    /// `now`; returns the absolute completion time.
    ///
    /// Writes are modelled with read timing (posted writes hide write
    /// latency behind the write buffer in real controllers; what matters
    /// for the paper's figures is read latency and bank contention).
    pub fn access(&mut self, now: Cycles, addr: PhysAddr, is_write: bool) -> Cycles {
        let (bank_idx, row) = self.map(addr);
        let c = &self.config;
        let (outcome, done) = self.banks[bank_idx].access(
            now,
            row,
            c.hit_latency(),
            c.miss_latency(),
            c.conflict_latency(),
            c.t_occupancy,
        );
        let latency = done - now;
        self.stats.record(outcome, is_write, latency.get());
        done
    }

    /// Convenience wrapper returning the access *latency* rather than the
    /// completion time.
    pub fn access_latency(&mut self, now: Cycles, addr: PhysAddr, is_write: bool) -> Cycles {
        self.access(now, addr, is_write) - now
    }

    /// Maps a physical address to `(global bank index, row id)`.
    ///
    /// Bit layout above the line offset: `channel`, then `bank`, then the
    /// row id (column bits folded into the row for timing purposes: the
    /// row id changes exactly when the address leaves the row buffer).
    fn map(&self, addr: PhysAddr) -> (usize, u64) {
        let line = addr.as_u64() >> LINE_SHIFT;
        let ch = (line as usize) % self.config.channels;
        let after_ch = line / self.config.channels as u64;
        let bank = (after_ch as usize) % self.config.banks_per_channel;
        let after_bank = after_ch / self.config.banks_per_channel as u64;
        let lines_per_row = self.config.row_bytes >> LINE_SHIFT;
        let row = after_bank / lines_per_row;
        (ch * self.config.banks_per_channel + bank, row)
    }
}

impl Default for Dram {
    fn default() -> Self {
        Dram::new(DramConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dram {
        Dram::new(DramConfig::test_tiny())
    }

    #[test]
    fn row_hits_are_faster_than_misses() {
        let mut d = tiny();
        let c = d.config().clone();
        let done1 = d.access(Cycles::ZERO, PhysAddr::new(0), false);
        assert_eq!(done1, c.miss_latency());
        // Same bank, same row (consecutive lines interleave across banks:
        // with 1 channel and 2 banks, lines 0 and 2 share bank 0).
        let done2 = d.access(done1, PhysAddr::new(2 * 64), false);
        assert_eq!(done2 - done1, c.hit_latency());
    }

    #[test]
    fn stats_accumulate() {
        let mut d = tiny();
        d.access(Cycles::ZERO, PhysAddr::new(0), false);
        d.access(Cycles::new(1000), PhysAddr::new(2 * 64), true);
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_hits, 1);
        assert!(s.total_latency.get() > 0);
        d.reset_stats();
        assert_eq!(d.stats().reads, 0);
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let mut d = tiny();
        // test_tiny: row_bytes=128 → 2 lines/row, 2 banks, 1 channel.
        // Bank 0 holds lines 0, 2, 4, 6… rows of bank 0: lines {0,2} row 0,
        // lines {4,6} row 1.
        d.access(Cycles::ZERO, PhysAddr::new(0), false); // bank0 row0 (miss)
        d.access(Cycles::new(500), PhysAddr::new(4 * 64), false); // bank0 row1
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn channel_interleaving_spreads_lines() {
        let cfg = DramConfig {
            channels: 2,
            ..DramConfig::test_tiny()
        };
        let d = Dram::new(cfg);
        let (b0, _) = d.map(PhysAddr::new(0));
        let (b1, _) = d.map(PhysAddr::new(64));
        assert_ne!(b0, b1, "adjacent lines should land on different channels");
    }

    #[test]
    fn access_latency_matches_completion_time() {
        let mut d = tiny();
        let now = Cycles::new(100);
        let mut d2 = d.clone();
        let done = d.access(now, PhysAddr::new(0), false);
        let lat = d2.access_latency(now, PhysAddr::new(0), false);
        assert_eq!(now + lat, done);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = Dram::new(DramConfig {
            channels: 0,
            ..DramConfig::test_tiny()
        });
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_row_size_rejected() {
        let _ = Dram::new(DramConfig {
            row_bytes: 100,
            ..DramConfig::test_tiny()
        });
    }
}
