//! DDR3-style DRAM timing model.
//!
//! The paper evaluates with DRAMSim2 attached to MARSSx86 (4 GB DDR3-1600,
//! 800 MHz, one memory controller). This crate provides the closest
//! self-contained equivalent: a bank/row-buffer timing model with
//! FR-FCFS-flavoured bank queuing. It is deliberately *not* a full
//! command-level DRAM simulator — the figures reproduced from the paper
//! depend on the average and locality-dependence of main-memory latency,
//! which the row-buffer model captures.
//!
//! # Examples
//!
//! ```
//! use hvc_mem::{Dram, DramConfig};
//! use hvc_types::{Cycles, PhysAddr};
//!
//! let mut dram = Dram::new(DramConfig::ddr3_1600());
//! let first = dram.access(Cycles::ZERO, PhysAddr::new(0x1000), false);
//! // A second access to the same bank and row is a row-buffer hit and is
//! // faster (lines interleave across 8 banks, so step by 8 lines).
//! let second = dram.access(first, PhysAddr::new(0x1200), false);
//! assert!(second - first < first);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod config;
mod dram;
mod stats;

pub use config::DramConfig;
pub use dram::Dram;
pub use stats::DramStats;
