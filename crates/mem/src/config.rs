//! DRAM geometry and timing configuration.

use hvc_types::Cycles;

/// Geometry and timing of the DRAM subsystem.
///
/// All timing values are expressed in **CPU core cycles** at the nominal
/// 3.4 GHz frequency of the paper's Table IV configuration, so a DDR3-1600
/// memory cycle (800 MHz clock) corresponds to 4.25 core cycles; the
/// presets below pre-multiply standard JEDEC cycle counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels (memory controllers).
    pub channels: usize,
    /// Banks per channel (ranks × banks folded together).
    pub banks_per_channel: usize,
    /// Bytes per DRAM row (row-buffer size).
    pub row_bytes: u64,
    /// Activate-to-column delay (tRCD).
    pub t_rcd: Cycles,
    /// Column access (CAS) latency (tCL) plus data burst.
    pub t_cas: Cycles,
    /// Precharge latency (tRP).
    pub t_rp: Cycles,
    /// Fixed controller + interconnect overhead added to every access.
    pub t_overhead: Cycles,
    /// Minimum gap between two column commands on the same bank (bank
    /// occupancy per access; models command/data bus contention crudely).
    pub t_occupancy: Cycles,
}

impl DramConfig {
    /// DDR3-1600-like timing at a 3.4 GHz core clock (the paper's
    /// Table IV: "4GB DDR3-1600, 800MHz, 1 memory controller").
    ///
    /// JEDEC DDR3-1600 11-11-11: tRCD = tRP = tCL ≈ 13.75 ns ≈ 47 core
    /// cycles; burst of 8 at 1.25 ns ≈ 17 core cycles folded into `t_cas`;
    /// ~26 cycles of controller overhead gives the conventional ~160-cycle
    /// row-miss latency.
    pub fn ddr3_1600() -> Self {
        DramConfig {
            channels: 1,
            banks_per_channel: 8,
            row_bytes: 8 * 1024,
            t_rcd: Cycles::new(47),
            t_cas: Cycles::new(47 + 17),
            t_rp: Cycles::new(47),
            t_overhead: Cycles::new(26),
            t_occupancy: Cycles::new(17),
        }
    }

    /// A fast, fixed-latency-ish configuration for unit tests (small
    /// numbers that are easy to reason about).
    pub fn test_tiny() -> Self {
        DramConfig {
            channels: 1,
            banks_per_channel: 2,
            row_bytes: 128,
            t_rcd: Cycles::new(10),
            t_cas: Cycles::new(5),
            t_rp: Cycles::new(10),
            t_overhead: Cycles::new(1),
            t_occupancy: Cycles::new(2),
        }
    }

    /// Latency of a row-buffer hit.
    #[inline]
    pub fn hit_latency(&self) -> Cycles {
        self.t_overhead + self.t_cas
    }

    /// Latency of an access to a closed bank (activate + column).
    #[inline]
    pub fn miss_latency(&self) -> Cycles {
        self.t_overhead + self.t_rcd + self.t_cas
    }

    /// Latency of a row-buffer conflict (precharge + activate + column).
    #[inline]
    pub fn conflict_latency(&self) -> Cycles {
        self.t_overhead + self.t_rp + self.t_rcd + self.t_cas
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering_holds() {
        let c = DramConfig::ddr3_1600();
        assert!(c.hit_latency() < c.miss_latency());
        assert!(c.miss_latency() < c.conflict_latency());
    }

    #[test]
    fn default_is_ddr3() {
        assert_eq!(DramConfig::default(), DramConfig::ddr3_1600());
    }

    #[test]
    fn ddr3_row_miss_is_realistic() {
        // A closed-row access should land in the conventional
        // 100-200 core-cycle range at 3.4 GHz.
        let c = DramConfig::ddr3_1600();
        let miss = c.miss_latency().get();
        assert!((100..=200).contains(&miss), "miss latency {miss}");
    }
}
