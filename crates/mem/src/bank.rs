//! Per-bank row-buffer state.

use hvc_types::Cycles;

/// Outcome of presenting an access to a bank, used for statistics and
/// latency selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank had no open row (first touch after precharge).
    Miss,
    /// A different row was open and must be precharged first.
    Conflict,
}

/// A single DRAM bank: one open row plus a busy-until timestamp that
/// serializes accesses to the bank.
#[derive(Clone, Debug, Default)]
pub(crate) struct Bank {
    open_row: Option<u64>,
    busy_until: Cycles,
}

impl Bank {
    /// Presents an access to `row` arriving at time `now`; returns the
    /// outcome and the time the requested data is available, and updates
    /// bank state. `service` latencies come from the config per outcome,
    /// `occupancy` keeps the bank busy after the access completes.
    pub(crate) fn access(
        &mut self,
        now: Cycles,
        row: u64,
        hit: Cycles,
        miss: Cycles,
        conflict: Cycles,
        occupancy: Cycles,
    ) -> (RowOutcome, Cycles) {
        let outcome = match self.open_row {
            Some(r) if r == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Miss,
        };
        let service = match outcome {
            RowOutcome::Hit => hit,
            RowOutcome::Miss => miss,
            RowOutcome::Conflict => conflict,
        };
        // The access starts when both the request arrives and the bank is
        // free (FR-FCFS handled implicitly by the caller picking the bank).
        let start = now.max(self.busy_until);
        let done = start + service;
        self.open_row = Some(row);
        self.busy_until = start + occupancy.max(service);
        (outcome, done)
    }

    /// Time at which the bank becomes idle (visible for tests).
    #[cfg(test)]
    pub(crate) fn busy_until(&self) -> Cycles {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    #[test]
    fn first_access_is_a_miss() {
        let mut b = Bank::default();
        let (o, done) = b.access(cy(0), 7, cy(5), cy(15), cy(25), cy(2));
        assert_eq!(o, RowOutcome::Miss);
        assert_eq!(done, cy(15));
    }

    #[test]
    fn same_row_hits_different_row_conflicts() {
        let mut b = Bank::default();
        b.access(cy(0), 7, cy(5), cy(15), cy(25), cy(2));
        let (o, _) = b.access(cy(100), 7, cy(5), cy(15), cy(25), cy(2));
        assert_eq!(o, RowOutcome::Hit);
        let (o, _) = b.access(cy(200), 8, cy(5), cy(15), cy(25), cy(2));
        assert_eq!(o, RowOutcome::Conflict);
    }

    #[test]
    fn back_to_back_accesses_queue_on_the_bank() {
        let mut b = Bank::default();
        let (_, d1) = b.access(cy(0), 1, cy(5), cy(15), cy(25), cy(2));
        assert_eq!(d1, cy(15));
        // Second access arrives immediately but must wait for the bank.
        let (o, d2) = b.access(cy(0), 1, cy(5), cy(15), cy(25), cy(2));
        assert_eq!(o, RowOutcome::Hit);
        assert_eq!(d2, cy(15 + 5));
    }

    #[test]
    fn occupancy_extends_busy_time() {
        let mut b = Bank::default();
        b.access(cy(0), 1, cy(5), cy(15), cy(25), cy(40));
        assert_eq!(b.busy_until(), cy(40));
    }
}
