//! The composed many-segment delayed translator (Figure 5).

use crate::{HwSegmentTable, IndexCache, IndexTree, SegmentCache};
use hvc_obs::LatencyHistogram;
use hvc_os::SegmentTable;
use hvc_types::{Asid, Cycles, PhysAddr, VirtAddr};

/// Per-stage cost of one many-segment translation, so callers can
/// attribute cycles to the structure that spent them. The stages sum to
/// the latency [`ManySegmentTranslator::translate`] would have
/// returned.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentCost {
    /// Segment-cache probe (hit or the probe preceding a tree walk).
    pub segment_cache: Cycles,
    /// Index-cache probes, including memory fetches of missing nodes.
    pub index_cache: Cycles,
    /// Hardware segment-table read.
    pub segment_table: Cycles,
}

impl SegmentCost {
    /// Total translation latency.
    pub fn total(&self) -> Cycles {
        self.segment_cache + self.index_cache + self.segment_table
    }
}

/// Counters for the many-segment translation path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ManySegmentStats {
    /// Translations served by the segment cache.
    pub sc_hits: u64,
    /// Translations that traversed the index tree.
    pub tree_walks: u64,
    /// Index-tree node reads that missed the index cache (fetched from
    /// memory).
    pub node_fetches: u64,
    /// Addresses not covered by any segment (OS interrupt; cold miss or
    /// a synonym/TLB-managed page reaching the wrong path).
    pub uncovered: u64,
    /// Total cycles spent translating.
    pub cycles: Cycles,
    /// Distribution of per-translation latencies (uncovered probes
    /// included).
    pub translate_latency: LatencyHistogram,
}

/// The full delayed-translation pipeline: SC → index cache walk →
/// hardware segment table.
///
/// The index tree is rebuilt from the OS segment table with
/// [`ManySegmentTranslator::rebuild`] whenever segments change (the OS
/// batches this with its shootdowns; the cost is charged by the caller).
#[derive(Clone, Debug)]
pub struct ManySegmentTranslator {
    sc: SegmentCache,
    index_cache: IndexCache,
    index_tree: IndexTree,
    hw_table: HwSegmentTable,
    /// Where in physical memory the index tree lives.
    tree_base: PhysAddr,
    stats: ManySegmentStats,
    scratch: Vec<PhysAddr>,
}

impl ManySegmentTranslator {
    /// Builds the paper's configuration (128-entry SC, 32 KB index cache,
    /// 2048-entry segment table) over the current OS segment table.
    pub fn isca2016(table: &SegmentTable) -> Self {
        Self::new(
            SegmentCache::isca2016(),
            IndexCache::isca2016(),
            HwSegmentTable::mirror(table, Cycles::new(7)),
            table,
            PhysAddr::new(1 << 40), // tree region outside simulated DRAM traffic
        )
    }

    /// Composes a translator from explicit components.
    pub fn new(
        sc: SegmentCache,
        index_cache: IndexCache,
        hw_table: HwSegmentTable,
        table: &SegmentTable,
        tree_base: PhysAddr,
    ) -> Self {
        ManySegmentTranslator {
            sc,
            index_cache,
            index_tree: IndexTree::build(table, tree_base),
            hw_table,
            tree_base,
            stats: ManySegmentStats::default(),
            scratch: Vec::with_capacity(8),
        }
    }

    /// Creates a variant without a segment cache (the paper evaluates
    /// many-segment translation with and without SC in Figure 9) by using
    /// a zero-capacity SC.
    pub fn isca2016_no_sc(table: &SegmentTable) -> Self {
        Self::new(
            SegmentCache::new(0, Cycles::new(0)),
            IndexCache::isca2016(),
            HwSegmentTable::mirror(table, Cycles::new(7)),
            table,
            PhysAddr::new(1 << 40),
        )
    }

    /// Rebuilds the index tree and hardware table after the OS changed
    /// the segment table (segment allocation/removal).
    pub fn rebuild(&mut self, table: &SegmentTable) {
        self.index_tree = IndexTree::build(table, self.tree_base);
        self.hw_table.sync(table);
        self.sc.flush();
        self.index_cache.flush();
    }

    /// Translates `(asid, va)` after an LLC miss. Returns the physical
    /// address and the translation latency, or `None` if no segment
    /// covers the address (OS interrupt — the caller handles the fill).
    ///
    /// `fetch` is invoked for index-tree nodes that miss the index cache
    /// and must return the memory access latency.
    pub fn translate(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        fetch: impl FnMut(PhysAddr) -> Cycles,
    ) -> Option<(PhysAddr, Cycles)> {
        self.translate_detailed(asid, va, fetch)
            .map(|(pa, cost)| (pa, cost.total()))
    }

    /// Like [`ManySegmentTranslator::translate`], but itemizes the
    /// latency per structure (segment cache, index cache, hardware
    /// segment table) so callers can attribute the cycles.
    pub fn translate_detailed(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        mut fetch: impl FnMut(PhysAddr) -> Cycles,
    ) -> Option<(PhysAddr, SegmentCost)> {
        let mut cost = SegmentCost {
            segment_cache: self.sc.latency(),
            ..SegmentCost::default()
        };
        if let Some(pa) = self.sc.translate(asid, va) {
            self.stats.sc_hits += 1;
            self.finish(cost);
            return Some((pa, cost));
        }

        // Traverse the index tree through the index cache.
        self.stats.tree_walks += 1;
        self.scratch.clear();
        let mut touched = std::mem::take(&mut self.scratch);
        let found = self.index_tree.lookup(asid, va, &mut touched);
        for &node in &touched {
            cost.index_cache += self.index_cache.latency();
            if !self.index_cache.access(node) {
                cost.index_cache += fetch(node);
                self.stats.node_fetches += 1;
            }
        }
        self.scratch = touched;

        let Some(id) = found else {
            self.stats.uncovered += 1;
            self.finish(cost);
            return None;
        };

        // Hardware segment table: base/limit check + offset add.
        cost.segment_table = self.hw_table.latency();
        let Some(pa) = self.hw_table.translate(id, asid, va) else {
            self.stats.uncovered += 1;
            self.finish(cost);
            return None;
        };
        if let Some(seg) = self.hw_table.get(id) {
            self.sc.fill(asid, va, seg);
        }
        self.finish(cost);
        Some((pa, cost))
    }

    fn finish(&mut self, cost: SegmentCost) {
        self.stats.cycles += cost.total();
        self.stats.translate_latency.record(cost.total());
    }

    /// Counters.
    pub fn stats(&self) -> &ManySegmentStats {
        &self.stats
    }

    /// Segment-cache counters `(hits, misses)`.
    pub fn sc_stats(&self) -> (u64, u64) {
        self.sc.stats()
    }

    /// Index-cache counters.
    pub fn index_cache_stats(&self) -> &crate::IndexCacheStats {
        self.index_cache.stats()
    }

    /// Index-tree depth (accesses per traversal).
    pub fn tree_depth(&self) -> usize {
        self.index_tree.depth()
    }

    /// Resets all counters (contents kept).
    pub fn reset_stats(&mut self) {
        self.stats = ManySegmentStats::default();
        self.sc.reset_stats();
        self.index_cache.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_os::{AllocPolicy, Kernel, MapIntent};
    use hvc_types::Permissions;

    fn eager_kernel_with_map() -> (Kernel, Asid) {
        let mut k = Kernel::new(1 << 30, AllocPolicy::EagerSegments { split: 1 });
        let a = k.create_process().unwrap();
        k.mmap(
            a,
            VirtAddr::new(0x100000),
            1 << 20,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        (k, a)
    }

    #[test]
    fn translation_matches_page_table() {
        let (k, a) = eager_kernel_with_map();
        let mut tr = ManySegmentTranslator::isca2016(k.segments());
        for off in [0u64, 0x1000, 0xfffff] {
            let va = VirtAddr::new(0x100000 + off);
            let (pa, _) = tr.translate(a, va, |_| Cycles::new(160)).unwrap();
            let pte = k.walk(a, va.page_number()).unwrap().0;
            assert_eq!(pa.frame_number(), pte.frame, "offset {off:#x}");
            assert_eq!(pa.page_offset(), va.page_offset());
        }
    }

    #[test]
    fn sc_hit_is_fast_and_counted() {
        let (k, a) = eager_kernel_with_map();
        let mut tr = ManySegmentTranslator::isca2016(k.segments());
        let va = VirtAddr::new(0x100040);
        let (_, first) = tr.translate(a, va, |_| Cycles::new(160)).unwrap();
        let (_, second) = tr.translate(a, va, |_| Cycles::new(160)).unwrap();
        assert!(second < first, "SC hit {second:?} vs full path {first:?}");
        assert_eq!(tr.stats().sc_hits, 1);
        assert_eq!(tr.stats().tree_walks, 1);
        assert_eq!(second, Cycles::new(2));
    }

    #[test]
    fn no_sc_variant_always_walks_the_tree() {
        let (k, a) = eager_kernel_with_map();
        let mut tr = ManySegmentTranslator::isca2016_no_sc(k.segments());
        let va = VirtAddr::new(0x100040);
        tr.translate(a, va, |_| Cycles::new(160)).unwrap();
        tr.translate(a, va, |_| Cycles::new(160)).unwrap();
        assert_eq!(tr.stats().sc_hits, 0);
        assert_eq!(tr.stats().tree_walks, 2);
    }

    #[test]
    fn warm_index_cache_eliminates_fetches() {
        let (k, a) = eager_kernel_with_map();
        let mut tr = ManySegmentTranslator::isca2016_no_sc(k.segments());
        let va = VirtAddr::new(0x100040);
        tr.translate(a, va, |_| Cycles::new(160)).unwrap();
        let before = tr.stats().node_fetches;
        tr.translate(a, va, |_| Cycles::new(160)).unwrap();
        assert_eq!(tr.stats().node_fetches, before, "no new fetches when warm");
    }

    #[test]
    fn uncovered_address_returns_none() {
        let (k, a) = eager_kernel_with_map();
        let mut tr = ManySegmentTranslator::isca2016(k.segments());
        assert!(tr
            .translate(a, VirtAddr::new(0x9999_0000), |_| Cycles::new(160))
            .is_none());
        assert_eq!(tr.stats().uncovered, 1);
    }

    #[test]
    fn rebuild_tracks_new_segments() {
        let (mut k, a) = eager_kernel_with_map();
        let mut tr = ManySegmentTranslator::isca2016(k.segments());
        k.mmap(
            a,
            VirtAddr::new(0x4000_0000),
            0x2000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        assert!(tr
            .translate(a, VirtAddr::new(0x4000_0000), |_| Cycles::new(160))
            .is_none());
        tr.rebuild(k.segments());
        assert!(tr
            .translate(a, VirtAddr::new(0x4000_0000), |_| Cycles::new(160))
            .is_some());
    }

    #[test]
    fn worst_case_latency_is_about_20_cycles_when_cached() {
        // Paper Section IV-D: ≤ 4 index-cache reads (3 cy each) + segment
        // table (7 cy) ≈ 19-20 cycles when the index cache hits.
        let (k, a) = eager_kernel_with_map();
        let mut tr = ManySegmentTranslator::isca2016_no_sc(k.segments());
        let va = VirtAddr::new(0x100040);
        tr.translate(a, va, |_| Cycles::new(160)).unwrap();
        let (_, lat) = tr.translate(a, va, |_| Cycles::new(160)).unwrap();
        assert!(lat.get() <= 20, "warm latency {lat:?}");
    }
}
