//! The in-memory B-tree over segment base addresses ("index tree").
//!
//! The OS keeps all segments sorted by `ASID ++ base VA` and bulk-builds a
//! B+-tree whose nodes are 64-byte cache blocks: six keys and seven
//! values per node, where leaf values are segment ids (Figure 6). The
//! tree is stored in (simulated) physical memory so the hardware's
//! [`crate::IndexCache`] can cache its nodes by physical address.

use hvc_os::{Segment, SegmentId, SegmentTable};
use hvc_types::{Asid, PhysAddr, VirtAddr, LINE_SIZE};

/// Keys per 64-byte node (six keys + seven values, per the paper).
pub(crate) const KEYS_PER_NODE: usize = 6;
/// Fanout of the tree.
pub(crate) const FANOUT: usize = KEYS_PER_NODE + 1;

/// Composite search key: `ASID ++ VA`.
fn key_of(asid: Asid, va: VirtAddr) -> u128 {
    ((asid.as_u16() as u128) << 64) | va.as_u64() as u128
}

#[derive(Clone, Debug)]
struct Node {
    /// Separator keys (ascending).
    keys: Vec<u128>,
    /// Children node indices (internal) — `keys.len() + 1` of them.
    children: Vec<usize>,
    /// Leaf payload: `(key, segment id)` pairs, ascending.
    entries: Vec<(u128, SegmentId)>,
    leaf: bool,
}

/// An immutable bulk-built B+-tree mapping `(ASID, VA)` to the id of the
/// segment whose base is the greatest one ≤ the probe (predecessor
/// search). The caller validates the limit against the segment table.
#[derive(Clone, Debug)]
pub struct IndexTree {
    nodes: Vec<Node>,
    root: usize,
    depth: usize,
    base: PhysAddr,
}

impl IndexTree {
    /// Builds a tree over the current contents of `table`, placing its
    /// nodes in physical memory starting at `base` (64 B per node).
    pub fn build(table: &SegmentTable, base: PhysAddr) -> Self {
        let entries: Vec<(u128, SegmentId)> = table
            .iter()
            .map(|s: &Segment| (key_of(s.asid, s.base), s.id))
            .collect();
        Self::build_from_entries(entries, base)
    }

    fn build_from_entries(entries: Vec<(u128, SegmentId)>, base: PhysAddr) -> Self {
        let mut nodes = Vec::new();
        // Build the leaf level; each level entry carries its subtree
        // minimum key for separator construction one level up.
        let mut level: Vec<(usize, u128)> = Vec::new();
        if entries.is_empty() {
            nodes.push(Node {
                keys: vec![],
                children: vec![],
                entries: vec![],
                leaf: true,
            });
            level.push((0, 0));
        } else {
            for chunk in entries.chunks(KEYS_PER_NODE) {
                let idx = nodes.len();
                let min = chunk[0].0;
                nodes.push(Node {
                    keys: vec![],
                    children: vec![],
                    entries: chunk.to_vec(),
                    leaf: true,
                });
                level.push((idx, min));
            }
        }
        let mut depth = 1;
        // Build internal levels until a single root remains.
        while level.len() > 1 {
            let mut next: Vec<(usize, u128)> = Vec::new();
            for group in level.chunks(FANOUT) {
                let keys: Vec<u128> = group[1..].iter().map(|&(_, min)| min).collect();
                let children: Vec<usize> = group.iter().map(|&(idx, _)| idx).collect();
                let idx = nodes.len();
                let min = group[0].1;
                nodes.push(Node {
                    keys,
                    children,
                    entries: vec![],
                    leaf: false,
                });
                next.push((idx, min));
            }
            level = next;
            depth += 1;
        }
        IndexTree {
            root: level[0].0,
            nodes,
            depth,
            base,
        }
    }

    /// Tree depth (levels from root to leaf, inclusive) — each level is
    /// one index-cache access on a traversal.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of 64-byte nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Physical address of node `idx` (cache-block aligned).
    fn node_addr(&self, idx: usize) -> PhysAddr {
        PhysAddr::new(self.base.as_u64() + (idx as u64) * LINE_SIZE)
    }

    /// Predecessor search: returns the segment id of the greatest base
    /// ≤ `(asid, va)` (if any), and appends the physical address of every
    /// node touched to `touched` (root first).
    pub fn lookup(
        &self,
        asid: Asid,
        va: VirtAddr,
        touched: &mut Vec<PhysAddr>,
    ) -> Option<SegmentId> {
        let probe = key_of(asid, va);
        let mut idx = self.root;
        loop {
            let node = &self.nodes[idx];
            touched.push(self.node_addr(idx));
            if node.leaf {
                return node
                    .entries
                    .iter()
                    .rev()
                    .find(|(k, _)| *k <= probe)
                    .map(|&(_, id)| id);
            }
            // Leftmost child whose subtree may contain the predecessor:
            // descend into the rightmost child whose separator ≤ probe.
            let mut child = 0;
            for (i, &k) in node.keys.iter().enumerate() {
                if probe >= k {
                    child = i + 1;
                } else {
                    break;
                }
            }
            idx = node.children[child];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_types::PhysFrame;

    fn table_with(n: u64) -> SegmentTable {
        let mut t = SegmentTable::new(4096);
        for i in 0..n {
            t.insert(
                Asid::new(1),
                VirtAddr::new(0x10_0000 * (i + 1)),
                0x8000,
                PhysFrame::new(256 * i).base(),
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn empty_tree_finds_nothing() {
        let t = IndexTree::build(&SegmentTable::new(16), PhysAddr::new(0));
        let mut touched = Vec::new();
        assert_eq!(
            t.lookup(Asid::new(1), VirtAddr::new(0x1000), &mut touched),
            None
        );
        assert_eq!(touched.len(), 1, "root touched");
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn finds_covering_segment() {
        let table = table_with(10);
        let tree = IndexTree::build(&table, PhysAddr::new(0x100000));
        let mut touched = Vec::new();
        let id = tree
            .lookup(Asid::new(1), VirtAddr::new(0x30_1234), &mut touched)
            .expect("predecessor exists");
        let seg = table.get(id).unwrap();
        assert!(seg.contains(Asid::new(1), VirtAddr::new(0x30_1234)));
    }

    #[test]
    fn predecessor_is_returned_even_outside_segment() {
        // The tree performs a pure predecessor search; limit checking is
        // the segment table's job.
        let table = table_with(2);
        let tree = IndexTree::build(&table, PhysAddr::new(0));
        let mut touched = Vec::new();
        let id = tree
            .lookup(Asid::new(1), VirtAddr::new(0x10_9999), &mut touched)
            .unwrap();
        let seg = table.get(id).unwrap();
        assert_eq!(seg.base, VirtAddr::new(0x10_0000));
        assert!(!seg.contains(Asid::new(1), VirtAddr::new(0x10_9999)));
    }

    #[test]
    fn probe_below_all_keys_finds_nothing() {
        let table = table_with(5);
        let tree = IndexTree::build(&table, PhysAddr::new(0));
        let mut touched = Vec::new();
        assert_eq!(
            tree.lookup(Asid::new(1), VirtAddr::new(0x1000), &mut touched),
            None
        );
    }

    #[test]
    fn asid_ordering_is_respected() {
        let mut table = SegmentTable::new(64);
        table
            .insert(
                Asid::new(2),
                VirtAddr::new(0x1000),
                0x1000,
                PhysAddr::new(0),
            )
            .unwrap();
        let tree = IndexTree::build(&table, PhysAddr::new(0));
        let mut touched = Vec::new();
        // ASID 1 probes must not find ASID 2's segment even at higher VA.
        assert_eq!(
            tree.lookup(Asid::new(1), VirtAddr::new(0xffff_0000), &mut touched),
            None
        );
        assert!(tree
            .lookup(Asid::new(2), VirtAddr::new(0x1500), &mut touched)
            .is_some());
    }

    #[test]
    fn depth_four_covers_2048_segments() {
        // 6 keys/leaf, fanout 7: depth 4 holds ≥ 6·7³ = 2058 entries.
        let table = table_with(2048);
        let tree = IndexTree::build(&table, PhysAddr::new(0));
        assert!(tree.depth() <= 4, "depth {} too deep", tree.depth());
        let mut touched = Vec::new();
        tree.lookup(Asid::new(1), VirtAddr::new(0x10_0000), &mut touched);
        assert_eq!(touched.len(), tree.depth());
    }

    #[test]
    fn every_segment_is_reachable() {
        let table = table_with(300);
        let tree = IndexTree::build(&table, PhysAddr::new(0));
        for seg in table.iter() {
            let mut touched = Vec::new();
            let id = tree
                .lookup(seg.asid, seg.base + 0x10, &mut touched)
                .expect("segment reachable");
            assert_eq!(id, seg.id);
        }
    }

    #[test]
    fn node_addresses_are_line_aligned_and_distinct() {
        let table = table_with(100);
        let tree = IndexTree::build(&table, PhysAddr::new(0x40));
        let mut touched = Vec::new();
        tree.lookup(Asid::new(1), VirtAddr::new(0x50_0000), &mut touched);
        for w in touched.windows(2) {
            assert_ne!(w[0], w[1]);
        }
        for a in &touched {
            assert_eq!((a.as_u64() - 0x40) % 64, 0);
        }
    }
}
