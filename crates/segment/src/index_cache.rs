//! The hardware index cache: a small physically-addressed cache of
//! index-tree nodes.

use hvc_types::{Cycles, PhysAddr, LINE_SHIFT};

/// Hit/miss counters for the index cache.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IndexCacheStats {
    /// Node reads served from the cache.
    pub hits: u64,
    /// Node reads that went to memory.
    pub misses: u64,
}

impl IndexCacheStats {
    /// Total node reads.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; `None` with no accesses.
    pub fn hit_rate(&self) -> Option<f64> {
        let n = self.accesses();
        (n > 0).then(|| self.hits as f64 / n as f64)
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    lru: u64,
}

/// An 8-way set-associative cache of 64-byte index-tree nodes, addressed
/// by physical address (the paper's Figure 7 sweeps its size from 128 B
/// to 64 KB; 32 KB has a 3-cycle latency by CACTI).
#[derive(Clone, Debug)]
pub struct IndexCache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    latency: Cycles,
    tick: u64,
    stats: IndexCacheStats,
}

impl IndexCache {
    /// Creates an index cache of `size_bytes` capacity (8-way, 64 B
    /// blocks; direct-mapped-ish degenerate geometries allowed for the
    /// tiny sizes of the sensitivity sweep).
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is smaller than one block or not a power of
    /// two.
    pub fn new(size_bytes: u64, latency: Cycles) -> Self {
        assert!(
            size_bytes >= 64 && size_bytes.is_power_of_two(),
            "index cache size must be a power of two ≥ 64"
        );
        let lines = (size_bytes >> LINE_SHIFT) as usize;
        let ways = lines.min(8);
        let sets = (lines / ways).max(1);
        IndexCache {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            latency,
            tick: 0,
            stats: IndexCacheStats::default(),
        }
    }

    /// The paper's chosen configuration: 32 KB, 8-way, 3 cycles.
    pub fn isca2016() -> Self {
        IndexCache::new(32 * 1024, Cycles::new(3))
    }

    /// Lookup latency per node access.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Accesses the node at `addr`; returns `true` on a hit and fills the
    /// line on a miss.
    pub fn access(&mut self, addr: PhysAddr) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let block = addr.as_u64() >> LINE_SHIFT;
        let idx = (block as usize) & (self.sets.len() - 1);
        let set = &mut self.sets[idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == block) {
            line.lru = tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if set.len() == self.ways {
            let (slot, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("non-empty");
            set.swap_remove(slot);
        }
        set.push(Line {
            tag: block,
            lru: tick,
        });
        false
    }

    /// Invalidates everything (index-tree rebuild).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Counters.
    pub fn stats(&self) -> &IndexCacheStats {
        &self.stats
    }

    /// Resets counters (contents kept).
    pub fn reset_stats(&mut self) {
        self.stats = IndexCacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = IndexCache::new(1024, Cycles::new(3));
        let a = PhysAddr::new(0x1000);
        assert!(!c.access(a));
        assert!(c.access(a));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hit_rate(), Some(0.5));
    }

    #[test]
    fn tiny_cache_is_legal() {
        let mut c = IndexCache::new(128, Cycles::new(1));
        assert!(!c.access(PhysAddr::new(0)));
        assert!(!c.access(PhysAddr::new(64)));
        assert!(c.access(PhysAddr::new(0)));
        // Third distinct block evicts LRU (2 lines total).
        assert!(!c.access(PhysAddr::new(128)));
        assert!(!c.access(PhysAddr::new(64)), "LRU victim was block 64");
    }

    #[test]
    fn flush_clears() {
        let mut c = IndexCache::isca2016();
        c.access(PhysAddr::new(0));
        c.flush();
        assert!(!c.access(PhysAddr::new(0)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        let _ = IndexCache::new(100, Cycles::new(1));
    }

    #[test]
    fn capacity_bounds_are_respected() {
        // 512 B = 8 lines = 1 set of 8 ways: 8 blocks fit, a 9th evicts.
        let mut c = IndexCache::new(512, Cycles::new(1));
        for i in 0..8u64 {
            c.access(PhysAddr::new(i * 64));
        }
        c.reset_stats();
        for i in 0..8u64 {
            assert!(c.access(PhysAddr::new(i * 64)));
        }
        c.access(PhysAddr::new(8 * 64));
        assert_eq!(c.stats().misses, 1);
    }
}
