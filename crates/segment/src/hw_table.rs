//! The hardware segment table mirroring the OS's in-memory table.

use hvc_os::{Segment, SegmentId, SegmentTable};
use hvc_types::{Cycles, VirtAddr};

/// The on-chip segment table: a 2048-entry SRAM array indexed by segment
/// id, mirroring the OS table 1:1 ("segment misses occur only for cold
/// misses, as the size of HW table is equal to the in-memory segment
/// table size"). CACTI puts its access at seven cycles.
#[derive(Clone, Debug)]
pub struct HwSegmentTable {
    entries: Vec<Option<Segment>>,
    latency: Cycles,
    /// OS fills triggered by cold misses.
    pub fills: u64,
}

impl HwSegmentTable {
    /// Creates an empty hardware table of `capacity` entries.
    pub fn new(capacity: usize, latency: Cycles) -> Self {
        HwSegmentTable {
            entries: vec![None; capacity],
            latency,
            fills: 0,
        }
    }

    /// The paper's configuration: 2048 entries, 7 cycles.
    pub fn isca2016() -> Self {
        HwSegmentTable::new(2048, Cycles::new(7))
    }

    /// Creates a hardware table pre-populated from the OS table.
    pub fn mirror(table: &SegmentTable, latency: Cycles) -> Self {
        let mut hw = HwSegmentTable::new(table.capacity(), latency);
        hw.sync(table);
        hw
    }

    /// Access latency.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Re-mirrors the OS table (shootdown-style bulk update).
    pub fn sync(&mut self, table: &SegmentTable) {
        for e in &mut self.entries {
            *e = None;
        }
        for seg in table.iter() {
            self.entries[seg.id.0 as usize] = Some(*seg);
        }
    }

    /// Looks up segment `id`; a `None` is a cold miss the OS must fill
    /// (counted, then the caller may [`HwSegmentTable::fill`]).
    pub fn get(&self, id: SegmentId) -> Option<&Segment> {
        self.entries.get(id.0 as usize)?.as_ref()
    }

    /// Fills one entry from the OS (cold-miss service).
    pub fn fill(&mut self, seg: Segment) {
        self.fills += 1;
        self.entries[seg.id.0 as usize] = Some(seg);
    }

    /// Base/limit check + offset add: translates `va` if segment `id`
    /// covers it.
    pub fn translate(
        &self,
        id: SegmentId,
        asid: hvc_types::Asid,
        va: VirtAddr,
    ) -> Option<hvc_types::PhysAddr> {
        let seg = self.get(id)?;
        seg.contains(asid, va).then(|| seg.translate(va))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_types::{Asid, PhysAddr};

    fn os_table() -> SegmentTable {
        let mut t = SegmentTable::new(16);
        t.insert(
            Asid::new(1),
            VirtAddr::new(0x10000),
            0x4000,
            PhysAddr::new(0x800000),
        )
        .unwrap();
        t
    }

    #[test]
    fn mirror_and_translate() {
        let os = os_table();
        let hw = HwSegmentTable::mirror(&os, Cycles::new(7));
        let id = os.iter().next().unwrap().id;
        assert_eq!(
            hw.translate(id, Asid::new(1), VirtAddr::new(0x11000)),
            Some(PhysAddr::new(0x801000))
        );
        // Out of bounds or wrong ASID: no translation.
        assert_eq!(hw.translate(id, Asid::new(1), VirtAddr::new(0x14000)), None);
        assert_eq!(hw.translate(id, Asid::new(2), VirtAddr::new(0x11000)), None);
    }

    #[test]
    fn cold_miss_then_fill() {
        let os = os_table();
        let seg = *os.iter().next().unwrap();
        let mut hw = HwSegmentTable::new(16, Cycles::new(7));
        assert!(hw.get(seg.id).is_none());
        hw.fill(seg);
        assert_eq!(hw.fills, 1);
        assert!(hw.get(seg.id).is_some());
    }

    #[test]
    fn sync_replaces_contents() {
        let mut os = os_table();
        let mut hw = HwSegmentTable::mirror(&os, Cycles::new(7));
        let id = os.iter().next().unwrap().id;
        os.remove(id);
        hw.sync(&os);
        assert!(hw.get(id).is_none());
    }
}
