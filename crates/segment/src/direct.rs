//! Direct-segment baseline: one `(base, limit, offset)` register set per
//! process, falling back to paging outside the segment.

use hvc_os::Segment;
use hvc_types::{Asid, PhysAddr, VirtAddr};

/// A single direct segment per address space (Basu et al., the design RMM
/// and the paper's many-segment translation generalize).
#[derive(Clone, Debug, Default)]
pub struct DirectSegment {
    seg: Option<Segment>,
    /// Translations served by the segment.
    pub segment_hits: u64,
    /// Translations that fell back to paging.
    pub paging_fallbacks: u64,
}

impl DirectSegment {
    /// Creates an empty direct-segment register set.
    pub fn new() -> Self {
        DirectSegment::default()
    }

    /// Loads the segment registers (context switch / OS setup).
    pub fn load(&mut self, seg: Segment) {
        self.seg = Some(seg);
    }

    /// Clears the registers.
    pub fn clear(&mut self) {
        self.seg = None;
    }

    /// Translates `va` through the segment; `None` means the access must
    /// take the conventional paging path.
    pub fn translate(&mut self, asid: Asid, va: VirtAddr) -> Option<PhysAddr> {
        match &self.seg {
            Some(s) if s.contains(asid, va) => {
                self.segment_hits += 1;
                Some(s.translate(va))
            }
            _ => {
                self.paging_fallbacks += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_os::SegmentId;

    fn seg() -> Segment {
        Segment {
            id: SegmentId(0),
            asid: Asid::new(1),
            base: VirtAddr::new(0x10_0000),
            len: 0x10_0000,
            phys_base: PhysAddr::new(0x800_0000),
        }
    }

    #[test]
    fn inside_segment_translates() {
        let mut d = DirectSegment::new();
        d.load(seg());
        assert_eq!(
            d.translate(Asid::new(1), VirtAddr::new(0x10_0040)),
            Some(PhysAddr::new(0x800_0040))
        );
        assert_eq!(d.segment_hits, 1);
    }

    #[test]
    fn outside_falls_back_to_paging() {
        let mut d = DirectSegment::new();
        d.load(seg());
        assert_eq!(d.translate(Asid::new(1), VirtAddr::new(0x40_0000)), None);
        assert_eq!(d.translate(Asid::new(2), VirtAddr::new(0x10_0040)), None);
        assert_eq!(d.paging_fallbacks, 2);
    }

    #[test]
    fn empty_registers_always_fall_back() {
        let mut d = DirectSegment::new();
        assert_eq!(d.translate(Asid::new(1), VirtAddr::new(0)), None);
        d.load(seg());
        d.clear();
        assert_eq!(d.translate(Asid::new(1), VirtAddr::new(0x10_0040)), None);
    }
}
