//! Scalable delayed translation with many variable-length segments
//! (the paper's Section IV).
//!
//! After an LLC miss, a non-synonym `ASID ++ VA` address is translated by:
//!
//! 1. the [`SegmentCache`] — a small 128-entry, 2 MB-granularity TLB-like
//!    structure caching recent segment translations,
//! 2. on a miss, a traversal of the in-memory B-tree [`IndexTree`]
//!    (sorted by `ASID ++ VA`) through the physically-addressed
//!    [`IndexCache`] (8-way, 64 B blocks), yielding a segment id,
//! 3. a lookup of the 2048-entry hardware [`HwSegmentTable`] and a
//!    base/limit check + offset add.
//!
//! [`ManySegmentTranslator`] composes the three. [`Rmm`] provides the
//! 32-segment, core-side Redundant-Memory-Mapping baseline the paper
//! compares against in Table III, and [`DirectSegment`] the single-segment
//! design.
//!
//! # Examples
//!
//! ```
//! use hvc_os::{AllocPolicy, Kernel, MapIntent};
//! use hvc_segment::ManySegmentTranslator;
//! use hvc_types::{Cycles, Permissions, VirtAddr};
//!
//! # fn main() -> Result<(), hvc_types::HvcError> {
//! let mut kernel = Kernel::new(1 << 30, AllocPolicy::EagerSegments { split: 1 });
//! let asid = kernel.create_process()?;
//! kernel.mmap(asid, VirtAddr::new(0x100000), 1 << 20, Permissions::RW, MapIntent::Private)?;
//!
//! let mut tr = ManySegmentTranslator::isca2016(kernel.segments());
//! let (pa, _lat) = tr
//!     .translate(asid, VirtAddr::new(0x100040), |_addr| Cycles::new(160))
//!     .expect("covered by a segment");
//! let pte = kernel.walk(asid, VirtAddr::new(0x100040).page_number()).unwrap().0;
//! assert_eq!(pa.frame_number(), pte.frame);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod direct;
mod hw_table;
mod index_cache;
mod index_tree;
mod many;
mod rmm;
mod segment_cache;

pub use direct::DirectSegment;
pub use hw_table::HwSegmentTable;
pub use index_cache::{IndexCache, IndexCacheStats};
pub use index_tree::IndexTree;
pub use many::{ManySegmentStats, ManySegmentTranslator, SegmentCost};
pub use rmm::{Rmm, RmmStats};
pub use segment_cache::SegmentCache;
