//! The segment cache (SC): a small fixed-granularity cache of recent
//! segment translations.

use hvc_os::Segment;
use hvc_types::{Asid, Cycles, PhysAddr, VirtAddr};

/// Granularity shift of SC entries (2 MB regions).
const SC_SHIFT: u32 = 21;

#[derive(Clone, Copy, Debug)]
struct Entry {
    asid: Asid,
    region: u64,
    /// Cached segment bounds + offset (a region may be partially covered
    /// by a segment; bounds are validated on every hit).
    seg_base: u64,
    seg_len: u64,
    offset_delta: i128,
    lru: u64,
}

/// A 128-entry TLB-like structure holding 2 MB-granularity segment
/// translations, hiding the index-tree traversal for hot regions
/// (Section IV-C, "Segment Cache").
#[derive(Clone, Debug)]
pub struct SegmentCache {
    entries: Vec<Entry>,
    capacity: usize,
    latency: Cycles,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SegmentCache {
    /// Creates an SC with `capacity` entries.
    pub fn new(capacity: usize, latency: Cycles) -> Self {
        SegmentCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            latency,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The paper's configuration: 128 entries (we model 2-cycle access).
    pub fn isca2016() -> Self {
        SegmentCache::new(128, Cycles::new(2))
    }

    /// Access latency.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Attempts to translate `va`; `None` on a miss (or when the cached
    /// segment does not cover `va`, which falls back to the full path).
    pub fn translate(&mut self, asid: Asid, va: VirtAddr) -> Option<PhysAddr> {
        self.tick += 1;
        let tick = self.tick;
        let region = va.as_u64() >> SC_SHIFT;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.asid == asid && e.region == region)
        {
            if va.as_u64() >= e.seg_base && va.as_u64() - e.seg_base < e.seg_len {
                e.lru = tick;
                self.hits += 1;
                let pa = (va.as_u64() as i128 + e.offset_delta) as u64;
                return Some(PhysAddr::new(pa));
            }
        }
        self.misses += 1;
        None
    }

    /// Fills the entry for `va`'s region from a resolved segment. A
    /// zero-capacity SC (the "without SC" configuration) ignores fills.
    pub fn fill(&mut self, asid: Asid, va: VirtAddr, seg: &Segment) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let region = va.as_u64() >> SC_SHIFT;
        let delta = seg.phys_base.as_u64() as i128 - seg.base.as_u64() as i128;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.asid == asid && e.region == region)
        {
            e.seg_base = seg.base.as_u64();
            e.seg_len = seg.len;
            e.offset_delta = delta;
            e.lru = tick;
            return;
        }
        if self.entries.len() == self.capacity {
            let (slot, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .expect("non-empty");
            self.entries.swap_remove(slot);
        }
        self.entries.push(Entry {
            asid,
            region,
            seg_base: seg.base.as_u64(),
            seg_len: seg.len,
            offset_delta: delta,
            lru: tick,
        });
    }

    /// Invalidates everything (segment-table change).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Resets counters.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvc_os::SegmentId;

    fn seg(base: u64, len: u64, phys: u64) -> Segment {
        Segment {
            id: SegmentId(0),
            asid: Asid::new(1),
            base: VirtAddr::new(base),
            len,
            phys_base: PhysAddr::new(phys),
        }
    }

    #[test]
    fn fill_then_hit() {
        let mut sc = SegmentCache::new(4, Cycles::new(2));
        let s = seg(0x20_0000, 0x40_0000, 0x80_0000);
        assert_eq!(sc.translate(Asid::new(1), VirtAddr::new(0x20_0040)), None);
        sc.fill(Asid::new(1), VirtAddr::new(0x20_0040), &s);
        assert_eq!(
            sc.translate(Asid::new(1), VirtAddr::new(0x20_0080)),
            Some(PhysAddr::new(0x80_0080))
        );
        assert_eq!(sc.stats(), (1, 1));
    }

    #[test]
    fn partial_region_coverage_is_bounds_checked() {
        let mut sc = SegmentCache::new(4, Cycles::new(2));
        // Segment covers only the first 4 KB of its 2 MB region.
        let s = seg(0x20_0000, 0x1000, 0x80_0000);
        sc.fill(Asid::new(1), VirtAddr::new(0x20_0000), &s);
        assert!(sc
            .translate(Asid::new(1), VirtAddr::new(0x20_0fff))
            .is_some());
        assert_eq!(
            sc.translate(Asid::new(1), VirtAddr::new(0x20_1000)),
            None,
            "beyond the segment limit inside the same region"
        );
    }

    #[test]
    fn different_asids_do_not_hit() {
        let mut sc = SegmentCache::new(4, Cycles::new(2));
        let s = seg(0, 0x1000, 0x5000);
        sc.fill(Asid::new(1), VirtAddr::new(0), &s);
        assert_eq!(sc.translate(Asid::new(2), VirtAddr::new(0)), None);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut sc = SegmentCache::new(2, Cycles::new(2));
        for i in 0..3u64 {
            let s = seg(i << SC_SHIFT, 1 << SC_SHIFT, i << 32);
            sc.fill(Asid::new(1), VirtAddr::new(i << SC_SHIFT), &s);
        }
        assert_eq!(
            sc.translate(Asid::new(1), VirtAddr::new(0)),
            None,
            "evicted"
        );
        assert!(sc
            .translate(Asid::new(1), VirtAddr::new(2 << SC_SHIFT))
            .is_some());
    }

    #[test]
    fn flush_invalidates() {
        let mut sc = SegmentCache::isca2016();
        let s = seg(0, 0x1000, 0x5000);
        sc.fill(Asid::new(1), VirtAddr::new(0), &s);
        sc.flush();
        assert_eq!(sc.translate(Asid::new(1), VirtAddr::new(0)), None);
    }
}
