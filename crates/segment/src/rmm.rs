//! Redundant Memory Mappings (RMM) baseline: a small, core-side,
//! fully-associative set of segment registers on the critical
//! core-to-L1 path.
//!
//! The paper reproduces RMM's published segment counts (Table III) and
//! shows that with only 32 segments, segment-heavy workloads thrash. We
//! model the 32-entry range TLB with its 7-cycle (L2-TLB-equivalent)
//! latency and count misses per kilo-instruction.

use hvc_os::{Segment, SegmentTable};
use hvc_types::{Asid, Cycles, PhysAddr, VirtAddr};

/// RMM counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RmmStats {
    /// Range-TLB hits.
    pub hits: u64,
    /// Range-TLB misses (segment walk + fill).
    pub misses: u64,
}

impl RmmStats {
    /// Misses per 1000 lookups scaled by an instruction count — the MPKI
    /// metric of Table III when `instructions` covers the trace.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.misses as f64 * 1000.0 / instructions as f64
    }
}

#[derive(Clone, Copy, Debug)]
struct RangeEntry {
    seg: Segment,
    lru: u64,
}

/// The RMM range TLB: `capacity` fully-associative variable-length
/// segment registers (32 in the paper, operating at seven cycles).
#[derive(Clone, Debug)]
pub struct Rmm {
    entries: Vec<RangeEntry>,
    capacity: usize,
    latency: Cycles,
    tick: u64,
    stats: RmmStats,
}

impl Rmm {
    /// Creates an RMM range TLB with `capacity` entries.
    pub fn new(capacity: usize, latency: Cycles) -> Self {
        Rmm {
            entries: Vec::with_capacity(capacity),
            capacity,
            latency,
            tick: 0,
            stats: RmmStats::default(),
        }
    }

    /// The published configuration: 32 segments at 7 cycles.
    pub fn rmm32() -> Self {
        Rmm::new(32, Cycles::new(7))
    }

    /// Lookup latency.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Attempts to translate `va`; on a miss the caller must walk the OS
    /// segment table ([`Rmm::fill_from`]) — misses are counted here.
    pub fn translate(&mut self, asid: Asid, va: VirtAddr) -> Option<PhysAddr> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.iter_mut().find(|e| e.seg.contains(asid, va)) {
            e.lru = tick;
            self.stats.hits += 1;
            return Some(e.seg.translate(va));
        }
        self.stats.misses += 1;
        None
    }

    /// Services a miss by walking the OS table; returns the translation
    /// if a segment covers the address, filling the range TLB.
    pub fn fill_from(
        &mut self,
        table: &SegmentTable,
        asid: Asid,
        va: VirtAddr,
    ) -> Option<PhysAddr> {
        let seg = *table.find(asid, va)?;
        self.tick += 1;
        let tick = self.tick;
        if self.entries.len() == self.capacity && self.capacity > 0 {
            let (slot, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .expect("non-empty");
            self.entries.swap_remove(slot);
        }
        if self.capacity > 0 {
            self.entries.push(RangeEntry { seg, lru: tick });
        }
        Some(seg.translate(va))
    }

    /// Invalidates everything (context switch in the strictest model;
    /// entries are ASID-checked so this is optional).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Counters.
    pub fn stats(&self) -> &RmmStats {
        &self.stats
    }

    /// Resets counters.
    pub fn reset_stats(&mut self) {
        self.stats = RmmStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: u64) -> SegmentTable {
        let mut t = SegmentTable::new(4096);
        for i in 0..n {
            t.insert(
                Asid::new(1),
                VirtAddr::new(0x100_0000 * (i + 1)),
                0x1000,
                PhysAddr::new(0x8000_0000 + i * 0x1000),
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn miss_fill_hit() {
        let t = table(1);
        let mut r = Rmm::rmm32();
        let va = VirtAddr::new(0x100_0040);
        assert_eq!(r.translate(Asid::new(1), va), None);
        let pa = r.fill_from(&t, Asid::new(1), va).unwrap();
        assert_eq!(pa, PhysAddr::new(0x8000_0040));
        assert_eq!(r.translate(Asid::new(1), va), Some(pa));
        assert_eq!(r.stats().hits, 1);
        assert_eq!(r.stats().misses, 1);
    }

    #[test]
    fn thrashing_beyond_32_segments() {
        let t = table(64);
        let mut r = Rmm::rmm32();
        // Round-robin over 64 segments: every access misses after warmup.
        for round in 0..2 {
            for i in 0..64u64 {
                let va = VirtAddr::new(0x100_0000 * (i + 1) + 0x40);
                if r.translate(Asid::new(1), va).is_none() {
                    r.fill_from(&t, Asid::new(1), va).unwrap();
                }
            }
            let _ = round;
        }
        assert_eq!(
            r.stats().hits,
            0,
            "LRU round-robin over 2× capacity never hits"
        );
    }

    #[test]
    fn within_32_segments_no_thrash() {
        let t = table(16);
        let mut r = Rmm::rmm32();
        for _ in 0..3 {
            for i in 0..16u64 {
                let va = VirtAddr::new(0x100_0000 * (i + 1) + 0x40);
                if r.translate(Asid::new(1), va).is_none() {
                    r.fill_from(&t, Asid::new(1), va).unwrap();
                }
            }
        }
        assert_eq!(r.stats().misses, 16, "only cold misses");
    }

    #[test]
    fn mpki_accounting() {
        let s = RmmStats { hits: 0, misses: 5 };
        assert!((s.mpki(1000) - 5.0).abs() < 1e-12);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn uncovered_address_stays_none() {
        let t = table(1);
        let mut r = Rmm::rmm32();
        assert!(r
            .fill_from(&t, Asid::new(1), VirtAddr::new(0x9999_0000))
            .is_none());
    }
}
