//! Property tests for many-segment translation.

use hvc_os::{AllocPolicy, Kernel, MapIntent, SegmentTable};
use hvc_segment::{ManySegmentTranslator, Rmm, SegmentCache};
use hvc_types::{Asid, Cycles, Permissions, PhysAddr, VirtAddr, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    /// The full translation pipeline (SC → index cache → segment table)
    /// always agrees with the page table, for any eager layout and any
    /// probe order — including repeated probes that exercise SC fills,
    /// hits and partial-coverage checks.
    #[test]
    fn pipeline_agrees_with_page_table(
        region_pages in prop::collection::vec(1u64..64, 1..8),
        probes in prop::collection::vec((0usize..8, 0u64..64, 0u64..0x1000), 1..120),
    ) {
        let mut k = Kernel::new(1 << 30, AllocPolicy::EagerSegments { split: 1 });
        let a = k.create_process().unwrap();
        let mut bases = Vec::new();
        let mut next = 0x1000_0000u64;
        for &pages in &region_pages {
            let va = VirtAddr::new(next);
            k.mmap(a, va, pages * PAGE_SIZE, Permissions::RW, MapIntent::Private).unwrap();
            bases.push((va, pages));
            next += pages * PAGE_SIZE + (8 << 20);
        }
        let mut tr = ManySegmentTranslator::isca2016(k.segments());
        for (ri, page, off) in probes {
            let (base, pages) = bases[ri % bases.len()];
            let va = VirtAddr::new(base.as_u64() + (page % pages) * PAGE_SIZE + off);
            let (pa, lat) = tr.translate(a, va, |_| Cycles::new(100)).expect("covered");
            let pte = k.walk(a, va.page_number()).unwrap().0;
            prop_assert_eq!(pa.frame_number(), pte.frame);
            prop_assert_eq!(pa.page_offset(), va.page_offset());
            prop_assert!(lat.get() >= 2);
        }
    }

    /// The segment cache never produces a wrong translation: every SC
    /// hit equals what the segment table would say (bounds included).
    #[test]
    fn segment_cache_is_sound(
        starts in prop::collection::btree_set(0u64..200, 1..20),
        probes in prop::collection::vec(0u64..(210 * 0x4000), 1..150),
    ) {
        let mut table = SegmentTable::new(1024);
        for &s in &starts {
            // 8-page segments at 16-page-aligned slots: gaps exist.
            table
                .insert(
                    Asid::new(1),
                    VirtAddr::new(s * 0x4000),
                    0x2000,
                    PhysAddr::new(0x8000_0000 + s * 0x2000),
                )
                .unwrap();
        }
        let mut sc = SegmentCache::isca2016();
        for &p in &probes {
            let va = VirtAddr::new(p);
            let truth = table.find(Asid::new(1), va).map(|s| s.translate(va));
            if let Some(pa) = sc.translate(Asid::new(1), va) {
                prop_assert_eq!(Some(pa), truth, "SC hit must match the table");
            } else if let Some(seg) = table.find(Asid::new(1), va) {
                sc.fill(Asid::new(1), va, seg);
                // Immediately after a fill, the translation must hit and
                // agree.
                prop_assert_eq!(sc.translate(Asid::new(1), va), truth);
            }
        }
    }

    /// RMM translations always agree with the OS segment table, and its
    /// hit/miss counts are consistent.
    #[test]
    fn rmm_is_sound(
        starts in prop::collection::btree_set(0u64..100, 1..50),
        probes in prop::collection::vec(0u64..(110 * 0x4000), 1..200),
    ) {
        let mut table = SegmentTable::new(1024);
        for &s in &starts {
            table
                .insert(
                    Asid::new(1),
                    VirtAddr::new(s * 0x4000),
                    0x4000,
                    PhysAddr::new(s * 0x4000 + 0x1000_0000),
                )
                .unwrap();
        }
        let mut rmm = Rmm::rmm32();
        let mut lookups = 0u64;
        for &p in &probes {
            let va = VirtAddr::new(p);
            lookups += 1;
            let truth = table.find(Asid::new(1), va).map(|s| s.translate(va));
            let got = match rmm.translate(Asid::new(1), va) {
                Some(pa) => Some(pa),
                None => rmm.fill_from(&table, Asid::new(1), va),
            };
            prop_assert_eq!(got, truth);
        }
        let s = rmm.stats();
        prop_assert_eq!(s.hits + s.misses, lookups);
    }
}
