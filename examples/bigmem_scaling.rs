//! Domain scenario: big-memory scaling — where fixed-granularity delayed
//! TLBs run out and many-segment translation keeps scaling.
//!
//! Sweeps a GUPS-style working set from 32 MB to 512 MB under (a) a
//! 4K-entry delayed TLB and (b) many-segment translation, printing the
//! delayed-miss MPKI and IPC of each. This is the motivation behind the
//! paper's Section IV.
//!
//! ```sh
//! cargo run --release --example bigmem_scaling
//! ```

use hvc::core::{SystemConfig, SystemSim, TranslationScheme};
use hvc::os::{AllocPolicy, Kernel};
use hvc::types::HvcError;
use hvc::workloads::apps;

fn main() -> Result<(), HvcError> {
    let refs = 200_000;
    println!("big-memory scaling sweep ({refs} references per point)\n");
    println!(
        "{:>10}  {:>14}  {:>10}  {:>14}  {:>10}",
        "mem", "dTLB-4k MPKI", "dTLB IPC", "manyseg walks", "seg IPC"
    );

    for shift in [25u32, 26, 27, 28, 29] {
        let mem = 1u64 << shift;

        // (a) page-granularity delayed TLB.
        let mut kernel = Kernel::new(8 << 30, AllocPolicy::DemandPaging);
        let mut wl = apps::gups(mem).instantiate(&mut kernel, 11)?;
        let mut sim = SystemSim::new(
            kernel,
            SystemConfig::isca2016(),
            TranslationScheme::HybridDelayedTlb(4096),
        );
        let tlb_report = sim.run(&mut wl, refs);

        // (b) many-segment translation (eager allocation → one segment).
        let mut kernel = Kernel::new(8 << 30, AllocPolicy::EagerSegments { split: 1 });
        let mut wl = apps::gups(mem).instantiate(&mut kernel, 11)?;
        let mut sim = SystemSim::new(
            kernel,
            SystemConfig::isca2016(),
            TranslationScheme::HybridManySegment {
                segment_cache: true,
            },
        );
        let seg_report = sim.run(&mut wl, refs);

        println!(
            "{:>7} MB  {:>14.2}  {:>10.3}  {:>14}  {:>10.3}",
            mem >> 20,
            tlb_report.mpki(tlb_report.translation.delayed_tlb_misses),
            tlb_report.ipc(),
            seg_report.translation.segment_table_accesses,
            seg_report.ipc(),
        );
    }

    println!("\nThe delayed TLB's MPKI grows with the working set (its reach is fixed at");
    println!("16 MB for 4K entries), while a single variable-length segment covers any");
    println!("size — the scalability argument for many-segment delayed translation.");
    Ok(())
}
