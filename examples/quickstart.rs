//! Quickstart: simulate one workload under the three main translation
//! architectures and compare IPC and translation traffic.
//!
//! The workload is an omnetpp-like Zipfian object graph: its hot pages
//! fit the LLC but overflow the TLBs — the regime where hybrid virtual
//! caching shines (translations for cache-resident lines disappear).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hvc::core::{EnergyModel, SystemConfig, SystemSim, TranslationScheme};
use hvc::os::{AllocPolicy, Kernel};
use hvc::types::HvcError;
use hvc::workloads::apps;

fn main() -> Result<(), HvcError> {
    let refs = 200_000;
    println!("hybrid virtual caching quickstart — omnetpp-like Zipf graph, {refs} references\n");

    let configs = [
        (
            "baseline (physical caches, 2-level TLB)",
            TranslationScheme::Baseline,
            AllocPolicy::DemandPaging,
        ),
        (
            "hybrid + 4K-entry delayed TLB",
            TranslationScheme::HybridDelayedTlb(4096),
            AllocPolicy::DemandPaging,
        ),
        (
            "hybrid + many-segment translation",
            TranslationScheme::HybridManySegment {
                segment_cache: true,
            },
            AllocPolicy::EagerSegments { split: 1 },
        ),
        (
            "ideal (no translation)",
            TranslationScheme::Ideal,
            AllocPolicy::DemandPaging,
        ),
    ];

    let energy = EnergyModel::cacti_32nm();
    let mut baseline_ipc = None;
    let mut baseline_energy = None;

    for (name, scheme, policy) in configs {
        // Boot an OS, install the workload, then simulate.
        let mut kernel = Kernel::new(4 << 30, policy);
        let mut workload = apps::omnetpp().instantiate(&mut kernel, 42)?;
        let mut sim = SystemSim::new(kernel, SystemConfig::isca2016(), scheme);
        let report = sim.run(&mut workload, refs);

        let e = energy.breakdown(&report.translation, 4096).total() / 1e6;
        let ipc = report.ipc();
        let speedup = baseline_ipc.map(|b: f64| ipc / b).unwrap_or(1.0);
        let saving = baseline_energy
            .map(|b: f64| format!("{:+.1}%", (1.0 - e / b) * 100.0))
            .unwrap_or_else(|| "—".into());
        baseline_ipc.get_or_insert(ipc);
        baseline_energy.get_or_insert(e);

        println!("{name}");
        println!("  IPC {ipc:.3}  (speedup ×{speedup:.3})");
        println!(
            "  front-side TLB lookups {:>9}   page-walk PTE reads {:>7}",
            report.translation.front_tlb_accesses(),
            report.translation.pte_reads
        );
        println!("  translation energy {e:.2} µJ  (saving vs baseline: {saving})\n");
    }
    Ok(())
}
