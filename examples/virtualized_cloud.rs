//! Domain scenario: a virtualized cloud host — two-dimensional
//! translation, hypervisor-induced sharing, and content deduplication.
//!
//! A guest VM runs a memory-intensive workload. The example compares the
//! nested-translation baseline against hybrid virtual caching with
//! delayed 2D translation, and demonstrates KSM-style page deduplication
//! using the paper's read-only optimization (no synonym-filter traffic).
//!
//! ```sh
//! cargo run --release --example virtualized_cloud
//! ```

use hvc::core::{SystemConfig, VirtScheme, VirtSystemSim};
use hvc::os::AllocPolicy;
use hvc::types::{GuestPhysAddr, HvcError};
use hvc::virt::Hypervisor;
use hvc::workloads::apps;

const GIB: u64 = 1 << 30;

fn run(scheme: VirtScheme, refs: usize) -> Result<f64, HvcError> {
    let (policy, eager) = match scheme {
        VirtScheme::HybridNestedSegments => (AllocPolicy::EagerSegments { split: 1 }, true),
        _ => (AllocPolicy::DemandPaging, false),
    };
    let mut hv = Hypervisor::new(8 * GIB);
    let vm = hv.create_vm(2 * GIB, policy, eager)?;
    let guest_kernel = hv.guest_kernel_mut(vm)?;
    let mut workload = apps::gups(128 << 20).instantiate(guest_kernel, 9)?;
    let mut sim = VirtSystemSim::new(hv, vm, SystemConfig::isca2016(), scheme)?;
    let report = sim.run(&mut workload, refs);
    Ok(report.ipc())
}

fn main() -> Result<(), HvcError> {
    let refs = 150_000;
    println!("virtualized cloud host — gups guest, {refs} references per scheme\n");

    let base = run(VirtScheme::NestedBaseline, refs)?;
    println!("nested baseline (2D walker + nested TLB):     IPC {base:.3}");
    let hyb = run(VirtScheme::HybridDelayedNested(4096), refs)?;
    println!(
        "hybrid + delayed nested translation:          IPC {hyb:.3}  (×{:.3})",
        hyb / base
    );
    let seg = run(VirtScheme::HybridNestedSegments, refs)?;
    println!(
        "hybrid + 2D (guest+host) segment translation: IPC {seg:.3}  (×{:.3})\n",
        seg / base
    );

    // --- KSM-style deduplication with the r/o optimization ---
    let mut hv = Hypervisor::new(8 * GIB);
    let vm1 = hv.create_vm(GIB, AllocPolicy::DemandPaging, false)?;
    let vm2 = hv.create_vm(GIB, AllocPolicy::DemandPaging, false)?;
    let g1 = GuestPhysAddr::new(0x40_0000);
    let g2 = GuestPhysAddr::new(0x80_0000);
    hv.machine_addr(vm1, g1)?;
    hv.machine_addr(vm2, g2)?;

    let before = hv.free_machine_frames();
    hv.dedup_ro((vm1, g1), (vm2, g2))?;
    println!("content dedup: merged identical guest pages across two VMs");
    println!(
        "  machine frames reclaimed: {}",
        hv.free_machine_frames() - before
    );
    println!(
        "  host-filter insertions:   {} (r/o sharing stays out of the synonym filter)",
        hv.stats().host_filter_insertions
    );

    // A guest write breaks the sharing transparently.
    hv.break_dedup(vm2, g2)?;
    println!(
        "  after a guest write: copy-on-write breaks the sharing ({} break)",
        hv.stats().cow_breaks
    );
    Ok(())
}
