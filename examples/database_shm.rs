//! Domain scenario: a postgres-like multi-process database sharing a
//! buffer pool — the workload class that motivates the synonym filter.
//!
//! Four processes attach one shared-memory object at *different* virtual
//! addresses (synonyms). The example shows how the OS marks the pages
//! shared, how the Bloom filter routes only those accesses through the
//! synonym TLB, and what that does to translation traffic and coherence
//! correctness.
//!
//! ```sh
//! cargo run --release --example database_shm
//! ```

use hvc::core::{SystemConfig, SystemSim, TranslationScheme};
use hvc::os::{AllocPolicy, Kernel};
use hvc::types::HvcError;
use hvc::workloads::apps;

fn main() -> Result<(), HvcError> {
    let refs = 300_000;
    let mut kernel = Kernel::new(8 << 30, AllocPolicy::DemandPaging);
    let mut workload = apps::postgres().instantiate(&mut kernel, 7)?;

    // Inspect what the OS set up: every process maps the same frames at
    // a different virtual address — the textbook synonym situation.
    println!(
        "postgres-like workload: {} backend processes",
        workload.procs().len()
    );
    let p0 = &workload.procs()[0];
    let p1 = &workload.procs()[1];
    let f0 = kernel
        .translate_touch(p0.asid, p0.shared_pages[0].base())?
        .frame;
    let f1 = kernel
        .translate_touch(p1.asid, p1.shared_pages[0].base())?
        .frame;
    println!(
        "  backend 0 maps frame {:#x} at {}, backend 1 maps it at {}",
        f0.as_u64(),
        p0.shared_pages[0].base(),
        p1.shared_pages[0].base()
    );
    assert_eq!(f0, f1, "one physical frame, two virtual names: a synonym");

    // The per-process filters already flag the shared region:
    let space = kernel.space(p0.asid).expect("space exists");
    println!(
        "  synonym filter flags the shared pool: {}",
        space.filter.is_candidate(p0.shared_pages[0].base())
    );
    println!(
        "  …but not the private heap: {}\n",
        space.filter.is_candidate(p0.pages[0].base())
    );

    // Simulate under hybrid virtual caching.
    let mut sim = SystemSim::new(
        kernel,
        SystemConfig::isca2016_8mb_llc(),
        TranslationScheme::HybridDelayedTlb(1024),
    );
    let report = sim.run(&mut workload, refs);

    let t = &report.translation;
    println!("after {refs} references:");
    println!("  filter lookups          {:>9}", t.filter_lookups);
    println!(
        "  synonym candidates      {:>9}  ({:.1}% of accesses — the shared pool)",
        t.filter_candidates,
        t.filter_candidates as f64 / t.filter_lookups as f64 * 100.0
    );
    println!(
        "  false positives         {:>9}  ({:.3}%)",
        t.false_positives,
        t.false_positives as f64 / t.filter_lookups as f64 * 100.0
    );
    println!(
        "  TLB accesses avoided    {:>9}  ({:.1}% reduction vs a conventional TLB)",
        t.filter_lookups - t.synonym_tlb_lookups,
        (1.0 - t.synonym_tlb_lookups as f64 / t.filter_lookups as f64) * 100.0
    );
    println!("  IPC {:.3}", report.ipc());
    Ok(())
}
