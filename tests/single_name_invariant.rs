//! Cross-crate integration tests of the paper's central correctness
//! argument: every physical cache block has exactly **one** name in the
//! hierarchy (`ASID ++ VA` for non-synonyms, PA for synonyms), so the
//! synonym problem cannot arise.

use hvc::cache::{Hierarchy, HierarchyConfig};
use hvc::os::{AllocPolicy, Kernel, MapIntent};
use hvc::types::{AccessKind, Asid, BlockName, Permissions, VirtAddr};

/// Resolves the unique hybrid name of `(asid, va)`: physical for synonym
/// pages, virtual otherwise — the front-end rule of `hvc-core`.
fn hybrid_name(kernel: &mut Kernel, asid: Asid, va: VirtAddr) -> BlockName {
    let pte = kernel.translate_touch(asid, va).expect("mapped");
    if pte.shared {
        let pa = pte.frame.base() + va.page_offset();
        BlockName::Phys(pa.line())
    } else {
        BlockName::Virt(asid, va.line())
    }
}

#[test]
fn synonyms_share_one_physical_name() {
    let mut kernel = Kernel::new(1 << 30, AllocPolicy::DemandPaging);
    let a = kernel.create_process().unwrap();
    let b = kernel.create_process().unwrap();
    let shm = kernel.shm_create(0x4000).unwrap();
    kernel
        .mmap(
            a,
            VirtAddr::new(0x1000_0000),
            0x4000,
            Permissions::RW,
            MapIntent::Shared(shm),
        )
        .unwrap();
    kernel
        .mmap(
            b,
            VirtAddr::new(0x5000_0000),
            0x4000,
            Permissions::RW,
            MapIntent::Shared(shm),
        )
        .unwrap();

    // Both processes' views of the same shared line resolve to one name.
    for off in [0u64, 0x40, 0x1000, 0x3fc0] {
        let na = hybrid_name(&mut kernel, a, VirtAddr::new(0x1000_0000 + off));
        let nb = hybrid_name(&mut kernel, b, VirtAddr::new(0x5000_0000 + off));
        assert_eq!(na, nb, "synonym views must share one cache name");
        assert!(na.is_phys(), "synonym pages are physically named");
    }
}

#[test]
fn writes_through_one_synonym_view_are_seen_by_the_other() {
    // Functional coherence through the hierarchy: process A writes via
    // its VA, process B (different VA, same frame) must observe the
    // dirtiness under the shared physical name — no stale second copy
    // can exist because there is no second name.
    let mut kernel = Kernel::new(1 << 30, AllocPolicy::DemandPaging);
    let a = kernel.create_process().unwrap();
    let b = kernel.create_process().unwrap();
    let shm = kernel.shm_create(0x1000).unwrap();
    kernel
        .mmap(
            a,
            VirtAddr::new(0x1000_0000),
            0x1000,
            Permissions::RW,
            MapIntent::Shared(shm),
        )
        .unwrap();
    kernel
        .mmap(
            b,
            VirtAddr::new(0x5000_0000),
            0x1000,
            Permissions::RW,
            MapIntent::Shared(shm),
        )
        .unwrap();

    let mut hierarchy = Hierarchy::new(HierarchyConfig::isca2016(2));
    let name_a = hybrid_name(&mut kernel, a, VirtAddr::new(0x1000_0040));
    let name_b = hybrid_name(&mut kernel, b, VirtAddr::new(0x5000_0040));
    assert_eq!(name_a, name_b);

    // Core 0 (process A) writes; core 1 (process B) reads the same name.
    hierarchy.access(0, name_a, AccessKind::Write);
    let r = hierarchy.access(1, name_b, AccessKind::Read);
    assert!(r.hit_level.is_some(), "B finds A's data on chip (one name)");
}

#[test]
fn private_pages_of_different_processes_never_collide() {
    let mut kernel = Kernel::new(1 << 30, AllocPolicy::DemandPaging);
    let a = kernel.create_process().unwrap();
    let b = kernel.create_process().unwrap();
    for p in [a, b] {
        kernel
            .mmap(
                p,
                VirtAddr::new(0x2000_0000),
                0x2000,
                Permissions::RW,
                MapIntent::Private,
            )
            .unwrap();
    }
    // Same VA in both processes (homonym): distinct names, distinct frames.
    let na = hybrid_name(&mut kernel, a, VirtAddr::new(0x2000_0000));
    let nb = hybrid_name(&mut kernel, b, VirtAddr::new(0x2000_0000));
    assert_ne!(na, nb, "homonyms must have distinct names");
    let fa = kernel
        .translate_touch(a, VirtAddr::new(0x2000_0000))
        .unwrap()
        .frame;
    let fb = kernel
        .translate_touch(b, VirtAddr::new(0x2000_0000))
        .unwrap()
        .frame;
    assert_ne!(fa, fb);
}

#[test]
fn no_frame_is_reachable_under_two_names() {
    // Sweep a mixed workload (private + shared + DMA) and check the
    // name → frame mapping is injective in the frame direction.
    use std::collections::HashMap;
    let mut kernel = Kernel::new(1 << 30, AllocPolicy::DemandPaging);
    let shm = kernel.shm_create(0x8000).unwrap();
    let mut names_by_frame: HashMap<u64, BlockName> = HashMap::new();
    let mut procs = Vec::new();
    for i in 0..4u64 {
        let p = kernel.create_process().unwrap();
        procs.push(p);
        kernel
            .mmap(
                p,
                VirtAddr::new(0x1000_0000),
                0x8000,
                Permissions::RW,
                MapIntent::Private,
            )
            .unwrap();
        kernel
            .mmap(
                p,
                VirtAddr::new(0x7000_0000 + i * 0x10_0000),
                0x8000,
                Permissions::RW,
                MapIntent::Shared(shm),
            )
            .unwrap();
        kernel
            .mmap(
                p,
                VirtAddr::new(0x9000_0000),
                0x2000,
                Permissions::RW,
                MapIntent::Dma,
            )
            .unwrap();
    }
    for (i, &p) in procs.clone().iter().enumerate() {
        for page in 0..8u64 {
            for (region, base) in [(0, 0x1000_0000), (1, 0x7000_0000 + (i as u64) * 0x10_0000)] {
                let va = VirtAddr::new(base + page * 0x1000);
                let pte = kernel.translate_touch(p, va).unwrap();
                let name = hybrid_name(&mut kernel, p, va);
                let frame_line = (pte.frame.base() + va.page_offset()).line().as_u64();
                match names_by_frame.entry(frame_line) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(name);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        assert_eq!(
                            *e.get(),
                            name,
                            "frame line {frame_line:#x} reachable under two names \
                             (region {region})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn filter_never_misses_a_synonym_across_many_processes() {
    // System-level no-false-negative check: every page the kernel marks
    // shared is a filter candidate in every attaching address space.
    let mut kernel = Kernel::new(1 << 30, AllocPolicy::DemandPaging);
    let shm = kernel.shm_create(0x40_000).unwrap();
    for i in 0..8u64 {
        let p = kernel.create_process().unwrap();
        let base = 0x7000_0000_0000 + i * 0x9000_0000;
        kernel
            .mmap(
                p,
                VirtAddr::new(base),
                0x40_000,
                Permissions::RW,
                MapIntent::Shared(shm),
            )
            .unwrap();
        let space = kernel.space(p).unwrap();
        for page in 0..64u64 {
            let va = VirtAddr::new(base + page * 0x1000);
            assert!(
                space.filter.is_candidate(va),
                "false negative for process {i} page {page}"
            );
        }
    }
}
