//! End-to-end tests of the `hvcsim` command-line driver.

use std::process::Command;

fn hvcsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hvcsim"))
}

#[test]
fn help_and_list_work() {
    let out = hvcsim().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("--workload"));

    let out = hvcsim().arg("--list").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("postgres"));
    assert!(text.contains("gups"));
}

#[test]
fn bad_arguments_fail_cleanly() {
    for args in [
        vec!["--scheme", "bogus"],
        vec!["--workload", "nope"],
        vec!["--definitely-not-a-flag"],
        vec!["--refs"], // missing value
    ] {
        let out = hvcsim().args(&args).output().expect("spawn");
        assert!(!out.status.success(), "{args:?} should fail");
    }
}

#[test]
fn small_simulation_reports_ipc() {
    let out = hvcsim()
        .args([
            "--workload",
            "astar",
            "--scheme",
            "baseline",
            "--refs",
            "5000",
            "--warm",
            "0",
            "--mem",
            "16M",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IPC"));
    assert!(text.contains("front TLB lookups"));
}

#[test]
fn obs_flag_prints_percentiles_and_trace_events_are_valid_json() {
    let dir = std::env::temp_dir().join(format!("hvcsim-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("events.json");
    let out = hvcsim()
        .args([
            "--workload",
            "gups",
            "--scheme",
            "manyseg",
            "--refs",
            "5000",
            "--warm",
            "0",
            "--mem",
            "16M",
            "--obs",
            "--trace-events",
        ])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("p50"), "missing percentiles:\n{text}");
    assert!(text.contains("p99"));
    assert!(text.contains("cycle attribution"));

    // The trace file is a valid Chrome trace_event document: an object
    // with a traceEvents array of complete ("ph": "X") events.
    let doc = hvc::runner::json::parse(&std::fs::read_to_string(&trace).unwrap())
        .expect("trace events parse as JSON");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty(), "tracer captured no events");
    for e in events {
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        assert!(e.get("name").unwrap().as_str().is_some());
        assert!(e.get("ts").unwrap().as_u64().is_some());
        assert!(e.get("dur").unwrap().as_u64().is_some());
        assert!(e.get("tid").unwrap().as_u64().is_some());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_save_then_replay_is_bit_identical() {
    let dir = std::env::temp_dir().join(format!("hvcsim-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.hvct");

    // Saving a trace runs the simulation on the captured items.
    let saved = hvcsim()
        .args([
            "--workload",
            "omnetpp",
            "--scheme",
            "dtlb:1024",
            "--refs",
            "8000",
            "--warm",
            "0",
            "--seed",
            "5",
            "--save-trace",
        ])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(
        saved.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&saved.stderr)
    );

    // Replaying the same trace under the same scheme must reproduce the
    // exact same cycle count.
    let replayed = hvcsim()
        .args([
            "--workload",
            "omnetpp",
            "--scheme",
            "dtlb:1024",
            "--refs",
            "8000",
            "--warm",
            "0",
            "--seed",
            "5",
            "--replay",
        ])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(replayed.status.success());

    let cycles = |out: &[u8]| -> String {
        String::from_utf8_lossy(out)
            .lines()
            .find(|l| l.starts_with("cycles"))
            .expect("cycles line")
            .to_string()
    };
    assert_eq!(cycles(&saved.stdout), cycles(&replayed.stdout));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_reports_every_cell_and_is_jobs_invariant() {
    let dir = std::env::temp_dir().join(format!("hvcsim-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |jobs: &str, out: &std::path::Path| {
        let status = hvcsim()
            .args([
                "sweep",
                "--workloads",
                "gups",
                "--schemes",
                "baseline,ideal",
                "--refs",
                "3000",
                "--warm",
                "500",
                "--mem",
                "16M",
                "--jobs",
                jobs,
                "--out",
            ])
            .arg(out)
            .output()
            .expect("spawn");
        assert!(
            status.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&status.stderr)
        );
    };
    let parallel = dir.join("jobs2.json");
    let serial = dir.join("jobs1.json");
    run("2", &parallel);
    run("1", &serial);

    let doc = hvc::runner::json::parse(&std::fs::read_to_string(&parallel).unwrap())
        .expect("report parses as JSON");
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("hvc-sweep-report/3")
    );
    let cells = doc.get("cells").unwrap().as_array().unwrap();
    assert_eq!(cells.len(), 2, "one cell per scheme");
    for (i, scheme) in ["baseline", "ideal"].iter().enumerate() {
        assert_eq!(cells[i].get("index").unwrap().as_u64(), Some(i as u64));
        assert_eq!(cells[i].get("scheme").unwrap().as_str(), Some(*scheme));
        let stats = cells[i].get("stats").unwrap();
        assert!(stats.get("instructions").unwrap().as_u64().unwrap() > 0);
        assert!(stats.get("cycles").unwrap().as_u64().unwrap() > 0);
    }

    // Per-cell statistics must not depend on the worker count: the
    // serialized cells arrays are byte-identical.
    let serial_doc = hvc::runner::json::parse(&std::fs::read_to_string(&serial).unwrap()).unwrap();
    assert_eq!(
        doc.get("cells").unwrap().to_pretty(),
        serial_doc.get("cells").unwrap().to_pretty()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_subcommand_passes_on_a_bounded_run() {
    let out = hvcsim()
        .args([
            "check",
            "--preset",
            "smoke",
            "--refs",
            "1000",
            "--warm",
            "200",
            "--seed-range",
            "0..1",
            "--stress-ops",
            "80",
            "--native-only",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("all checks passed"), "stderr: {text}");
}

#[test]
fn check_subcommand_rejects_bad_seed_range() {
    let out = hvcsim()
        .args(["check", "--seed-range", "five..six"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
}
