//! Oracle coverage for the restructured hot path: the same
//! workload × scheme matrix as the golden-equivalence grid, swept with
//! `RunOptions::check` so every cell is re-run through the `hvc-check`
//! differential oracle (scheme under test vs. a physically-addressed
//! reference machine in lockstep, plus whole-machine invariant sweeps).
//!
//! The golden test pins *reports*; this one proves the flat cache/TLB
//! storage preserves *behavior* under the oracle's invariants. Reference
//! counts are smaller than the golden grid's — the oracle runs every
//! cell twice and single-steps the checked pass — but the matrix is
//! identical.

use hvc::runner::{run_report_value, run_sweep, CellResult, Experiment, RunOptions};

/// `RunReport` has no `PartialEq`; compare cells through the same
/// serialization the sweep report (and the golden fixture) uses.
fn rendered(exp: &Experiment, r: &CellResult) -> String {
    run_report_value(&r.report, &r.filters, &r.cell.scheme, exp.obs).to_pretty()
}

fn checked(exp: &Experiment) {
    let opts = RunOptions {
        jobs: 2,
        shards: 1,
        check: true,
    };
    let outcome = run_sweep(exp, &opts).expect("checked sweep must pass");
    assert_eq!(outcome.results.len(), exp.cells().len());

    // The oracle pass must not perturb the measured reports: an
    // unchecked sweep of the same grid agrees cell for cell.
    let plain = run_sweep(
        exp,
        &RunOptions {
            check: false,
            ..opts
        },
    )
    .expect("plain sweep must pass");
    for (a, b) in outcome.results.iter().zip(plain.results.iter()) {
        assert_eq!(
            rendered(exp, a),
            rendered(exp, b),
            "{}/{}",
            a.cell.workload,
            a.cell.scheme
        );
    }
}

#[test]
fn native_grid_passes_the_oracle() {
    checked(&Experiment {
        name: "check-native".into(),
        workloads: vec!["gups".into(), "postgres".into()],
        schemes: vec![
            "baseline".into(),
            "dtlb:1024".into(),
            "manyseg".into(),
            "enigma:1024".into(),
        ],
        seeds: vec![42],
        llc_bytes: vec![2 << 20],
        refs: 4_000,
        warm: 2_000,
        mem: 64 << 20,
        cores: 1,
        ifetch: false,
        replay: None,
        obs: false,
    });
}

#[test]
fn multicore_ifetch_grid_passes_the_oracle() {
    checked(&Experiment {
        name: "check-native-mc".into(),
        workloads: vec!["postgres".into()],
        schemes: vec!["dtlb:1024".into(), "manyseg".into()],
        seeds: vec![42],
        llc_bytes: vec![2 << 20],
        refs: 2_000,
        warm: 1_000,
        mem: 64 << 20,
        cores: 2,
        ifetch: true,
        replay: None,
        obs: false,
    });
}
