//! End-to-end equivalence and sanity tests across translation schemes.
//!
//! All schemes simulate the *same* workload stream, so their functional
//! footprints must agree (pages touched, faults, shared-access counts),
//! while their timing characteristics must order the way the paper's
//! evaluation says they do.

use hvc::core::{RunReport, SystemConfig, SystemSim, TranslationScheme};
use hvc::os::{AllocPolicy, Kernel};
use hvc::workloads::apps;

fn run(scheme: TranslationScheme, policy: AllocPolicy, refs: usize, seed: u64) -> RunReport {
    let mut kernel = Kernel::new(4 << 30, policy);
    let mut wl = apps::omnetpp().instantiate(&mut kernel, seed).unwrap();
    let mut sim = SystemSim::new(kernel, SystemConfig::isca2016(), scheme);
    sim.run(&mut wl, refs)
}

#[test]
fn all_schemes_touch_the_same_memory() {
    let refs = 30_000;
    let reports = [
        run(
            TranslationScheme::Baseline,
            AllocPolicy::DemandPaging,
            refs,
            5,
        ),
        run(
            TranslationScheme::HybridDelayedTlb(1024),
            AllocPolicy::DemandPaging,
            refs,
            5,
        ),
        run(TranslationScheme::Ideal, AllocPolicy::DemandPaging, refs, 5),
    ];
    // The workload stream is deterministic: all demand-paged schemes
    // must fault in exactly the same pages and count the same
    // shared-access traffic.
    for r in &reports[1..] {
        assert_eq!(r.minor_faults, reports[0].minor_faults);
        assert_eq!(
            r.translation.shared_accesses,
            reports[0].translation.shared_accesses
        );
        assert_eq!(r.instructions, reports[0].instructions);
        assert_eq!(r.refs, reports[0].refs);
    }
}

#[test]
fn simulation_is_deterministic() {
    let a = run(
        TranslationScheme::HybridDelayedTlb(2048),
        AllocPolicy::DemandPaging,
        20_000,
        9,
    );
    let b = run(
        TranslationScheme::HybridDelayedTlb(2048),
        AllocPolicy::DemandPaging,
        20_000,
        9,
    );
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.translation, b.translation);
    assert_eq!(a.dram, b.dram);
}

#[test]
fn ideal_bounds_every_scheme() {
    let refs = 40_000;
    let ideal = run(
        TranslationScheme::Ideal,
        AllocPolicy::DemandPaging,
        refs,
        11,
    );
    for scheme in [
        TranslationScheme::Baseline,
        TranslationScheme::HybridDelayedTlb(1024),
        TranslationScheme::HybridDelayedTlb(32768),
    ] {
        let r = run(scheme, AllocPolicy::DemandPaging, refs, 11);
        assert!(
            ideal.cycles <= r.cycles,
            "{scheme:?} ran in {} cycles, faster than ideal's {}",
            r.cycles,
            ideal.cycles
        );
    }
}

#[test]
fn hybrid_eliminates_front_side_tlb_traffic_for_private_workloads() {
    let r = run(
        TranslationScheme::HybridDelayedTlb(1024),
        AllocPolicy::DemandPaging,
        20_000,
        3,
    );
    assert_eq!(r.translation.l1_tlb_lookups, 0);
    assert_eq!(r.translation.l2_tlb_lookups, 0);
    assert_eq!(
        r.translation.synonym_tlb_lookups, 0,
        "no synonyms in omnetpp"
    );
    assert_eq!(r.translation.filter_lookups, 20_000);
}

#[test]
fn many_segment_and_delayed_tlb_agree_functionally() {
    let refs = 30_000;
    // Same seed: the eager-policy runs see identical streams.
    let seg = {
        let mut kernel = Kernel::new(4 << 30, AllocPolicy::EagerSegments { split: 1 });
        let mut wl = apps::omnetpp().instantiate(&mut kernel, 7).unwrap();
        let mut sim = SystemSim::new(
            kernel,
            SystemConfig::isca2016(),
            TranslationScheme::HybridManySegment {
                segment_cache: true,
            },
        );
        sim.run(&mut wl, refs)
    };
    let tlb = {
        let mut kernel = Kernel::new(4 << 30, AllocPolicy::EagerSegments { split: 1 });
        let mut wl = apps::omnetpp().instantiate(&mut kernel, 7).unwrap();
        let mut sim = SystemSim::new(
            kernel,
            SystemConfig::isca2016(),
            TranslationScheme::HybridDelayedTlb(1024),
        );
        sim.run(&mut wl, refs)
    };
    assert_eq!(seg.instructions, tlb.instructions);
    assert_eq!(
        seg.translation.shared_accesses,
        tlb.translation.shared_accesses
    );
    // Under eager allocation no demand faults occur in either.
    assert_eq!(seg.minor_faults, 0);
    assert_eq!(tlb.minor_faults, 0);
}

#[test]
fn postgres_synonym_traffic_is_consistent_across_schemes() {
    let refs = 40_000;
    let mk = |scheme| {
        let mut kernel = Kernel::new(8 << 30, AllocPolicy::DemandPaging);
        let mut wl = apps::postgres().instantiate(&mut kernel, 21).unwrap();
        let mut sim = SystemSim::new(kernel, SystemConfig::isca2016(), scheme);
        sim.run(&mut wl, refs)
    };
    let base = mk(TranslationScheme::Baseline);
    let hyb = mk(TranslationScheme::HybridDelayedTlb(1024));
    assert_eq!(
        base.translation.shared_accesses,
        hyb.translation.shared_accesses
    );
    // Candidates cover at least the true synonym accesses (no false
    // negatives), possibly more (false positives).
    assert!(hyb.translation.filter_candidates >= hyb.translation.shared_accesses);
}
