//! Golden bitwise-equivalence regression for the per-reference hot path.
//!
//! A representative grid — baseline / hybrid / many-segment / Enigma,
//! native (single- and multi-core, with and without ifetch) plus the
//! virtualized schemes — was serialized with
//! [`hvc::runner::run_report_value`] and committed under
//! `tests/goldens/`. Any restructuring of the cache/TLB storage or the
//! step loop must reproduce that file **byte for byte**: every counter,
//! derived rate, latency percentile and attribution bucket.
//!
//! Regenerate with `HVC_BLESS=1 cargo test --test equivalence_golden`
//! after an *intentional* behavior change — never to paper over an
//! unexplained diff.

use hvc::core::{SystemConfig, VirtScheme, VirtSystemSim};
use hvc::os::AllocPolicy;
use hvc::runner::json::Value;
use hvc::runner::{run_cell, run_report_value, Experiment};
use hvc::virt::Hypervisor;

const GOLDEN_PATH: &str = "tests/goldens/hotpath_equivalence.json";

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// The native single-core grid: both workload classes under all four
/// scheme families, with the observability sections pinned too.
fn native_grid() -> Experiment {
    Experiment {
        name: "golden-native".into(),
        workloads: vec!["gups".into(), "postgres".into()],
        schemes: vec![
            "baseline".into(),
            "dtlb:1024".into(),
            "manyseg".into(),
            "enigma:1024".into(),
        ],
        seeds: vec![42],
        llc_bytes: vec![2 << 20],
        refs: 20_000,
        warm: 10_000,
        mem: 64 << 20,
        cores: 1,
        ifetch: false,
        replay: None,
        obs: true,
    }
}

/// The native multi-core grid: coherence + ifetch paths.
fn native_mc_grid() -> Experiment {
    Experiment {
        name: "golden-native-mc".into(),
        workloads: vec!["postgres".into()],
        schemes: vec!["dtlb:1024".into(), "manyseg".into()],
        seeds: vec![42],
        llc_bytes: vec![2 << 20],
        refs: 10_000,
        warm: 5_000,
        mem: 64 << 20,
        cores: 2,
        ifetch: true,
        replay: None,
        obs: true,
    }
}

fn native_cells(exp: &Experiment) -> Vec<Value> {
    exp.cells()
        .iter()
        .map(|cell| {
            let (report, filters) =
                run_cell(exp, cell, 1, None, false).expect("golden cell must run");
            object(vec![
                ("experiment", Value::Str(exp.name.clone())),
                ("workload", Value::Str(cell.workload.clone())),
                ("scheme", Value::Str(cell.scheme.clone())),
                ("seed", Value::UInt(cell.seed)),
                (
                    "stats",
                    run_report_value(&report, &filters, &cell.scheme, exp.obs),
                ),
            ])
        })
        .collect()
}

fn virt_cells() -> Vec<Value> {
    let schemes: [(&str, VirtScheme); 3] = [
        ("nested-baseline", VirtScheme::NestedBaseline),
        (
            "hybrid-delayed-nested:1024",
            VirtScheme::HybridDelayedNested(1024),
        ),
        ("hybrid-nested-segments", VirtScheme::HybridNestedSegments),
    ];
    let mem: u64 = 64 << 20;
    let spec = hvc::runner::params::workload_by_name("gups", mem).expect("gups exists");
    schemes
        .iter()
        .map(|(label, scheme)| {
            let vm_bytes = (mem * 4).max(1 << 30);
            let mut hv = Hypervisor::new(vm_bytes + (1 << 30));
            let vm = hv
                .create_vm(vm_bytes, AllocPolicy::DemandPaging, false)
                .expect("vm");
            let gk = hv.guest_kernel_mut(vm).expect("guest kernel");
            let mut wl = spec.instantiate(gk, 42).expect("guest workload");
            let mut sim =
                VirtSystemSim::new(hv, vm, SystemConfig::isca2016(), *scheme).expect("virt sim");
            sim.warm_up(&mut wl, 5_000);
            let report = sim.run(&mut wl, 10_000);
            object(vec![
                ("experiment", Value::Str("golden-virt".into())),
                ("workload", Value::Str("gups".into())),
                ("scheme", Value::Str((*label).into())),
                ("seed", Value::UInt(42)),
                ("stats", run_report_value(&report, &[], label, false)),
            ])
        })
        .collect()
}

fn current_document() -> Value {
    let mut cells = native_cells(&native_grid());
    cells.extend(native_cells(&native_mc_grid()));
    cells.extend(virt_cells());
    object(vec![
        ("schema", Value::Str("hvc-golden/1".into())),
        ("cells", Value::Array(cells)),
    ])
}

#[test]
fn hot_path_reports_match_the_blessed_goldens() {
    let text = current_document().to_pretty();
    if std::env::var_os("HVC_BLESS").is_some() {
        std::fs::create_dir_all("tests/goldens").expect("mkdir goldens");
        std::fs::write(GOLDEN_PATH, &text).expect("write golden");
        eprintln!("blessed {GOLDEN_PATH} ({} bytes)", text.len());
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run HVC_BLESS=1 cargo test --test equivalence_golden");
    if text != golden {
        // Point at the first divergence instead of dumping both docs.
        let byte = text
            .bytes()
            .zip(golden.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| text.len().min(golden.len()));
        let line = golden[..byte.min(golden.len())].lines().count();
        let ctx_from = byte.saturating_sub(120);
        panic!(
            "hot-path report diverges from {GOLDEN_PATH} at byte {byte} (line ~{line}).\n\
             golden: …{}…\n\
             got:    …{}…\n\
             If the change is intentional, re-bless with HVC_BLESS=1.",
            &golden[ctx_from..(byte + 120).min(golden.len())],
            &text[ctx_from..(byte + 120).min(text.len())],
        );
    }
}
