//! Property-based tests (proptest) of the core data-structure invariants
//! across crates.

use hvc::cache::{Cache, CacheConfig};
use hvc::filter::SynonymFilter;
use hvc::os::{BuddyAllocator, SegmentTable};
use hvc::segment::IndexTree;
use hvc::tlb::{Tlb, TlbConfig};
use hvc::types::{Asid, BlockName, Cycles, LineAddr, Permissions, PhysAddr, VirtAddr, VirtPage};
use proptest::prelude::*;

proptest! {
    /// The synonym filter never produces a false negative, for any set of
    /// inserted pages and any probe into an inserted page's region.
    #[test]
    fn filter_has_no_false_negatives(
        pages in prop::collection::vec(0u64..(1 << 36), 1..200),
        probe_offsets in prop::collection::vec((0usize..200, 0u64..0x1000), 1..50),
    ) {
        let mut f = SynonymFilter::new();
        for &p in &pages {
            f.insert_page(VirtAddr::new(p << 12));
        }
        for &(i, off) in &probe_offsets {
            let page = pages[i % pages.len()];
            prop_assert!(f.is_candidate(VirtAddr::new((page << 12) + off)));
        }
    }

    /// Buddy allocator conservation: allocations and frees always leave
    /// `free_frames` consistent, blocks never overlap, and freeing
    /// everything restores the initial state.
    #[test]
    fn buddy_allocator_conserves_frames(ops in prop::collection::vec(1u64..512, 1..40)) {
        let mut b = BuddyAllocator::new(1 << 30);
        let total = b.free_frames();
        let mut live: Vec<(hvc::types::PhysFrame, u64)> = Vec::new();
        for &n in &ops {
            if let Ok(base) = b.alloc_exact(n) {
                // No overlap with any live allocation.
                for &(other, m) in &live {
                    let a0 = base.as_u64();
                    let a1 = a0 + n;
                    let b0 = other.as_u64();
                    let b1 = b0 + m;
                    prop_assert!(a1 <= b0 || b1 <= a0, "overlap");
                }
                live.push((base, n));
            }
        }
        let used: u64 = live.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(b.free_frames(), total - used);
        for (base, n) in live {
            b.free_exact(base, n);
        }
        prop_assert_eq!(b.free_frames(), total);
        prop_assert_eq!(b.largest_free_block(), hvc::os::MAX_BLOCK_FRAMES.min(total));
    }

    /// The index tree's predecessor search agrees with a linear scan of
    /// the segment table for arbitrary segment layouts and probes.
    #[test]
    fn index_tree_matches_linear_search(
        seg_starts in prop::collection::btree_set(0u64..1000, 1..60),
        probes in prop::collection::vec(0u64..1_100_000, 1..60),
    ) {
        let mut table = SegmentTable::new(4096);
        for &s in &seg_starts {
            // Disjoint 512-byte-page segments at 4 KiB-aligned slots.
            table
                .insert(Asid::new(1), VirtAddr::new(s * 0x1000), 0x800, PhysAddr::new(s * 0x800))
                .unwrap();
        }
        let tree = IndexTree::build(&table, PhysAddr::new(0));
        for &p in &probes {
            let va = VirtAddr::new(p);
            let expected = table.find(Asid::new(1), va).map(|s| s.id);
            let mut touched = Vec::new();
            let got = tree
                .lookup(Asid::new(1), va, &mut touched)
                .filter(|id| {
                    table.get(*id).is_some_and(|s| s.contains(Asid::new(1), va))
                });
            prop_assert_eq!(got, expected);
            prop_assert!(touched.len() <= tree.depth());
        }
    }

    /// A cache never exceeds its capacity and a fill always makes the
    /// block resident.
    #[test]
    fn cache_capacity_and_residency(lines in prop::collection::vec(0u64..4096, 1..300)) {
        let mut c = Cache::new(CacheConfig::new(64 * 64, 4, Cycles::new(1)));
        for &l in &lines {
            let name = BlockName::Virt(Asid::new(1), LineAddr::new(l));
            c.fill(name, false, Permissions::RW);
            prop_assert!(c.contains(name), "just-filled block resident");
            prop_assert!(c.occupancy() <= 64, "capacity exceeded");
        }
    }

    /// TLB lookups after insert always hit until evicted, and flushes
    /// remove exactly the targeted entries.
    #[test]
    fn tlb_flush_precision(
        pages in prop::collection::btree_set(0u64..512, 2..40),
        flush_page in 0u64..512,
    ) {
        let mut t = Tlb::new(TlbConfig::new(1024, 8, Cycles::new(1)));
        let pte = hvc::os::Pte {
            frame: hvc::types::PhysFrame::new(1),
            perm: Permissions::RW,
            shared: false,
        };
        for &p in &pages {
            t.insert(Asid::new(1), VirtPage::new(p), pte);
        }
        t.flush_page(Asid::new(1), VirtPage::new(flush_page));
        for &p in &pages {
            let expected = p != flush_page;
            prop_assert_eq!(t.contains(Asid::new(1), VirtPage::new(p)), expected);
        }
    }

    /// Address arithmetic round-trips: page/line decomposition is exact.
    #[test]
    fn address_decomposition_roundtrips(raw in 0u64..(1 << 48)) {
        let va = VirtAddr::new(raw);
        prop_assert_eq!(va.page_number().base() + va.page_offset(), va);
        prop_assert_eq!(
            PhysAddr::new(va.line().base_raw()).as_u64() + va.line_offset(),
            va.as_u64()
        );
    }
}
