//! End-to-end virtualization tests: nested translation agrees across
//! every path (EPT demand walks, nested hardware walks, 2D segments),
//! and guest/host synonym detection composes correctly.

use hvc::core::{SystemConfig, VirtScheme, VirtSystemSim};
use hvc::os::{AllocPolicy, MapIntent};
use hvc::types::{AccessKind, Cycles, GuestPhysAddr, Permissions, VirtAddr};
use hvc::virt::{Hypervisor, NestedSegments, NestedWalker};
use hvc::workloads::apps;

const GIB: u64 = 1 << 30;

#[test]
fn all_nested_translation_paths_agree() {
    let mut hv = Hypervisor::new(4 * GIB);
    let vm = hv
        .create_vm(GIB, AllocPolicy::EagerSegments { split: 1 }, true)
        .unwrap();
    let asid = hv.create_guest_process(vm).unwrap();
    let va = VirtAddr::new(0x40_0000);
    let gk = hv.guest_kernel_mut(vm).unwrap();
    gk.mmap(asid, va, 1 << 20, Permissions::RW, MapIntent::Private)
        .unwrap();

    let probe = va + 0x3456;

    // Path 1: guest PT + EPT (the reference).
    let gpte = hv
        .guest_kernel(vm)
        .unwrap()
        .walk(asid, probe.page_number())
        .unwrap()
        .0;
    let gpa = GuestPhysAddr::new(gpte.frame.base().as_u64() + probe.page_offset());
    let ma_ref = hv.machine_addr(vm, gpa).unwrap();

    // Path 2: hardware nested walker (pre-touch PT pages).
    let (_, gpath) = hv
        .guest_kernel(vm)
        .unwrap()
        .walk(asid, probe.page_number())
        .unwrap();
    for e in gpath {
        hv.machine_addr(vm, GuestPhysAddr::new(e.as_u64())).unwrap();
    }
    let mut walker = NestedWalker::isca2016();
    let (npte, _) = walker
        .walk(&hv, vm, asid, probe.page_number(), |_| Cycles::new(1))
        .unwrap();
    assert_eq!(
        npte.machine_frame.base().as_u64() + probe.page_offset(),
        ma_ref.as_u64(),
        "nested walker disagrees with EPT reference"
    );

    // Path 3: 2D segment translation.
    let mut ns = NestedSegments::build(&hv, vm).unwrap();
    let host_key = hv.host_segment_key(vm).unwrap();
    let (ma_seg, _) = ns
        .translate(asid, host_key, probe, |_| Cycles::new(1))
        .unwrap();
    assert_eq!(ma_seg, ma_ref, "2D segments disagree with EPT reference");
}

#[test]
fn guest_synonyms_work_inside_a_vm() {
    // Two guest processes in one VM share guest memory — guest-OS-induced
    // synonyms detected by the guest filter, physical(machine)-named.
    let mut hv = Hypervisor::new(4 * GIB);
    let vm = hv.create_vm(GIB, AllocPolicy::DemandPaging, false).unwrap();
    let a = hv.create_guest_process(vm).unwrap();
    let b = hv.create_guest_process(vm).unwrap();
    let gk = hv.guest_kernel_mut(vm).unwrap();
    let shm = gk.shm_create(0x2000).unwrap();
    gk.mmap(
        a,
        VirtAddr::new(0x7000_0000),
        0x2000,
        Permissions::RW,
        MapIntent::Shared(shm),
    )
    .unwrap();
    gk.mmap(
        b,
        VirtAddr::new(0x9000_0000),
        0x2000,
        Permissions::RW,
        MapIntent::Shared(shm),
    )
    .unwrap();
    let pa = gk.translate_touch(a, VirtAddr::new(0x7000_0000)).unwrap();
    let pb = gk.translate_touch(b, VirtAddr::new(0x9000_0000)).unwrap();
    assert_eq!(pa.frame, pb.frame, "same guest-physical frame");
    assert!(pa.shared && pb.shared);
    assert!(gk
        .space(a)
        .unwrap()
        .filter
        .is_candidate(VirtAddr::new(0x7000_0000)));
    assert!(gk
        .space(b)
        .unwrap()
        .filter
        .is_candidate(VirtAddr::new(0x9000_0000)));
    // The two guest views reach one machine address.
    let ma_a = hv
        .machine_addr(vm, GuestPhysAddr::new(pa.frame.base().as_u64()))
        .unwrap();
    let ma_b = hv
        .machine_addr(vm, GuestPhysAddr::new(pb.frame.base().as_u64()))
        .unwrap();
    assert_eq!(ma_a, ma_b);
}

#[test]
fn vm_isolation_distinct_asids_and_frames() {
    let mut hv = Hypervisor::new(4 * GIB);
    let vm1 = hv
        .create_vm(GIB / 2, AllocPolicy::DemandPaging, false)
        .unwrap();
    let vm2 = hv
        .create_vm(GIB / 2, AllocPolicy::DemandPaging, false)
        .unwrap();
    let a1 = hv.create_guest_process(vm1).unwrap();
    let a2 = hv.create_guest_process(vm2).unwrap();
    assert_ne!(a1, a2, "ASIDs embed VMIDs so VMs cannot alias");
    for (vm, asid) in [(vm1, a1), (vm2, a2)] {
        let gk = hv.guest_kernel_mut(vm).unwrap();
        gk.mmap(
            asid,
            VirtAddr::new(0x1000_0000),
            0x1000,
            Permissions::RW,
            MapIntent::Private,
        )
        .unwrap();
        gk.translate_touch(asid, VirtAddr::new(0x1000_0000))
            .unwrap();
    }
    let g1 = hv
        .guest_kernel(vm1)
        .unwrap()
        .walk(a1, VirtAddr::new(0x1000_0000).page_number())
        .unwrap()
        .0;
    let g2 = hv
        .guest_kernel(vm2)
        .unwrap()
        .walk(a2, VirtAddr::new(0x1000_0000).page_number())
        .unwrap()
        .0;
    let m1 = hv
        .machine_addr(vm1, GuestPhysAddr::new(g1.frame.base().as_u64()))
        .unwrap();
    let m2 = hv
        .machine_addr(vm2, GuestPhysAddr::new(g2.frame.base().as_u64()))
        .unwrap();
    assert_ne!(
        m1.frame_number(),
        m2.frame_number(),
        "machine frames are disjoint"
    );
}

#[test]
fn virt_sim_schemes_agree_functionally() {
    let refs = 20_000;
    let mk = |scheme| {
        let (policy, eager) = match scheme {
            VirtScheme::HybridNestedSegments => (AllocPolicy::EagerSegments { split: 1 }, true),
            _ => (AllocPolicy::DemandPaging, false),
        };
        let mut hv = Hypervisor::new(4 * GIB);
        let vm = hv.create_vm(GIB, policy, eager).unwrap();
        let gk = hv.guest_kernel_mut(vm).unwrap();
        let mut wl = apps::astar().instantiate(gk, 13).unwrap();
        let mut sim = VirtSystemSim::new(hv, vm, SystemConfig::isca2016(), scheme).unwrap();
        sim.run(&mut wl, refs)
    };
    let base = mk(VirtScheme::NestedBaseline);
    let dtlb = mk(VirtScheme::HybridDelayedNested(4096));
    let seg = mk(VirtScheme::HybridNestedSegments);
    assert_eq!(base.instructions, dtlb.instructions);
    assert_eq!(base.instructions, seg.instructions);
    assert!(base.ipc() > 0.0 && dtlb.ipc() > 0.0 && seg.ipc() > 0.0);
}

#[test]
fn dedup_then_write_roundtrip_preserves_isolation() {
    let mut hv = Hypervisor::new(4 * GIB);
    let vm1 = hv
        .create_vm(GIB / 2, AllocPolicy::DemandPaging, false)
        .unwrap();
    let vm2 = hv
        .create_vm(GIB / 2, AllocPolicy::DemandPaging, false)
        .unwrap();
    let g1 = GuestPhysAddr::new(0x10_0000);
    let g2 = GuestPhysAddr::new(0x20_0000);
    hv.machine_addr(vm1, g1).unwrap();
    hv.machine_addr(vm2, g2).unwrap();
    hv.dedup_ro((vm1, g1), (vm2, g2)).unwrap();
    let shared_frame = hv.ept_walk(vm1, g1).unwrap().0.frame;
    assert_eq!(hv.ept_walk(vm2, g2).unwrap().0.frame, shared_frame);

    // VM2 writes → breaks → VM1 still points at the original frame.
    hv.break_dedup(vm2, g2).unwrap();
    assert_eq!(hv.ept_walk(vm1, g1).unwrap().0.frame, shared_frame);
    assert_ne!(hv.ept_walk(vm2, g2).unwrap().0.frame, shared_frame);
    let _ = AccessKind::Read;
}
