//! In-process integration tests for `hvcsim serve`: a raw-TCP client
//! drives a real [`Server`] on an ephemeral port, exercising the
//! memoizing cache (a repeated sweep re-simulates nothing) and the
//! crash-safe spool (a server killed mid-sweep resumes on restart and
//! produces a byte-identical final report).

use hvc::runner::json::{self, Value};
use hvc::serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// Sends one request and returns `(status, body bytes)` once the server
/// closes the connection.
fn roundtrip(addr: SocketAddr, request: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(request).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    split_response(&response)
}

fn split_response(response: &[u8]) -> (u16, Vec<u8>) {
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response head");
    let head = std::str::from_utf8(&response[..head_end]).unwrap();
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, response[head_end + 4..].to_vec())
}

fn get(addr: SocketAddr, path: &str) -> (u16, Value) {
    let (status, body) = roundtrip(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes(),
    );
    let text = String::from_utf8(body).unwrap();
    (status, json::parse(&text).expect("JSON body"))
}

fn sweep_request(body: &str) -> Vec<u8> {
    format!(
        "POST /sweep HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len(),
    )
    .into_bytes()
}

/// Runs a sweep to completion and returns the parsed NDJSON events.
fn sweep(addr: SocketAddr, body: &str) -> Vec<Value> {
    let (status, ndjson) = roundtrip(addr, &sweep_request(body));
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&ndjson));
    String::from_utf8(ndjson)
        .unwrap()
        .lines()
        .map(|line| json::parse(line).expect("NDJSON line"))
        .collect()
}

fn event_name(e: &Value) -> &str {
    e.get("event").and_then(Value::as_str).unwrap_or("?")
}

/// Per-source cell counts `(simulated, cache, spool)` of one response.
fn sources(events: &[Value]) -> (usize, usize, usize) {
    let count = |s: &str| {
        events
            .iter()
            .filter(|e| {
                event_name(e) == "cell" && e.get("source").and_then(Value::as_str) == Some(s)
            })
            .count()
    };
    (count("simulated"), count("cache"), count("spool"))
}

/// The deterministic report of a completed sweep, as canonical bytes.
fn report_bytes(events: &[Value]) -> String {
    let done = events
        .iter()
        .find(|e| event_name(e) == "done")
        .expect("done event");
    done.get("report").expect("report").to_compact()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hvc-serve-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A small but non-trivial grid: 2 cells of the smoke preset.
const SMOKE_BODY: &str = r#"{"preset": "smoke", "refs": 4000, "warm": 1000}"#;

#[test]
fn health_stats_and_presets_endpoints_respond() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr();

    let (status, health) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("ok"), Some(&Value::Bool(true)));

    let (status, stats) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(stats.get("cache").is_some());

    let (status, presets) = get(addr, "/presets");
    assert_eq!(status, 200);
    let names: Vec<&str> = presets
        .as_array()
        .unwrap()
        .iter()
        .map(|p| p.get("name").unwrap().as_str().unwrap())
        .collect();
    assert!(names.contains(&"smoke"), "{names:?}");

    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    let (status, body) = roundtrip(addr, b"DELETE /sweep HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405, "{}", String::from_utf8_lossy(&body));

    let (status, body) = roundtrip(addr, &sweep_request(r#"{"preset": "warp"}"#));
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));

    server.shutdown();
}

#[test]
fn repeated_sweep_is_served_entirely_from_cache() {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            jobs: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let first = sweep(addr, SMOKE_BODY);
    let (simulated, cached, spooled) = sources(&first);
    assert_eq!(
        (simulated, cached, spooled),
        (2, 0, 0),
        "cold run simulates"
    );

    let second = sweep(addr, SMOKE_BODY);
    let (simulated, cached, _) = sources(&second);
    assert_eq!(simulated, 0, "warm run must re-simulate nothing");
    assert_eq!(cached, 2);
    assert_eq!(
        report_bytes(&first),
        report_bytes(&second),
        "cached report must be byte-identical"
    );

    // The same cells under a different obs flag still hit the cache
    // (the memoized stats are obs-wide; serialization narrows).
    let with_obs = sweep(
        addr,
        r#"{"preset": "smoke", "refs": 4000, "warm": 1000, "obs": true}"#,
    );
    let (simulated, cached, _) = sources(&with_obs);
    assert_eq!((simulated, cached), (0, 2), "obs flag must not miss");
    let done = with_obs.iter().find(|e| event_name(e) == "done").unwrap();
    let cell0 = &done
        .get("report")
        .unwrap()
        .get("cells")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert!(cell0.get("stats").unwrap().get("latency").is_some());
    assert!(report_bytes(&first) != report_bytes(&with_obs));

    let (_, stats) = get(addr, "/stats");
    let hits = stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(hits >= 4, "stats should show the cache hits, got {hits}");

    server.shutdown();
}

/// A 6-cell grid slow enough that a shutdown after two streamed cells
/// lands mid-sweep (jobs = 1 serializes the cells).
const RESUME_BODY: &str = r#"{"workloads": ["gups"], "schemes": ["baseline", "ideal", "dtlb:1024"],
    "seeds": [1, 2], "refs": 20000, "warm": 5000, "mem": 16777216}"#;

fn resume_config(spool: &std::path::Path) -> ServeConfig {
    ServeConfig {
        jobs: 1,
        cache_capacity: 4096,
        spool_dir: Some(spool.to_path_buf()),
    }
}

#[test]
fn killed_server_resumes_from_spool_with_byte_identical_report() {
    let spool = temp_dir("resume");
    let fresh = temp_dir("fresh");

    // Kill the server mid-sweep: stream until two cells have finished,
    // then shut down while the rest are queued or in flight.
    let server = Server::start("127.0.0.1:0", resume_config(&spool)).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(&sweep_request(RESUME_BODY)).unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut streamed_cells = 0;
    while streamed_cells < 2 {
        line.clear();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "stream ended early"
        );
        if let Ok(event) = json::parse(line.trim()) {
            if event_name(&event) == "cell" {
                streamed_cells += 1;
            }
        }
    }
    server.shutdown();
    drop(reader); // the aborted tail of the stream is irrelevant

    // Restart on the same spool and resubmit: the finished cells replay
    // from disk, only the remainder simulates.
    let server = Server::start("127.0.0.1:0", resume_config(&spool)).unwrap();
    let resumed = sweep(server.addr(), RESUME_BODY);
    let (simulated, _, spooled) = sources(&resumed);
    assert!(
        spooled >= 2,
        "the cells finished before the kill must come from the spool (got {spooled})"
    );
    assert_eq!(simulated + spooled, 6, "every cell accounted for");
    assert!(simulated >= 1, "the killed sweep should not have finished");
    server.shutdown();

    // An uninterrupted control run of the same grid on a fresh spool.
    let server = Server::start("127.0.0.1:0", resume_config(&fresh)).unwrap();
    let control = sweep(server.addr(), RESUME_BODY);
    assert_eq!(sources(&control), (6, 0, 0));
    server.shutdown();

    assert_eq!(
        report_bytes(&resumed),
        report_bytes(&control),
        "resumed report must be byte-identical to an uninterrupted run"
    );

    std::fs::remove_dir_all(&spool).ok();
    std::fs::remove_dir_all(&fresh).ok();
}

#[test]
fn spool_survives_a_completed_sweep_and_warms_a_new_server() {
    let spool = temp_dir("warm");
    let server = Server::start("127.0.0.1:0", resume_config(&spool)).unwrap();
    let first = sweep(server.addr(), SMOKE_BODY);
    assert_eq!(sources(&first), (2, 0, 0));
    server.shutdown();

    // A brand-new process (here: a new server) replays the spool and
    // serves the whole grid without simulating.
    let server = Server::start("127.0.0.1:0", resume_config(&spool)).unwrap();
    let replayed = sweep(server.addr(), SMOKE_BODY);
    assert_eq!(sources(&replayed), (0, 0, 2), "all cells replayed");
    assert_eq!(report_bytes(&first), report_bytes(&replayed));

    let (_, stats) = get(server.addr(), "/stats");
    let replays = stats
        .get("spool")
        .and_then(|s| s.get("replayed"))
        .and_then(Value::as_u64)
        .unwrap();
    assert_eq!(replays, 2);
    server.shutdown();

    std::fs::remove_dir_all(&spool).ok();
}
